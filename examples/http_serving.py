"""HTTP serving walkthrough: daemon + any plain HTTP client.

``examples/serving.py`` queried an ``EmbeddingService`` in-process; this
walkthrough puts the same service behind the network boundary real
consumers use — the :mod:`repro.server` daemon — and talks to it with
nothing but ``urllib`` to show that any HTTP client works:

1. stream a dataset into a versioned :class:`repro.serving.EmbeddingStore`;
2. start :class:`repro.server.EmbeddingDaemon` on an ephemeral port (in a
   background thread here; production runs ``python -m repro serve-http``);
3. hit ``/healthz``, ``/g/<name>/knn`` (concurrently, so the micro-batcher
   coalesces), ``?version=`` time travel, ``/g/<name>/score``, and ``/stats``;
4. publish a new version while the daemon runs and watch the served
   ``version`` field advance — the hot-reload path.

Usage::

    PYTHONPATH=src python examples/http_serving.py          # a few seconds
    PYTHONPATH=src python examples/http_serving.py --tiny   # CI smoke
"""

from __future__ import annotations

import asyncio
import json
import sys
import threading
from concurrent.futures import ThreadPoolExecutor
from urllib.request import urlopen

from repro import (
    EmbeddingService,
    EmbeddingStore,
    FlushPolicy,
    StreamingGloDyNE,
    load_dataset,
)
from repro.server import EmbeddingDaemon
from repro.streaming import network_to_events


def get(base: str, target: str) -> dict:
    """One GET request; returns the decoded JSON payload."""
    with urlopen(base + target, timeout=10) as response:
        return json.load(response)


def main() -> None:
    tiny = "--tiny" in sys.argv[1:]

    # 1. Train a small store: every flush publishes one version.
    network = load_dataset(
        "elec-sim", scale=0.25 if tiny else 0.5, seed=7,
        snapshots=3 if tiny else 6,
    )
    store = EmbeddingStore()
    engine = StreamingGloDyNE(
        dim=16 if tiny else 32, alpha=0.1, num_walks=3, walk_length=12,
        window_size=4, epochs=2, seed=0,
        policy=FlushPolicy(max_events=150), publish_to=store,
    )
    events = network_to_events(network)
    # Hold the last snapshot's events back: step 4 publishes them live.
    held_back = len(events) // 4
    engine.ingest_many(events[:-held_back])
    if engine.pending_events:
        engine.flush()
    print(f"store ready: {store.num_versions} versions published")

    # 2. Serve it. The daemon runs on its own event loop in a background
    #    thread so this script can play the role of a remote client.
    daemon = EmbeddingDaemon({"elec": EmbeddingService(store)})
    loop = asyncio.new_event_loop()
    started = threading.Event()

    def run_daemon() -> None:
        asyncio.set_event_loop(loop)
        loop.run_until_complete(daemon.start(port=0))
        started.set()
        loop.run_forever()

    thread = threading.Thread(target=run_daemon, daemon=True)
    thread.start()
    started.wait(timeout=10)
    base = f"http://{daemon.host}:{daemon.port}"
    print(f"daemon listening on {base}\n")

    # 3a. Liveness + what is being served.
    health = get(base, "/healthz")
    print("healthz:", json.dumps(health["graphs"]["elec"], sort_keys=True))

    # 3b. Concurrent kNN lookups — fired together so the daemon's
    #     micro-batcher answers them in one query_many dispatch.
    nodes = [n for n in store.latest.nodes[: 8 if tiny else 16]]
    with ThreadPoolExecutor(max_workers=len(nodes)) as pool:
        answers = list(
            pool.map(lambda n: get(base, f"/g/elec/knn?node={n}&k=3"), nodes)
        )
    print(f"\ntop-3 neighbours for {len(nodes)} nodes (concurrent requests):")
    for answer in answers[:3]:
        neighbours = ", ".join(
            f"{entry['node']}:{entry['score']:.3f}"
            for entry in answer["neighbors"]
        )
        print(f"  node {answer['node']} @v{answer['version']}: {neighbours}")

    # 3c. Time travel: the same node pinned to the first version.
    node = nodes[0]
    then = get(base, f"/g/elec/knn?node={node}&k=3&version=0")
    print(f"\nnode {node} at version 0 (pinned, exact scan):")
    for entry in then["neighbors"]:
        print(f"  {entry['node']}: {entry['score']:.3f}")

    # 3d. Edge scoring — the link-prediction quantity, over HTTP.
    u, v = nodes[0], nodes[1]
    score = get(base, f"/g/elec/score?u={u}&v={v}")
    print(f"\nscore({u}, {v}) = {score['score']:.3f} [{score['metric']}]")

    # 4. Hot reload: publish a new version while the daemon serves.
    before = get(base, f"/g/elec/knn?node={node}&k=3")["version"]
    engine.ingest_many(events[-held_back:])
    if engine.pending_events:
        engine.flush()
    after = get(base, f"/g/elec/knn?node={node}&k=3")["version"]
    print(
        f"\nhot reload: served version {before} -> {after} after "
        f"{held_back} more events were flushed mid-flight"
    )

    # 5. Observability: what the batcher and the swap path did.
    stats = get(base, "/stats")
    knn = stats["knn"]
    print(
        f"\nstats: {stats['requests']} requests, "
        f"{knn['queries']} kNN queries in {knn['batch_dispatches']} "
        f"dispatches (histogram {knn['batch_size_histogram']}), "
        f"{stats['hot_reload']['index_swaps']} index swaps, "
        f"p50 {stats['latency_ms']['p50']:.2f}ms"
    )

    asyncio.run_coroutine_threadsafe(daemon.close(), loop).result(timeout=10)
    loop.call_soon_threadsafe(loop.stop)
    thread.join(timeout=10)


if __name__ == "__main__":
    main()
