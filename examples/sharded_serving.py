"""Sharded serving walkthrough: split, spawn workers, scatter-gather.

``examples/http_serving.py`` served one graph from one process; this
walkthrough runs the multi-process tier (:mod:`repro.server.sharding`)
the same store scales out with:

1. train a small store, then :func:`repro.serving.split_store` it into
   disjoint per-shard views (published partition cells drive ownership
   when present; a stable node hash otherwise);
2. spawn one worker *process* per shard
   (:func:`repro.server.spawn_workers` — each its own event loop,
   service, and micro-batcher) and front them with a
   :class:`repro.server.ShardRouter`;
3. query ``/g/<name>/knn`` through the router and verify the merged
   answer is **bit-identical** to the unsharded exact answer;
4. look at ``/healthz`` and ``/stats`` to see the per-shard fan-out;
5. tear the workers down.

Production runs the same topology from the CLI::

    python -m repro serve-http --store g=store.npz --backend exact --shards 4

Usage::

    PYTHONPATH=src python examples/sharded_serving.py          # a few seconds
    PYTHONPATH=src python examples/sharded_serving.py --tiny   # CI smoke
"""

from __future__ import annotations

import asyncio
import json
import sys
import threading
from urllib.request import urlopen

from repro import (
    EmbeddingService,
    EmbeddingStore,
    FlushPolicy,
    StreamingGloDyNE,
    load_dataset,
)
from repro.serving import split_store
from repro.server import ShardRouter, shutdown_workers, spawn_workers
from repro.streaming import network_to_events


def get(base: str, target: str) -> dict:
    """One GET request; returns the decoded JSON payload."""
    with urlopen(base + target, timeout=10) as response:
        return json.load(response)


def main() -> None:
    tiny = "--tiny" in sys.argv[1:]
    num_shards = 2 if tiny else 3

    # 1. Train a small store, then split it into per-shard views.
    network = load_dataset(
        "elec-sim", scale=0.25 if tiny else 0.5, seed=7,
        snapshots=3 if tiny else 5,
    )
    store = EmbeddingStore()
    engine = StreamingGloDyNE(
        dim=16 if tiny else 32, alpha=0.1, num_walks=3, walk_length=12,
        window_size=4, epochs=2, seed=0,
        policy=FlushPolicy(max_events=200), publish_to=store,
    )
    engine.ingest_many(network_to_events(network))
    if engine.pending_events:
        engine.flush()
    shard_stores, assignment = split_store(store, num_shards)
    print(
        f"store ready: {store.num_versions} versions, "
        f"{store.latest.num_nodes} nodes -> {num_shards} shards "
        f"({assignment.source} ownership): "
        + ", ".join(
            f"{s.latest.num_nodes} rows" for s in shard_stores
        )
    )

    # 2. One worker process per shard, a router in front. The exact
    #    backend is the bit-identical scatter-gather reference.
    handles = spawn_workers(
        [{"elec": s} for s in shard_stores], backend="exact"
    )
    try:
        router = ShardRouter(
            {"elec": (store, assignment)},
            [handle.spec for handle in handles],
        )
        loop = asyncio.new_event_loop()
        started = threading.Event()

        def run_router() -> None:
            asyncio.set_event_loop(loop)
            loop.run_until_complete(router.start(port=0))
            started.set()
            loop.run_forever()

        thread = threading.Thread(target=run_router, daemon=True)
        thread.start()
        started.wait(timeout=10)
        base = f"http://{router.host}:{router.port}"
        for handle in handles:
            print(
                f"  {handle.spec.name} -> http://{handle.spec.host}:"
                f"{handle.spec.port} (pid {handle.process.pid})"
            )
        print(f"router listening on {base}\n")

        # 3. Scatter-gathered kNN — and the identity that justifies it:
        #    the merged top-k equals the unsharded exact answer bit for
        #    bit (JSON round-trips float32 losslessly).
        reference = EmbeddingService(store, backend="exact")
        nodes = list(store.latest.nodes)[: 4 if tiny else 8]
        for node in nodes:
            answer = get(base, f"/g/elec/knn?node={node}&k=3")
            merged = [
                (entry["node"], entry["score"])
                for entry in answer["neighbors"]
            ]
            assert merged == reference.query_knn(node, 3), node
        print(
            f"kNN for {len(nodes)} nodes: every scatter-gathered answer "
            "is bit-identical to the unsharded exact answer"
        )
        answer = get(base, f"/g/elec/knn?node={nodes[0]}&k=3")
        neighbours = ", ".join(
            f"{entry['node']}:{entry['score']:.3f}"
            for entry in answer["neighbors"]
        )
        print(
            f"  node {answer['node']} @v{answer['version']} "
            f"across {answer['shards']} shards: {neighbours}"
        )

        # 4. Observability: the router aggregates every worker.
        health = get(base, "/healthz")
        print(
            f"\nhealthz: {health['status']}, shards "
            + ", ".join(
                f"{name}={payload.get('status', '?')}"
                for name, payload in health["shards"].items()
            )
        )
        stats = get(base, "/stats")
        rollup = stats["shards_rollup"]
        print(
            f"stats: router saw {stats['requests']} requests; workers "
            f"answered {rollup['knn_queries']} scattered kNN queries "
            f"({rollup['requests']} worker requests in total)"
        )

        asyncio.run_coroutine_threadsafe(router.close(), loop).result(
            timeout=10
        )
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10)
    finally:
        # 5. Teardown: SIGTERM every worker and reap it.
        shutdown_workers(handles)
    print("workers terminated cleanly")


if __name__ == "__main__":
    main()
