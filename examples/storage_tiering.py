"""Storage walkthrough: tiered versions, int8 scans, compaction.

``examples/serving.py`` kept every published version resident in RAM;
this walkthrough runs the storage features a long-lived store scales
with (:mod:`repro.serving.storage`, [storage guide](../docs/guides/storage.md)):

1. publish a drifting version history into a **tiered**
   :class:`repro.serving.EmbeddingStore` (``store_dir=``) and watch
   cold versions spill to mmap-backed files;
2. page a cold version back in transparently, and ``pin`` one so it
   stays resident;
3. switch the service's candidate scan to the **int8** codec
   (``quantized="int8"``) and verify the returned scores are
   bit-identical to the exact backend's scores;
4. **compact** the history (``keep_head_n`` + ``keep_every_k``),
   observe tombstones and ``nearest=True`` degradation;
5. save and reload the store, tombstones and tiering intact.

Production runs the same knobs from the CLI::

    python -m repro serve --dataset elec-sim --store store.npz \\
        --store-dir tier/ --compact 2:4 --index exact --quantize int8

Usage::

    PYTHONPATH=src python examples/storage_tiering.py          # a few seconds
    PYTHONPATH=src python examples/storage_tiering.py --tiny   # CI smoke
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro import EmbeddingService, EmbeddingStore
from repro.serving import load_store, save_store


def drifting_history(store: EmbeddingStore, versions: int, *,
                     nodes: int, dim: int) -> None:
    """Publish ``versions`` snapshots of a slowly drifting embedding."""
    rng = np.random.default_rng(7)
    matrix = rng.standard_normal((nodes, dim)).astype(np.float32)
    ids = [f"n{i}" for i in range(nodes)]
    for step in range(versions):
        matrix = matrix + 0.02 * rng.standard_normal(matrix.shape).astype(
            np.float32
        )
        store.publish((ids, matrix), time_step=step)


def fmt_bytes(num: float) -> str:
    """Humanise a byte count."""
    for unit in ("B", "KB", "MB"):
        if num < 1024:
            return f"{num:.1f} {unit}"
        num /= 1024
    return f"{num:.1f} GB"


def main() -> None:
    tiny = "--tiny" in sys.argv[1:]
    versions = 6 if tiny else 10
    nodes = 400 if tiny else 2000
    dim = 16 if tiny else 64

    with tempfile.TemporaryDirectory() as tmp:
        tier_dir = Path(tmp) / "tier"

        # 1. A tiered store: only the head stays resident, every older
        #    version spills to a .npy + sidecar under store_dir.
        store = EmbeddingStore(store_dir=tier_dir, hot_versions=1)
        drifting_history(store, versions, nodes=nodes, dim=dim)
        info = store.storage_info()
        print(
            f"published {info['versions']} versions of {nodes}x{dim}: "
            f"{info['hot']} hot ({fmt_bytes(info['resident_bytes'])} "
            f"resident), {info['cold']} cold "
            f"({fmt_bytes(info['cold_bytes'])} on disk)"
        )
        all_ram = versions * nodes * dim * 4
        print(
            f"  an all-RAM store would hold {fmt_bytes(all_ram)} — "
            f"{all_ram / info['resident_bytes']:.1f}x more resident"
        )

        # 2. Cold reads page in transparently (np.load(mmap_mode='r')),
        #    and a pin materialises a version back to resident RAM.
        record = store.version(0)
        print(
            f"version 0 paged in from {tier_dir.name}/: "
            f"{type(record.matrix).__name__} of shape {record.matrix.shape}"
        )
        store.pin(0)
        print(
            f"pinned v0: hot={store.storage_info()['hot']} "
            f"(pins survive spill and compaction)"
        )
        store.unpin(0)

        # 3. Int8 candidate scans: approximate selection, exact scores.
        exact = EmbeddingService(store, backend="exact")
        quantized = EmbeddingService(store, backend="exact", quantized="int8")
        probe = "n0"
        answer = quantized.query_knn(probe, 5)
        assert answer == exact.query_knn(probe, 5)
        neighbours = ", ".join(f"{n}:{s:.3f}" for n, s in answer[:3])
        print(
            f"int8 kNN for {probe}: {neighbours}, ... — scores "
            "bit-identical to the exact scan (float32 rerank)"
        )

        # 4. Compaction: keep the head 2 plus every 4th; everything else
        #    becomes a tombstone — ids are never renumbered.
        removed = store.compact(keep_head_n=2, keep_every_k=4)
        print(
            f"compacted {len(removed)} versions -> tombstones "
            f"{store.tombstones}"
        )
        try:
            store.version(removed[0])
        except LookupError as error:
            print(f"  version {removed[0]} now raises: {error}")
        nearest = store.resolve_version(removed[0], nearest=True)
        print(f"  nearest=True degrades v{removed[0]} -> v{nearest}")

        # 5. Tombstones persist; a reload can re-tier into a new dir.
        saved = Path(tmp) / "store.npz"
        save_store(store, saved)
        reloaded = load_store(saved, store_dir=Path(tmp) / "tier2")
        assert reloaded.tombstones == store.tombstones
        head = reloaded.latest
        print(
            f"reloaded {saved.name}: {reloaded.storage_info()['live']} live "
            f"versions, head v{head.version} intact, tombstones preserved"
        )


if __name__ == "__main__":
    main()
