"""Bring your own data: KONECT-style edge streams through the pipeline.

The simulated datasets exist only because this environment is offline;
real KONECT/SNAP downloads use the exact same machinery. This example
writes a small edge stream to disk in the KONECT format, reads it back,
builds snapshots with the paper's §5.1.1 recipe (cut-off timestamps +
largest connected component), embeds it, and round-trips the snapshot
representation too.

Usage::

    python examples/custom_dataset.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import DynamicNetwork, GloDyNE
from repro.datasets import (
    read_edge_stream,
    write_edge_stream,
    read_snapshots,
    write_snapshots,
)
from repro.graph import EdgeEvent


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-example-"))

    # --- a hand-written interaction log: (user, user, unix-day) ---------
    events = [
        EdgeEvent("alice", "bob", 0),
        EdgeEvent("bob", "carol", 0),
        EdgeEvent("carol", "alice", 1),
        EdgeEvent("dave", "alice", 1),
        EdgeEvent("dave", "erin", 2),
        EdgeEvent("erin", "bob", 2),
        EdgeEvent("frank", "erin", 3),
        EdgeEvent("frank", "dave", 3),
        EdgeEvent("grace", "frank", 4),
        EdgeEvent("grace", "alice", 4),
    ]
    stream_path = workdir / "interactions.tsv"
    write_edge_stream(stream_path, events)
    print(f"wrote edge stream -> {stream_path}")

    # --- the paper's snapshot recipe ------------------------------------
    loaded = read_edge_stream(stream_path)
    network = DynamicNetwork.from_edge_stream(
        loaded,
        cutoffs=[0, 1, 2, 3, 4],   # daily cut-offs, inclusive
        name="hand-rolled",
        restrict_to_lcc=True,
    )
    for t, snapshot in enumerate(network):
        print(
            f"  G^{t}: {snapshot.number_of_nodes()} nodes, "
            f"{snapshot.number_of_edges()} edges"
        )

    # --- embed it --------------------------------------------------------
    model = GloDyNE(
        dim=8, alpha=0.5, num_walks=4, walk_length=8, window_size=3,
        epochs=3, seed=0,
    )
    embeddings = model.fit(network)
    final = embeddings[-1]
    print(f"\nfinal-step embeddings for {sorted(final)}")

    # --- snapshot-format round trip (AS733-style distribution) ----------
    snapshot_path = workdir / "snapshots.txt"
    write_snapshots(snapshot_path, network)
    back = read_snapshots(snapshot_path, name="reloaded")
    assert back.num_snapshots == network.num_snapshots
    assert back[-1].edge_set() == network[-1].edge_set()
    print(f"snapshot round-trip OK -> {snapshot_path}")


if __name__ == "__main__":
    main()
