"""Reproduce the paper's Figure 1 motivation on any dynamic network.

Two measurements justify GloDyNE's design (paper Section 1, Figure 1):

1. *proximity drift* — a handful of edge events moves the all-pairs
   shortest-path structure by a large amount (changes propagate through
   high-order proximity);
2. *inactive sub-networks* — partition cells that receive no change for
   many consecutive steps, which most-affected-node DNE methods never
   revisit.

Usage::

    python examples/inactive_analysis.py [dataset]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import load_dataset
from repro.analysis import (
    inactive_subnetworks,
    proximity_change_profile,
    summarize_network,
)
from repro.experiments import render_table


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "fbw-sim"
    network = load_dataset(dataset, scale=0.6, seed=1, snapshots=10)
    summary = summarize_network(network)
    print(
        f"{summary.name}: {summary.num_snapshots} snapshots, "
        f"{summary.final_nodes} nodes / {summary.final_edges} edges at T, "
        f"{summary.mean_changed_edges_per_step:.1f} changed edges per step"
    )

    # --- Figure 1 b-c: shortest-path drift per changed edge -------------
    rng = np.random.default_rng(0)
    profile = proximity_change_profile(network, max_sources=48, rng=rng)
    rows = [
        [
            str(t + 1),
            str(p.num_changed_edges),
            f"{p.total_change:.0f}",
            f"{p.change_per_edge:.1f}",
        ]
        for t, p in enumerate(profile)
    ]
    print()
    print(
        render_table(
            ["t", "changed edges", "Δsp total", "Δsp per edge"],
            rows,
            title="proximity drift between consecutive snapshots",
        )
    )

    # --- Figure 1 d-f: inactive sub-networks ----------------------------
    report = inactive_subnetworks(
        network, cell_size=15, min_streak=5, rng=rng
    )
    print(
        f"\npartitioned the largest snapshot into {report.num_cells} cells "
        f"(~15 nodes each);\n{report.cells_with_streak} cells "
        f"({report.inactive_fraction * 100:.0f}%) stayed changeless for "
        f">= {report.min_streak} consecutive steps:"
    )
    for length, count in sorted(report.streak_histogram.items()):
        bar = "#" * count
        print(f"  quiet {length:2d} steps | {bar} {count}")
    print(
        "\nThese quiet cells are exactly what most-affected-node DNE "
        "methods never refresh\n— and what GloDyNE's diverse selection "
        "revisits every step."
    )


if __name__ == "__main__":
    main()
