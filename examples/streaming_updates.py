"""Streaming usage: feed snapshots one at a time and watch per-step cost.

GloDyNE's streaming interface (``update``) is the deployment mode the
paper motivates — promptly refresh embeddings as each snapshot lands. The
example also inspects the internals exposed for observability: how many
nodes were selected, the pair-corpus size, and the reservoir occupancy
(accumulated-but-uncaptured topological change).

Usage::

    python examples/streaming_updates.py
"""

from __future__ import annotations

import time

from repro import GloDyNE, load_dataset
from repro.experiments import render_table
from repro.tasks import mean_precision_at_k


def main() -> None:
    network = load_dataset("fbw-sim", scale=0.6, seed=5, snapshots=10)
    model = GloDyNE(
        dim=32, alpha=0.1, num_walks=5, walk_length=20, window_size=5,
        epochs=2, seed=0,
    )

    rows = []
    for t, snapshot in enumerate(network):
        started = time.perf_counter()
        embeddings = model.update(snapshot)
        elapsed = time.perf_counter() - started
        precision = mean_precision_at_k(embeddings, snapshot, [10])[10]
        trace = model.last_trace
        rows.append(
            [
                str(t),
                str(snapshot.number_of_nodes()),
                str(trace.num_selected),
                str(trace.num_pairs),
                str(len(model.reservoir)),
                f"{precision:.3f}",
                f"{elapsed:.2f}s",
            ]
        )

    print(
        render_table(
            ["t", "nodes", "selected", "pairs", "reservoir", "P@10", "time"],
            rows,
            title="streaming GloDyNE on fbw-sim",
        )
    )
    print(
        "\nNote the t=0 row: the offline stage walks from every node, so\n"
        "it selects |V| nodes and costs the most; online steps only touch\n"
        "α·|V| representatives yet keep MeanP@10 high."
    )


if __name__ == "__main__":
    main()
