"""Streaming usage: snapshot-at-a-time updates vs event-level ingestion.

GloDyNE's streaming interface (``update``) is the deployment mode the
paper motivates — promptly refresh embeddings as each snapshot lands.
Part 1 feeds snapshots one at a time and watches per-step cost plus the
internals exposed for observability: how many nodes were selected, the
pair-corpus size, and the reservoir occupancy.

Part 2 drops below snapshots entirely: ``StreamingGloDyNE`` consumes the
raw edge-event stream, maintains the graph incrementally, and flushes an
embedding update every N events — no snapshot materialisation, no
full-graph diffing, and per-flush latency as a first-class metric.

Usage::

    python examples/streaming_updates.py          # a minute or so
    python examples/streaming_updates.py --tiny   # CI smoke: seconds
"""

from __future__ import annotations

import sys
import time

from repro import FlushPolicy, GloDyNE, StreamingGloDyNE, load_dataset
from repro.experiments import render_table
from repro.streaming import network_to_events
from repro.tasks import mean_precision_at_k


def _load_network():
    tiny = "--tiny" in sys.argv[1:]
    return load_dataset(
        "fbw-sim",
        scale=0.2 if tiny else 0.6,
        seed=5,
        snapshots=4 if tiny else 10,
    )


def snapshot_mode() -> None:
    network = _load_network()
    model = GloDyNE(
        dim=32, alpha=0.1, num_walks=5, walk_length=20, window_size=5,
        epochs=2, seed=0,
    )

    rows = []
    for t, snapshot in enumerate(network):
        started = time.perf_counter()
        embeddings = model.update(snapshot)
        elapsed = time.perf_counter() - started
        precision = mean_precision_at_k(embeddings, snapshot, [10])[10]
        trace = model.last_trace
        rows.append(
            [
                str(t),
                str(snapshot.number_of_nodes()),
                str(trace.num_selected),
                str(trace.num_pairs),
                str(len(model.reservoir)),
                f"{precision:.3f}",
                f"{elapsed:.2f}s",
            ]
        )

    print(
        render_table(
            ["t", "nodes", "selected", "pairs", "reservoir", "P@10", "time"],
            rows,
            title="part 1: snapshot-mode GloDyNE on fbw-sim",
        )
    )
    print(
        "\nNote the t=0 row: the offline stage walks from every node, so\n"
        "it selects |V| nodes and costs the most; online steps only touch\n"
        "α·|V| representatives yet keep MeanP@10 high.\n"
    )


def event_mode() -> None:
    # Re-express the same dataset as a raw edge-event stream and let the
    # engine decide when to refresh: here, every 400 events.
    network = _load_network()
    events = network_to_events(network)
    engine = StreamingGloDyNE(
        dim=32, alpha=0.1, num_walks=5, walk_length=20, window_size=5,
        epochs=2, seed=0, policy=FlushPolicy(max_events=400),
    )

    started = time.perf_counter()
    results = engine.ingest_many(events)
    if engine.pending_events:
        results.append(engine.flush())
    elapsed = time.perf_counter() - started

    rows = [
        [
            str(r.time_step),
            r.trigger,
            str(r.num_events),
            str(r.num_nodes),
            str(r.trace.num_selected),
            f"{r.seconds * 1e3:.0f}ms",
        ]
        for r in results
    ]
    print(
        render_table(
            ["flush", "trigger", "events", "nodes", "selected", "latency"],
            rows,
            title="part 2: event-level StreamingGloDyNE (flush per 400 events)",
        )
    )
    print(
        f"\n{len(events)} events ingested in {elapsed:.2f}s "
        f"({len(events) / max(elapsed, 1e-9):,.0f} events/sec end-to-end).\n"
        "Between flushes the engine only does O(degree) bookkeeping per\n"
        "event; the embedding refresh cadence is a policy knob (event\n"
        "count, wall-clock age, or accumulated change), not something a\n"
        "snapshot pipeline imposed upstream."
    )


def main() -> None:
    snapshot_mode()
    event_mode()


if __name__ == "__main__":
    main()
