"""Checkpointing: stop a long-running embedding stream and resume later.

A deployed DNE service cannot replay months of snapshots after a restart.
This example embeds the first half of a dynamic network, saves a
checkpoint, restores it in a "new process" (a fresh object), finishes the
stream, and verifies the resumed model's quality matches an uninterrupted
run.

Usage::

    python examples/checkpoint_resume.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import GloDyNE, load_dataset
from repro.core import load_checkpoint, save_checkpoint
from repro.tasks import mean_precision_at_k

KWARGS = dict(
    dim=32, alpha=0.1, num_walks=5, walk_length=20, window_size=5, epochs=2,
)


def main() -> None:
    network = load_dataset("elec-sim", scale=0.5, seed=9, snapshots=10)
    snapshots = list(network)
    half = len(snapshots) // 2
    checkpoint = Path(tempfile.mkdtemp(prefix="repro-ckpt-")) / "glodyne.npz"

    # --- phase 1: embed the first half, then checkpoint -----------------
    model = GloDyNE(**KWARGS, seed=0)
    for snapshot in snapshots[:half]:
        model.update(snapshot)
    save_checkpoint(model, checkpoint)
    print(
        f"checkpoint after t={model.time_step - 1} "
        f"({checkpoint.stat().st_size / 1024:.0f} KiB) -> {checkpoint}"
    )

    # --- phase 2: 'restart the service' and resume ----------------------
    resumed = load_checkpoint(checkpoint, seed=1)
    for snapshot in snapshots[half:]:
        embeddings = resumed.update(snapshot)
    resumed_score = mean_precision_at_k(embeddings, snapshots[-1], [10])[10]
    print(f"resumed run     final MeanP@10 = {resumed_score:.3f}")

    # --- reference: uninterrupted run ------------------------------------
    reference = GloDyNE(**KWARGS, seed=0)
    for snapshot in snapshots:
        reference_embeddings = reference.update(snapshot)
    reference_score = mean_precision_at_k(
        reference_embeddings, snapshots[-1], [10]
    )[10]
    print(f"uninterrupted   final MeanP@10 = {reference_score:.3f}")

    gap = abs(resumed_score - reference_score)
    print(f"quality gap: {gap:.3f} (different RNG streams; should be small)")


if __name__ == "__main__":
    main()
