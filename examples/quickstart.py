"""Quickstart: embed a dynamic network with GloDyNE and evaluate it.

Runs in a few seconds. Demonstrates the three core public APIs:

1. ``load_dataset`` — materialise a simulated dynamic network;
2. ``GloDyNE(...).fit`` — per-snapshot embeddings under the incremental
   learning paradigm (Algorithm 1 of the paper);
3. the graph-reconstruction task — the paper's probe for global topology
   preservation.

Usage::

    python examples/quickstart.py          # a few seconds
    python examples/quickstart.py --tiny   # CI smoke: <1s inputs
"""

from __future__ import annotations

import sys

import numpy as np

from repro import GloDyNE, load_dataset
from repro.tasks import (
    graph_reconstruction_over_time,
    link_prediction_over_time,
    mean_precision_at_k,
)


def main() -> None:
    tiny = "--tiny" in sys.argv[1:]
    # A simulated Wikipedia-election-style interaction network: ~200
    # nodes, 10 daily snapshots, bursty community-local edge additions.
    network = load_dataset(
        "elec-sim",
        scale=0.25 if tiny else 0.6,
        seed=42,
        snapshots=4 if tiny else 10,
    )
    print(f"dataset: {network.name}")
    print(f"  snapshots      : {network.num_snapshots}")
    print(f"  final nodes    : {network[-1].number_of_nodes()}")
    print(f"  final edges    : {network[-1].number_of_edges()}")

    # GloDyNE with a 10% node budget per step (the paper's default α).
    model = GloDyNE(
        dim=32,
        alpha=0.1,
        num_walks=5,
        walk_length=20,
        window_size=5,
        epochs=3,
        seed=0,
    )
    embeddings = model.fit(network)

    # How much of each snapshot's topology survives in the embedding?
    scores = graph_reconstruction_over_time(embeddings, network, ks=[1, 10, 40])
    print("\ngraph reconstruction (mean over snapshots):")
    for k, score in scores.items():
        print(f"  MeanP@{k:<3d} = {score:.3f}")

    # Can Z^t predict the edges of t+1?
    auc = link_prediction_over_time(
        embeddings, network, np.random.default_rng(0)
    )
    print(f"\nlink prediction AUC (mean over steps): {auc:.3f}")

    # Zoom into the final snapshot.
    final_scores = mean_precision_at_k(embeddings[-1], network[-1], ks=[10])
    print(f"final-snapshot MeanP@10: {final_scores[10]:.3f}")

    # The embeddings are plain numpy vectors keyed by node id:
    some_node = next(iter(embeddings[-1]))
    vector = embeddings[-1][some_node]
    print(f"\nembedding of node {some_node!r}: shape={vector.shape}, "
          f"norm={np.linalg.norm(vector):.3f}")


if __name__ == "__main__":
    main()
