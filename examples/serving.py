"""Serving walkthrough: stream -> versioned store -> kNN queries.

The streaming engine produces a fresh Z^t per flush; this example shows
the consumption side — the ``repro.serving`` subsystem:

1. ``StreamingGloDyNE(publish_to=store)`` publishes every flush as an
   immutable store *version* (float32, append-only);
2. ``EmbeddingService`` serves similar-node queries from an LSH index
   that refreshes **incrementally** — after a flush only the rows whose
   embeddings actually moved are re-hashed;
3. time-travel reads (``embed_at``) and link scoring (``score_edge``)
   work against any retained version;
4. with ``incremental_partition=True`` each flush also publishes its
   Step 1 partition cells, and ``backend="ivf"`` reuses them as the
   coarse quantizer of an IVF index (probe a few cells, scan exactly
   inside them).

Usage::

    python examples/serving.py          # a few seconds
    python examples/serving.py --tiny   # CI smoke
"""

from __future__ import annotations

import sys

from repro import (
    EmbeddingService,
    EmbeddingStore,
    FlushPolicy,
    StreamingGloDyNE,
    load_dataset,
)
from repro.experiments import render_table
from repro.streaming import network_to_events


def main() -> None:
    tiny = "--tiny" in sys.argv[1:]
    network = load_dataset(
        "elec-sim",
        scale=0.3 if tiny else 0.6,
        seed=7,
        snapshots=4 if tiny else 8,
    )
    events = network_to_events(network)

    # 1. Stream the events; every flush publishes a store version.
    store = EmbeddingStore()
    engine = StreamingGloDyNE(
        dim=32, alpha=0.1, num_walks=3, walk_length=12, window_size=4,
        epochs=2, seed=0, policy=FlushPolicy(max_events=150),
        publish_to=store, incremental_partition=True,
    )
    engine.ingest_many(events)
    if engine.pending_events:
        engine.flush()

    rows = [
        [
            str(r.version),
            str(r.time_step),
            str(r.num_nodes),
            r.metadata["trigger"],
            str(r.metadata["num_events"]),
        ]
        for r in store
    ]
    print(
        render_table(
            ["version", "step", "nodes", "trigger", "events"],
            rows,
            title=f"published versions ({len(events)} events streamed)",
        )
    )

    # 2. Serve kNN queries from the latest version via the LSH index.
    service = EmbeddingService(store, backend="lsh")
    node = store.latest.nodes[0]
    print(f"\nnodes most similar to {node!r} at the latest version:")
    for neighbor, score in service.query_knn(node, k=5):
        print(f"  {neighbor!r:>6}  cosine {score:.3f}")

    # Repeat queries hit the LRU cache (keyed on version/node/k).
    service.query_knn(node, k=5)
    info = service.cache_info
    print(f"cache: {info['hits']} hits / {info['misses']} misses")

    # 3. Time travel: the same node at the first published version.
    first = store.version(0)
    if node in first.row_of:
        then = service.query_knn(node, k=3, version=0)
        print("\nsame node at version 0 (time travel, exact scan):")
        for neighbor, score in then:
            print(f"  {neighbor!r:>6}  cosine {score:.3f}")

    # 4. Partition-aware IVF: online flushes publish their Step 1 cells
    # as version metadata, so the IVF index needs no clustering of its
    # own — the cells ARE the coarse quantizer. `nprobe` trades recall
    # for speed; `min_recall_fallback=1.0` would degrade to exact scan.
    ivf = EmbeddingService(store, backend="ivf")
    ivf.refresh()
    print(f"\nsame query through the partition-cell IVF index "
          f"({ivf.index!r}):")
    for neighbor, score in ivf.query_knn(node, k=5):
        print(f"  {neighbor!r:>6}  cosine {score:.3f}")

    # Link scoring — the quantity the Table 2 AUCs are computed from.
    u, v = store.latest.nodes[0], store.latest.nodes[1]
    print(
        f"\nscore_edge({u!r}, {v!r}): "
        f"cosine {service.score_edge(u, v):.3f}, "
        f"dot {service.score_edge(u, v, metric='dot'):.3f}"
    )


if __name__ == "__main__":
    main()
