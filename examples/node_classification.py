"""Node classification on a labelled citation network (paper §5.2.3).

Embeds a simulated Cora-style growing citation network with GloDyNE, then
trains a one-vs-rest logistic regression on the node embeddings at each
time step and reports micro/macro F1 for several train ratios — the
structure of the paper's Table 3.

Usage::

    python examples/node_classification.py
"""

from __future__ import annotations

import numpy as np

from repro import GloDyNE, SGNSStatic, load_dataset
from repro.experiments import render_table
from repro.tasks import node_classification_over_time


def main() -> None:
    network = load_dataset("cora-sim", scale=0.6, seed=3, snapshots=8)
    num_labels = len(set(network.labels.values()))
    print(f"{network!r}")
    print(f"labelled nodes: {len(network.labels)}, classes: {num_labels}\n")

    methods = {
        "GloDyNE": GloDyNE(
            dim=32, alpha=0.1, num_walks=5, walk_length=20,
            window_size=5, epochs=3, seed=0,
        ),
        "SGNS-static": SGNSStatic(
            dim=32, num_walks=5, walk_length=20, window_size=5,
            epochs=3, seed=0,
        ),
    }

    rng = np.random.default_rng(0)
    rows = []
    for name, method in methods.items():
        embeddings = method.fit(network)
        for ratio in (0.5, 0.7, 0.9):
            scores = node_classification_over_time(
                embeddings, network, train_ratio=ratio, rng=rng,
                min_labeled=20,
            )
            rows.append(
                [
                    name,
                    f"{ratio:.1f}",
                    f"{scores.micro_f1:.3f}",
                    f"{scores.macro_f1:.3f}",
                ]
            )

    print(
        render_table(
            ["method", "train ratio", "micro-F1", "macro-F1"],
            rows,
            title="node classification on cora-sim",
        )
    )
    print(
        "\nExpected shape: GloDyNE clearly above SGNS-static — stale\n"
        "t=0 embeddings lose track of nodes that arrive later."
    )


if __name__ == "__main__":
    main()
