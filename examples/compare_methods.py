"""Compare GloDyNE against the paper's baselines on one dataset.

Reproduces, at example scale, the flavour of Tables 1/2/4: every method
embeds the same dynamic network; we report graph-reconstruction MeanP@10,
link-prediction AUC, and wall-clock seconds side by side.

Usage::

    python examples/compare_methods.py [dataset]

where ``dataset`` defaults to ``elec-sim`` (try ``as733-sim`` to see the
n/a behaviour of DynLINE/tNE under node deletions).
"""

from __future__ import annotations

import sys

import numpy as np

from repro import (
    BCGDGlobal,
    BCGDLocal,
    DynGEM,
    DynLINE,
    DynTriad,
    GloDyNE,
    SGNSRetrain,
    TNE,
    load_dataset,
)
from repro.experiments import render_table, run_method
from repro.tasks import (
    graph_reconstruction_over_time,
    link_prediction_over_time,
)

WALK_KWARGS = dict(num_walks=4, walk_length=15, window_size=4, epochs=2)


def build_methods(seed: int) -> list:
    return [
        GloDyNE(dim=32, alpha=0.1, seed=seed, **WALK_KWARGS),
        SGNSRetrain(dim=32, seed=seed, **WALK_KWARGS),
        BCGDGlobal(dim=32, iterations=40, cycles=1, seed=seed),
        BCGDLocal(dim=32, iterations=40, seed=seed),
        DynGEM(dim=32, hidden_dim=64, epochs=15, warm_epochs=6, seed=seed),
        DynLINE(dim=32, epochs=3, seed=seed),
        DynTriad(dim=32, epochs=2, seed=seed),
        TNE(dim=32, seed=seed, **WALK_KWARGS),
    ]


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "elec-sim"
    network = load_dataset(dataset, scale=0.5, seed=1, snapshots=8)
    print(f"{network!r}\n")

    rows = []
    for method in build_methods(seed=0):
        result = run_method(method, network)
        if not result.ok:
            rows.append([method.name, "n/a", "n/a", "n/a"])
            continue
        gr = graph_reconstruction_over_time(result.embeddings, network, [10])
        lp = link_prediction_over_time(
            result.embeddings, network, np.random.default_rng(0)
        )
        rows.append(
            [
                method.name,
                f"{gr[10]:.3f}",
                f"{lp:.3f}",
                f"{result.total_seconds:.2f}s",
            ]
        )

    print(
        render_table(
            ["method", "GR MeanP@10", "LP AUC", "embed time"],
            rows,
            title=f"method comparison on {dataset}",
        )
    )


if __name__ == "__main__":
    main()
