"""Cross-cutting property-based tests (hypothesis) on system invariants.

These complement the per-module suites with randomised end-to-end
invariants: things that must hold for *any* input the generators produce.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import GloDyNE, Reservoir
from repro.core.selection import SelectionContext, select_s4, select_s4_uniform
from repro.datasets import preferential_attachment_graph
from repro.graph import DynamicNetwork, EdgeEvent
from repro.partition import partition_graph
from repro.partition.level import edge_cut, level_graph_from_csr
from repro.graph.csr import CSRAdjacency


@settings(max_examples=15, deadline=None)
@given(
    num_events=st.integers(min_value=3, max_value=60),
    num_snapshots=st.integers(min_value=2, max_value=6),
    seed=st.integers(min_value=0, max_value=500),
)
def test_add_only_stream_snapshots_monotone(num_events, num_snapshots, seed):
    """Property: for an addition-only stream without LCC restriction, each
    snapshot's edge set contains the previous one's."""
    rng = np.random.default_rng(seed)
    events = []
    for i in range(num_events):
        u, v = rng.integers(0, 15, size=2)
        if u != v:
            events.append(EdgeEvent(int(u), int(v), float(i)))
    if not events:
        return
    network = DynamicNetwork.from_equal_width_stream(
        events, num_snapshots=num_snapshots, restrict_to_lcc=False
    )
    for earlier, later in zip(network, list(network)[1:]):
        assert earlier.edge_set() <= later.edge_set()


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(min_value=8, max_value=60),
    k=st.integers(min_value=2, max_value=8),
    seed=st.integers(min_value=0, max_value=500),
)
def test_edge_cut_bounded_by_total_weight(n, k, seed):
    """Property: a partition's edge cut never exceeds the total edge
    weight, and equals zero iff no edge crosses cells."""
    rng = np.random.default_rng(seed)
    graph = preferential_attachment_graph(n, 2, rng)
    k = min(k, graph.number_of_nodes())
    result = partition_graph(graph, k=k, rng=rng)
    assert 0.0 <= result.edge_cut <= graph.total_edge_weight()

    level = level_graph_from_csr(CSRAdjacency.from_graph(graph))
    csr = CSRAdjacency.from_graph(graph)
    assignment = np.array(
        [result.assignment[csr.nodes[i]] for i in range(csr.num_nodes)]
    )
    crossing = any(
        result.assignment[u] != result.assignment[v] for u, v in graph.edges()
    )
    assert (edge_cut(level, assignment) > 0) == crossing


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=200))
def test_s4_selection_is_partition_diverse(seed):
    """Property: S4 (and its uniform ablation) return distinct nodes, one
    per cell, all inside the snapshot."""
    rng = np.random.default_rng(seed)
    graph = preferential_attachment_graph(40, 2, rng)
    context = SelectionContext(graph, None, Reservoir(), rng)
    for strategy in (select_s4, select_s4_uniform):
        picks = strategy(context, count=6)
        assert len(picks) == len(set(picks)) == 6
        assert all(graph.has_node(p) for p in picks)


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100))
def test_glodyne_embeddings_always_finite(seed):
    """Property: embeddings stay finite across arbitrary small dynamic
    networks (no NaN/inf from the SGD under any seed)."""
    rng = np.random.default_rng(seed)
    snapshots = []
    graph = preferential_attachment_graph(20, 2, rng)
    snapshots.append(graph.copy())
    for _ in range(2):
        graph = graph.copy()
        u, v = rng.integers(0, 20, size=2)
        if u != v:
            graph.add_edge(int(u), int(v))
        snapshots.append(graph.copy())
    network = DynamicNetwork(snapshots)
    model = GloDyNE(
        dim=8, alpha=0.3, num_walks=2, walk_length=8, window_size=2,
        epochs=1, seed=seed,
    )
    for embeddings in model.fit(network):
        matrix = np.stack(list(embeddings.values()))
        assert np.isfinite(matrix).all()


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=300),
    remove=st.integers(min_value=0, max_value=3),
)
def test_reservoir_never_negative_and_prunes(seed, remove):
    """Property: reservoir values are positive, and pruning to the current
    node set leaves no dead entries."""
    rng = np.random.default_rng(seed)
    g0 = preferential_attachment_graph(15, 2, rng)
    g1 = g0.copy()
    for _ in range(remove):
        nodes = sorted(g1.nodes())
        victim = nodes[int(rng.integers(0, len(nodes)))]
        if g1.number_of_nodes() > 5:
            g1.remove_node(victim)
    from repro.graph import diff_snapshots

    reservoir = Reservoir()
    reservoir.accumulate(diff_snapshots(g0, g1).node_changes)
    reservoir.prune(g1.node_set())
    for node in reservoir.nodes():
        assert reservoir.get(node) > 0
        assert g1.has_node(node)
