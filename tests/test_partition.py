"""Unit + property tests for the multilevel partitioner (METIS substitute)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import preferential_attachment_graph
from repro.graph import CSRAdjacency, Graph
from repro.partition import partition_graph, validate_partition
from repro.partition.level import (
    cell_weights,
    edge_cut,
    level_graph_from_csr,
)
from repro.partition.matching import (
    heavy_edge_matching,
    matching_to_coarse_map,
)
from repro.partition.coarsen import build_coarse_graph


class TestLevelGraph:
    def test_from_csr_strips_self_loops(self):
        graph = Graph.from_edges([(0, 0), (0, 1)])
        level = level_graph_from_csr(CSRAdjacency.from_graph(graph))
        assert level.indices.size == 2  # only (0,1) both directions

    def test_edge_cut_two_cliques(self, two_cliques):
        level = level_graph_from_csr(CSRAdjacency.from_graph(two_cliques))
        csr = CSRAdjacency.from_graph(two_cliques)
        assignment = np.array(
            [0 if csr.nodes[i] < 4 else 1 for i in range(csr.num_nodes)]
        )
        assert edge_cut(level, assignment) == 1.0  # only the bridge

    def test_cell_weights(self, triangle):
        level = level_graph_from_csr(CSRAdjacency.from_graph(triangle))
        weights = cell_weights(level, np.array([0, 0, 1]), k=2)
        assert list(weights) == [2, 1]


class TestMatching:
    def test_matching_is_symmetric(self, karate_like, rng):
        level = level_graph_from_csr(CSRAdjacency.from_graph(karate_like))
        match = heavy_edge_matching(level, rng, max_vweight=10)
        for u, partner in enumerate(match):
            assert match[partner] == u  # involution

    def test_matched_pairs_are_adjacent(self, karate_like, rng):
        level = level_graph_from_csr(CSRAdjacency.from_graph(karate_like))
        match = heavy_edge_matching(level, rng, max_vweight=10)
        for u, partner in enumerate(match):
            if partner != u:
                assert partner in level.neighbors(u)

    def test_coarse_map_covers_all(self, karate_like, rng):
        level = level_graph_from_csr(CSRAdjacency.from_graph(karate_like))
        match = heavy_edge_matching(level, rng, max_vweight=10)
        coarse_of, num_coarse = matching_to_coarse_map(match)
        assert coarse_of.min() >= 0
        assert coarse_of.max() == num_coarse - 1
        assert set(coarse_of.tolist()) == set(range(num_coarse))

    def test_coarse_graph_preserves_total_weight(self, karate_like, rng):
        level = level_graph_from_csr(CSRAdjacency.from_graph(karate_like))
        match = heavy_edge_matching(level, rng, max_vweight=10)
        coarse_of, num_coarse = matching_to_coarse_map(match)
        coarse = build_coarse_graph(level, coarse_of, num_coarse)
        assert coarse.total_vweight == level.total_vweight
        # Edge weight conservation: coarse edges = fine edges minus the
        # weights hidden inside collapsed vertices.
        hidden = 0.0
        n = level.num_nodes
        for u in range(n):
            for v, w in zip(level.neighbors(u), level.neighbor_eweights(u)):
                if coarse_of[u] == coarse_of[v]:
                    hidden += w
        assert coarse.eweights.sum() == pytest.approx(
            level.eweights.sum() - hidden
        )


class TestPartitionGraph:
    def test_two_cliques_natural_cut(self, two_cliques):
        result = partition_graph(
            two_cliques, k=2, rng=np.random.default_rng(0)
        )
        assert validate_partition(result, two_cliques) == []
        assert result.edge_cut == 1.0  # only the bridge is cut
        cells = [set(c) for c in result.cells]
        assert {0, 1, 2, 3} in cells
        assert {4, 5, 6, 7} in cells

    def test_k_equals_one(self, two_cliques):
        result = partition_graph(two_cliques, k=1)
        assert result.k == 1
        assert len(result.cells[0]) == 8
        assert result.edge_cut == 0.0

    def test_k_equals_n(self, triangle):
        result = partition_graph(triangle, k=3)
        assert all(len(cell) == 1 for cell in result.cells)

    def test_k_clamped_to_n(self, triangle):
        result = partition_graph(triangle, k=50)
        assert result.k == 3

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            partition_graph(Graph(), k=2)

    def test_negative_eps_rejected(self, triangle):
        with pytest.raises(ValueError):
            partition_graph(triangle, k=2, eps=-0.1)

    def test_balance_constraint_eq2(self, karate_like):
        """Eq. (2): |V_k| <= (1 + eps) |V| / K."""
        n = karate_like.number_of_nodes()
        for k in (2, 4, 8):
            result = partition_graph(
                karate_like, k=k, eps=0.1, rng=np.random.default_rng(1)
            )
            ceiling = np.ceil((1 + 0.1) * n / k)
            assert max(result.cell_sizes) <= ceiling

    def test_cover_and_disjoint(self, karate_like):
        result = partition_graph(
            karate_like, k=5, rng=np.random.default_rng(2)
        )
        union: set = set()
        total = 0
        for cell in result.cells:
            total += len(cell)
            union.update(cell)
        assert union == karate_like.node_set()
        assert total == karate_like.number_of_nodes()

    def test_assignment_matches_cells(self, karate_like):
        result = partition_graph(
            karate_like, k=4, rng=np.random.default_rng(3)
        )
        for j, cell in enumerate(result.cells):
            for node in cell:
                assert result.assignment[node] == j

    def test_disconnected_graph(self):
        graph = Graph.from_edges([(0, 1), (1, 2), (10, 11), (11, 12)])
        result = partition_graph(graph, k=2, rng=np.random.default_rng(0))
        assert validate_partition(result, graph) == []

    def test_deterministic_given_seed(self, karate_like):
        a = partition_graph(karate_like, k=5, rng=np.random.default_rng(9))
        b = partition_graph(karate_like, k=5, rng=np.random.default_rng(9))
        assert a.assignment == b.assignment

    def test_large_k_small_cells(self):
        graph = preferential_attachment_graph(200, 2, np.random.default_rng(0))
        k = 20
        result = partition_graph(graph, k=k, rng=np.random.default_rng(0))
        assert validate_partition(result, graph) == []
        assert len(result.cells) == k
        assert min(result.cell_sizes) >= 1

    def test_prebuilt_csr_fast_path_is_bit_identical(self, karate_like):
        """`csr=` must not change results — it only skips the rebuild."""
        csr = CSRAdjacency.from_graph(karate_like)
        rebuilt = partition_graph(
            karate_like, k=5, rng=np.random.default_rng(7)
        )
        fast = partition_graph(
            karate_like, k=5, rng=np.random.default_rng(7), csr=csr
        )
        assert fast.assignment == rebuilt.assignment
        assert fast.edge_cut == rebuilt.edge_cut

    def test_csr_alone_suffices(self, karate_like):
        csr = CSRAdjacency.from_graph(karate_like)
        result = partition_graph(
            None, k=4, rng=np.random.default_rng(1), csr=csr
        )
        assert validate_partition(result, karate_like) == []

    def test_neither_graph_nor_csr_rejected(self):
        with pytest.raises(ValueError):
            partition_graph(None, k=2)

    def test_cut_beats_random_assignment(self, karate_like):
        """The partitioner must clearly beat a random balanced assignment."""
        rng = np.random.default_rng(4)
        result = partition_graph(karate_like, k=2, rng=rng)
        csr = CSRAdjacency.from_graph(karate_like)
        level = level_graph_from_csr(csr)
        random_cuts = []
        for _ in range(10):
            assignment = rng.permutation(
                np.arange(csr.num_nodes) % 2
            )
            random_cuts.append(edge_cut(level, assignment))
        assert result.edge_cut < np.mean(random_cuts)


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=6, max_value=80),
    k=st.integers(min_value=1, max_value=10),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_partition_invariants_property(n, k, seed):
    """Property: any (n, k) yields a covering, disjoint, non-empty,
    Eq. (2)-balanced partition."""
    rng = np.random.default_rng(seed)
    graph = preferential_attachment_graph(n, 2, rng)
    k = min(k, graph.number_of_nodes())
    result = partition_graph(graph, k=k, eps=0.1, rng=rng)
    assert validate_partition(result, graph) == []
