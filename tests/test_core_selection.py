"""Unit tests for node-selection strategies S1-S4 (Table 5 machinery)."""

from __future__ import annotations

import numpy as np
import pytest

import repro.core.selection as selection_module
from repro.core import Reservoir
from repro.core.selection import (
    SelectionContext,
    get_strategy,
    select_s1,
    select_s2,
    select_s3,
    select_s4,
    select_s4_uniform,
)
from repro.graph import CSRAdjacency
from repro.partition import partition_graph


@pytest.fixture
def context(karate_like, rng) -> SelectionContext:
    reservoir = Reservoir()
    reservoir.accumulate({0: 3, 1: 2, 20: 5})
    return SelectionContext(
        snapshot=karate_like,
        previous=karate_like.copy(),
        reservoir=reservoir,
        rng=rng,
    )


class TestS1:
    def test_draws_from_reservoir_only(self, context):
        picks = select_s1(context, count=50)
        assert set(picks) <= {0, 1, 20}
        assert len(picks) == 50  # with replacement: duplicates allowed

    def test_empty_reservoir_falls_back_to_uniform(self, karate_like, rng):
        context = SelectionContext(karate_like, None, Reservoir(), rng)
        picks = select_s1(context, count=10)
        assert len(picks) == 10
        assert len(set(picks)) == 10  # the S3 fallback is w/o replacement

    def test_ignores_dead_reservoir_nodes(self, karate_like, rng):
        reservoir = Reservoir()
        reservoir.accumulate({"ghost": 9, 0: 1})
        context = SelectionContext(karate_like, None, reservoir, rng)
        picks = select_s1(context, count=20)
        assert "ghost" not in picks


class TestS2:
    def test_without_replacement_from_reservoir(self, context):
        picks = select_s2(context, count=3)
        assert sorted(picks) == [0, 1, 20]

    def test_tops_up_from_snapshot(self, context):
        picks = select_s2(context, count=10)
        assert len(picks) == 10
        assert len(set(picks)) == 10
        assert {0, 1, 20} <= set(picks)

    def test_count_capped_at_population(self, context):
        n = context.snapshot.number_of_nodes()
        picks = select_s2(context, count=n + 50)
        assert len(picks) == n


class TestS3:
    def test_uniform_without_replacement(self, context):
        picks = select_s3(context, count=15)
        assert len(picks) == len(set(picks)) == 15

    def test_all_nodes_when_count_exceeds(self, context):
        n = context.snapshot.number_of_nodes()
        picks = select_s3(context, count=n + 10)
        assert len(picks) == n


class TestS4:
    def test_one_per_cell(self, context):
        picks = select_s4(context, count=8)
        assert len(picks) == 8
        assert len(set(picks)) == 8  # cells are disjoint => picks distinct

    def test_diversity_across_partition(self, context):
        """S4's guarantee: picks land in distinct partition cells."""
        count = 8
        picks = select_s4(context, count=count)
        partition = partition_graph(
            context.snapshot, k=count, rng=np.random.default_rng(0)
        )
        # Rebuilding the partition with another seed differs, so check the
        # weaker structural property: no more picks than cells and spread
        # across both communities of the fixture.
        communities = {0: 0, 1: 0}
        for pick in picks:
            communities[0 if pick < 20 else 1] += 1
        assert communities[0] >= 2 and communities[1] >= 2
        assert partition.k == count

    def test_bias_toward_changed_nodes(self, karate_like, rng):
        """Within a cell, the changed node should win most draws."""
        reservoir = Reservoir()
        reservoir.accumulate({7: 50.0})
        wins = 0
        for trial in range(20):
            context = SelectionContext(
                karate_like,
                karate_like.copy(),
                reservoir,
                np.random.default_rng(trial),
            )
            if 7 in select_s4(context, count=4):
                wins += 1
        assert wins >= 18

    def test_single_cell(self, context):
        picks = select_s4(context, count=1)
        assert len(picks) == 1


class TestS4PartitionPlumbing:
    """Regression suite for the (previously dead) eps knob and the
    prebuilt-partition / shared-CSR fast paths."""

    @pytest.fixture
    def eps_spy(self, monkeypatch):
        captured = {}
        real = selection_module.partition_graph

        def spy(graph, k, eps=0.10, rng=None, csr=None, **kwargs):
            captured["eps"] = eps
            captured["csr"] = csr
            return real(graph, k, eps=eps, rng=rng, csr=csr, **kwargs)

        monkeypatch.setattr(selection_module, "partition_graph", spy)
        return captured

    def test_context_eps_reaches_the_partitioner(self, context, eps_spy):
        """The GloDyNEConfig.partition_eps knob was silently dead: the
        strategy call passed no eps so the 0.10 default always won."""
        context.partition_eps = 0.37
        select_s4(context, count=4)
        assert eps_spy["eps"] == 0.37

    def test_default_eps_without_context_value(self, context, eps_spy):
        select_s4(context, count=4)
        assert eps_spy["eps"] == 0.10

    def test_explicit_eps_argument_wins(self, context, eps_spy):
        context.partition_eps = 0.37
        select_s4(context, count=4, eps=0.8)
        assert eps_spy["eps"] == 0.8

    def test_s4_uniform_threads_eps_too(self, context, eps_spy):
        context.partition_eps = 0.42
        select_s4_uniform(context, count=4)
        assert eps_spy["eps"] == 0.42

    def test_nondefault_eps_changes_the_ceiling_used(self, context):
        """Pin the bugfix end to end: a different eps yields a partition
        whose Eq. (2) ceiling — hence max cell size — actually differs."""
        n = context.snapshot.number_of_nodes()
        tight = partition_graph(
            context.snapshot, k=3, eps=0.0, rng=np.random.default_rng(0)
        )
        loose = partition_graph(
            context.snapshot, k=3, eps=1.0, rng=np.random.default_rng(0)
        )
        assert max(tight.cell_sizes) <= np.ceil(n / 3)
        assert max(loose.cell_sizes) <= np.ceil(2.0 * n / 3)
        assert tight.eps != loose.eps

    def test_context_csr_is_reused(self, context, eps_spy):
        context.csr = CSRAdjacency.from_graph(context.snapshot)
        select_s4(context, count=4)
        assert eps_spy["csr"] is context.csr

    def test_prebuilt_partition_short_circuits(self, context, monkeypatch):
        prebuilt = partition_graph(
            context.snapshot, k=4, rng=np.random.default_rng(5)
        )
        context.partition = prebuilt

        def explode(*args, **kwargs):  # pragma: no cover - guard
            raise AssertionError("partition_graph must not be called")

        monkeypatch.setattr(selection_module, "partition_graph", explode)
        picks = select_s4(context, count=4)
        assert len(picks) == 4
        cells = {context.partition.assignment[p] for p in picks}
        assert len(cells) == 4  # one pick per prebuilt cell

    def test_prebuilt_partition_with_wrong_k_is_ignored(
        self, context, eps_spy
    ):
        context.partition = partition_graph(
            context.snapshot, k=3, rng=np.random.default_rng(5)
        )
        picks = select_s4(context, count=6)
        assert len(picks) == 6
        assert "eps" in eps_spy  # fell through to a fresh partition


class TestRegistry:
    def test_lookup(self):
        assert get_strategy("s4") is select_s4
        assert get_strategy("S1") is select_s1

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            get_strategy("s9")
