"""Tests for the six comparison baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.base import UnsupportedDynamicsError
from repro.baselines import (
    BCGDGlobal,
    BCGDLocal,
    DynGEM,
    DynLINE,
    DynTriad,
    TNE,
    orthogonal_procrustes_align,
)
from repro.tasks import mean_precision_at_k


def all_baselines(seed: int = 0) -> list:
    return [
        BCGDGlobal(dim=16, iterations=40, seed=seed),
        BCGDLocal(dim=16, iterations=40, seed=seed),
        DynGEM(dim=16, hidden_dim=32, epochs=15, warm_epochs=5, seed=seed),
        DynLINE(dim=16, epochs=3, seed=seed),
        DynTriad(dim=16, epochs=3, seed=seed),
        TNE(dim=16, num_walks=3, walk_length=10, window_size=3, epochs=2,
            seed=seed),
    ]


class TestCommonContract:
    @pytest.mark.parametrize("method", all_baselines(), ids=lambda m: m.name)
    def test_covers_snapshot_nodes(self, method, tiny_network):
        embeddings = method.fit(tiny_network)
        assert len(embeddings) == tiny_network.num_snapshots
        for step, snapshot in zip(embeddings, tiny_network):
            assert set(step) == snapshot.node_set()

    @pytest.mark.parametrize("method", all_baselines(), ids=lambda m: m.name)
    def test_embedding_dimension(self, method, tiny_network):
        embeddings = method.update(tiny_network[0])
        assert all(vec.shape == (16,) for vec in embeddings.values())

    @pytest.mark.parametrize("method", all_baselines(), ids=lambda m: m.name)
    def test_reset_allows_reuse(self, method, tiny_network):
        method.fit(tiny_network)
        method.reset()
        embeddings = method.update(tiny_network[0])
        assert set(embeddings) == tiny_network[0].node_set()


class TestDeletionSupport:
    def test_dynline_rejects_deletions(self, churn_network):
        method = DynLINE(dim=8, seed=0)
        with pytest.raises(UnsupportedDynamicsError):
            method.fit(churn_network)

    def test_tne_rejects_deletions(self, churn_network):
        method = TNE(dim=8, num_walks=2, walk_length=8, window_size=2,
                     epochs=1, seed=0)
        with pytest.raises(UnsupportedDynamicsError):
            method.fit(churn_network)

    @pytest.mark.parametrize(
        "method",
        [
            BCGDGlobal(dim=8, iterations=10, seed=0),
            BCGDLocal(dim=8, iterations=10, seed=0),
            DynGEM(dim=8, hidden_dim=16, epochs=5, warm_epochs=2, seed=0),
            DynTriad(dim=8, epochs=1, seed=0),
        ],
        ids=lambda m: m.name,
    )
    def test_others_accept_deletions(self, method, churn_network):
        embeddings = method.fit(churn_network)
        assert len(embeddings) == churn_network.num_snapshots


class TestBCGD:
    def test_local_reconstructs_structure(self, two_cliques):
        from repro.graph import DynamicNetwork

        network = DynamicNetwork([two_cliques])
        method = BCGDLocal(dim=8, iterations=150, lr=0.05, seed=0)
        embeddings = method.fit(network)[0]
        scores = mean_precision_at_k(embeddings, two_cliques, [3])
        assert scores[3] > 0.7

    def test_local_temporal_warm_start(self, tiny_network):
        method = BCGDLocal(dim=8, iterations=30, seed=0)
        first = method.update(tiny_network[0])
        second = method.update(tiny_network[1])
        common = list(
            tiny_network[0].node_set() & tiny_network[1].node_set()
        )
        cosines = [
            first[n] @ second[n]
            / (np.linalg.norm(first[n]) * np.linalg.norm(second[n]) + 1e-12)
            for n in common
        ]
        assert np.mean(cosines) > 0.5  # regularised toward previous step

    def test_global_keeps_history(self, tiny_network):
        method = BCGDGlobal(dim=8, iterations=20, cycles=1, seed=0)
        method.update(tiny_network[0])
        method.update(tiny_network[1])
        assert len(method.history) == 2
        assert len(method.z_history) == 2


class TestDynGEM:
    def test_autoencoder_loss_decreases(self, karate_like, rng):
        from repro.baselines.dyngem import _AutoEncoder
        from repro.ml.optim import Adam
        from repro.graph import CSRAdjacency

        dense = CSRAdjacency.from_graph(karate_like).adjacency_dense()
        model = _AutoEncoder(dense.shape[0], 32, 8, rng)
        optimizer = Adam(lr=1e-3)
        first = model.train_batch(dense, beta=5.0, optimizer=optimizer, l2=0.0)
        for _ in range(200):
            last = model.train_batch(dense, 5.0, optimizer, 0.0)
        assert last < first * 0.5

    def test_widening_preserves_old_weights(self, rng):
        from repro.baselines.dyngem import _AutoEncoder

        model = _AutoEncoder(10, 8, 4, rng)
        w1_before = model.w1.copy()
        model.widen(15)
        assert model.w1.shape == (15, 8)
        np.testing.assert_array_equal(model.w1[:10], w1_before)
        assert model.w4.shape == (8, 15)

    def test_embeddings_reflect_communities(self, two_cliques):
        from repro.graph import DynamicNetwork

        network = DynamicNetwork([two_cliques])
        method = DynGEM(
            dim=4, hidden_dim=16, epochs=150, batch_size=8, seed=0
        )
        embeddings = method.fit(network)[0]
        a = np.mean([embeddings[n] for n in range(4)], axis=0)
        b = np.mean([embeddings[n] for n in range(4, 8)], axis=0)
        within_a = np.mean(
            [np.linalg.norm(embeddings[n] - a) for n in range(4)]
        )
        between = np.linalg.norm(a - b)
        assert between > within_a


class TestDynLINE:
    def test_quiet_step_is_cheap_noop(self, triangle):
        method = DynLINE(dim=8, seed=0)
        first = method.update(triangle)
        second = method.update(triangle.copy())  # identical snapshot
        for node in triangle.nodes():
            np.testing.assert_array_equal(first[node], second[node])

    def test_only_affected_nodes_move(self, karate_like):
        method = DynLINE(dim=8, epochs=2, seed=0)
        first = method.update(karate_like)
        changed = karate_like.copy()
        changed.add_edge(0, 30)  # touches nodes 0 and 30 only
        second = method.update(changed)
        # Nodes far from the change with no corpus membership stay put.
        far_nodes = [
            n for n in karate_like.nodes()
            if n not in (0, 30)
            and not changed.has_edge(n, 0)
            and not changed.has_edge(n, 30)
        ]
        unmoved = sum(
            np.allclose(first[n], second[n]) for n in far_nodes
        )
        assert unmoved == len(far_nodes)


class TestDynTriad:
    def test_open_triad_sampling(self, rng):
        from repro.baselines.dyntriad import _sample_open_triads
        from repro.graph import Graph

        # Path 0-1-2: the only open triad is (0, 2) centred at 1.
        path = Graph.from_edges([(0, 1), (1, 2)])
        nodes = list(path.nodes())
        index_of = {n: i for i, n in enumerate(nodes)}
        pairs = _sample_open_triads(path, nodes, index_of, 5, rng)
        assert pairs  # found at least one
        for a, b in pairs:
            assert {nodes[a], nodes[b]} == {0, 2}

    def test_smoothness_pulls_toward_previous(self, tiny_network):
        strong = DynTriad(dim=8, epochs=2, smoothness=0.9, seed=0)
        weak = DynTriad(dim=8, epochs=2, smoothness=0.0, seed=0)
        for method in (strong, weak):
            method.update(tiny_network[0])
        prev_strong = {n: v.copy() for n, v in strong.memory.items()}
        prev_weak = {n: v.copy() for n, v in weak.memory.items()}
        second_strong = strong.update(tiny_network[1])
        second_weak = weak.update(tiny_network[1])
        common = [
            n for n in tiny_network[0].nodes() if n in second_strong
        ]
        drift_strong = np.mean(
            [np.linalg.norm(second_strong[n] - prev_strong[n]) for n in common]
        )
        drift_weak = np.mean(
            [np.linalg.norm(second_weak[n] - prev_weak[n]) for n in common]
        )
        assert drift_strong < drift_weak


class TestTNE:
    def test_procrustes_align_recovers_rotation(self, rng):
        source = rng.normal(size=(30, 6))
        random_matrix = rng.normal(size=(6, 6))
        q, _ = np.linalg.qr(random_matrix)
        target = source @ q
        rotation = orthogonal_procrustes_align(source, target)
        np.testing.assert_allclose(source @ rotation, target, atol=1e-8)

    def test_alignment_keeps_trajectory_smooth(self, tiny_network):
        aligned = TNE(dim=8, num_walks=3, walk_length=10, window_size=3,
                      epochs=2, decay=0.5, seed=0)
        first = aligned.update(tiny_network[0])
        second = aligned.update(tiny_network[1])
        common = list(tiny_network[0].node_set() & tiny_network[1].node_set())
        cosines = [
            first[n] @ second[n]
            / (np.linalg.norm(first[n]) * np.linalg.norm(second[n]) + 1e-12)
            for n in common
        ]
        assert np.mean(cosines) > 0.3

    def test_bad_decay_rejected(self):
        with pytest.raises(ValueError):
            TNE(decay=1.0)
