"""Unit tests for repro.graph.static.Graph."""

from __future__ import annotations

import pytest

from repro.graph import Graph


class TestConstruction:
    def test_empty_graph(self):
        graph = Graph()
        assert graph.number_of_nodes() == 0
        assert graph.number_of_edges() == 0
        assert list(graph.nodes()) == []

    def test_from_edges_unweighted(self):
        graph = Graph.from_edges([(0, 1), (1, 2)])
        assert graph.number_of_nodes() == 3
        assert graph.number_of_edges() == 2
        assert graph.edge_weight(0, 1) == 1.0

    def test_from_edges_weighted(self):
        graph = Graph.from_edges([(0, 1, 2.5)])
        assert graph.edge_weight(0, 1) == 2.5
        assert graph.edge_weight(1, 0) == 2.5  # undirected symmetry

    def test_add_node_idempotent(self):
        graph = Graph()
        graph.add_node("a")
        graph.add_node("a")
        assert graph.number_of_nodes() == 1

    def test_add_edge_creates_nodes(self):
        graph = Graph()
        graph.add_edge("x", "y")
        assert graph.has_node("x") and graph.has_node("y")

    def test_readd_edge_overwrites_weight(self):
        graph = Graph()
        graph.add_edge(0, 1, 1.0)
        graph.add_edge(0, 1, 3.0)
        assert graph.edge_weight(0, 1) == 3.0
        assert graph.number_of_edges() == 1


class TestMutation:
    def test_remove_edge(self, triangle: Graph):
        triangle.remove_edge(0, 1)
        assert not triangle.has_edge(0, 1)
        assert not triangle.has_edge(1, 0)
        assert triangle.number_of_edges() == 2

    def test_remove_missing_edge_raises(self, triangle: Graph):
        with pytest.raises(KeyError):
            triangle.remove_edge(0, 99)

    def test_discard_edge(self, triangle: Graph):
        assert triangle.discard_edge(0, 1) is True
        assert triangle.discard_edge(0, 1) is False

    def test_remove_node_clears_incident_edges(self, triangle: Graph):
        triangle.remove_node(0)
        assert triangle.number_of_nodes() == 2
        assert triangle.number_of_edges() == 1
        assert not triangle.has_edge(1, 0)

    def test_self_loop(self):
        graph = Graph()
        graph.add_edge(0, 0)
        assert graph.has_edge(0, 0)
        assert graph.number_of_edges() == 1
        graph.remove_edge(0, 0)
        assert graph.number_of_edges() == 0


class TestQueries:
    def test_degree(self, triangle: Graph):
        assert triangle.degree(0) == 2

    def test_weighted_degree(self):
        graph = Graph.from_edges([(0, 1, 2.0), (0, 2, 3.0)])
        assert graph.weighted_degree(0) == 5.0

    def test_neighbor_set_unknown_node_is_empty(self, triangle: Graph):
        assert triangle.neighbor_set("ghost") == set()

    def test_edges_iterates_each_once(self, two_cliques: Graph):
        edges = list(two_cliques.edges())
        assert len(edges) == two_cliques.number_of_edges() == 13
        assert len({frozenset(e) for e in edges}) == 13

    def test_edge_set_order_free(self):
        a = Graph.from_edges([(0, 1), (1, 2)])
        b = Graph.from_edges([(2, 1), (1, 0)])
        assert a.edge_set() == b.edge_set()

    def test_subgraph_induced(self, two_cliques: Graph):
        sub = two_cliques.subgraph([0, 1, 2, 3])
        assert sub.number_of_nodes() == 4
        assert sub.number_of_edges() == 6  # the full clique, no bridge

    def test_subgraph_ignores_unknown_nodes(self, triangle: Graph):
        sub = triangle.subgraph([0, 1, "ghost"])
        assert sub.number_of_nodes() == 2

    def test_contains_iter_len(self, triangle: Graph):
        assert 0 in triangle
        assert sorted(triangle) == [0, 1, 2]
        assert len(triangle) == 3

    def test_is_unweighted(self, triangle: Graph):
        assert triangle.is_unweighted()
        triangle.add_edge(0, 1, 2.0)
        assert not triangle.is_unweighted()

    def test_total_edge_weight(self):
        graph = Graph.from_edges([(0, 1, 2.0), (1, 2, 0.5)])
        assert graph.total_edge_weight() == 2.5


class TestCopyAndInterop:
    def test_copy_is_deep(self, triangle: Graph):
        clone = triangle.copy()
        clone.remove_edge(0, 1)
        assert triangle.has_edge(0, 1)

    def test_networkx_round_trip(self, two_cliques: Graph):
        nx_graph = two_cliques.to_networkx()
        back = Graph.from_networkx(nx_graph)
        assert back.node_set() == two_cliques.node_set()
        assert back.edge_set() == two_cliques.edge_set()

    def test_networkx_preserves_weights(self):
        graph = Graph.from_edges([(0, 1, 4.0)])
        back = Graph.from_networkx(graph.to_networkx())
        assert back.edge_weight(0, 1) == 4.0
