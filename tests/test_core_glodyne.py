"""Unit + integration tests for the GloDyNE algorithm (Algorithm 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import GloDyNE, GloDyNEConfig
from repro.graph import Graph
from repro.tasks import mean_precision_at_k


def small_config(**overrides) -> dict:
    """Fast hyper-parameters for tests."""
    defaults = dict(
        dim=16, alpha=0.2, num_walks=3, walk_length=10,
        window_size=3, epochs=2,
    )
    defaults.update(overrides)
    return defaults


class TestConfig:
    def test_defaults_match_paper(self):
        config = GloDyNEConfig()
        assert config.dim == 128
        assert config.num_walks == 10
        assert config.walk_length == 80
        assert config.window_size == 10
        assert config.negative == 5
        assert config.alpha == 0.1

    def test_alpha_bounds(self):
        with pytest.raises(ValueError):
            GloDyNEConfig(alpha=0.0)
        with pytest.raises(ValueError):
            GloDyNEConfig(alpha=1.5)

    def test_walk_length_minimum(self):
        with pytest.raises(ValueError):
            GloDyNEConfig(walk_length=1)

    def test_config_xor_overrides(self):
        with pytest.raises(ValueError):
            GloDyNE(config=GloDyNEConfig(), dim=8)

    def test_partition_knob_validation(self):
        with pytest.raises(ValueError):
            GloDyNEConfig(partition_eps=-0.1)
        with pytest.raises(ValueError):
            GloDyNEConfig(partition_cut_slack=-1.0)


class TestOfflineStage:
    def test_t0_covers_all_nodes(self, karate_like):
        model = GloDyNE(**small_config(), seed=0)
        embeddings = model.update(karate_like)
        assert set(embeddings) == karate_like.node_set()
        assert model.last_trace.num_selected == karate_like.number_of_nodes()

    def test_embedding_dimension(self, karate_like):
        model = GloDyNE(**small_config(dim=24), seed=0)
        embeddings = model.update(karate_like)
        assert all(vec.shape == (24,) for vec in embeddings.values())

    def test_empty_snapshot_rejected(self):
        model = GloDyNE(**small_config(), seed=0)
        with pytest.raises(ValueError):
            model.update(Graph())


class TestOnlineStage:
    def test_selects_alpha_fraction(self, tiny_network):
        model = GloDyNE(**small_config(alpha=0.1), seed=0)
        model.update(tiny_network[0])
        model.update(tiny_network[1])
        n = tiny_network[1].number_of_nodes()
        assert model.last_trace.num_selected == max(1, round(0.1 * n))

    def test_new_nodes_get_embeddings(self, tiny_network):
        model = GloDyNE(**small_config(), seed=0)
        model.update(tiny_network[0])
        embeddings = model.update(tiny_network[1])
        new_nodes = tiny_network[1].node_set() - tiny_network[0].node_set()
        for node in new_nodes:
            assert node in embeddings

    def test_deleted_nodes_absent_from_output(self, churn_network):
        model = GloDyNE(**small_config(), seed=0)
        previous = None
        for snapshot in churn_network:
            embeddings = model.update(snapshot)
            assert set(embeddings) == snapshot.node_set()
            previous = snapshot

    def test_selected_nodes_evicted_from_reservoir(self, tiny_network):
        model = GloDyNE(**small_config(), seed=0)
        model.update(tiny_network[0])
        model.update(tiny_network[1])
        for node in model.last_trace.selected_nodes:
            assert node not in model.reservoir

    def test_unselected_changes_accumulate(self, tiny_network):
        """Changed-but-unselected nodes must stay in the reservoir."""
        model = GloDyNE(**small_config(alpha=0.05), seed=0)
        model.update(tiny_network[0])
        diff = tiny_network.diff(1)
        model.update(tiny_network[1])
        selected = set(model.last_trace.selected_nodes)
        alive = tiny_network[1].node_set()
        leftover = {
            node
            for node in diff.changed_nodes
            if node not in selected and node in alive
        }
        for node in leftover:
            assert model.reservoir.get(node) > 0

    def test_incremental_stability(self, tiny_network):
        """Warm-start property: embeddings of untouched nodes move little
        between steps relative to their norm (Figure 5's smoothing)."""
        model = GloDyNE(**small_config(alpha=0.1), seed=0)
        before = model.update(tiny_network[0])
        after = model.update(tiny_network[1])
        common = [
            node
            for node in tiny_network[0].nodes()
            if node in after and node not in model.last_trace.selected_nodes
        ]
        drifts = [
            np.linalg.norm(after[n] - before[n]) / (np.linalg.norm(before[n]) + 1e-12)
            for n in common
        ]
        assert np.median(drifts) < 1.0


class TestFitAndDeterminism:
    def test_fit_returns_one_map_per_snapshot(self, tiny_network):
        model = GloDyNE(**small_config(), seed=0)
        embeddings = model.fit(tiny_network)
        assert len(embeddings) == tiny_network.num_snapshots

    def test_seeded_determinism(self, tiny_network):
        run_a = GloDyNE(**small_config(), seed=11).fit(tiny_network)
        run_b = GloDyNE(**small_config(), seed=11).fit(tiny_network)
        for map_a, map_b in zip(run_a, run_b):
            assert set(map_a) == set(map_b)
            for node in map_a:
                np.testing.assert_array_equal(map_a[node], map_b[node])

    def test_reset_forgets_state(self, tiny_network):
        model = GloDyNE(**small_config(), seed=5)
        model.fit(tiny_network)
        model.reset()
        assert model.time_step == 0
        assert model.previous is None
        assert len(model.reservoir) == 0

    def test_strategy_variants_run(self, tiny_network):
        for strategy in ("s1", "s2", "s3", "s4"):
            model = GloDyNE(**small_config(strategy=strategy), seed=0)
            embeddings = model.fit(tiny_network)
            assert len(embeddings) == tiny_network.num_snapshots


class TestSingleCSRPerStep:
    def test_online_step_builds_exactly_one_csr(
        self, tiny_network, monkeypatch
    ):
        """Regression for the double CSR build: `partition_graph` used to
        re-freeze the snapshot internally while `_online_stage` built
        another CSR for the walk engine."""
        from repro.graph.csr import CSRAdjacency

        model = GloDyNE(**small_config(), seed=0)
        model.update(tiny_network[0])

        calls = {"count": 0}
        real = CSRAdjacency.from_graph.__func__

        def counting(cls, graph):
            calls["count"] += 1
            return real(cls, graph)

        monkeypatch.setattr(
            CSRAdjacency, "from_graph", classmethod(counting)
        )
        model.update(tiny_network[1])
        assert calls["count"] == 1

    def test_online_step_with_incremental_partitioner_builds_one_csr(
        self, tiny_network, monkeypatch
    ):
        from repro.graph.csr import CSRAdjacency

        model = GloDyNE(
            **small_config(incremental_partition=True), seed=0
        )
        model.update(tiny_network[0])
        calls = {"count": 0}
        real = CSRAdjacency.from_graph.__func__

        def counting(cls, graph):
            calls["count"] += 1
            return real(cls, graph)

        monkeypatch.setattr(
            CSRAdjacency, "from_graph", classmethod(counting)
        )
        model.update(tiny_network[1])
        assert calls["count"] == 1


class TestIncrementalPartition:
    def test_runs_end_to_end_and_is_deterministic(self, tiny_network):
        run_a = GloDyNE(
            **small_config(incremental_partition=True), seed=11
        ).fit(tiny_network)
        run_b = GloDyNE(
            **small_config(incremental_partition=True), seed=11
        ).fit(tiny_network)
        assert len(run_a) == tiny_network.num_snapshots
        for map_a, map_b in zip(run_a, run_b):
            assert set(map_a) == set(map_b)
            for node in map_a:
                np.testing.assert_array_equal(map_a[node], map_b[node])

    def test_partitioner_persists_across_steps(self, tiny_network):
        model = GloDyNE(
            **small_config(incremental_partition=True), seed=0
        )
        model.fit(tiny_network)
        assert model.partitioner is not None
        # One bootstrap rebuild; the remaining online steps maintained
        # the partition incrementally (unless the quality gate fired,
        # which small simulated drift must not trigger).
        assert model.partitioner.num_rebuilds >= 1
        assert (
            model.partitioner.num_rebuilds
            + model.partitioner.num_incremental
            == tiny_network.num_snapshots - 1
        )

    def test_reset_rebuilds_a_fresh_partitioner(self, tiny_network):
        model = GloDyNE(
            **small_config(incremental_partition=True), seed=3
        )
        model.fit(tiny_network)
        used = model.partitioner
        model.reset()
        assert model.partitioner is not used
        assert model.partitioner.num_rebuilds == 0

    def test_knob_off_means_no_partitioner(self, tiny_network):
        model = GloDyNE(**small_config(), seed=0)
        assert model.partitioner is None

    def test_inert_for_non_partitioning_strategies(self, tiny_network):
        model = GloDyNE(
            **small_config(incremental_partition=True, strategy="s3"),
            seed=0,
        )
        model.fit(tiny_network)
        assert model.partitioner.num_rebuilds == 0
        assert model.partitioner.num_incremental == 0

    def test_embeddings_cover_snapshot_nodes(self, tiny_network):
        model = GloDyNE(
            **small_config(incremental_partition=True), seed=7
        )
        for snapshot in tiny_network:
            embeddings = model.update(snapshot)
            assert set(embeddings) == snapshot.node_set()


class TestQuality:
    def test_reconstruction_beats_random(self, tiny_network):
        """End-to-end sanity: GloDyNE embeddings must reconstruct far
        better than random vectors."""
        model = GloDyNE(**small_config(epochs=3), seed=0)
        embeddings = model.fit(tiny_network)
        final = tiny_network[-1]
        scores = mean_precision_at_k(embeddings[-1], final, [10])

        rng = np.random.default_rng(0)
        random_embeddings = {
            node: rng.normal(size=16) for node in final.nodes()
        }
        random_scores = mean_precision_at_k(random_embeddings, final, [10])
        assert scores[10] > 3 * random_scores[10]


class TestStepTraceIntegrity:
    """Regression: trace fields are built once, from the walked selection.

    ``selected_nodes`` used to be rebuilt as a second list after
    ``_walk_and_train`` returned; it is now derived inside the trace
    construction from the start indices that actually drove the walks,
    so the trace can never drift from the real selection.
    """

    def test_offline_trace_matches_snapshot(self, karate_like):
        model = GloDyNE(**small_config(), seed=0)
        model.update(karate_like)
        trace = model.last_trace
        assert trace.time_step == 0
        assert trace.num_nodes == karate_like.number_of_nodes()
        assert trace.selected_nodes == list(karate_like.nodes())
        assert trace.num_selected == len(trace.selected_nodes)

    def test_online_trace_matches_strategy_output(self, tiny_network):
        model = GloDyNE(**small_config(), seed=0)
        captured: list[list] = []
        inner = model._strategy

        def spy(context, count):
            selected = inner(context, count)
            captured.append(list(selected))
            return selected

        model._strategy = spy
        for snapshot in tiny_network:
            model.update(snapshot)
            trace = model.last_trace
            assert trace.num_selected == len(trace.selected_nodes)
            assert set(trace.selected_nodes) <= snapshot.node_set()
            if trace.time_step > 0:
                # The trace must report exactly what the selection
                # strategy returned, in order.
                assert trace.selected_nodes == captured[-1]
        assert len(captured) == tiny_network.num_snapshots - 1

    def test_trace_consistent_on_streaming_fast_path(self, tiny_network):
        from repro.graph.csr import CSRAdjacency
        from repro.graph.diff import diff_snapshots

        model = GloDyNE(**small_config(), seed=3)
        previous = None
        for snapshot in tiny_network:
            changes = (
                diff_snapshots(previous, snapshot).node_changes
                if previous is not None
                else None
            )
            csr = CSRAdjacency.from_graph(snapshot)
            model.update(snapshot, changes=changes, csr=csr)
            trace = model.last_trace
            assert trace.num_selected == len(trace.selected_nodes)
            assert set(trace.selected_nodes) <= snapshot.node_set()
            previous = snapshot
