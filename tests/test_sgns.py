"""Unit tests for the pure-numpy SGNS: vocab, model math, trainer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import CSRAdjacency
from repro.sgns import (
    SGNSModel,
    TrainConfig,
    Vocabulary,
    build_noise_table,
    log_sigmoid,
    sigmoid,
    train_on_corpus,
)
from repro.walks import build_pair_corpus, simulate_walks


class TestVocabulary:
    def test_add_and_index(self):
        vocab = Vocabulary()
        assert vocab.add("a") == 0
        assert vocab.add("b") == 1
        assert vocab.add("a") == 0  # idempotent
        assert len(vocab) == 2

    def test_indices_array(self):
        vocab = Vocabulary(["x", "y", "z"])
        np.testing.assert_array_equal(vocab.indices(["z", "x"]), [2, 0])

    def test_unknown_node_raises(self):
        with pytest.raises(KeyError):
            Vocabulary().index("ghost")

    def test_copy_independent(self):
        vocab = Vocabulary(["a"])
        clone = vocab.copy()
        clone.add("b")
        assert "b" not in vocab
        assert "b" in clone

    def test_iteration_order_stable(self):
        vocab = Vocabulary(["c", "a", "b"])
        assert list(vocab) == ["c", "a", "b"]


class TestActivations:
    def test_sigmoid_range_and_symmetry(self):
        x = np.linspace(-50, 50, 101)
        s = sigmoid(x)
        assert np.all((s >= 0) & (s <= 1))
        np.testing.assert_allclose(s + sigmoid(-x), 1.0, atol=1e-12)

    def test_sigmoid_extremes_stable(self):
        assert sigmoid(np.array([1000.0]))[0] == 1.0
        assert sigmoid(np.array([-1000.0]))[0] == pytest.approx(0.0)

    def test_log_sigmoid_no_overflow(self):
        assert np.isfinite(log_sigmoid(np.array([-1000.0, 0.0, 1000.0]))).all()
        assert log_sigmoid(np.array([0.0]))[0] == pytest.approx(np.log(0.5))


class TestSGNSModel:
    def test_ensure_nodes_grows(self):
        model = SGNSModel(dim=8, rng=np.random.default_rng(0))
        model.ensure_nodes(["a", "b"])
        assert model.w_in.shape == (2, 8)
        model.ensure_nodes(["b", "c", "d"])
        assert model.w_in.shape == (4, 8)

    def test_existing_rows_preserved_on_growth(self):
        model = SGNSModel(dim=4, rng=np.random.default_rng(0))
        model.ensure_nodes(["a"])
        row_before = model.embedding("a")
        model.ensure_nodes([f"n{i}" for i in range(100)])  # force realloc
        np.testing.assert_array_equal(model.embedding("a"), row_before)

    def test_new_out_rows_zero(self):
        model = SGNSModel(dim=4, rng=np.random.default_rng(0))
        model.ensure_nodes(["a", "b"])
        np.testing.assert_array_equal(model.w_out, np.zeros((2, 4)))

    def test_embedding_matrix_order(self):
        model = SGNSModel(dim=4, rng=np.random.default_rng(0))
        model.ensure_nodes(["a", "b", "c"])
        matrix = model.embedding_matrix(["c", "a"])
        np.testing.assert_array_equal(matrix[0], model.embedding("c"))
        np.testing.assert_array_equal(matrix[1], model.embedding("a"))

    def test_copy_is_deep(self):
        model = SGNSModel(dim=4, rng=np.random.default_rng(0))
        model.ensure_nodes(["a"])
        clone = model.copy()
        clone.w_in[0] += 10.0
        assert not np.allclose(model.embedding("a"), clone.embedding("a"))

    def test_bad_dim_rejected(self):
        with pytest.raises(ValueError):
            SGNSModel(dim=0)

    def test_train_batch_gradient_direction(self):
        """A positive pair's dot product must increase; negatives decrease."""
        rng = np.random.default_rng(1)
        model = SGNSModel(dim=8, rng=rng)
        model.ensure_nodes([0, 1, 2])
        model._w_out[:3] = rng.normal(size=(3, 8)) * 0.1  # non-zero outputs
        centers = np.array([0])
        contexts = np.array([1])
        negatives = np.array([[2]])
        pos_before = model.w_in[0] @ model.w_out[1]
        neg_before = model.w_in[0] @ model.w_out[2]
        for _ in range(30):
            model.train_batch(centers, contexts, negatives, lr=0.1)
        assert model.w_in[0] @ model.w_out[1] > pos_before
        assert model.w_in[0] @ model.w_out[2] < neg_before

    def test_train_batch_loss_decreases(self):
        rng = np.random.default_rng(2)
        model = SGNSModel(dim=8, rng=rng)
        model.ensure_nodes(list(range(10)))
        model._w_out[:10] = rng.normal(size=(10, 8)) * 0.1
        centers = np.array([0, 1, 2, 3])
        contexts = np.array([4, 5, 6, 7])
        negatives = np.array([[8], [9], [8], [9]])
        first = model.train_batch(centers, contexts, negatives, 0.1, True)
        for _ in range(50):
            model.train_batch(centers, contexts, negatives, 0.1)
        last = model.train_batch(centers, contexts, negatives, 0.1, True)
        assert last < first


class TestTrainer:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            TrainConfig(negative=0)
        with pytest.raises(ValueError):
            TrainConfig(epochs=0)
        with pytest.raises(ValueError):
            TrainConfig(lr=0.01, min_lr=0.1)
        with pytest.raises(ValueError):
            TrainConfig(batch_size=0)

    def test_noise_table_excludes_zero_counts(self, rng):
        counts = np.array([0, 5, 0, 3])
        table, present = build_noise_table(counts)
        np.testing.assert_array_equal(present, [1, 3])
        draws = present[table.sample(rng, 1000)]
        assert set(draws.tolist()) <= {1, 3}

    def test_noise_table_power_flattens(self, rng):
        counts = np.array([1, 100])
        table, present = build_noise_table(counts, power=0.75)
        draws = present[table.sample(rng, 50_000)]
        frequency_of_rare = np.mean(draws == 0)
        # Raw unigram would give ~1/101 ≈ 0.0099; 0.75 power lifts it.
        assert frequency_of_rare > 0.02

    def test_noise_table_empty_rejected(self):
        with pytest.raises(ValueError):
            build_noise_table(np.zeros(4, dtype=np.int64))

    def test_empty_corpus_is_noop(self, rng):
        from repro.walks.corpus import PairCorpus

        model = SGNSModel(dim=4, rng=rng)
        model.ensure_nodes([0])
        empty = PairCorpus(
            centers=np.empty(0, dtype=np.int64),
            contexts=np.empty(0, dtype=np.int64),
            counts=np.zeros(1, dtype=np.int64),
        )
        loss = train_on_corpus(model, empty, np.array([0]), rng)
        assert loss == 0.0

    def test_training_separates_communities(self, karate_like, rng):
        """Integration: after training, intra-community cosine similarity
        must exceed inter-community similarity — the core SGNS promise."""
        csr = CSRAdjacency.from_graph(karate_like)
        walks = simulate_walks(csr, np.arange(csr.num_nodes), 20, 10, rng)
        corpus = build_pair_corpus(walks, 3, csr.num_nodes)
        model = SGNSModel(dim=16, rng=rng)
        model.ensure_nodes(csr.nodes)
        row_of = model.vocab.indices(csr.nodes)
        train_on_corpus(
            model, corpus, row_of, rng,
            config=TrainConfig(negative=5, epochs=5),
        )
        z = model.embedding_matrix(csr.nodes)
        z = z / np.linalg.norm(z, axis=1, keepdims=True)
        sims = z @ z.T
        side_a = [i for i, n in enumerate(csr.nodes) if n < 20]
        side_b = [i for i, n in enumerate(csr.nodes) if n >= 20]
        intra = np.mean([sims[i, j] for i in side_a for j in side_a if i != j])
        inter = np.mean([sims[i, j] for i in side_a for j in side_b])
        assert intra > inter + 0.1

    def test_warm_start_preserves_untouched_rows(self, rng):
        """Incremental paradigm: training on a corpus not containing node X
        leaves X's embedding untouched."""
        model = SGNSModel(dim=4, rng=rng)
        model.ensure_nodes(["x", "a", "b"])
        x_before = model.embedding("x")
        from repro.walks.corpus import PairCorpus

        corpus = PairCorpus(
            centers=np.array([1, 2]),
            contexts=np.array([2, 1]),
            counts=np.array([0, 1, 1]),
        )
        row_of = model.vocab.indices(["x", "a", "b"])
        train_on_corpus(model, corpus, row_of, rng)
        np.testing.assert_array_equal(model.embedding("x"), x_before)
