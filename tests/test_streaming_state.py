"""Property-based tests for the incremental graph state.

The contract under test: replaying *any* add/remove event stream through
:class:`repro.streaming.IncrementalGraphState` must be indistinguishable
from batch construction — same :class:`Graph`, byte-identical CSR arrays
versus ``CSRAdjacency.from_graph``, same LCC restriction, and window
change counts equal to ``diff_snapshots`` / ``weighted_node_changes`` on
the materialised snapshots.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import EdgeEvent, Graph, diff_snapshots, weighted_node_changes
from repro.graph.components import largest_connected_component
from repro.graph.csr import CSRAdjacency
from repro.streaming import IncrementalCSR, IncrementalGraphState


# Event-stream strategy: ops over a small node universe so that add,
# re-add (weight overwrite), remove, and remove-of-absent all occur.
def _event_ops(max_node: int = 8, max_len: int = 120):
    op = st.tuples(
        st.integers(min_value=0, max_value=max_node),
        st.integers(min_value=0, max_value=max_node),
        st.booleans(),  # True = add, False = remove
        st.floats(min_value=0.5, max_value=3.0, allow_nan=False),
    )
    return st.lists(op, min_size=1, max_size=max_len)


def _replay(ops) -> tuple[IncrementalGraphState, Graph]:
    """Apply the same op list through both the incremental and batch path."""
    state = IncrementalGraphState()
    batch = Graph()
    for t, (u, v, is_add, weight) in enumerate(ops):
        kind = "add" if is_add else "remove"
        state.apply(EdgeEvent(u, v, float(t), kind=kind, weight=weight))
        if is_add:
            batch.add_edge(u, v, weight)
        else:
            batch.discard_edge(u, v)
    return state, batch


def _assert_graphs_identical(actual: Graph, expected: Graph) -> None:
    assert list(actual.nodes()) == list(expected.nodes())
    assert actual.edge_set() == expected.edge_set()
    for u, v, w in expected.weighted_edges():
        assert actual.edge_weight(u, v) == w


def _assert_csr_identical(actual: CSRAdjacency, expected: CSRAdjacency) -> None:
    assert actual.nodes == expected.nodes
    assert np.array_equal(actual.indptr, expected.indptr)
    assert np.array_equal(actual.indices, expected.indices)
    assert np.array_equal(actual.weights, expected.weights)


class TestReplayEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(ops=_event_ops())
    def test_graph_matches_batch_construction(self, ops):
        state, batch = _replay(ops)
        _assert_graphs_identical(state.graph, batch)
        assert state.num_edges == batch.number_of_edges()

    @settings(max_examples=60, deadline=None)
    @given(ops=_event_ops())
    def test_incremental_csr_matches_from_graph(self, ops):
        state, batch = _replay(ops)
        _assert_csr_identical(state.csr.to_csr(), CSRAdjacency.from_graph(batch))

    @settings(max_examples=40, deadline=None)
    @given(ops=_event_ops())
    def test_lcc_restriction_matches_batch(self, ops):
        state, batch = _replay(ops)
        actual = state.snapshot_view(restrict_to_lcc=True)
        expected = largest_connected_component(batch)
        _assert_graphs_identical(actual, expected)

    @settings(max_examples=40, deadline=None)
    @given(ops=_event_ops(), seed=st.integers(min_value=0, max_value=1000))
    def test_shuffled_stream_same_final_graph_content(self, ops, seed):
        """Shuffling events (with times preserved per op) changes only
        ordering metadata, never the surviving edge *content* — as long
        as the shuffle is replayed identically through both paths."""
        rng = np.random.default_rng(seed)
        shuffled = [ops[i] for i in rng.permutation(len(ops))]
        state, batch = _replay(shuffled)
        _assert_graphs_identical(state.graph, batch)
        _assert_csr_identical(state.csr.to_csr(), CSRAdjacency.from_graph(batch))


class TestWindowChanges:
    @settings(max_examples=60, deadline=None)
    @given(ops=_event_ops(), split=st.integers(min_value=0, max_value=120))
    def test_unweighted_changes_match_diff_snapshots(self, ops, split):
        """Changes accumulated over a window equal the full-graph diff of
        the window-boundary snapshots."""
        split = min(split, len(ops))
        state, _ = _replay(ops[:split])
        before = state.graph.copy()
        state.reset_window()
        for t, (u, v, is_add, weight) in enumerate(ops[split:]):
            kind = "add" if is_add else "remove"
            state.apply(EdgeEvent(u, v, float(t), kind=kind, weight=weight))
        expected = diff_snapshots(before, state.graph).node_changes
        actual = state.window_node_changes(weighted=False)
        assert {n: int(c) for n, c in actual.items()} == dict(expected)

    @settings(max_examples=60, deadline=None)
    @given(ops=_event_ops(), split=st.integers(min_value=0, max_value=120))
    def test_weighted_changes_match_footnote3(self, ops, split):
        split = min(split, len(ops))
        state, _ = _replay(ops[:split])
        before = state.graph.copy()
        state.reset_window()
        for t, (u, v, is_add, weight) in enumerate(ops[split:]):
            kind = "add" if is_add else "remove"
            state.apply(EdgeEvent(u, v, float(t), kind=kind, weight=weight))
        expected = weighted_node_changes(before, state.graph)
        actual = state.window_node_changes(weighted=True)
        assert set(actual) == set(expected)
        for node, value in expected.items():
            assert actual[node] == pytest.approx(value)

    def test_add_then_remove_cancels_inside_window(self):
        state = IncrementalGraphState()
        state.apply(EdgeEvent(0, 1, 0.0))
        state.reset_window()
        state.apply(EdgeEvent(1, 2, 1.0))
        state.apply(EdgeEvent(1, 2, 2.0, kind="remove"))
        assert state.window_node_changes(weighted=False) == {}
        assert state.window_node_changes(weighted=True) == {}

    def test_touched_nodes_keep_reverted_edges(self):
        """The partitioner's dirty set is a superset of the Eq. (3)
        changed nodes: a reverted edge cancels out of the change counts
        but its endpoints stay touched."""
        state = IncrementalGraphState()
        state.apply(EdgeEvent(0, 1, 0.0))
        state.reset_window()
        assert state.window_touched_nodes() == set()
        state.apply(EdgeEvent(1, 2, 1.0))
        state.apply(EdgeEvent(1, 2, 2.0, kind="remove"))
        state.apply(EdgeEvent(3, 3, 3.0))  # self-loop touches one node
        assert state.window_touched_nodes() == {1, 2, 3}
        state.reset_window()
        assert state.window_touched_nodes() == set()


class TestIncrementalCSRInternals:
    def test_row_overflow_relocation_preserves_order(self):
        csr = IncrementalCSR(initial_pool=16)
        for v in range(1, 12):  # force several row relocations for node 0
            csr.add_edge(0, v)
        frozen = csr.to_csr()
        hub = frozen.index_of[0]
        row = frozen.indices[frozen.indptr[hub]: frozen.indptr[hub + 1]]
        assert [frozen.nodes[i] for i in row] == list(range(1, 12))

    def test_remove_then_readd_moves_neighbor_to_row_end(self):
        csr = IncrementalCSR()
        graph = Graph()
        for v in (1, 2, 3):
            csr.add_edge(0, v)
            graph.add_edge(0, v)
        csr.discard_edge(0, 2)
        graph.discard_edge(0, 2)
        csr.add_edge(0, 2)
        graph.add_edge(0, 2)
        _assert_csr_identical(csr.to_csr(), CSRAdjacency.from_graph(graph))

    def test_discard_absent_edge_is_noop(self):
        csr = IncrementalCSR()
        csr.add_edge(0, 1)
        assert not csr.discard_edge(0, 2)
        assert not csr.discard_edge(5, 6)
        assert csr.num_entries == 2

    def test_self_loop_stored_once(self):
        csr = IncrementalCSR()
        graph = Graph()
        csr.add_edge(0, 0)
        graph.add_edge(0, 0)
        csr.add_edge(0, 1)
        graph.add_edge(0, 1)
        _assert_csr_identical(csr.to_csr(), CSRAdjacency.from_graph(graph))


class TestStateBookkeeping:
    def test_nonunit_weight_counter(self):
        state = IncrementalGraphState()
        assert not state.has_nonunit_weights
        state.apply(EdgeEvent(0, 1, 0.0, weight=2.0))
        assert state.has_nonunit_weights
        state.apply(EdgeEvent(0, 1, 1.0, weight=1.0))  # overwrite back to unit
        assert not state.has_nonunit_weights
        state.apply(EdgeEvent(1, 2, 2.0, weight=0.5))
        state.apply(EdgeEvent(1, 2, 3.0, kind="remove"))
        assert not state.has_nonunit_weights

    def test_near_unit_weight_matches_snapshot_tolerance(self):
        """Weights within Graph.is_unweighted's 1e-12 tolerance must not
        flip the weighted-change auto-detection (bit-identity guarantee)."""
        state = IncrementalGraphState()
        state.apply(EdgeEvent(0, 1, 0.0, weight=1.0 + 1e-13))
        assert not state.has_nonunit_weights
        assert state.graph.is_unweighted()

    def test_window_counters(self):
        state = IncrementalGraphState()
        state.apply(EdgeEvent(0, 1, 0.0))
        state.apply(EdgeEvent(0, 1, 1.0, weight=2.0))
        state.apply(EdgeEvent(2, 3, 2.0))
        assert state.window_events == 3
        assert state.num_touched_edges == 2  # (0,1) touched twice
        state.reset_window()
        assert state.window_events == 0
        assert state.num_touched_edges == 0
        assert state.events_applied == 3
