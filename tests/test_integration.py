"""Cross-module integration tests: the full pipeline on every dataset.

These are the closest thing to the paper's experimental loop that still
fits a unit-test budget: embed each simulated dataset with GloDyNE and
check API invariants plus coarse quality floors.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import GloDyNE
from repro.core.selection import SelectionContext
from repro.datasets import list_datasets, load_dataset
from repro.experiments import run_method
from repro.tasks import (
    graph_reconstruction_over_time,
    link_prediction_over_time,
)

FAST = dict(
    dim=16, alpha=0.15, num_walks=3, walk_length=12, window_size=4, epochs=2,
)


@pytest.mark.parametrize("dataset", list_datasets())
def test_glodyne_full_pipeline(dataset):
    network = load_dataset(dataset, scale=0.3, seed=11, snapshots=5)
    method = GloDyNE(**FAST, seed=0)
    result = run_method(method, network)
    assert result.ok

    # API invariant: every snapshot's node set exactly covered.
    for embeddings, snapshot in zip(result.embeddings, network):
        assert set(embeddings) == snapshot.node_set()

    # Quality floor: far better than random reconstruction.
    scores = graph_reconstruction_over_time(result.embeddings, network, [10])
    assert scores[10] > 0.25, f"GR too low on {dataset}: {scores[10]:.3f}"

    # Link prediction is defined and above hopeless.
    auc = link_prediction_over_time(
        result.embeddings, network, np.random.default_rng(0)
    )
    assert auc > 0.4


def test_custom_selection_strategy_plugs_in():
    """The paper's future-work hook: GloDyNE as a framework accepts a
    user-defined node-selection strategy."""
    picked_counts = []

    def degree_biased(context: SelectionContext, count: int):
        nodes = sorted(context.snapshot.node_set(), key=repr)
        nodes.sort(key=context.snapshot.degree, reverse=True)
        picked = nodes[:count]
        picked_counts.append(len(picked))
        return picked

    network = load_dataset("elec-sim", scale=0.25, seed=2, snapshots=4)
    method = GloDyNE(**FAST, seed=0)
    method._strategy = degree_biased  # framework hook
    embeddings = method.fit(network)
    assert len(embeddings) == 4
    assert picked_counts  # custom strategy actually used


def test_runner_marks_na_consistently():
    """DynLINE and tNE must be n/a on the deletion dataset — matching the
    paper's Table 1/2/4 n/a cells — while GloDyNE handles it."""
    from repro import DynLINE, TNE

    network = load_dataset("as733-sim", scale=0.3, seed=3, snapshots=5)
    for method in (
        DynLINE(dim=8, seed=0),
        TNE(dim=8, num_walks=2, walk_length=8, window_size=2, epochs=1, seed=0),
    ):
        result = run_method(method, network)
        assert not result.ok
        assert "deletion" in result.not_available

    glodyne = GloDyNE(**FAST, seed=0)
    assert run_method(glodyne, network).ok


def test_alpha_extremes():
    """α at both ends of its range must be well-behaved."""
    network = load_dataset("elec-sim", scale=0.25, seed=5, snapshots=4)
    tiny = GloDyNE(**{**FAST, "alpha": 0.01}, seed=0)
    full = GloDyNE(**{**FAST, "alpha": 1.0}, seed=0)
    tiny_embeddings = tiny.fit(network)
    full_embeddings = full.fit(network)
    assert tiny.last_trace.num_selected == max(
        1, round(0.01 * network[-1].number_of_nodes())
    )
    assert full.last_trace.num_selected == network[-1].number_of_nodes()
    # Both still produce full-coverage embeddings.
    assert set(tiny_embeddings[-1]) == set(full_embeddings[-1])


def test_longitudinal_reservoir_drains():
    """Over many steps, every node eventually gets selected or stays
    change-free: the reservoir cannot grow without bound on a
    fixed-population network."""
    network = load_dataset("elec-sim", scale=0.25, seed=6, snapshots=5)
    method = GloDyNE(**{**FAST, "alpha": 0.5}, seed=0)
    sizes = []
    for snapshot in network:
        method.update(snapshot)
        sizes.append(len(method.reservoir))
    assert sizes[-1] <= network[-1].number_of_nodes()
