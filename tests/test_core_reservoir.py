"""Unit + property tests for the accumulated-change reservoir."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Reservoir


class TestReservoir:
    def test_starts_empty(self):
        reservoir = Reservoir()
        assert len(reservoir) == 0
        assert reservoir.get("x") == 0.0

    def test_accumulate_line10(self):
        """R^t_i = |ΔE^t_i| + R^{t-1}_i (Algorithm 1 line 10)."""
        reservoir = Reservoir()
        reservoir.accumulate({"a": 2, "b": 1})
        reservoir.accumulate({"a": 3})
        assert reservoir.get("a") == 5
        assert reservoir.get("b") == 1

    def test_zero_changes_not_stored(self):
        reservoir = Reservoir()
        reservoir.accumulate({"a": 0})
        assert "a" not in reservoir
        assert len(reservoir) == 0

    def test_evict_line14(self):
        reservoir = Reservoir()
        reservoir.accumulate({"a": 2, "b": 1})
        reservoir.evict(["a", "ghost"])  # evicting unknown nodes is fine
        assert "a" not in reservoir
        assert reservoir.get("b") == 1

    def test_prune_dead_nodes(self):
        reservoir = Reservoir()
        reservoir.accumulate({"a": 1, "b": 2, "c": 3})
        reservoir.prune(alive_nodes={"b"})
        assert reservoir.nodes() == ["b"]

    def test_clear(self):
        reservoir = Reservoir()
        reservoir.accumulate({"a": 1})
        reservoir.clear()
        assert len(reservoir) == 0

    def test_as_dict_is_copy(self):
        reservoir = Reservoir()
        reservoir.accumulate({"a": 1})
        snapshot = reservoir.as_dict()
        snapshot["a"] = 100
        assert reservoir.get("a") == 1


@settings(max_examples=50, deadline=None)
@given(
    updates=st.lists(
        st.dictionaries(
            st.integers(min_value=0, max_value=9),
            st.integers(min_value=0, max_value=5),
            max_size=5,
        ),
        max_size=8,
    ),
    evict_at=st.integers(min_value=0, max_value=9),
)
def test_reservoir_accounting_property(updates, evict_at):
    """Property: a node's reservoir value equals the sum of its changes
    since the last eviction (footnote 2's accumulation semantics)."""
    reservoir = Reservoir()
    expected: dict[int, float] = {}
    for i, update in enumerate(updates):
        reservoir.accumulate(update)
        for node, change in update.items():
            if change:
                expected[node] = expected.get(node, 0) + change
        if i == evict_at:
            reservoir.evict([0])
            expected.pop(0, None)
    for node in range(10):
        assert reservoir.get(node) == expected.get(node, 0)
