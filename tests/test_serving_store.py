"""Unit tests for the versioned embedding store."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serving import EmbeddingStore, load_store, save_store
from repro.serving.store import STORE_FORMAT_VERSION


def _store_with_versions(num: int = 3, dim: int = 8) -> EmbeddingStore:
    rng = np.random.default_rng(7)
    store = EmbeddingStore()
    for t in range(num):
        nodes = [f"n{i}" for i in range(10 + t)]  # grows like a vocab
        matrix = rng.standard_normal((len(nodes), dim))
        store.publish((nodes, matrix), time_step=t, metadata={"t": t})
    return store


class TestPublish:
    def test_publish_from_map_and_tuple_agree(self):
        rng = np.random.default_rng(0)
        nodes = ["a", "b", "c"]
        matrix = rng.standard_normal((3, 4))
        as_map = {n: matrix[i] for i, n in enumerate(nodes)}

        s1, s2 = EmbeddingStore(), EmbeddingStore()
        s1.publish(as_map, time_step=0)
        s2.publish((nodes, matrix), time_step=0)
        assert s1.latest.nodes == s2.latest.nodes
        assert np.array_equal(s1.latest.matrix, s2.latest.matrix)

    def test_versions_are_monotonic_and_float32(self):
        store = _store_with_versions(3)
        assert [r.version for r in store] == [0, 1, 2]
        assert store.num_versions == len(store) == 3
        for record in store:
            assert record.matrix.dtype == np.float32

    def test_matrix_is_frozen(self):
        store = _store_with_versions(1)
        with pytest.raises(ValueError):
            store.latest.matrix[0, 0] = 99.0

    def test_empty_publishes_rejected(self):
        store = EmbeddingStore()
        with pytest.raises(ValueError):
            store.publish({})
        with pytest.raises(ValueError):
            store.publish(([], np.empty((0, 4))))
        with pytest.raises(ValueError):
            store.publish((["a"], np.zeros((2, 3))))  # misaligned

    def test_default_time_step_is_version(self):
        store = EmbeddingStore()
        store.publish({"a": np.ones(2)})
        store.publish({"a": np.ones(2)})
        assert [r.time_step for r in store] == [0, 1]


class TestReads:
    def test_version_resolution(self):
        store = _store_with_versions(3)
        assert store.version().version == 2
        assert store.version(None).version == 2
        assert store.version(-1).version == 2
        assert store.version(-3).version == 0
        assert store.version(1).version == 1
        with pytest.raises(LookupError):
            store.version(3)
        with pytest.raises(LookupError):
            store.version(-4)

    def test_empty_store_raises(self):
        store = EmbeddingStore()
        with pytest.raises(LookupError):
            _ = store.latest
        with pytest.raises(LookupError):
            store.version(0)

    def test_vector_and_unknown_node(self):
        store = _store_with_versions(2)
        record = store.version(0)
        assert np.array_equal(store.vector("n3", 0), record.matrix[3])
        with pytest.raises(KeyError):
            store.vector("missing", 0)

    def test_as_map_copies(self):
        store = _store_with_versions(1)
        emap = store.latest.as_map()
        emap["n0"][:] = 0.0  # mutating the copy must not touch the store
        assert not np.allclose(store.latest.matrix[0], 0.0)


class TestPersistence:
    def test_round_trip(self, tmp_path):
        store = _store_with_versions(3)
        path = tmp_path / "store.npz"
        save_store(store, path)
        loaded = load_store(path)
        assert loaded.num_versions == 3
        for original, restored in zip(store, loaded):
            assert restored.nodes == original.nodes
            assert restored.time_step == original.time_step
            assert restored.metadata == original.metadata
            assert np.array_equal(restored.matrix, original.matrix)

    def test_int_node_ids_survive(self, tmp_path):
        store = EmbeddingStore()
        store.publish(([1, 2, 3], np.eye(3)), time_step=0)
        path = tmp_path / "store.npz"
        save_store(store, path)
        loaded = load_store(path)
        assert loaded.latest.nodes == (1, 2, 3)  # ints, not "1"/"2"/"3"

    def test_suffixless_path_round_trips(self, tmp_path):
        # np.savez appends .npz to bare names; save_store must write to
        # exactly the requested path so a later load finds it.
        store = _store_with_versions(1)
        path = tmp_path / "mystore"
        save_store(store, path)
        assert path.exists()
        assert load_store(path).num_versions == 1

    def test_format_version_guard(self, tmp_path):
        store = _store_with_versions(1)
        path = tmp_path / "store.npz"
        save_store(store, path)
        import json

        archive = dict(np.load(path, allow_pickle=True))
        manifest = json.loads(str(archive["manifest"][0]))
        manifest["format_version"] = STORE_FORMAT_VERSION + 1
        archive["manifest"] = np.array([json.dumps(manifest)], dtype=object)
        np.savez(path, allow_pickle=True, **archive)
        with pytest.raises(ValueError, match="format"):
            load_store(path)
