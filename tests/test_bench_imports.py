"""Guard against benchmark bit-rot: every bench module must import.

The benchmarks are heavy to *run*, but importing them is cheap and
catches broken imports / renamed APIs long before a full bench session.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).parent.parent / "benchmarks"
BENCH_MODULES = sorted(p for p in BENCH_DIR.glob("bench_*.py"))


@pytest.fixture(autouse=True)
def _bench_path():
    """Make ``import common`` resolvable, as benchmarks/conftest.py does."""
    sys.path.insert(0, str(BENCH_DIR))
    yield
    sys.path.remove(str(BENCH_DIR))


def test_bench_suite_is_complete():
    """One bench per paper table/figure plus the extras (DESIGN.md §5)."""
    names = {p.stem for p in BENCH_MODULES}
    expected = {
        "bench_table1_graph_reconstruction",
        "bench_table2_link_prediction",
        "bench_table3_node_classification",
        "bench_table4_wall_clock",
        "bench_table5_selection_strategies",
        "bench_fig1_proximity_change",
        "bench_fig1_inactive_subnetworks",
        "bench_fig2_effectiveness_efficiency",
        "bench_fig3_static_vs_retrain",
        "bench_fig4_increment_vs_retrain",
        "bench_fig5_embedding_stability",
        "bench_fig6_alpha_tradeoff",
        "bench_datasets_overview",
        "bench_ablation_reservoir",
        "bench_streaming_throughput",
        "bench_serving_qps",
        "bench_ivf_qps",
        "bench_parallel_walks",
        "bench_incremental_partition",
    }
    assert expected <= names


@pytest.mark.parametrize("path", BENCH_MODULES, ids=lambda p: p.stem)
def test_bench_module_imports(path: Path):
    spec = importlib.util.spec_from_file_location(f"_bench_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    # Every bench exposes at least one test_* entry point for pytest.
    assert any(name.startswith("test_") for name in dir(module))
