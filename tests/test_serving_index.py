"""Unit and property tests for the kNN index backends."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serving import BruteForceIndex, LSHIndex, unit_rows


def _clustered(rng, clusters=10, per=40, dim=16, spread=0.4):
    centers = rng.standard_normal((clusters, dim)) * 3.0
    return np.vstack(
        [c + rng.standard_normal((per, dim)) * spread for c in centers]
    )


def _recall(index, truth, matrix, queries, k=10):
    hits = 0
    for q in queries:
        approx = set(index.query(matrix[q], k)[0].tolist())
        exact = set(truth.query(matrix[q], k)[0].tolist())
        hits += len(approx & exact)
    return hits / (len(queries) * k)


class TestBruteForce:
    def test_exact_top1_is_self(self):
        rng = np.random.default_rng(0)
        matrix = _clustered(rng)
        index = BruteForceIndex()
        index.build(matrix)
        for row in (0, 17, 399):
            rows, scores = index.query(matrix[row], 3)
            assert rows[0] == row
            assert scores[0] == pytest.approx(1.0, abs=1e-5)
            assert np.all(np.diff(scores) <= 1e-7)  # descending

    def test_matches_manual_cosine(self):
        rng = np.random.default_rng(1)
        matrix = rng.standard_normal((50, 8))
        index = BruteForceIndex()
        index.build(matrix)
        q = rng.standard_normal(8)
        rows, scores = index.query(q, 5)
        unit = unit_rows(matrix)
        manual = unit @ (q / np.linalg.norm(q)).astype(np.float32)
        expected = np.argsort(-manual.astype(np.float64), kind="stable")[:5]
        assert np.array_equal(rows, expected)
        assert np.allclose(scores, manual[expected], atol=1e-6)

    def test_k_larger_than_rows(self):
        index = BruteForceIndex()
        index.build(np.eye(3))
        rows, scores = index.query(np.array([1.0, 0, 0]), 10)
        assert rows.size == 3

    def test_refresh_only_touches_moved_rows(self):
        rng = np.random.default_rng(2)
        matrix = rng.standard_normal((30, 4))
        index = BruteForceIndex()
        index.build(matrix)
        moved = matrix.copy()
        moved[5] += 1.0
        grown = np.vstack([moved, rng.standard_normal((2, 4))])
        assert index.refresh(grown, tolerance=1e-6) == 3  # 1 moved + 2 new
        assert index.num_rows == 32
        rows, _ = index.query(grown[31], 1)
        assert rows[0] == 31

    def test_error_paths(self):
        index = BruteForceIndex()
        with pytest.raises(RuntimeError):
            index.query(np.ones(3), 1)
        index.build(np.eye(3))
        with pytest.raises(ValueError):
            index.query(np.ones(3), 0)
        with pytest.raises(ValueError, match="shrank"):
            index.refresh(np.eye(2))
        with pytest.raises(ValueError, match="dimensionality"):
            index.refresh(np.ones((3, 4)))


class TestLSH:
    def test_param_validation(self):
        with pytest.raises(ValueError):
            LSHIndex(num_tables=0)
        with pytest.raises(ValueError):
            LSHIndex(num_bits=0)
        with pytest.raises(ValueError):
            LSHIndex(num_bits=63)
        with pytest.raises(ValueError):
            LSHIndex(min_candidates=0)

    def test_recall_on_clustered_data(self):
        rng = np.random.default_rng(3)
        matrix = _clustered(rng)
        truth = BruteForceIndex()
        truth.build(matrix)
        index = LSHIndex(seed=0)
        index.build(matrix)
        queries = list(range(0, matrix.shape[0], 7))
        assert _recall(index, truth, matrix, queries) >= 0.9

    def test_scores_are_exact_cosines(self):
        # Candidates are re-ranked exactly: every returned score must
        # match the brute-force cosine for that row.
        rng = np.random.default_rng(4)
        matrix = _clustered(rng, clusters=4, per=25)
        index = LSHIndex(seed=1)
        index.build(matrix)
        unit = unit_rows(matrix)
        q = matrix[3]
        qn = (q / np.linalg.norm(q)).astype(np.float32)
        rows, scores = index.query(q, 5)
        assert np.allclose(scores, (unit[rows] @ qn).astype(np.float64))

    def test_refresh_identical_to_rebuild(self):
        rng = np.random.default_rng(5)
        matrix = _clustered(rng, clusters=6, per=30, dim=12)
        index = LSHIndex(seed=2)
        index.build(matrix)

        updated = matrix.copy()
        moved = rng.choice(matrix.shape[0], 12, replace=False)
        updated[moved] += rng.standard_normal((12, 12)) * 0.8
        updated = np.vstack([updated, rng.standard_normal((7, 12))])

        touched = index.refresh(
            np.asarray(updated, dtype=np.float32), tolerance=1e-9
        )
        assert touched == 12 + 7

        # A from-scratch rebuild of *the same serving index* reuses the
        # frozen hashing center (like the hyperplane seed); without it
        # the rebuild would derive a new center from the new matrix and
        # hash into different buckets.
        rebuilt = LSHIndex(
            seed=2, num_bits=index.num_bits, center=index.center
        )
        rebuilt.build(np.asarray(updated, dtype=np.float32))
        for q in range(0, updated.shape[0], 5):
            a_rows, a_scores = index.query(updated[q], 10)
            b_rows, b_scores = rebuilt.query(updated[q], 10)
            assert np.array_equal(a_rows, b_rows)
            assert np.array_equal(a_scores, b_scores)

    def test_refresh_below_tolerance_is_noop(self):
        rng = np.random.default_rng(6)
        matrix = rng.standard_normal((40, 8)).astype(np.float32)
        index = LSHIndex(seed=0)
        index.build(matrix)
        jittered = matrix + 1e-9
        assert index.refresh(jittered, tolerance=1e-6) == 0
        assert index.last_refresh_rows == 0

    def test_refresh_on_empty_index_builds(self):
        index = LSHIndex(seed=0)
        matrix = np.random.default_rng(0).standard_normal((10, 4))
        assert index.refresh(np.asarray(matrix, dtype=np.float32)) == 10
        assert index.num_rows == 10

    def test_deterministic_across_instances(self):
        rng = np.random.default_rng(7)
        matrix = _clustered(rng, clusters=3, per=20, dim=8)
        a, b = LSHIndex(seed=9), LSHIndex(seed=9)
        a.build(matrix)
        b.build(matrix)
        rows_a, scores_a = a.query(matrix[1], 8)
        rows_b, scores_b = b.query(matrix[1], 8)
        assert np.array_equal(rows_a, rows_b)
        assert np.array_equal(scores_a, scores_b)

    def test_query_before_build_raises(self):
        with pytest.raises(RuntimeError):
            LSHIndex().query(np.ones(4), 1)
