"""Unit + property tests for the random-walk engine and pair corpus."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import CSRAdjacency, Graph
from repro.walks import (
    AliasTable,
    TRUNCATED,
    build_pair_corpus,
    simulate_walks,
    walk_node_ids,
)


class TestAliasTable:
    def test_rejects_bad_weights(self):
        with pytest.raises(ValueError):
            AliasTable(np.array([]))
        with pytest.raises(ValueError):
            AliasTable(np.array([-1.0, 2.0]))
        with pytest.raises(ValueError):
            AliasTable(np.array([0.0, 0.0]))

    def test_single_outcome(self, rng):
        table = AliasTable(np.array([3.0]))
        assert all(table.sample(rng, 10) == 0)

    def test_sample_shape(self, rng):
        table = AliasTable(np.array([1.0, 2.0, 3.0]))
        assert table.sample(rng, size=(4, 5)).shape == (4, 5)

    def test_distribution_matches_weights(self, rng):
        weights = np.array([1.0, 2.0, 7.0])
        table = AliasTable(weights)
        draws = table.sample(rng, size=200_000)
        freq = np.bincount(draws, minlength=3) / draws.size
        np.testing.assert_allclose(freq, weights / weights.sum(), atol=0.01)

    @settings(max_examples=30, deadline=None)
    @given(
        weights=st.lists(
            st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=20
        )
    )
    def test_probability_invariants(self, weights):
        """Property: alias construction preserves total probability —
        each outcome's effective mass equals its normalised weight."""
        table = AliasTable(np.array(weights))
        n = table.n
        mass = np.zeros(n)
        for i in range(n):
            mass[i] += table.probability[i] / n
            mass[table.alias[i]] += (1.0 - table.probability[i]) / n
        expected = np.array(weights) / np.sum(weights)
        np.testing.assert_allclose(mass, expected, atol=1e-9)


class TestSimulateWalks:
    def test_shape_and_start(self, two_cliques, rng):
        csr = CSRAdjacency.from_graph(two_cliques)
        walks = simulate_walks(csr, [0, 1], num_walks=3, walk_length=7, rng=rng)
        assert walks.shape == (6, 7)
        assert all(walks[:3, 0] == 0)
        assert all(walks[3:, 0] == 1)

    def test_transitions_follow_edges(self, karate_like, rng):
        csr = CSRAdjacency.from_graph(karate_like)
        walks = simulate_walks(
            csr, np.arange(csr.num_nodes), num_walks=2, walk_length=10, rng=rng
        )
        for row in walks:
            for a, b in zip(row[:-1], row[1:]):
                if b == TRUNCATED:
                    break
                assert b in csr.neighbors(a)

    def test_isolated_node_truncates(self, rng):
        graph = Graph()
        graph.add_node("lonely")
        graph.add_edge(0, 1)
        csr = CSRAdjacency.from_graph(graph)
        idx = csr.index_of["lonely"]
        walks = simulate_walks(csr, [idx], num_walks=1, walk_length=5, rng=rng)
        assert walks[0, 0] == idx
        assert all(walks[0, 1:] == TRUNCATED)

    def test_empty_starts(self, triangle, rng):
        csr = CSRAdjacency.from_graph(triangle)
        walks = simulate_walks(csr, [], num_walks=2, walk_length=5, rng=rng)
        assert walks.shape == (0, 5)

    def test_bad_args_rejected(self, triangle, rng):
        csr = CSRAdjacency.from_graph(triangle)
        with pytest.raises(ValueError):
            simulate_walks(csr, [0], num_walks=0, walk_length=5, rng=rng)
        with pytest.raises(ValueError):
            simulate_walks(csr, [0], num_walks=1, walk_length=0, rng=rng)
        with pytest.raises(IndexError):
            simulate_walks(csr, [99], num_walks=1, walk_length=5, rng=rng)

    def test_weighted_transition_bias(self, rng):
        """Eq. (5): transition probability proportional to edge weight."""
        graph = Graph.from_edges([(0, 1, 9.0), (0, 2, 1.0)])
        csr = CSRAdjacency.from_graph(graph)
        assert not csr.is_uniform
        start = csr.index_of[0]
        walks = simulate_walks(csr, [start], num_walks=4000, walk_length=2, rng=rng)
        second = walks[:, 1]
        frac_to_1 = np.mean(second == csr.index_of[1])
        assert 0.85 < frac_to_1 < 0.95

    def test_deterministic_with_seed(self, karate_like):
        csr = CSRAdjacency.from_graph(karate_like)
        walks_a = simulate_walks(
            csr, [0, 5], 3, 10, np.random.default_rng(42)
        )
        walks_b = simulate_walks(
            csr, [0, 5], 3, 10, np.random.default_rng(42)
        )
        np.testing.assert_array_equal(walks_a, walks_b)

    def test_walk_node_ids_drops_truncation(self, rng):
        graph = Graph()
        graph.add_edge("a", "b")
        graph.add_node("z")
        csr = CSRAdjacency.from_graph(graph)
        walks = simulate_walks(
            csr, [csr.index_of["z"]], num_walks=1, walk_length=4, rng=rng
        )
        assert walk_node_ids(csr, walks) == [["z"]]


class TestPairCorpus:
    def test_window_pairs_of_short_walk(self):
        walks = np.array([[0, 1, 2]])
        corpus = build_pair_corpus(walks, window_size=1, num_nodes=3)
        pairs = set(zip(corpus.centers.tolist(), corpus.contexts.tolist()))
        assert pairs == {(0, 1), (1, 0), (1, 2), (2, 1)}

    def test_window_2_includes_second_order(self):
        walks = np.array([[0, 1, 2]])
        corpus = build_pair_corpus(walks, window_size=2, num_nodes=3)
        pairs = set(zip(corpus.centers.tolist(), corpus.contexts.tolist()))
        assert (0, 2) in pairs and (2, 0) in pairs

    def test_truncated_positions_excluded(self):
        walks = np.array([[0, 1, TRUNCATED]])
        corpus = build_pair_corpus(walks, window_size=2, num_nodes=2)
        assert TRUNCATED not in corpus.centers
        assert TRUNCATED not in corpus.contexts

    def test_counts_match_center_occurrences(self, karate_like, rng):
        csr = CSRAdjacency.from_graph(karate_like)
        walks = simulate_walks(csr, np.arange(csr.num_nodes), 2, 8, rng)
        corpus = build_pair_corpus(walks, window_size=3, num_nodes=csr.num_nodes)
        expected = np.bincount(corpus.centers, minlength=csr.num_nodes)
        np.testing.assert_array_equal(corpus.counts, expected)

    def test_symmetry_property(self, karate_like, rng):
        """Property: the corpus is symmetric — (a,b) appears iff (b,a)."""
        csr = CSRAdjacency.from_graph(karate_like)
        walks = simulate_walks(csr, np.arange(csr.num_nodes), 1, 10, rng)
        corpus = build_pair_corpus(walks, window_size=4, num_nodes=csr.num_nodes)
        forward: dict[tuple[int, int], int] = {}
        for a, b in zip(corpus.centers.tolist(), corpus.contexts.tolist()):
            forward[(a, b)] = forward.get((a, b), 0) + 1
        for (a, b), count in forward.items():
            assert forward.get((b, a), 0) == count

    def test_shuffled_preserves_multiset(self, rng):
        walks = np.array([[0, 1, 2, 3]])
        corpus = build_pair_corpus(walks, window_size=2, num_nodes=4)
        shuffled = corpus.shuffled(rng)
        assert sorted(
            zip(corpus.centers.tolist(), corpus.contexts.tolist())
        ) == sorted(zip(shuffled.centers.tolist(), shuffled.contexts.tolist()))

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            build_pair_corpus(np.zeros((1, 3), dtype=np.int64), 0, 3)
