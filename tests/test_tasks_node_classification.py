"""Tests for the node-classification task."""

from __future__ import annotations

import numpy as np
import pytest

from repro.tasks import (
    node_classification_f1,
    node_classification_over_time,
)


def clustered_embeddings(rng, labels: dict) -> dict:
    """Embeddings where same-label nodes cluster — easily classifiable."""
    unique = sorted(set(labels.values()))
    centers = {
        label: rng.normal(scale=5.0, size=8) for label in unique
    }
    return {
        node: centers[label] + rng.normal(scale=0.3, size=8)
        for node, label in labels.items()
    }


class TestSingleStep:
    def test_separable_labels_high_f1(self, rng):
        labels = {i: i % 3 for i in range(90)}
        embeddings = clustered_embeddings(rng, labels)
        scores = node_classification_f1(embeddings, labels, 0.7, rng)
        assert scores.micro_f1 > 0.9
        assert scores.macro_f1 > 0.9

    def test_random_embeddings_low_f1(self, rng):
        labels = {i: i % 3 for i in range(90)}
        embeddings = {i: rng.normal(size=8) for i in labels}
        scores = node_classification_f1(embeddings, labels, 0.7, rng)
        assert scores.micro_f1 < 0.6

    def test_train_ratio_bounds(self, rng):
        labels = {i: i % 2 for i in range(20)}
        embeddings = clustered_embeddings(rng, labels)
        for bad_ratio in (0.0, 1.0, -0.5):
            with pytest.raises(ValueError):
                node_classification_f1(embeddings, labels, bad_ratio, rng)

    def test_too_few_nodes_rejected(self, rng):
        labels = {0: "a", 1: "b"}
        embeddings = {0: np.ones(4), 1: np.zeros(4)}
        with pytest.raises(ValueError):
            node_classification_f1(embeddings, labels, 0.5, rng)

    def test_nodes_without_labels_ignored(self, rng):
        labels = {i: i % 2 for i in range(40)}
        embeddings = clustered_embeddings(rng, labels)
        embeddings["unlabeled"] = rng.normal(size=8)
        scores = node_classification_f1(embeddings, labels, 0.5, rng)
        assert scores.micro_f1 > 0.8


class TestOverTime:
    def test_unlabeled_dataset_rejected(self, tiny_network, rng):
        with pytest.raises(ValueError):
            node_classification_over_time(
                [{} for _ in tiny_network], tiny_network, 0.5, rng
            )

    def test_labeled_pipeline(self, labeled_network, rng):
        embeddings = []
        for snapshot in labeled_network:
            labels = {
                n: labeled_network.labels[n]
                for n in snapshot.nodes()
                if n in labeled_network.labels
            }
            step = clustered_embeddings(rng, labels)
            for node in snapshot.nodes():
                step.setdefault(node, rng.normal(size=8))
            embeddings.append(step)
        scores = node_classification_over_time(
            embeddings, labeled_network, 0.7, rng, min_labeled=10
        )
        assert scores.micro_f1 > 0.7

    def test_min_labeled_skips_sparse_steps(self, labeled_network, rng):
        embeddings = [
            {n: rng.normal(size=4) for n in snapshot.nodes()}
            for snapshot in labeled_network
        ]
        huge_threshold = 10_000
        with pytest.raises(ValueError):
            node_classification_over_time(
                embeddings, labeled_network, 0.5, rng,
                min_labeled=huge_threshold,
            )
