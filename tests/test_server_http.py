"""End-to-end daemon tests over real sockets: golden identity, routing,
hot reload under in-flight traffic, malformed-request handling, CLI.

All tests run a real :class:`repro.server.EmbeddingDaemon` on an
ephemeral loopback port and speak HTTP through asyncio streams — no
mocked transport.
"""

from __future__ import annotations

import asyncio
import io
import json
import re
import threading
import time
from contextlib import redirect_stdout
from urllib.request import urlopen

import numpy as np

from repro.cli import main as cli_main
from repro.serving import EmbeddingService, EmbeddingStore, save_store
from repro.server import EmbeddingDaemon


def run(coro):
    """Loop-runner for async tests (stdlib stand-in for pytest-asyncio)."""
    return asyncio.run(coro)


def make_store(num_nodes: int = 48, dim: int = 12, seed: int = 0):
    rng = np.random.default_rng(seed)
    store = EmbeddingStore()
    store.publish(
        (list(range(num_nodes)), rng.standard_normal((num_nodes, dim)))
    )
    return store


async def fetch(port: int, target: str, method: str = "GET", body=None):
    """One request on a fresh connection; returns (status, json payload)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    payload = b"" if body is None else json.dumps(body).encode("utf-8")
    head = f"{method} {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n"
    if payload:
        head += f"Content-Length: {len(payload)}\r\n"
    writer.write(head.encode("ascii") + b"\r\n" + payload)
    await writer.drain()
    data = await reader.read()
    writer.close()
    await writer.wait_closed()
    head, _, body = data.partition(b"\r\n\r\n")
    return int(head.split(b" ")[1]), json.loads(body)


async def raw_exchange(port: int, payload: bytes) -> bytes:
    """Write raw bytes, read whatever comes back until close."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(payload)
    await writer.drain()
    data = await reader.read()
    writer.close()
    await writer.wait_closed()
    return data


def with_daemon(services, coro_fn, **daemon_kwargs):
    """Start a daemon, run ``coro_fn(daemon)``, always close."""

    async def wrapper():
        daemon = EmbeddingDaemon(services, **daemon_kwargs)
        await daemon.start(port=0)
        try:
            return await coro_fn(daemon)
        finally:
            await daemon.close()

    return run(wrapper())


def neighbors_as_pairs(payload: dict) -> list[tuple]:
    return [(entry["node"], entry["score"]) for entry in payload["neighbors"]]


# ----------------------------------------------------------------------
# golden identity over the wire
# ----------------------------------------------------------------------
def test_http_knn_golden_identical_to_direct_service():
    """Concurrent HTTP answers == direct query_knn, byte for byte.

    JSON round-trips Python floats exactly (repr-based), so comparing
    the parsed pairs with ``==`` is a bit-level check.
    """
    store = make_store()
    nodes = list(range(12))

    async def scenario(daemon):
        return await asyncio.gather(
            *(fetch(daemon.port, f"/g/main/knn?node={n}&k=5") for n in nodes)
        )

    responses = with_daemon({"main": EmbeddingService(store)}, scenario)
    reference = EmbeddingService(store)
    for node, (status, payload) in zip(nodes, responses):
        assert status == 200
        assert payload["node"] == node
        assert payload["version"] == 0
        assert neighbors_as_pairs(payload) == reference.query_knn(node, 5)


def test_version_pinned_query_matches_direct_time_travel():
    store = make_store()
    rng = np.random.default_rng(9)
    moved = np.asarray(store.latest.matrix).copy()
    moved[:10] += rng.standard_normal((10, moved.shape[1])).astype(np.float32)
    store.publish((list(store.latest.nodes), moved))

    async def scenario(daemon):
        pinned = await fetch(daemon.port, "/g/main/knn?node=3&k=4&version=0")
        head = await fetch(daemon.port, "/g/main/knn?node=3&k=4")
        return pinned, head

    (s0, pinned), (s1, head) = with_daemon(
        {"main": EmbeddingService(store)}, scenario
    )
    assert (s0, s1) == (200, 200)
    assert pinned["version"] == 0 and head["version"] == 1
    reference = EmbeddingService(store)
    assert neighbors_as_pairs(pinned) == reference.query_knn(3, 4, version=0)
    assert neighbors_as_pairs(head) == reference.query_knn(3, 4)


# ----------------------------------------------------------------------
# hot reload
# ----------------------------------------------------------------------
def test_hot_swap_under_in_flight_queries():
    """Publishing mid-traffic swaps the served head without bad answers."""
    store = make_store(num_nodes=40)
    service = EmbeddingService(store)
    rng = np.random.default_rng(4)

    async def scenario(daemon):
        seen_versions = set()
        for round_number in range(4):
            answers = await asyncio.gather(
                *(
                    fetch(daemon.port, f"/g/main/knn?node={n}&k=3")
                    for n in range(8)
                )
            )
            for status, payload in answers:
                assert status == 200
                seen_versions.add(payload["version"])
                # Every answer was served at the round's head (the swap
                # happens before the batch dispatches) and must match a
                # fresh service over the same store byte for byte.
                assert payload["version"] == store.latest.version
                assert neighbors_as_pairs(payload) == EmbeddingService(
                    store
                ).query_knn(payload["node"], 3)
            # Publish a new version while the daemon keeps serving.
            matrix = np.asarray(store.latest.matrix).copy()
            matrix[:5] += rng.standard_normal((5, matrix.shape[1])).astype(
                np.float32
            ) * 0.1
            store.publish((list(store.latest.nodes), matrix))
        final_status, final = await fetch(
            daemon.port, "/g/main/knn?node=0&k=3"
        )
        return seen_versions, final["version"], daemon.stats.index_swaps

    seen_versions, final_version, swaps = with_daemon(
        {"main": service}, scenario, reload_interval=None
    )
    assert final_version == store.latest.version == 4
    assert len(seen_versions) >= 2  # traffic observed the head advancing
    assert swaps >= 2


def test_reload_endpoint_and_background_poller():
    store = make_store()
    service = EmbeddingService(store)

    async def scenario(daemon):
        status, before = await fetch(daemon.port, "/g/main/knn?node=0&k=3")
        assert before["version"] == 0
        matrix = np.asarray(store.latest.matrix).copy() + 0.25
        store.publish((list(store.latest.nodes), matrix))
        status, reloaded = await fetch(
            daemon.port, "/g/main/reload", method="POST"
        )
        assert status == 200
        assert reloaded["indexed_version"] == 1
        assert reloaded["rows_rehashed"] > 0
        # GET on a POST-only endpoint is a 405.
        status, _ = await fetch(daemon.port, "/g/main/reload")
        assert status == 405
        # The background poller also swaps without traffic.
        store.publish((list(store.latest.nodes), matrix + 0.25))
        await asyncio.sleep(0.15)
        return daemon.graphs["main"].service.indexed_version

    indexed = with_daemon({"main": service}, scenario, reload_interval=0.05)
    assert indexed == 2


def test_daemon_rejects_nonpositive_reload_interval():
    import pytest

    service = EmbeddingService(make_store(num_nodes=8))
    for bad in (0, -1.0):
        with pytest.raises(ValueError, match="reload_interval"):
            EmbeddingDaemon({"m": service}, reload_interval=bad)


def test_reload_poller_survives_a_bad_head():
    """A malformed publish must not silently kill idle hot-reload.

    The poller keeps running, ``/healthz`` surfaces the error, head
    queries *degrade* to the last good indexed version (200, stale
    version id) instead of failing, and pinned-version time travel
    (which never refreshes) still serves the last good version.
    """
    store = make_store(num_nodes=20, dim=8)
    service = EmbeddingService(store)

    async def scenario(daemon):
        status, before = await fetch(daemon.port, "/g/main/knn?node=0&k=3")
        assert (status, before["version"]) == (200, 0)
        # A trainer bug publishes a head with the wrong dimensionality:
        # refresh raises, the poller must log-and-continue, not die.
        rng = np.random.default_rng(1)
        store.publish(
            (list(store.latest.nodes), rng.standard_normal((20, 12)))
        )
        await asyncio.sleep(0.15)
        status, health = await fetch(daemon.port, "/healthz")
        assert status == 200
        assert health["last_reload_error"] is not None
        assert daemon.stats.reload_errors >= 1
        # Head queries degrade to the last good indexed version...
        head_status, head_answer = await fetch(
            daemon.port, "/g/main/knn?node=0&k=3"
        )
        assert (head_status, head_answer["version"]) == (200, 0)
        assert neighbors_as_pairs(head_answer) == neighbors_as_pairs(before)
        # ...while pinned time travel bypasses refresh and still works.
        pinned_status, pinned = await fetch(
            daemon.port, "/g/main/knn?node=0&k=3&version=0"
        )
        assert pinned_status == 200
        return before, pinned

    before, pinned = with_daemon(
        {"main": service}, scenario, reload_interval=0.05
    )
    reference = EmbeddingService(store)
    assert neighbors_as_pairs(pinned) == reference.query_knn(0, 3, version=0)


# ----------------------------------------------------------------------
# routing and error handling
# ----------------------------------------------------------------------
def test_multi_store_routing_is_independent():
    store_a, store_b = make_store(seed=1), make_store(num_nodes=30, seed=2)

    async def scenario(daemon):
        a = await fetch(daemon.port, "/g/alpha/knn?node=0&k=3")
        b = await fetch(daemon.port, "/g/beta/knn?node=0&k=3")
        missing = await fetch(daemon.port, "/g/gamma/knn?node=0&k=3")
        return a, b, missing

    (sa, pa), (sb, pb), (sm, pm) = with_daemon(
        {"alpha": EmbeddingService(store_a), "beta": EmbeddingService(store_b)},
        scenario,
    )
    assert (sa, sb, sm) == (200, 200, 404)
    assert neighbors_as_pairs(pa) == EmbeddingService(store_a).query_knn(0, 3)
    assert neighbors_as_pairs(pb) == EmbeddingService(store_b).query_knn(0, 3)
    assert "unknown graph" in pm["error"]


def test_malformed_requests_get_4xx():
    store = make_store(num_nodes=16)

    async def scenario(daemon):
        port = daemon.port
        cases = {
            "missing node": await fetch(port, "/g/main/knn"),
            "bad k": await fetch(port, "/g/main/knn?node=1&k=zero"),
            "k below 1": await fetch(port, "/g/main/knn?node=1&k=0"),
            "bad version": await fetch(port, "/g/main/knn?node=1&version=x"),
            "unknown node": await fetch(port, "/g/main/knn?node=999"),
            "unknown version": await fetch(port, "/g/main/knn?node=1&version=7"),
            "unknown endpoint": await fetch(port, "/g/main/nope"),
            "unknown route": await fetch(port, "/frobnicate"),
            "bad method": await fetch(port, "/healthz", method="POST"),
            "bad metric": await fetch(port, "/g/main/score?u=1&v=2&metric=x"),
            "bad bool": await fetch(port, "/g/main/knn?node=1&exclude_self=maybe"),
        }
        garbled = await raw_exchange(port, b"NOT-HTTP\r\n\r\n")
        bad_version_line = await raw_exchange(
            port, b"GET / HTTP/9.9\r\n\r\n"
        )
        return cases, garbled, bad_version_line

    cases, garbled, bad_version_line = with_daemon(
        {"main": EmbeddingService(make_store(num_nodes=16))}, scenario
    )
    expected = {
        "missing node": 400,
        "bad k": 400,
        "k below 1": 400,
        "bad version": 400,
        "unknown node": 404,
        "unknown version": 404,
        "unknown endpoint": 404,
        "unknown route": 404,
        "bad method": 405,
        "bad metric": 400,
        "bad bool": 400,
    }
    for label, (status, payload) in cases.items():
        assert status == expected[label], (label, status, payload)
        assert "error" in payload, label
    assert garbled.startswith(b"HTTP/1.1 400 ")
    assert bad_version_line.startswith(b"HTTP/1.1 400 ")


def test_score_embed_versions_endpoints():
    store = make_store()
    reference = EmbeddingService(store)

    async def scenario(daemon):
        port = daemon.port
        score = await fetch(port, "/g/main/score?u=1&v=2")
        dot = await fetch(port, "/g/main/score?u=1&v=2&metric=dot")
        embed = await fetch(port, "/g/main/embed?node=3")
        versions = await fetch(port, "/g/main/versions")
        return score, dot, embed, versions

    (ss, score), (sd, dot), (se, embed), (sv, versions) = with_daemon(
        {"main": EmbeddingService(store)}, scenario
    )
    assert (ss, sd, se, sv) == (200, 200, 200, 200)
    assert score["score"] == reference.score_edge(1, 2)
    assert dot["score"] == reference.score_edge(1, 2, metric="dot")
    assert embed["vector"] == [float(x) for x in store.latest.vector(3)]
    assert embed["dim"] == store.latest.dim
    assert len(versions["versions"]) == 1
    assert versions["versions"][0]["nodes"] == store.latest.num_nodes


def test_healthz_and_stats_shapes():
    store = make_store()

    async def scenario(daemon):
        await asyncio.gather(
            *(fetch(daemon.port, f"/g/main/knn?node={n}&k=3") for n in range(9))
        )
        health = await fetch(daemon.port, "/healthz")
        stats = await fetch(daemon.port, "/stats")
        return health, stats

    (hs, health), (ss, stats) = with_daemon(
        {"main": EmbeddingService(store)}, scenario
    )
    assert (hs, ss) == (200, 200)
    assert health["status"] == "ok"
    graph = health["graphs"]["main"]
    assert graph["versions"] == 1
    assert graph["backend"] == "lsh"
    assert stats["requests"] >= 9
    assert stats["qps"] > 0
    knn = stats["knn"]
    assert knn["queries"] >= 9
    assert knn["batch_dispatches"] >= 1
    histogram = knn["batch_size_histogram"]
    assert sum(int(size) * count for size, count in histogram.items()) >= 9
    assert stats["latency_ms"]["p50"] is not None
    assert stats["latency_ms"]["p99"] is not None
    assert "200" in stats["responses_by_status"]


def test_keep_alive_connection_serves_multiple_requests():
    store = make_store()

    async def scenario(daemon):
        reader, writer = await asyncio.open_connection("127.0.0.1", daemon.port)
        payloads = []
        try:
            for node in (1, 2):
                writer.write(
                    f"GET /g/main/knn?node={node}&k=3 HTTP/1.1\r\n"
                    "Host: t\r\n\r\n".encode("ascii")
                )
                await writer.drain()
                header = await reader.readuntil(b"\r\n\r\n")
                length = int(
                    re.search(rb"content-length: (\d+)", header.lower()).group(1)
                )
                payloads.append(json.loads(await reader.readexactly(length)))
                assert b"connection: keep-alive" in header.lower()
        finally:
            writer.close()
            await writer.wait_closed()
        return payloads

    payloads = with_daemon({"main": EmbeddingService(store)}, scenario)
    assert [p["node"] for p in payloads] == [1, 2]


def test_repeated_query_parameter_first_value_wins():
    store = make_store(num_nodes=16)

    async def scenario(daemon):
        return await fetch(daemon.port, "/g/main/knn?node=1&node=2&k=3")

    status, payload = with_daemon(
        {"main": EmbeddingService(store)}, scenario
    )
    assert status == 200
    assert payload["node"] == 1  # documented: repeats collapse left-to-right


def test_string_node_ids_round_trip():
    rng = np.random.default_rng(0)
    store = EmbeddingStore()
    names = [f"user-{i}" for i in range(20)]
    store.publish((names, rng.standard_normal((20, 8))))

    async def scenario(daemon):
        return await fetch(daemon.port, '/g/main/knn?node="user-3"&k=3')

    status, payload = with_daemon({"main": EmbeddingService(store)}, scenario)
    assert status == 200
    assert payload["node"] == "user-3"
    reference = EmbeddingService(store)
    assert neighbors_as_pairs(payload) == reference.query_knn("user-3", 3)


# ----------------------------------------------------------------------
# idle keep-alive timeout (slow-loris guard)
# ----------------------------------------------------------------------
def test_idle_connection_times_out_with_408():
    """A silent keep-alive client is answered 408 and disconnected."""
    store = make_store(num_nodes=16)

    async def scenario(daemon):
        # A connection that never sends a byte...
        silent = await raw_exchange_after_delay(daemon.port, b"", 0.0)
        # ...and a slow-loris one trickling a partial request line.
        loris = await raw_exchange_after_delay(
            daemon.port, b"GET /g/main/knn?no", 0.0
        )
        return silent, loris

    async def raw_exchange_after_delay(port, payload, delay):
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        if delay:
            await asyncio.sleep(delay)
        if payload:
            writer.write(payload)
            await writer.drain()
        data = await reader.read()  # returns once the daemon closes us
        writer.close()
        await writer.wait_closed()
        return data

    silent, loris = with_daemon(
        {"main": EmbeddingService(store)}, scenario, idle_timeout=0.3
    )
    for data in (silent, loris):
        assert data.startswith(b"HTTP/1.1 408 ")
        assert b"connection: close" in data.lower()
        assert b"without a complete request" in data


def test_idle_timeout_stats_and_active_clients_unaffected():
    """408s are counted; clients that do send requests never see one."""
    store = make_store(num_nodes=16)

    async def scenario(daemon):
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", daemon.port
        )
        try:
            # Two requests straddling an idle gap shorter than the
            # timeout: the per-request timer resets on each exchange.
            responses = []
            for _ in range(2):
                writer.write(
                    b"GET /g/main/knn?node=1&k=3 HTTP/1.1\r\nHost: t\r\n\r\n"
                )
                await writer.drain()
                header = await reader.readuntil(b"\r\n\r\n")
                length = int(
                    re.search(rb"content-length: (\d+)", header.lower()).group(1)
                )
                responses.append(header + await reader.readexactly(length))
                await asyncio.sleep(0.25)
        finally:
            writer.close()
            await writer.wait_closed()
        idle_reader, idle_writer = await asyncio.open_connection(
            "127.0.0.1", daemon.port
        )
        await idle_reader.read()
        idle_writer.close()
        await idle_writer.wait_closed()
        return responses, daemon.stats.idle_timeouts

    responses, idle_timeouts = with_daemon(
        {"main": EmbeddingService(store)}, scenario, idle_timeout=0.4
    )
    assert all(r.startswith(b"HTTP/1.1 200 ") for r in responses)
    assert idle_timeouts == 1


def test_daemon_rejects_nonpositive_idle_timeout():
    store = make_store(num_nodes=8)
    import pytest

    with pytest.raises(ValueError, match="idle_timeout"):
        EmbeddingDaemon({"main": EmbeddingService(store)}, idle_timeout=0)
    # None is the documented "wait forever" mode (shard workers).
    EmbeddingDaemon({"main": EmbeddingService(store)}, idle_timeout=None)


# ----------------------------------------------------------------------
# empty-store guard
# ----------------------------------------------------------------------
def test_empty_store_answers_503_until_first_publish():
    """A graph with no published versions is unavailable, not broken."""
    store = EmbeddingStore()
    service = EmbeddingService(store)

    async def scenario(daemon):
        before = {}
        for route in ("knn?node=0&k=3", "score?u=0&v=1", "embed?node=0"):
            before[route] = await fetch(daemon.port, f"/g/main/{route}")
        health = await fetch(daemon.port, "/healthz")
        versions = await fetch(daemon.port, "/g/main/versions")
        # First publish flips the graph live without a restart.
        rng = np.random.default_rng(0)
        store.publish((list(range(12)), rng.standard_normal((12, 6))))
        after = await fetch(daemon.port, "/g/main/knn?node=0&k=3")
        return before, health, versions, after

    before, health, versions, after = with_daemon({"main": service}, scenario)
    for route, (status, payload) in before.items():
        assert status == 503, route
        assert "no published versions" in payload["error"]
    assert health[0] == 200 and health[1]["status"] == "ok"
    assert versions[0] == 200 and versions[1]["versions"] == []
    status, payload = after
    assert status == 200
    reference = EmbeddingService(store)
    assert neighbors_as_pairs(payload) == reference.query_knn(0, 3)


def test_empty_service_refresh_is_a_noop():
    """Regression: refresh() on a version-less store must not raise."""
    service = EmbeddingService(EmbeddingStore())
    assert service.refresh() == 0
    assert service.indexed_version is None


# ----------------------------------------------------------------------
# kNN by raw vector (the router's scatter target)
# ----------------------------------------------------------------------
def test_knn_by_vector_get_and_post_match_direct_service():
    store = make_store(num_nodes=24, dim=6)
    record = store.latest
    vector = [float(x) for x in record.vector(5)]
    reference = EmbeddingService(store)

    async def scenario(daemon):
        from urllib.parse import quote

        encoded = quote(json.dumps(vector), safe="")
        got = await fetch(daemon.port, f"/g/main/knn?vector={encoded}&k=4")
        posted = await fetch(
            daemon.port,
            "/g/main/knn",
            method="POST",
            body={"vector": vector, "k": 4},
        )
        pinned = await fetch(
            daemon.port,
            "/g/main/knn",
            method="POST",
            body={"vector": vector, "k": 4, "version": 0},
        )
        bad = await fetch(
            daemon.port, "/g/main/knn", method="POST", body={"vector": []}
        )
        return got, posted, pinned, bad

    got, posted, pinned, bad = with_daemon(
        {"main": EmbeddingService(store)}, scenario
    )
    expected_head = reference.query_knn_vector(np.asarray(vector), 4)
    expected_pinned = reference.query_knn_vector(
        np.asarray(vector), 4, version=0
    )
    for (status, payload), expected in (
        (got, expected_head),
        (posted, expected_head),
        (pinned, expected_pinned),
    ):
        assert status == 200
        assert payload["node"] is None
        assert payload["version"] == 0
        assert neighbors_as_pairs(payload) == expected
    assert bad[0] == 400
    assert "non-empty array" in bad[1]["error"]


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_serve_http_golden_over_the_wire(tmp_path):
    """`repro serve-http` answers exactly like direct query_knn."""
    store = make_store()
    store_path = tmp_path / "store.npz"
    save_store(store, store_path)

    buffer = io.StringIO()
    result: dict = {}

    def target():
        with redirect_stdout(buffer):
            result["rc"] = cli_main(
                [
                    "serve-http", "--store", f"g={store_path}",
                    "--port", "0", "--max-seconds", "4",
                ]
            )

    thread = threading.Thread(target=target)
    thread.start()
    try:
        deadline = time.monotonic() + 10
        port = None
        while time.monotonic() < deadline:
            match = re.search(r"http://127\.0\.0\.1:(\d+)", buffer.getvalue())
            if match:
                port = int(match.group(1))
                break
            time.sleep(0.05)
        assert port is not None, "daemon never announced its address"
        with urlopen(f"http://127.0.0.1:{port}/g/g/knn?node=7&k=5", timeout=5) as r:
            payload = json.load(r)
        with urlopen(f"http://127.0.0.1:{port}/healthz", timeout=5) as r:
            health = json.load(r)
    finally:
        thread.join(timeout=15)
    assert result["rc"] == 0
    assert health["status"] == "ok"
    reference = EmbeddingService(store)
    assert neighbors_as_pairs(payload) == reference.query_knn(7, 5)


def test_cli_serve_http_rejects_bad_store(tmp_path):
    import pytest

    with pytest.raises(SystemExit, match="cannot load store"):
        cli_main(
            [
                "serve-http", "--store", f"g={tmp_path / 'missing.npz'}",
                "--port", "0", "--max-seconds", "0.1",
            ]
        )
