"""Unit tests for the change score (Eq. 3) and selection softmax (Eq. 4)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Reservoir
from repro.core.scoring import (
    cell_scores,
    change_score,
    sample_representative,
    softmax_probabilities,
)
from repro.graph import Graph


@pytest.fixture
def star_previous() -> Graph:
    """Hub 0 with leaves 1..4 — distinct degrees for inertia testing."""
    return Graph.from_edges([(0, i) for i in (1, 2, 3, 4)])


class TestChangeScore:
    def test_zero_without_changes(self, star_previous):
        assert change_score(1, Reservoir(), star_previous) == 0.0

    def test_inertia_normalisation(self, star_previous):
        """Same change magnitude scores higher on a low-degree node."""
        reservoir = Reservoir()
        reservoir.accumulate({0: 2, 1: 2})
        hub_score = change_score(0, reservoir, star_previous)  # deg 4
        leaf_score = change_score(1, reservoir, star_previous)  # deg 1
        assert hub_score == pytest.approx(0.5)
        assert leaf_score == pytest.approx(2.0)
        assert leaf_score > hub_score

    def test_new_node_unit_inertia(self, star_previous):
        reservoir = Reservoir()
        reservoir.accumulate({99: 3})
        assert change_score(99, reservoir, star_previous) == pytest.approx(3.0)

    def test_no_previous_snapshot(self):
        reservoir = Reservoir()
        reservoir.accumulate({0: 4})
        assert change_score(0, reservoir, None) == pytest.approx(4.0)


class TestSoftmax:
    def test_uniform_on_inactive_cell(self):
        """Eq. 4's e^0 = 1 guarantee: all-zero scores give uniform."""
        probabilities = softmax_probabilities(np.zeros(5))
        np.testing.assert_allclose(probabilities, 0.2)

    def test_monotone_in_score(self):
        probabilities = softmax_probabilities(np.array([0.0, 1.0, 2.0]))
        assert probabilities[0] < probabilities[1] < probabilities[2]

    def test_overflow_guard(self):
        probabilities = softmax_probabilities(np.array([0.0, 5000.0]))
        assert np.isfinite(probabilities).all()
        assert probabilities[1] == pytest.approx(1.0)

    def test_empty_cell_rejected(self):
        with pytest.raises(ValueError):
            softmax_probabilities(np.array([]))

    @settings(max_examples=50, deadline=None)
    @given(
        scores=st.lists(
            st.floats(min_value=-50, max_value=50), min_size=1, max_size=30
        )
    )
    def test_valid_distribution_property(self, scores):
        """Property: softmax output is a valid probability distribution."""
        probabilities = softmax_probabilities(np.array(scores))
        assert np.all(probabilities >= 0)
        assert probabilities.sum() == pytest.approx(1.0)


class TestSampling:
    def test_cell_scores_vector(self, star_previous):
        reservoir = Reservoir()
        reservoir.accumulate({1: 1})
        scores = cell_scores([0, 1, 2], reservoir, star_previous)
        assert scores.shape == (3,)
        assert scores[1] > 0 and scores[0] == scores[2] == 0

    def test_biased_representative(self, star_previous, rng):
        """A heavily changed node must dominate selection in its cell."""
        reservoir = Reservoir()
        reservoir.accumulate({1: 10})
        picks = [
            sample_representative([1, 2, 3], reservoir, star_previous, rng)
            for _ in range(200)
        ]
        assert picks.count(1) > 190

    def test_uniform_when_inactive(self, star_previous, rng):
        picks = [
            sample_representative([1, 2], Reservoir(), star_previous, rng)
            for _ in range(400)
        ]
        frequency = picks.count(1) / len(picks)
        assert 0.4 < frequency < 0.6
