"""Tests for the dataset generators, registry, and IO round-trips."""

from __future__ import annotations

import pytest

from repro.datasets import (
    coauthor_growth,
    community_citation_growth,
    interaction_stream,
    list_datasets,
    load_dataset,
    get_spec,
    preferential_attachment_graph,
    read_edge_stream,
    read_labels,
    read_snapshots,
    router_churn,
    write_edge_stream,
    write_labels,
    write_snapshots,
)
from repro.graph import EdgeEvent, is_connected


class TestGenerators:
    def test_pa_graph_connected(self, rng):
        graph = preferential_attachment_graph(50, 2, rng)
        assert graph.number_of_nodes() == 50
        assert is_connected(graph)

    def test_pa_graph_hub_structure(self, rng):
        graph = preferential_attachment_graph(200, 2, rng)
        degrees = sorted((graph.degree(n) for n in graph.nodes()), reverse=True)
        # Preferential attachment: heavy head relative to the median.
        assert degrees[0] > 4 * degrees[len(degrees) // 2]

    def test_interaction_stream_times_monotone_window(self):
        events = interaction_stream(
            num_nodes=80, num_steps=6, num_communities=4,
            events_per_step=20, seed=0,
        )
        assert all(0 <= e.time <= 5 for e in events)
        assert all(e.kind == "add" for e in events)

    def test_coauthor_growth_labels_complete(self):
        events, labels = coauthor_growth(
            num_steps=4, papers_per_step=5, num_fields=3, seed=0
        )
        touched = {e.u for e in events} | {e.v for e in events}
        assert touched <= set(labels)

    def test_citation_growth_homophily(self):
        """With strong homophily most edges stay within one label."""
        events, labels = community_citation_growth(
            num_steps=5, nodes_per_step=20, num_labels=4, seed=0,
            homophily=0.9,
        )
        same = sum(1 for e in events if labels[e.u] == labels[e.v])
        assert same / len(events) > 0.6

    def test_label_noise_shuffles(self):
        _, clean = community_citation_growth(
            num_steps=3, nodes_per_step=15, num_labels=4, seed=5,
            label_noise=0.0,
        )
        _, noisy = community_citation_growth(
            num_steps=3, nodes_per_step=15, num_labels=4, seed=5,
            label_noise=0.5,
        )
        changed = sum(clean[n] != noisy[n] for n in clean)
        assert changed > len(clean) * 0.2

    def test_router_churn_has_deletions(self):
        network = router_churn(initial_nodes=40, num_steps=5, seed=0)
        total_removed_nodes = sum(
            len(diff.removed_nodes) for diff in network.diffs()
        )
        total_removed_edges = sum(
            len(diff.removed_edges) for diff in network.diffs()
        )
        assert total_removed_nodes > 0
        assert total_removed_edges > 0

    def test_generators_deterministic(self):
        a = interaction_stream(50, 4, 3, 10, seed=9)
        b = interaction_stream(50, 4, 3, 10, seed=9)
        assert a == b


class TestRegistry:
    def test_six_datasets_registered(self):
        names = list_datasets()
        assert len(names) == 6
        assert "as733-sim" in names and "cora-sim" in names

    def test_specs_match_paper_characteristics(self):
        assert get_spec("as733-sim").has_deletions
        assert not get_spec("elec-sim").has_deletions
        assert get_spec("cora-sim").has_labels
        assert get_spec("dblp-sim").has_labels
        assert not get_spec("hepph-sim").has_labels

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ValueError):
            load_dataset("imaginary")

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            load_dataset("elec-sim", scale=0.0)

    def test_snapshot_override(self):
        network = load_dataset("elec-sim", scale=0.25, seed=0, snapshots=4)
        assert network.num_snapshots == 4

    def test_load_deterministic(self):
        a = load_dataset("cora-sim", scale=0.25, seed=3, snapshots=4)
        b = load_dataset("cora-sim", scale=0.25, seed=3, snapshots=4)
        for ga, gb in zip(a, b):
            assert ga.edge_set() == gb.edge_set()

    @pytest.mark.parametrize("name", list_datasets())
    def test_all_datasets_materialise_connected(self, name):
        network = load_dataset(name, scale=0.25, seed=1, snapshots=4)
        assert network.num_snapshots == 4
        for snapshot in network:
            assert snapshot.number_of_nodes() > 5
            assert is_connected(snapshot)

    def test_labels_cover_labelled_datasets(self):
        network = load_dataset("dblp-sim", scale=0.25, seed=1, snapshots=4)
        final_nodes = network[-1].node_set()
        labeled = final_nodes & set(network.labels)
        assert len(labeled) > 0.9 * len(final_nodes)


class TestIO:
    def test_edge_stream_round_trip(self, tmp_path):
        events = [
            EdgeEvent(0, 1, 0.0),
            EdgeEvent(1, 2, 1.0),
            EdgeEvent(0, 1, 2.0, kind="remove"),
        ]
        path = tmp_path / "stream.tsv"
        write_edge_stream(path, events)
        back = read_edge_stream(path)
        assert back == events

    def test_labels_round_trip(self, tmp_path):
        labels = {0: 1, 7: 3, 9: 0}
        path = tmp_path / "labels.tsv"
        write_labels(path, labels)
        assert read_labels(path) == labels

    def test_snapshots_round_trip(self, tmp_path, churn_network):
        path = tmp_path / "snapshots.txt"
        write_snapshots(path, churn_network)
        back = read_snapshots(path, name="roundtrip")
        assert back.num_snapshots == churn_network.num_snapshots
        for ga, gb in zip(churn_network, back):
            assert ga.node_set() == gb.node_set()
            assert ga.edge_set() == gb.edge_set()

    def test_malformed_stream_rejected(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("0 1\n")
        with pytest.raises(ValueError):
            read_edge_stream(path)

    def test_comments_skipped(self, tmp_path):
        path = tmp_path / "ok.tsv"
        path.write_text("% comment\n# another\n0 1 3.5\n")
        events = read_edge_stream(path)
        assert len(events) == 1
        assert events[0].time == 3.5
