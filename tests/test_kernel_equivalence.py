"""Differential tests: every kernel backend is bit-identical (ISSUE 9).

The correctness story of :mod:`repro.sgns.kernels` is this suite, not the
kernels themselves: the canonical vectorised ``python`` backend, the
``interpreted`` loop twins (the exact source numba compiles), and — when
numba is importable, as on the CI numba leg — the compiled ``numba``
backend must produce **bit-identical** results for

* the SGNS gradient step (weights after N updates, and the scores/loss),
* walk transitions (uniform: all backends; alias: kernel vs the
  ``alias.py`` reference decision rule on cloned draws),
* the fused walk→train stream vs materialized-corpus training.

On hosts without numba the suite still proves the loop algorithms
equivalent through the interpreted twin, and additionally covers the
fallback contract: ``auto`` silently resolves to python, ``numba`` raises
a clear error, and spawned workers resolve the backend per process.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.glodyne import GloDyNE, GloDyNEConfig
from repro.graph.csr import CSRAdjacency
from repro.graph.static import Graph
from repro.parallel import generate_corpus, generate_walks, iter_walk_chunks
from repro.sgns import kernels
from repro.sgns.model import SGNSModel
from repro.sgns.trainer import TrainConfig, train_on_corpus, train_on_walk_stream
from repro.walks.alias import AliasTable
from repro.walks.corpus import PairCorpus, StreamedCorpusBuilder, build_pair_corpus
from repro.walks.random_walk import simulate_walks


def loop_backends() -> list[str]:
    """Every non-canonical backend importable on this host."""
    names = ["interpreted"]
    if kernels.numba_available():
        names.append("numba")
    return names


def ring_graph(n: int = 40, skip: int = 7) -> Graph:
    g = Graph()
    for i in range(n):
        g.add_edge(i, (i + 1) % n)
        g.add_edge(i, (i + skip) % n)
    return g


def weighted_ring(n: int = 24) -> Graph:
    g = Graph()
    for i in range(n):
        g.add_edge(i, (i + 1) % n, weight=1.0 + (i % 3))
        g.add_edge(i, (i + 5) % n, weight=0.25 + (i % 2))
    return g


# ----------------------------------------------------------------------
# 1. gradient step: hypothesis-driven bit-identity
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    dim=st.integers(1, 24),
    vocab=st.integers(2, 60),
    batch=st.integers(1, 48),
    negative=st.integers(1, 7),
    steps=st.integers(1, 6),
    lr=st.floats(1e-4, 0.5),
)
def test_sgns_step_backends_bit_identical(
    seed, dim, vocab, batch, negative, steps, lr
):
    """N gradient steps leave identical weights under every backend."""
    rng = np.random.default_rng(seed)
    w_in = (rng.random((vocab, dim)) - 0.5) / dim
    w_out = rng.standard_normal((vocab, dim)) * 0.1
    centers = rng.integers(0, vocab, batch)
    contexts = rng.integers(0, vocab, batch)
    negatives = rng.integers(0, vocab, (batch, negative))
    table = kernels.sigmoid_table()

    ref_in, ref_out = w_in.copy(), w_out.copy()
    ref_scores = [
        kernels.sgns_step_numpy(
            ref_in, ref_out, centers, contexts, negatives, lr, table
        )
        for _ in range(steps)
    ]
    for name in loop_backends():
        step = kernels.resolve_backend(name).sgns_step
        got_in, got_out = w_in.copy(), w_out.copy()
        got_scores = [
            step(got_in, got_out, centers, contexts, negatives, lr, table)
            for _ in range(steps)
        ]
        assert np.array_equal(ref_in, got_in), name
        assert np.array_equal(ref_out, got_out), name
        for (rp, rn), (gp, gn) in zip(ref_scores, got_scores):
            assert np.array_equal(rp, gp) and np.array_equal(rn, gn), name


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    num_pairs=st.integers(1, 120),
    vocab=st.integers(3, 30),
    batch_size=st.integers(1, 40),
    prefetch=st.integers(1, 4),
    epochs=st.integers(1, 3),
)
def test_train_on_corpus_backends_bit_identical(
    seed, num_pairs, vocab, batch_size, prefetch, epochs
):
    """Full training rounds (permutation + negatives + lr schedule) agree."""
    data_rng = np.random.default_rng(seed)
    centers = data_rng.integers(0, vocab, num_pairs)
    contexts = data_rng.integers(0, vocab, num_pairs)
    counts = np.bincount(centers, minlength=vocab)
    corpus = PairCorpus(centers=centers, contexts=contexts, counts=counts)
    row_of = np.arange(vocab)

    def run(backend: str) -> tuple[np.ndarray, np.ndarray, float]:
        model = SGNSModel(dim=9, rng=np.random.default_rng(seed + 1))
        model.ensure_nodes(range(vocab))
        cfg = TrainConfig(
            epochs=epochs,
            batch_size=batch_size,
            negative_prefetch=prefetch,
            backend=backend,
        )
        loss = train_on_corpus(
            model, corpus, row_of, np.random.default_rng(seed + 2),
            config=cfg, compute_loss=True,
        )
        return model.w_in.copy(), model.w_out.copy(), loss

    ref = run("python")
    for name in loop_backends():
        got = run(name)
        assert np.array_equal(ref[0], got[0]), name
        assert np.array_equal(ref[1], got[1]), name
        assert ref[2] == got[2], name  # loss is backend-invariant too


def test_model_train_batch_default_is_python_kernel(rng):
    """``train_batch`` without an explicit step uses the canonical kernel."""
    model_a = SGNSModel(dim=8, rng=np.random.default_rng(0))
    model_b = SGNSModel(dim=8, rng=np.random.default_rng(0))
    for model in (model_a, model_b):
        model.ensure_nodes(range(20))
    centers = rng.integers(0, 20, 16)
    contexts = rng.integers(0, 20, 16)
    negatives = rng.integers(0, 20, (16, 5))
    loss_a = model_a.train_batch(centers, contexts, negatives, 0.025, True)
    loss_b = model_b.train_batch(
        centers, contexts, negatives, 0.025, True,
        step=kernels.resolve_backend("python").sgns_step,
    )
    assert loss_a == loss_b
    assert np.array_equal(model_a.w_in, model_b.w_in)
    assert np.array_equal(model_a.w_out, model_b.w_out)


# ----------------------------------------------------------------------
# 2. walk transitions
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", ["interpreted", "auto"])
def test_uniform_walks_bit_identical_across_backends(backend):
    """Unweighted walks share the rng stream → identical on all backends."""
    csr = CSRAdjacency.from_graph(ring_graph())
    starts = np.arange(csr.num_nodes)
    ref = simulate_walks(csr, starts, 3, 12, np.random.default_rng(9))
    got = simulate_walks(
        csr, starts, 3, 12, np.random.default_rng(9), backend=backend
    )
    assert np.array_equal(ref, got)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_alias_kernel_matches_alias_table_reference(seed):
    """Kernel transitions == per-walker AliasTable decisions on cloned draws.

    The reference replays the stepper's exact draw protocol (one slot
    integer + one coin per walker per step) and resolves each walker
    through a fresh ``alias.py`` table for its row — the alias kernel
    must make identical decisions through the flattened tables.
    """
    csr = CSRAdjacency.from_graph(weighted_ring())
    starts = np.arange(csr.num_nodes)
    walks = simulate_walks(
        csr, starts, 2, 10, np.random.default_rng(seed), backend="interpreted"
    )

    tables = [AliasTable(csr.neighbor_weights(i)) for i in range(csr.num_nodes)]
    rng = np.random.default_rng(seed)  # cloned stream
    expect = np.full_like(walks, -1)
    expect[:, 0] = np.repeat(starts, 2)
    alive = np.arange(walks.shape[0])
    degrees = csr.degrees
    for step in range(1, walks.shape[1]):
        current = expect[alive, step - 1]
        movable = degrees[current] > 0
        alive = alive[movable]
        current = current[movable]
        idx = rng.integers(0, degrees[current])
        coin = rng.random(current.size)
        nxt = np.empty(current.size, dtype=np.int64)
        for i, node in enumerate(current):
            table = tables[node]
            local = int(idx[i])
            if coin[i] >= table.probability[local]:
                local = int(table.alias[local])
            nxt[i] = csr.neighbors(int(node))[local]
        expect[alive, step] = nxt
    assert np.array_equal(walks, expect)


def test_weighted_walks_agree_across_loop_backends():
    """All non-python backends share the alias draw stream bit for bit."""
    csr = CSRAdjacency.from_graph(weighted_ring())
    starts = np.arange(csr.num_nodes)
    runs = [
        simulate_walks(
            csr, starts, 2, 9, np.random.default_rng(4), backend=name
        )
        for name in loop_backends() + ["auto"]
    ]
    for other in runs[1:]:
        assert np.array_equal(runs[0], other)


def test_row_alias_tables_flatten_per_row_tables():
    csr = CSRAdjacency.from_graph(weighted_ring())
    probability, alias = csr.row_alias_tables()
    assert probability.shape == csr.weights.shape
    for i in range(csr.num_nodes):
        start, end = int(csr.indptr[i]), int(csr.indptr[i + 1])
        table = AliasTable(csr.weights[start:end])
        assert np.array_equal(probability[start:end], table.probability)
        assert np.array_equal(alias[start:end], table.alias)
    assert csr.row_alias_tables() is csr.row_alias_tables()  # cached


# ----------------------------------------------------------------------
# 3. fused walk→train vs materialized-corpus training
# ----------------------------------------------------------------------
@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    rows=st.integers(0, 30),
    length=st.integers(2, 12),
    window=st.integers(1, 6),
    pieces=st.integers(1, 5),
)
def test_streamed_builder_bit_identical_to_batch_builder(
    seed, rows, length, window, pieces
):
    """Any chunking of the walk matrix finalizes to the exact batch corpus."""
    rng = np.random.default_rng(seed)
    walks = rng.integers(0, 15, (rows, length))
    walks[rng.random(walks.shape) < 0.15] = -1  # truncation sentinels
    ref = build_pair_corpus(walks, window, 15)

    builder = StreamedCorpusBuilder(window_size=window, num_nodes=15)
    bounds = np.sort(rng.integers(0, rows + 1, pieces - 1)) if pieces > 1 else []
    for block in np.split(walks, bounds):
        builder.push(block)
    got = builder.finalize()
    assert np.array_equal(ref.centers, got.centers)
    assert np.array_equal(ref.contexts, got.contexts)
    assert np.array_equal(ref.counts, got.counts)


@pytest.mark.parametrize("workers", [1, 2])
def test_fused_corpus_equals_two_phase(workers):
    csr = CSRAdjacency.from_graph(ring_graph())
    starts = np.arange(csr.num_nodes)
    ref = generate_corpus(
        csr, starts, 3, 10, 4, np.random.default_rng(2),
        workers=workers, chunk_starts=8,
    )
    got = generate_corpus(
        csr, starts, 3, 10, 4, np.random.default_rng(2),
        workers=workers, chunk_starts=8, fused=True,
    )
    assert np.array_equal(ref.centers, got.centers)
    assert np.array_equal(ref.contexts, got.contexts)
    assert np.array_equal(ref.counts, got.counts)


@pytest.mark.parametrize("backend", ["python", "interpreted"])
def test_train_on_walk_stream_golden_vs_materialized(backend):
    """Fused training == walk-matrix training, same rng streams, any backend."""
    csr = CSRAdjacency.from_graph(ring_graph())
    starts = np.arange(csr.num_nodes)
    cfg = TrainConfig(epochs=2, batch_size=64, backend=backend)
    row_of = np.arange(csr.num_nodes)

    ref_model = SGNSModel(dim=12, rng=np.random.default_rng(1))
    ref_model.ensure_nodes(range(csr.num_nodes))
    ref_rng = np.random.default_rng(77)
    walks = generate_walks(csr, starts, 2, 10, ref_rng, workers=1)
    ref_corpus = build_pair_corpus(walks, 4, csr.num_nodes)
    ref_loss = train_on_corpus(
        ref_model, ref_corpus, row_of, ref_rng, config=cfg, compute_loss=True
    )

    got_model = SGNSModel(dim=12, rng=np.random.default_rng(1))
    got_model.ensure_nodes(range(csr.num_nodes))
    got_rng = np.random.default_rng(77)
    chunks = iter_walk_chunks(csr, starts, 2, 10, got_rng, workers=1)
    got_loss, got_corpus = train_on_walk_stream(
        got_model, chunks, 4, csr.num_nodes, row_of, got_rng,
        config=cfg, compute_loss=True,
    )
    assert ref_loss == got_loss
    assert got_corpus.num_pairs == ref_corpus.num_pairs
    assert np.array_equal(ref_model.w_in, got_model.w_in)
    assert np.array_equal(ref_model.w_out, got_model.w_out)


# ----------------------------------------------------------------------
# 4. end-to-end GloDyNE equivalence
# ----------------------------------------------------------------------
def _glodyne_run(network: list[Graph], backend: str) -> np.ndarray:
    model = GloDyNE(
        dim=12, alpha=0.4, num_walks=2, walk_length=8, window_size=3,
        epochs=2, seed=11, backend=backend,
    )
    last = {}
    for snapshot in network:
        last = model.update(snapshot)
    return np.stack([last[n] for n in sorted(last)])


def test_glodyne_embeddings_backend_invariant():
    """Two snapshots end to end: every backend lands on identical Z^t."""
    first = ring_graph(30, 5)
    second = ring_graph(30, 5)
    second.add_edge(0, 15)
    second.add_edge(3, 22)
    network = [first, second]
    ref = _glodyne_run(network, "python")
    for name in loop_backends() + ["auto"]:
        assert np.array_equal(ref, _glodyne_run(network, name)), name


# ----------------------------------------------------------------------
# 5. fallback + per-process resolution
# ----------------------------------------------------------------------
def test_auto_silently_selects_python_without_numba(monkeypatch):
    def no_numba():
        raise ImportError("No module named 'numba'")

    monkeypatch.setattr(kernels, "_import_numba", no_numba)
    assert not kernels.numba_available()
    backend = kernels.resolve_backend("auto")
    assert backend.name == "python" and not backend.compiled
    assert backend.sgns_step is kernels.sgns_step_numpy


def test_numba_backend_raises_clear_error_without_numba(monkeypatch):
    def no_numba():
        raise ImportError("No module named 'numba'")

    monkeypatch.setattr(kernels, "_import_numba", no_numba)
    with pytest.raises(kernels.BackendUnavailable, match="install numba"):
        kernels.resolve_backend("numba")


def test_auto_selects_numba_when_importable(monkeypatch):
    """With an (emulated) numba present, auto resolves to compiled kernels."""

    class FakeNumba:
        @staticmethod
        def njit(**_kwargs):
            return lambda fn: fn  # "compile" = identity: loop twins as-is

    monkeypatch.setattr(kernels, "_import_numba", lambda: FakeNumba)
    monkeypatch.setattr(kernels, "_COMPILED", {})
    backend = kernels.resolve_backend("auto")
    assert backend.name == "numba" and backend.compiled
    assert backend.sgns_step is kernels._sgns_step_loops


def test_unknown_backend_rejected_everywhere():
    with pytest.raises(ValueError, match="unknown kernel backend"):
        kernels.resolve_backend("fortran")
    with pytest.raises(ValueError, match="backend"):
        TrainConfig(backend="fortran")
    with pytest.raises(ValueError, match="backend"):
        GloDyNEConfig(backend="fortran")


def test_configs_carry_backend_string_through_pickle():
    """Configs ship the *name*; workers resolve it after unpickling."""
    for cfg in (TrainConfig(backend="auto"), GloDyNEConfig(backend="auto")):
        clone = pickle.loads(pickle.dumps(cfg))
        assert clone.backend == "auto"
    train = pickle.loads(pickle.dumps(GloDyNEConfig(backend="auto"))).train_config()
    assert train.backend == "auto"
    resolved = kernels.resolve_backend(train.backend)
    assert resolved.name in ("python", "numba")


@pytest.mark.parametrize("backend", ["interpreted", "auto"])
def test_pool_workers_resolve_backend_independently(backend):
    """workers>=2 ships the backend string through the pool; results match
    the serial run, proving each worker re-resolved the same kernels."""
    csr = CSRAdjacency.from_graph(ring_graph())
    starts = np.arange(csr.num_nodes)
    serial = generate_walks(
        csr, starts, 2, 8, np.random.default_rng(6),
        workers=1, chunk_starts=8, backend=backend,
    )
    # workers=2 consumes the parent rng differently (one spawn draw), so
    # compare the pooled run against the in-process chunked run instead.
    pooled = generate_walks(
        csr, starts, 2, 8, np.random.default_rng(6),
        workers=2, chunk_starts=8, backend=backend,
    )
    import repro.parallel.engine as engine_mod

    chunked_serial = None
    try:
        original = engine_mod._get_pool
        engine_mod._get_pool = lambda workers: None
        chunked_serial = generate_walks(
            csr, starts, 2, 8, np.random.default_rng(6),
            workers=2, chunk_starts=8, backend=backend,
        )
    finally:
        engine_mod._get_pool = original
    assert np.array_equal(pooled, chunked_serial)
    assert serial.shape == pooled.shape


def test_weighted_pool_workers_ship_alias_tables():
    """Weighted + kernel backend: workers attach the flattened alias tables."""
    csr = CSRAdjacency.from_graph(weighted_ring())
    starts = np.arange(csr.num_nodes)
    pooled = generate_walks(
        csr, starts, 2, 8, np.random.default_rng(3),
        workers=2, chunk_starts=6, backend="interpreted",
    )
    import repro.parallel.engine as engine_mod

    try:
        original = engine_mod._get_pool
        engine_mod._get_pool = lambda workers: None
        inprocess = generate_walks(
            csr, starts, 2, 8, np.random.default_rng(3),
            workers=2, chunk_starts=6, backend="interpreted",
        )
    finally:
        engine_mod._get_pool = original
    assert np.array_equal(pooled, inprocess)
    assert (pooled != -1).all()


def test_iter_walk_chunks_survives_midstream_pool_failure(monkeypatch):
    """A pool dying mid-iteration yields the remaining chunks unchanged."""
    import repro.parallel.engine as engine_mod
    from concurrent.futures.process import BrokenProcessPool

    csr = CSRAdjacency.from_graph(ring_graph())
    starts = np.arange(csr.num_nodes)
    expected = list(
        iter_walk_chunks(
            csr, starts, 2, 8, np.random.default_rng(5),
            workers=2, chunk_starts=8,
        )
    )

    class DyingFuture:
        def result(self):
            raise BrokenProcessPool("worker died")

    class DyingPool:
        def submit(self, *args, **kwargs):
            return DyingFuture()

    monkeypatch.setattr(engine_mod, "_get_pool", lambda workers: DyingPool())
    with pytest.warns(RuntimeWarning, match="worker pool failed"):
        got = list(
            iter_walk_chunks(
                csr, starts, 2, 8, np.random.default_rng(5),
                workers=2, chunk_starts=8,
            )
        )
    assert len(expected) == len(got)
    for ref, block in zip(expected, got):
        assert np.array_equal(ref, block)


# ----------------------------------------------------------------------
# 6. negative_prefetch partial-group regression (3 pairs, prefetch 32)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", ["python", "interpreted"])
def test_prefetch_partial_group_regression_3_pairs(backend):
    """corpus.num_pairs < batch_size: the single partial group must slice
    pairs and prefetched negatives with one shared stop bound. With one
    group there is nothing to prefetch, so prefetch=32 must reproduce the
    prefetch=1 stream exactly."""
    corpus = PairCorpus(
        centers=np.array([0, 1, 2]),
        contexts=np.array([1, 2, 0]),
        counts=np.array([1, 1, 1]),
    )
    row_of = np.arange(3)

    def run(prefetch: int) -> np.ndarray:
        model = SGNSModel(dim=6, rng=np.random.default_rng(0))
        model.ensure_nodes(range(3))
        cfg = TrainConfig(
            epochs=3, batch_size=2048, negative_prefetch=prefetch,
            backend=backend,
        )
        train_on_corpus(model, corpus, row_of, np.random.default_rng(1), cfg)
        return model.w_in.copy()

    assert np.array_equal(run(1), run(32))
