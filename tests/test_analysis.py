"""Tests for the Figure 1 analyses (proximity drift, inactive cells)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    inactive_subnetworks,
    proximity_change_profile,
    quiet_streaks,
    shortest_path_change,
)
from repro.graph import DynamicNetwork, Graph


class TestShortestPathChange:
    def test_figure_1a_magnitude(self):
        """The paper's Figure 1a: one new edge on a 6-path shifts many
        pairwise proximities — Δsp per edge is large."""
        path = Graph.from_edges([(i, i + 1) for i in range(1, 6)])  # 1..6
        closed = path.copy()
        closed.add_edge(1, 6)
        change = shortest_path_change(path, closed)
        assert change.num_changed_edges == 1
        # Ordered pairs: (1,6) drops by 4, (2,6)&(1,5) by 2, (1,4)/(3,6)...
        assert change.total_change >= 2 * (4 + 2 + 2)
        assert change.change_per_edge == change.total_change

    def test_no_change(self, triangle):
        change = shortest_path_change(triangle, triangle.copy())
        assert change.total_change == 0.0
        assert change.change_per_edge == 0.0

    def test_sampled_estimate_close(self, karate_like, rng):
        modified = karate_like.copy()
        modified.add_edge(3, 23)
        modified.add_edge(8, 31)
        exact = shortest_path_change(karate_like, modified)
        estimate = shortest_path_change(
            karate_like, modified, max_sources=20, rng=rng
        )
        assert estimate.sampled
        assert estimate.total_change == pytest.approx(
            exact.total_change, rel=0.5
        )

    def test_profile_length(self, tiny_network, rng):
        profile = proximity_change_profile(tiny_network, max_sources=16, rng=rng)
        assert len(profile) == tiny_network.num_snapshots - 1


class TestQuietStreaks:
    def test_basic_runs(self):
        activity = [True, False, False, True, False, False, False]
        assert quiet_streaks(activity) == [2, 3]

    def test_all_quiet(self):
        assert quiet_streaks([False] * 4) == [4]

    def test_all_active(self):
        assert quiet_streaks([True] * 4) == []

    def test_empty(self):
        assert quiet_streaks([]) == []


class TestInactiveSubnetworks:
    def test_quiet_community_detected(self):
        """A two-community network where community B never changes must
        report an inactive sub-network streak covering all steps."""
        rng = np.random.default_rng(0)
        base = Graph()
        for offset in (0, 50):
            nodes = list(range(offset, offset + 50))
            for i, u in enumerate(nodes):
                base.add_edge(u, nodes[(i + 1) % 50])
            for _ in range(60):
                i, j = rng.integers(0, 50, size=2)
                if i != j:
                    base.add_edge(nodes[int(i)], nodes[int(j)])
        base.add_edge(0, 50)

        snapshots = [base.copy()]
        current = base
        for t in range(8):
            current = current.copy()
            # Changes only ever hit community A (nodes < 50).
            u, v = rng.integers(0, 50, size=2)
            if u != v:
                current.add_edge(int(u), int(v) if u != v else int(v) + 1)
            snapshots.append(current.copy())
        network = DynamicNetwork(snapshots)

        report = inactive_subnetworks(
            network, cell_size=25, min_streak=5, rng=np.random.default_rng(1)
        )
        assert report.num_cells == 4
        assert report.cells_with_streak >= 1
        assert max(report.streak_histogram, default=0) >= 5

    def test_fully_active_network_no_streaks(self):
        """A network where every cell changes every step has no streaks."""
        rng = np.random.default_rng(2)
        snapshots = []
        base = Graph.from_edges([(i, (i + 1) % 20) for i in range(20)])
        current = base
        for t in range(7):
            current = current.copy()
            for node in range(0, 20, 2):  # touch everything, everywhere
                current.add_edge(node, (node + 7 + t) % 20)
            snapshots.append(current.copy())
        network = DynamicNetwork(snapshots)
        report = inactive_subnetworks(
            network, cell_size=5, min_streak=5, rng=rng
        )
        assert report.total_streaks == 0
        assert report.inactive_fraction == 0.0

    def test_simulated_datasets_have_inactive_cells(self):
        """The motivating claim (Fig 1 d-f): our simulated streams must
        exhibit inactive sub-networks, just like the real datasets."""
        from repro.datasets import load_dataset

        network = load_dataset("fbw-sim", scale=0.6, seed=0, snapshots=12)
        report = inactive_subnetworks(
            network, cell_size=15, min_streak=5,
            rng=np.random.default_rng(0),
        )
        assert report.total_streaks > 0
        assert report.inactive_fraction > 0.1
