"""Unit tests for the CSR adjacency view."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import CSRAdjacency, Graph


def random_graph(num_nodes: int, edge_prob: float, seed: int) -> Graph:
    rng = np.random.default_rng(seed)
    graph = Graph()
    for n in range(num_nodes):
        graph.add_node(n)
    for i in range(num_nodes):
        for j in range(i + 1, num_nodes):
            if rng.random() < edge_prob:
                graph.add_edge(i, j)
    return graph


class TestFromGraph:
    def test_triangle(self, triangle: Graph):
        csr = CSRAdjacency.from_graph(triangle)
        assert csr.num_nodes == 3
        assert csr.num_edges == 3
        assert csr.indices.size == 6  # both directions stored

    def test_node_index_round_trip(self, two_cliques: Graph):
        csr = CSRAdjacency.from_graph(two_cliques)
        for node in two_cliques.nodes():
            idx = csr.index_of[node]
            assert csr.nodes[idx] == node

    def test_neighbors_match_graph(self, two_cliques: Graph):
        csr = CSRAdjacency.from_graph(two_cliques)
        for node in two_cliques.nodes():
            idx = csr.index_of[node]
            got = {csr.nodes[j] for j in csr.neighbors(idx)}
            assert got == two_cliques.neighbor_set(node)

    def test_degrees(self, triangle: Graph):
        csr = CSRAdjacency.from_graph(triangle)
        assert list(csr.degrees) == [2, 2, 2]

    def test_isolated_node(self):
        graph = Graph()
        graph.add_node("lonely")
        graph.add_edge(0, 1)
        csr = CSRAdjacency.from_graph(graph)
        idx = csr.index_of["lonely"]
        assert csr.neighbors(idx).size == 0

    def test_uniform_flag(self, triangle: Graph):
        assert CSRAdjacency.from_graph(triangle).is_uniform
        triangle.add_edge(0, 1, 5.0)
        assert not CSRAdjacency.from_graph(triangle).is_uniform

    def test_empty_weights_uniform(self):
        graph = Graph()
        graph.add_node(0)
        assert CSRAdjacency.from_graph(graph).is_uniform


class TestExports:
    def test_dense_adjacency_symmetric(self, two_cliques: Graph):
        csr = CSRAdjacency.from_graph(two_cliques)
        dense = csr.adjacency_dense()
        assert np.allclose(dense, dense.T)
        assert dense.sum() == 2 * two_cliques.number_of_edges()

    def test_scipy_export(self, triangle: Graph):
        sparse = CSRAdjacency.from_graph(triangle).to_scipy()
        assert sparse.shape == (3, 3)
        assert sparse.nnz == 6

    def test_cumulative_weights_per_row(self):
        graph = Graph.from_edges([(0, 1, 2.0), (0, 2, 3.0), (1, 2, 1.0)])
        csr = CSRAdjacency.from_graph(graph)
        cumulative = csr.cumulative_weights()
        for idx in range(csr.num_nodes):
            start, end = csr.indptr[idx], csr.indptr[idx + 1]
            row = cumulative[start:end]
            expected = np.cumsum(csr.weights[start:end])
            np.testing.assert_allclose(row, expected)


@settings(max_examples=25, deadline=None)
@given(
    num_nodes=st.integers(min_value=2, max_value=30),
    edge_prob=st.floats(min_value=0.05, max_value=0.9),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_csr_preserves_edge_multiset(num_nodes, edge_prob, seed):
    """Property: CSR entry count is exactly twice the undirected edge count
    and every graph edge appears in both CSR directions."""
    graph = random_graph(num_nodes, edge_prob, seed)
    csr = CSRAdjacency.from_graph(graph)
    assert csr.indices.size == 2 * graph.number_of_edges()
    for u, v in graph.edges():
        ui, vi = csr.index_of[u], csr.index_of[v]
        assert vi in csr.neighbors(ui)
        assert ui in csr.neighbors(vi)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=500))
def test_dense_matches_graph(seed):
    graph = random_graph(12, 0.3, seed)
    csr = CSRAdjacency.from_graph(graph)
    dense = csr.adjacency_dense()
    for u in graph.nodes():
        for v in graph.nodes():
            expected = graph.edge_weight(u, v)
            assert dense[csr.index_of[u], csr.index_of[v]] == pytest.approx(expected)
