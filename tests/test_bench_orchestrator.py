"""Regression suite for the bench orchestrator (:mod:`repro.bench`).

Covers the registry and schema in-process, the discovery + suite
execution path against synthetic bench modules, and — the end-to-end
contract CI depends on — that ``benchmarks/run_all.py --tiny`` emits a
schema-valid ``BENCH_<name>.json`` for every registered bench.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.bench import registry as registry_mod
from repro.bench.orchestrator import discover, run_suite, write_doc
from repro.bench.registry import (
    get_bench,
    register_bench,
    registered_benches,
    run_registered,
)
from repro.bench.schema import SCHEMA_ID, validate_file, validate_result
from repro.bench.telemetry import git_info, host_info

REPO_ROOT = Path(__file__).resolve().parents[1]
RUN_ALL = REPO_ROOT / "benchmarks" / "run_all.py"


@pytest.fixture()
def clean_registry(monkeypatch):
    monkeypatch.setattr(registry_mod, "_REGISTRY", {})


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
def test_register_and_run(clean_registry, monkeypatch):
    @register_bench("demo_bench", tags=("x",))
    def run_bench(tiny: bool) -> dict:
        return {
            "metrics": {"value": 2.0 if tiny else 4.0},
            "config": {"knob": 3},
            "summary": "demo",
        }

    spec = get_bench("demo_bench")
    assert spec.tags == ("x",)
    assert [s.name for s in registered_benches()] == ["demo_bench"]

    monkeypatch.setenv("REPRO_BENCH_TINY", "1")
    doc = run_registered("demo_bench", tiny=True)
    assert validate_result(doc) == []
    assert doc["metrics"] == {"value": 2.0}
    assert doc["profile"] == "tiny"
    assert doc["config"] == {"knob": 3}

    monkeypatch.delenv("REPRO_BENCH_TINY")
    doc_full = run_registered("demo_bench", tiny=False)
    assert doc_full["metrics"] == {"value": 4.0}
    assert doc_full["profile"] == "full"


def test_run_registered_refuses_profile_env_mismatch(clean_registry, monkeypatch):
    @register_bench("demo_bench")
    def run_bench(tiny: bool) -> dict:
        return {"metrics": {"v": 1}}

    monkeypatch.delenv("REPRO_BENCH_TINY", raising=False)
    with pytest.raises(ValueError, match="profile mismatch"):
        run_registered("demo_bench", tiny=True)
    monkeypatch.setenv("REPRO_BENCH_TINY", "1")
    with pytest.raises(ValueError, match="profile mismatch"):
        run_registered("demo_bench", tiny=False)


def test_reregistration_replaces(clean_registry):
    @register_bench("demo_bench")
    def first(tiny: bool) -> dict:
        return {"metrics": {"v": 1}}

    @register_bench("demo_bench")
    def second(tiny: bool) -> dict:
        return {"metrics": {"v": 2}}

    assert run_registered("demo_bench")["metrics"] == {"v": 2}
    assert len(registered_benches()) == 1


def test_register_rejects_bad_names(clean_registry):
    for bad in ("", "Upper", "has-dash", "sp ace"):
        with pytest.raises(ValueError):
            register_bench(bad)


def test_unknown_bench_lists_known(clean_registry):
    @register_bench("known")
    def run_bench(tiny: bool) -> dict:
        return {"metrics": {"v": 1}}

    with pytest.raises(KeyError, match="known"):
        get_bench("nope")


def test_run_registered_rejects_bad_payloads(clean_registry):
    @register_bench("no_metrics")
    def run_bench(tiny: bool) -> dict:
        return {"summary": "empty"}

    with pytest.raises(ValueError, match="invalid document"):
        run_registered("no_metrics")

    @register_bench("not_a_dict")
    def run_bench2(tiny: bool):
        return 42

    with pytest.raises(ValueError, match="expected dict"):
        run_registered("not_a_dict")


# ----------------------------------------------------------------------
# schema
# ----------------------------------------------------------------------
def good_doc() -> dict:
    return {
        "schema": SCHEMA_ID,
        "name": "demo_bench",
        "profile": "tiny",
        "status": "ok",
        "seconds": 0.5,
        "created_unix": 1_700_000_000.0,
        "metrics": {"qps": 120.5, "label": "fast"},
        "config": {"workers": 4},
        "host": host_info(),
        "git": git_info(),
        "summary": "table",
    }


def test_schema_accepts_valid_document():
    assert validate_result(good_doc()) == []


@pytest.mark.parametrize(
    "mutation, fragment",
    [
        (lambda d: d.update(schema="other/v9"), "schema"),
        (lambda d: d.update(name="Bad-Name"), "name"),
        (lambda d: d.update(profile="huge"), "profile"),
        (lambda d: d.update(status="crashed"), "status"),
        (lambda d: d.update(seconds=-1), "seconds"),
        (lambda d: d.update(metrics={}), "metrics"),
        (lambda d: d.update(metrics={"only": "strings"}), "numeric"),
        (lambda d: d.update(metrics={"bad": [1, 2]}), "scalar"),
        (lambda d: d.update(host={"python": 3}), "host"),
        (lambda d: d.update(git={"sha": 5, "branch": None, "dirty": None}),
         "git.sha"),
        (lambda d: d.pop("summary"), "summary"),
        (lambda d: d.update(config="nope"), "config"),
    ],
)
def test_schema_rejects_mutations(mutation, fragment):
    doc = good_doc()
    mutation(doc)
    problems = validate_result(doc)
    assert problems, f"mutation {fragment} slipped through"
    assert any(fragment in p for p in problems)


def test_schema_rejects_non_object():
    assert validate_result([1, 2]) == ["document is not a JSON object"]


def test_validate_file_reports_unreadable(tmp_path):
    missing = tmp_path / "BENCH_missing.json"
    assert any("unreadable" in p for p in validate_file(missing))
    bad = tmp_path / "BENCH_bad.json"
    bad.write_text("{not json", encoding="utf-8")
    assert any("unreadable" in p for p in validate_file(bad))


def test_schema_cli_validates_directory(tmp_path, capsys):
    from repro.bench.schema import main

    write_doc(good_doc(), tmp_path)
    assert main([str(tmp_path)]) == 0
    broken = dict(good_doc(), status="crashed")
    (tmp_path / "BENCH_broken.json").write_text(
        json.dumps(broken), encoding="utf-8"
    )
    assert main([str(tmp_path)]) == 1
    assert main([]) == 2
    assert main([str(tmp_path / "empty-subdir")]) == 1


# ----------------------------------------------------------------------
# discovery + suite execution (synthetic bench dir)
# ----------------------------------------------------------------------
def synthetic_bench_dir(tmp_path: Path, marker: str) -> Path:
    bench_dir = tmp_path / "benches"
    bench_dir.mkdir()
    (bench_dir / f"bench_synth_{marker}.py").write_text(
        "from repro.bench import register_bench\n"
        f"@register_bench('synth_{marker}')\n"
        "def run_bench(tiny):\n"
        "    return {'metrics': {'value': 1.5, 'tiny': tiny},\n"
        "            'config': {}, 'summary': 'synthetic'}\n",
        encoding="utf-8",
    )
    return bench_dir


def test_discover_and_run_suite(tmp_path, clean_registry, monkeypatch):
    bench_dir = synthetic_bench_dir(tmp_path, "alpha")
    loaded = discover(bench_dir)
    assert len(loaded) == 1
    assert loaded[0].startswith("_repro_bench_bench_synth_alpha_")
    # Re-discovery is idempotent (module already in sys.modules).
    assert discover(bench_dir) == loaded

    monkeypatch.setenv("REPRO_BENCH_TINY", "1")
    out_dir = tmp_path / "json"
    docs = run_suite(None, tiny=True, json_dir=out_dir,
                     stream=open(os.devnull, "w"))
    assert [d["name"] for d in docs] == ["synth_alpha"]
    emitted = out_dir / "BENCH_synth_alpha.json"
    assert emitted.exists()
    assert validate_file(emitted) == []
    loaded_doc = json.loads(emitted.read_text(encoding="utf-8"))
    assert loaded_doc["metrics"]["tiny"] is True


def test_discover_same_stem_in_two_dirs_loads_both(tmp_path, clean_registry):
    dir_a = tmp_path / "a"
    dir_a.mkdir()
    (dir_a / "bench_same.py").write_text(
        "from repro.bench import register_bench\n"
        "@register_bench('from_dir_a')\n"
        "def run_bench(tiny):\n"
        "    return {'metrics': {'v': 1}}\n",
        encoding="utf-8",
    )
    dir_b = tmp_path / "b"
    dir_b.mkdir()
    (dir_b / "bench_same.py").write_text(
        "from repro.bench import register_bench\n"
        "@register_bench('from_dir_b')\n"
        "def run_bench(tiny):\n"
        "    return {'metrics': {'v': 2}}\n",
        encoding="utf-8",
    )
    discover(dir_a)
    discover(dir_b)
    assert {s.name for s in registered_benches()} == {"from_dir_a", "from_dir_b"}


def test_discover_failed_import_is_retryable(tmp_path, clean_registry):
    bench_dir = tmp_path / "benches"
    bench_dir.mkdir()
    bad = bench_dir / "bench_flaky.py"
    bad.write_text("raise RuntimeError('boom')\n", encoding="utf-8")
    with pytest.raises(RuntimeError, match="boom"):
        discover(bench_dir)
    bad.write_text(
        "from repro.bench import register_bench\n"
        "@register_bench('flaky')\n"
        "def run_bench(tiny):\n"
        "    return {'metrics': {'v': 1}}\n",
        encoding="utf-8",
    )
    discover(bench_dir)
    assert {s.name for s in registered_benches()} == {"flaky"}


def test_run_suite_rejects_unknown_name_before_running(
    tmp_path, clean_registry, monkeypatch
):
    monkeypatch.delenv("REPRO_BENCH_TINY", raising=False)
    ran = []

    @register_bench("real")
    def run_bench(tiny: bool) -> dict:
        ran.append(True)
        return {"metrics": {"v": 1}}

    with pytest.raises(KeyError, match="typo_bench"):
        run_suite(["real", "typo_bench"], tiny=False, json_dir=None,
                  stream=open(os.devnull, "w"))
    assert ran == [], "a bench ran before the typo was caught"


def test_run_suite_before_each_hook(tmp_path, clean_registry, monkeypatch):
    monkeypatch.delenv("REPRO_BENCH_TINY", raising=False)
    calls = []

    @register_bench("one")
    def run_one(tiny: bool) -> dict:
        return {"metrics": {"v": 1}}

    @register_bench("two")
    def run_two(tiny: bool) -> dict:
        return {"metrics": {"v": 2}}

    run_suite(None, tiny=False, json_dir=None,
              stream=open(os.devnull, "w"),
              before_each=lambda: calls.append(True))
    assert calls == [True, True]


def test_run_suite_selects_by_name(tmp_path, clean_registry, monkeypatch):
    monkeypatch.delenv("REPRO_BENCH_TINY", raising=False)
    bench_dir = synthetic_bench_dir(tmp_path, "beta")
    discover(bench_dir)

    @register_bench("other")
    def run_bench(tiny: bool) -> dict:
        return {"metrics": {"v": 1}}

    docs = run_suite(["synth_beta"], tiny=False, json_dir=None,
                     stream=open(os.devnull, "w"))
    assert [d["name"] for d in docs] == ["synth_beta"]


# ----------------------------------------------------------------------
# end-to-end: run_all.py --tiny emits valid JSON for every bench
# ----------------------------------------------------------------------
def run_all(args: list[str], timeout: int = 540) -> subprocess.CompletedProcess:
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    return subprocess.run(
        [sys.executable, str(RUN_ALL), *args],
        capture_output=True, text=True, timeout=timeout, env=env,
        cwd=REPO_ROOT,
    )


def test_run_all_list_names_every_bench_module():
    result = run_all(["--list"], timeout=120)
    assert result.returncode == 0, result.stderr
    names = {line.split()[0] for line in result.stdout.splitlines() if line}
    bench_files = {
        p.stem for p in (REPO_ROOT / "benchmarks").glob("bench_*.py")
    }
    # Every bench module registers at least one entry whose name matches
    # the module stem (minus the bench_ prefix).
    assert {f"bench_{name}" for name in names} >= bench_files


@pytest.mark.skipif(
    os.environ.get("REPRO_BENCH_E2E") == "0",
    reason="tiny-suite e2e disabled (CI runs it in the bench-telemetry job)",
)
def test_run_all_tiny_emits_valid_json_for_every_bench(tmp_path):
    listing = run_all(["--list"], timeout=120)
    assert listing.returncode == 0, listing.stderr
    expected = {
        line.split()[0] for line in listing.stdout.splitlines() if line
    }
    assert expected, "no benches registered"

    out_dir = tmp_path / "out"
    result = run_all(["--tiny", "--json", str(out_dir)])
    assert result.returncode == 0, result.stdout + result.stderr

    emitted = {p.name for p in out_dir.glob("BENCH_*.json")}
    assert emitted == {f"BENCH_{name}.json" for name in expected}
    for path in sorted(out_dir.glob("BENCH_*.json")):
        problems = validate_file(path)
        assert problems == [], f"{path.name}: {problems}"
        doc = json.loads(path.read_text(encoding="utf-8"))
        assert doc["profile"] == "tiny"


# ----------------------------------------------------------------------
# caveats (single-core telemetry annotation)
# ----------------------------------------------------------------------
def _fake_host(cpu_count):
    return {
        "python": "3.12.0",
        "platform": "test",
        "machine": "x86_64",
        "cpu_count": cpu_count,
        "numpy": "2.0.0",
    }


def test_single_core_host_caveat_is_stamped(clean_registry, monkeypatch):
    @register_bench("demo_bench")
    def run_bench(tiny: bool) -> dict:
        return {"metrics": {"speedup": 1.01}, "caveats": ["gate skipped"]}

    monkeypatch.delenv("REPRO_BENCH_TINY", raising=False)
    monkeypatch.setattr(registry_mod, "host_info", lambda: _fake_host(1))
    doc = run_registered("demo_bench", tiny=False)
    assert doc["caveats"] == [
        "gate skipped", registry_mod.SINGLE_CORE_CAVEAT,
    ]
    assert validate_result(doc) == []


def test_multicore_host_gets_no_automatic_caveat(clean_registry, monkeypatch):
    @register_bench("demo_bench")
    def run_bench(tiny: bool) -> dict:
        return {"metrics": {"speedup": 3.2}}

    monkeypatch.delenv("REPRO_BENCH_TINY", raising=False)
    monkeypatch.setattr(registry_mod, "host_info", lambda: _fake_host(8))
    doc = run_registered("demo_bench", tiny=False)
    assert doc["caveats"] == []
    assert validate_result(doc) == []


def test_unknown_cpu_count_gets_no_single_core_caveat(
    clean_registry, monkeypatch
):
    """None means *unknown*, not single-core — a 16-core host whose
    cpu_count could not be read must not have its numbers discounted."""

    @register_bench("demo_bench")
    def run_bench(tiny: bool) -> dict:
        return {"metrics": {"speedup": 1.0}}

    monkeypatch.delenv("REPRO_BENCH_TINY", raising=False)
    monkeypatch.setattr(registry_mod, "host_info", lambda: _fake_host(None))
    doc = run_registered("demo_bench", tiny=False)
    assert doc["caveats"] == []


def test_single_core_caveat_is_not_duplicated(clean_registry, monkeypatch):
    @register_bench("demo_bench")
    def run_bench(tiny: bool) -> dict:
        return {
            "metrics": {"v": 1.0},
            "caveats": [registry_mod.SINGLE_CORE_CAVEAT],
        }

    monkeypatch.delenv("REPRO_BENCH_TINY", raising=False)
    monkeypatch.setattr(registry_mod, "host_info", lambda: _fake_host(1))
    doc = run_registered("demo_bench", tiny=False)
    assert doc["caveats"] == [registry_mod.SINGLE_CORE_CAVEAT]


def test_schema_validates_caveats_field():
    base = {
        "schema": SCHEMA_ID,
        "name": "demo",
        "profile": "full",
        "status": "ok",
        "seconds": 1.0,
        "created_unix": 1e9,
        "metrics": {"v": 1.0},
        "config": {},
        "host": _fake_host(1),
        "git": {"sha": None, "branch": None, "dirty": None},
        "summary": "",
    }
    # Absent: still valid (documents recorded before the field existed).
    assert validate_result(dict(base)) == []
    assert validate_result({**base, "caveats": []}) == []
    assert validate_result({**base, "caveats": ["single-core host"]}) == []
    assert any(
        "caveats" in p for p in validate_result({**base, "caveats": "oops"})
    )
    assert any(
        "caveats[0]" in p for p in validate_result({**base, "caveats": [""]})
    )
    assert any(
        "caveats[1]" in p
        for p in validate_result({**base, "caveats": ["ok", 3]})
    )
