"""The declarative ``RunSpec`` tree and its generated CLI flags.

Three drift gates:

* ``RunSpec`` ↔ ``GloDyNEConfig`` round-trips losslessly, and the spec
  tree covers *every* config field (a knob added to one shape must be
  added to the other);
* every CLI-exposed :class:`~repro.pipeline.EngineSpec` field has a
  generated flag on every engine-running subcommand, and every generated
  flag resolves back to a spec field — both directions;
* the "adding an engine knob is ≤ 2 edits" property: a knob appended to
  ``EngineSpec`` (simulated here) surfaces as a parser flag and lands in
  the collected spec with **zero** CLI edits.
"""

from __future__ import annotations

import argparse
import dataclasses

import pytest

from repro.core.glodyne import GloDyNEConfig
from repro.pipeline import (
    EngineSpec,
    RunSpec,
    add_engine_flags,
    engine_cli_fields,
    engine_dest,
    engine_flag,
    engine_spec_from_args,
)


# ----------------------------------------------------------------------
# RunSpec <-> GloDyNEConfig
# ----------------------------------------------------------------------

def test_runspec_config_round_trip_is_lossless():
    """A non-default config survives config -> spec -> config exactly."""
    config = GloDyNEConfig(
        dim=32, alpha=0.3, num_walks=4, walk_length=12, window_size=5,
        negative=3, epochs=2, lr=0.01, min_lr=1e-5, batch_size=512,
        partition_eps=0.2, strategy="s2", incremental_partition=True,
        partition_cut_slack=0.7, weighted_changes=True, walk_p=2.0,
        walk_q=0.5, workers=2, chunk_starts=64, negative_prefetch=8,
        backend="python",
    )
    spec = RunSpec.from_config(config)
    assert spec.to_config() == config


def test_runspec_round_trip_from_defaults():
    """spec -> config -> spec is the identity on the default tree."""
    spec = RunSpec()
    assert RunSpec.from_config(spec.to_config()) == spec


def test_spec_tree_covers_every_config_field():
    """Every ``GloDyNEConfig`` field must be reachable from the spec tree.

    Guards the single-source-of-truth property: adding a config field
    without teaching ``RunSpec`` about it silently drops the knob from
    declarative runs. The round trip above catches value drift; this
    catches a field the round trip never touches.
    """
    config_fields = {f.name for f in dataclasses.fields(GloDyNEConfig)}
    spec = RunSpec()
    spec_fields = set()
    for holder in (spec, spec.walk, spec.train, spec.partition, spec.engine):
        spec_fields.update(f.name for f in dataclasses.fields(holder))
    # Spec names that map onto differently-named config fields.
    renames = {"eps": "partition_eps", "cut_slack": "partition_cut_slack"}
    mapped = {renames.get(name, name) for name in spec_fields}
    missing = config_fields - mapped - {"walk", "train", "partition", "engine"}
    assert not missing, f"GloDyNEConfig fields absent from RunSpec: {missing}"


def test_with_engine_returns_frozen_copy():
    """``with_engine`` replaces knobs without mutating the original."""
    spec = RunSpec()
    tuned = spec.with_engine(workers=4, backend="python")
    assert tuned.engine.workers == 4
    assert tuned.engine.backend == "python"
    assert spec.engine.workers == 1
    with pytest.raises(dataclasses.FrozenInstanceError):
        spec.engine.workers = 8


def test_engine_kwargs_match_constructor_surface():
    """``EngineSpec.kwargs()`` feeds every engine constructor unchanged."""
    from repro import TNE, GloDyNE, SGNSRetrain

    kwargs = EngineSpec(workers=2, backend="python").kwargs()
    assert kwargs == {
        "workers": 2, "chunk_starts": kwargs["chunk_starts"],
        "negative_prefetch": None, "backend": "python",
        "incremental_partition": False,
    }
    for ctor in (GloDyNE, SGNSRetrain, TNE):
        method = ctor(dim=8, **kwargs)
        assert method.config.workers == 2
        assert method.config.backend == "python"


# ----------------------------------------------------------------------
# EngineSpec <-> generated CLI flags, both directions
# ----------------------------------------------------------------------

def _parser_flags(parser: argparse.ArgumentParser) -> set[str]:
    return {
        opt for action in parser._actions for opt in action.option_strings
    }


def test_every_engine_field_surfaces_on_every_command():
    """Field -> flag: each CLI field is a real flag on each subcommand."""
    from repro.cli import ENGINE_FLAG_RENAMES, make_parser

    parser = make_parser()
    sub = next(
        a for a in parser._actions
        if isinstance(a, argparse._SubParsersAction)
    )
    for command in ("embed", "evaluate", "stream", "serve", "serve-http"):
        flags = _parser_flags(sub.choices[command])
        rename = ENGINE_FLAG_RENAMES.get(command)
        for field in engine_cli_fields():
            expected = engine_flag(field.name, rename)
            assert expected in flags, (
                f"{command}: EngineSpec.{field.name} has no generated "
                f"flag {expected}"
            )


def test_every_registered_flag_resolves_to_a_spec_field():
    """Flag -> field: the registered table is exactly the CLI field set."""
    from repro.cli import ENGINE_FLAG_RENAMES, ENGINE_FLAGS_BY_COMMAND, make_parser

    make_parser()  # (re)populate the registry
    cli_fields = {f.name for f in engine_cli_fields()}
    assert set(ENGINE_FLAGS_BY_COMMAND) == {
        "embed", "evaluate", "stream", "serve", "serve-http"
    }
    for command, registered in ENGINE_FLAGS_BY_COMMAND.items():
        rename = ENGINE_FLAG_RENAMES.get(command)
        assert set(registered) == cli_fields
        for field_name, flag in registered.items():
            assert flag == engine_flag(field_name, rename)


def test_parsed_flags_collect_into_engine_spec():
    """End to end: argv -> argparse -> EngineSpec, canonical and renamed."""
    parser = argparse.ArgumentParser()
    add_engine_flags(parser)
    args = parser.parse_args(
        ["--workers", "3", "--backend", "python", "--incremental-partition",
         "--chunk-starts", "32", "--negative-prefetch", "4"]
    )
    assert engine_spec_from_args(args) == EngineSpec(
        workers=3, backend="python", incremental_partition=True,
        chunk_starts=32, negative_prefetch=4,
    )

    renamed = argparse.ArgumentParser()
    rename = {"backend": "--kernel-backend"}
    renamed.add_argument("--backend", default="lsh")  # the index flag
    add_engine_flags(renamed, rename)
    args = renamed.parse_args(["--kernel-backend", "python"])
    assert args.backend == "lsh"  # untouched serving-index dest
    assert engine_spec_from_args(args, rename).backend == "python"


def test_rename_avoids_dest_collisions():
    """A renamed flag stores under its own dest, never the field name."""
    assert engine_dest("backend", {"backend": "--kernel-backend"}) == (
        "kernel_backend"
    )
    assert engine_dest("backend") == "backend"
    assert engine_dest("chunk_starts") == "chunk_starts"


# ----------------------------------------------------------------------
# The <= 2 edits demonstration
# ----------------------------------------------------------------------

def test_new_engine_knob_needs_no_cli_edit():
    """A field appended to ``EngineSpec`` reaches argv handling for free.

    Simulates the "add an engine knob" workflow with a derived spec
    class run through the *production* helpers: the only edits a real
    knob needs are (1) the ``EngineSpec`` field and (2) the consumer
    that reads it — flag generation, help text, and namespace collection
    all key off field metadata, so no parser or subcommand code changes.
    (A derived class rather than monkeypatching the real ``EngineSpec``,
    which would leak into other tests; the machinery exercised is
    identical.)
    """
    from repro.pipeline.spec import _cli

    @dataclasses.dataclass(frozen=True)
    class ExtendedEngineSpec(EngineSpec):
        """EngineSpec plus one hypothetical knob."""

        walk_buffer_mb: int = dataclasses.field(
            default=64, metadata=_cli("walk buffer size in MiB")
        )

    parser = argparse.ArgumentParser()
    registered = add_engine_flags(parser, spec_cls=ExtendedEngineSpec)
    assert registered["walk_buffer_mb"] == "--walk-buffer-mb"
    args = parser.parse_args(["--walk-buffer-mb", "128", "--workers", "2"])
    collected = engine_spec_from_args(args, spec_cls=ExtendedEngineSpec)
    assert collected.walk_buffer_mb == 128
    assert collected.workers == 2
    assert "walk_buffer_mb" in collected.kwargs()
