"""Tests for the SGNS-static / -retrain / -increment variants (§5.3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SGNSIncrement, SGNSRetrain, SGNSStatic
from repro.tasks import per_step_precision


def variant_kwargs() -> dict:
    return dict(
        dim=16, num_walks=3, walk_length=10, window_size=3, epochs=2,
    )


class TestSGNSStatic:
    def test_trains_only_once(self, tiny_network):
        model = SGNSStatic(**variant_kwargs(), seed=0)
        first = model.update(tiny_network[0])
        second = model.update(tiny_network[1])
        # Nodes present at t=0 keep their exact t=0 embedding forever.
        for node in tiny_network[0].nodes():
            if node in second:
                np.testing.assert_array_equal(first[node], second[node])

    def test_unknown_nodes_get_fallback_vectors(self, tiny_network):
        model = SGNSStatic(**variant_kwargs(), seed=0)
        model.update(tiny_network[0])
        last = model.update(tiny_network[-1])
        new_nodes = tiny_network[-1].node_set() - tiny_network[0].node_set()
        for node in new_nodes:
            assert node in last
            assert last[node].shape == (16,)

    def test_covers_current_snapshot(self, tiny_network):
        model = SGNSStatic(**variant_kwargs(), seed=0)
        for snapshot in tiny_network:
            embeddings = model.update(snapshot)
            assert set(embeddings) == snapshot.node_set()


class TestSGNSRetrain:
    def test_fresh_model_each_step(self, tiny_network):
        model = SGNSRetrain(**variant_kwargs(), seed=0)
        first = model.update(tiny_network[0])
        second = model.update(tiny_network[1])
        common = tiny_network[0].node_set() & tiny_network[1].node_set()
        # A fresh random init virtually guarantees different embeddings.
        moved = sum(
            not np.allclose(first[node], second[node]) for node in common
        )
        assert moved == len(common)

    def test_handles_deletions(self, churn_network):
        model = SGNSRetrain(**variant_kwargs(), seed=0)
        embeddings = model.fit(churn_network)
        assert len(embeddings) == churn_network.num_snapshots


class TestSGNSIncrement:
    def test_warm_start_keeps_space(self, tiny_network):
        """Increment reuses the model: common nodes drift but do not jump
        to a fresh random space (unlike retrain)."""
        model = SGNSIncrement(**variant_kwargs(), seed=0)
        first = model.update(tiny_network[0])
        second = model.update(tiny_network[1])
        common = list(tiny_network[0].node_set() & tiny_network[1].node_set())
        cosines = []
        for node in common:
            a, b = first[node], second[node]
            cosines.append(
                a @ b / (np.linalg.norm(a) * np.linalg.norm(b) + 1e-12)
            )
        assert np.mean(cosines) > 0.5

    def test_quality_ordering_increment_ge_static(self, tiny_network):
        """§5.3's ranking: increment > retrain > static. We assert the
        robust end of it — increment beats static at the final step."""
        static = SGNSStatic(**variant_kwargs(), seed=1)
        increment = SGNSIncrement(**variant_kwargs(), seed=1)
        static_embeddings = static.fit(tiny_network)
        increment_embeddings = increment.fit(tiny_network)
        p_static = per_step_precision(static_embeddings, tiny_network, k=10)
        p_increment = per_step_precision(increment_embeddings, tiny_network, k=10)
        assert p_increment[-1] > p_static[-1]


class TestCommonBehaviour:
    @pytest.mark.parametrize(
        "cls", [SGNSStatic, SGNSRetrain, SGNSIncrement]
    )
    def test_reset(self, cls, tiny_network):
        model = cls(**variant_kwargs(), seed=0)
        model.fit(tiny_network)
        model.reset()
        assert model.time_step == 0
        assert model.model is None

    @pytest.mark.parametrize(
        "cls", [SGNSStatic, SGNSRetrain, SGNSIncrement]
    )
    def test_config_xor_overrides(self, cls):
        from repro.core import GloDyNEConfig

        with pytest.raises(ValueError):
            cls(config=GloDyNEConfig(), dim=8)
