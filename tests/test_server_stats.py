"""Regression tests for the /stats backing counters and percentiles.

Pins the two serving-tier observability bugs this subsystem shipped
with: nearest-rank percentiles mis-indexed tiny windows (banker's
rounding on ``round(q * (n - 1))``), and ``snapshot()`` had to be safe
to call before any request was recorded (empty latency ring).
"""

from __future__ import annotations

import pytest

from repro.server.stats import ServerStats, percentile


class TestPercentile:
    def test_single_sample_is_every_percentile(self):
        # A 1-sample window: the sample is its own p0/p50/p99/p100.
        for q in (0.0, 0.5, 0.99, 1.0):
            assert percentile([7.5], q) == 7.5

    def test_two_sample_window(self):
        # Nearest-rank proper: p50 of {1, 2} is the *lower* sample
        # (ceil(0.5 * 2) = rank 1), p99 the upper. The old
        # round(q * (n - 1)) indexing returned 1.0 for both because
        # round(0.5) banker's-rounds to 0.
        assert percentile([2.0, 1.0], 0.50) == 1.0
        assert percentile([2.0, 1.0], 0.99) == 2.0
        assert percentile([2.0, 1.0], 0.0) == 1.0
        assert percentile([2.0, 1.0], 1.0) == 2.0

    def test_consistent_median_side_across_window_sizes(self):
        # The banker's-rounding bug made even-sized windows disagree
        # about which side of the median to report (2 samples -> lower,
        # 4 samples -> strictly above). Nearest-rank always takes the
        # lower-middle sample for an even window.
        assert percentile([1.0, 2.0], 0.5) == 1.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 0.5) == 2.0
        assert percentile([1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 0.5) == 3.0

    def test_nearest_rank_definition(self):
        samples = list(range(1, 101))  # 1..100
        assert percentile(samples, 0.99) == 99
        assert percentile(samples, 0.01) == 1
        assert percentile(samples, 0.995) == 100

    def test_input_not_mutated_and_order_free(self):
        samples = [3.0, 1.0, 2.0]
        assert percentile(samples, 1.0) == 3.0
        assert samples == [3.0, 1.0, 2.0]

    def test_error_paths(self):
        with pytest.raises(ValueError, match="empty"):
            percentile([], 0.5)
        with pytest.raises(ValueError, match="outside"):
            percentile([1.0], 1.5)
        with pytest.raises(ValueError, match="outside"):
            percentile([1.0], -0.1)


class TestSnapshot:
    def test_snapshot_on_empty_ring_never_raises(self):
        # A /stats scrape racing the first request must not 500: every
        # latency aggregate is None until a sample lands.
        stats = ServerStats()
        payload = stats.snapshot()
        assert payload["requests"] == 0
        assert payload["latency_ms"] == {
            "window": 0, "p50": None, "p99": None, "mean": None,
        }
        assert payload["knn"]["mean_batch_size"] is None

    def test_snapshot_after_reset_is_empty_again(self):
        stats = ServerStats()
        stats.record_request(200, 0.010)
        stats.reset()
        assert stats.snapshot()["latency_ms"]["p99"] is None

    def test_small_window_percentiles(self):
        stats = ServerStats()
        stats.record_request(200, 0.010)
        payload = stats.snapshot()
        assert payload["latency_ms"]["window"] == 1
        assert payload["latency_ms"]["p50"] == pytest.approx(10.0)
        assert payload["latency_ms"]["p99"] == pytest.approx(10.0)
        stats.record_request(200, 0.030)
        payload = stats.snapshot()
        assert payload["latency_ms"]["p50"] == pytest.approx(10.0)
        assert payload["latency_ms"]["p99"] == pytest.approx(30.0)

    def test_ring_is_bounded(self):
        stats = ServerStats(latency_window=4)
        for latency in (1.0, 2.0, 3.0, 4.0, 5.0):
            stats.record_request(200, latency)
        payload = stats.snapshot()
        assert payload["latency_ms"]["window"] == 4
        # 1.0 was evicted: the minimum surviving sample is 2.0.
        assert payload["latency_ms"]["p50"] == pytest.approx(3000.0)
        assert stats.requests == 5
