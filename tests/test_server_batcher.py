"""Micro-batching contract: coalescing, identity, isolation, caching.

The acceptance property of the serving daemon's batcher
(:class:`repro.server.MicroBatcher`): N concurrent kNN requests are
answered through a *single* ``query_many`` index dispatch, and every
answer is byte-identical to what an unbatched
``EmbeddingService.query_knn`` call returns for the same node.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.serving import EmbeddingService, EmbeddingStore
from repro.server import MicroBatcher, ServerStats


def run(coro):
    """Loop-runner for async tests (stdlib stand-in for pytest-asyncio)."""
    return asyncio.run(coro)


def make_store(num_nodes: int = 64, dim: int = 16, seed: int = 0):
    rng = np.random.default_rng(seed)
    store = EmbeddingStore()
    store.publish(
        (list(range(num_nodes)), rng.standard_normal((num_nodes, dim)))
    )
    return store


class CountingIndexProxy:
    """Pass-through wrapper counting query / query_many dispatches."""

    def __init__(self, index) -> None:
        self._index = index
        self.query_calls = 0
        self.query_many_calls = 0
        self.query_many_sizes: list[int] = []

    def query(self, vector, k=10):
        self.query_calls += 1
        return self._index.query(vector, k)

    def query_many(self, vectors, k=10):
        self.query_many_calls += 1
        self.query_many_sizes.append(int(np.asarray(vectors).shape[0]))
        return self._index.query_many(vectors, k)

    def __getattr__(self, name):
        return getattr(self._index, name)


def spied_service(store) -> tuple[EmbeddingService, CountingIndexProxy]:
    service = EmbeddingService(store)
    service.refresh()  # build before wrapping: count only query traffic
    spy = CountingIndexProxy(service.index)
    service.index = spy
    return service, spy


# ----------------------------------------------------------------------
# the acceptance property
# ----------------------------------------------------------------------
def test_concurrent_requests_single_dispatch_byte_identical():
    """>= 8 concurrent lookups -> one query_many, answers == query_knn."""
    store = make_store()
    service, spy = spied_service(store)
    batcher = MicroBatcher(service, max_batch=64, window=0.0)
    nodes = list(range(12))

    async def fire():
        return await asyncio.gather(
            *(batcher.query(node, 5) for node in nodes)
        )

    batched = run(fire())

    assert spy.query_many_calls == 1
    assert spy.query_many_sizes == [len(nodes)]
    assert spy.query_calls == 0

    # Byte-identical to the unbatched path: a fresh service over the
    # same store builds the same frozen index (same seed/bits/center),
    # and Python float equality is bit equality.
    reference = EmbeddingService(store)
    for node, result in zip(nodes, batched):
        assert result == reference.query_knn(node, 5)


def test_batched_answers_are_deinterleaved_per_request():
    """Each caller gets its own node's neighbours, not a slice mix-up."""
    store = make_store(num_nodes=40)
    service, _ = spied_service(store)
    batcher = MicroBatcher(service, max_batch=64, window=0.0)
    nodes = [31, 2, 17, 9, 25, 0, 13, 38]

    async def fire():
        return await asyncio.gather(
            *(batcher.query(node, 4) for node in nodes)
        )

    results = run(fire())
    reference = EmbeddingService(store)
    for node, result in zip(nodes, results):
        assert result == reference.query_knn(node, 4)
        assert all(neighbor != node for neighbor, _ in result)


def test_mixed_k_values_one_dispatch_per_group():
    store = make_store()
    service, spy = spied_service(store)
    stats = ServerStats()
    batcher = MicroBatcher(service, max_batch=64, window=0.0, stats=stats)

    async def fire():
        return await asyncio.gather(
            batcher.query(0, 3), batcher.query(1, 7),
            batcher.query(2, 3), batcher.query(3, 7),
        )

    results = run(fire())
    # Candidate coverage scales with k, so each distinct k dispatches
    # separately — but still one query_many per group, not per request.
    assert spy.query_many_calls == 2
    assert sorted(spy.query_many_sizes) == [2, 2]
    assert [len(r) for r in results] == [3, 7, 3, 7]
    # The histogram measures coalescing: one dispatcher wake-up gathered
    # all four requests, regardless of how many index groups it split into.
    assert stats.batch_dispatches == 1
    assert dict(stats.batch_sizes) == {4: 1}
    assert stats.knn_queries == 4


def test_query_with_version_reports_the_dispatch_version():
    store = make_store()
    service, _ = spied_service(store)
    batcher = MicroBatcher(service, max_batch=64, window=0.0)

    result, version = run(batcher.query_with_version(3, 5))
    assert version == 0
    assert result == EmbeddingService(store).query_knn(3, 5)


def test_max_batch_dispatches_without_waiting_for_window():
    store = make_store()
    service, spy = spied_service(store)
    # A 10-minute window would time the test out if max_batch dispatch
    # did not fire as soon as the batch fills.
    batcher = MicroBatcher(service, max_batch=4, window=600.0)

    async def fire():
        return await asyncio.wait_for(
            asyncio.gather(*(batcher.query(n, 3) for n in range(4))),
            timeout=10.0,
        )

    results = run(fire())
    assert len(results) == 4
    assert spy.query_many_calls == 1


def test_lone_request_resolves_on_tick_window():
    store = make_store()
    service, _ = spied_service(store)
    batcher = MicroBatcher(service, max_batch=64, window=0.0)

    result = run(batcher.query(5, 3))
    assert result == EmbeddingService(store).query_knn(5, 3)


def test_unknown_node_fails_only_its_own_request():
    store = make_store(num_nodes=32)
    service, _ = spied_service(store)
    batcher = MicroBatcher(service, max_batch=64, window=0.0)

    async def fire():
        return await asyncio.gather(
            batcher.query(1, 3),
            batcher.query("no-such-node", 3),
            batcher.query(2, 3),
            return_exceptions=True,
        )

    ok_1, error, ok_2 = run(fire())
    assert isinstance(error, KeyError)
    reference = EmbeddingService(store)
    assert ok_1 == reference.query_knn(1, 3)
    assert ok_2 == reference.query_knn(2, 3)


def test_before_dispatch_failure_degrades_to_stale_head():
    """A failing reload hook answers the batch at the last indexed version."""
    store = make_store()
    service = EmbeddingService(store)
    service.refresh()  # index version 0
    stale = service.indexed_version
    rng = np.random.default_rng(99)
    store.publish((list(range(64)), rng.standard_normal((64, 16))))

    seen: list[Exception] = []
    stats = ServerStats()

    def explode():
        raise RuntimeError("reload failed")

    batcher = MicroBatcher(
        service,
        max_batch=64,
        window=0.0,
        stats=stats,
        before_dispatch=explode,
        on_reload_error=seen.append,
    )

    async def fire():
        return await asyncio.gather(
            batcher.query_with_version(0, 3), batcher.query_with_version(1, 3)
        )

    (ok_1, v_1), (ok_2, v_2) = run(fire())
    assert v_1 == v_2 == stale
    reference = EmbeddingService(store)
    assert ok_1 == reference.query_knn(0, 3, version=stale)
    assert ok_2 == reference.query_knn(1, 3, version=stale)
    assert stats.reload_errors == 1
    assert len(seen) == 1 and isinstance(seen[0], RuntimeError)


def test_before_dispatch_failure_fails_when_nothing_indexed():
    """With no stale version to degrade to, the hook's error fails the batch."""
    store = make_store()
    service = EmbeddingService(store)  # never refreshed: nothing indexed
    stats = ServerStats()

    def explode():
        raise RuntimeError("reload failed")

    batcher = MicroBatcher(
        service, max_batch=64, window=0.0, stats=stats, before_dispatch=explode
    )

    async def fire():
        return await asyncio.gather(
            batcher.query(0, 3), batcher.query(1, 3),
            return_exceptions=True,
        )

    results = run(fire())
    assert all(isinstance(r, RuntimeError) for r in results)
    assert stats.reload_errors == 1


def test_constructor_validation():
    store = make_store(num_nodes=8)
    service = EmbeddingService(store)
    with pytest.raises(ValueError):
        MicroBatcher(service, max_batch=0)
    with pytest.raises(ValueError):
        MicroBatcher(service, window=-0.1)


# ----------------------------------------------------------------------
# query_knn_batch cache semantics
# ----------------------------------------------------------------------
def test_batched_fills_are_served_to_unbatched_queries():
    """LSH batch results share the LRU cache with query_knn."""
    store = make_store()
    service = EmbeddingService(store)
    batched = service.query_knn_batch([3, 4], 5)
    hits_before = service.cache_hits
    assert service.query_knn(3, 5) == batched[0]
    assert service.query_knn(4, 5) == batched[1]
    assert service.cache_hits == hits_before + 2


def test_batch_cache_hits_skip_the_index():
    store = make_store()
    service, spy = spied_service(store)
    first = service.query_knn_batch([1, 2, 3], 4)
    assert spy.query_many_calls == 1
    again = service.query_knn_batch([1, 2, 3], 4)
    assert spy.query_many_calls == 1  # served wholly from cache
    assert again == first


def test_exact_backend_batches_are_not_cached():
    """gemm batches may differ from single queries in the last ulp, so
    they must never seed the cache query_knn reads from."""
    store = make_store()
    service = EmbeddingService(store, backend="exact")
    service.query_knn_batch([1, 2], 5)
    assert len(service._cache) == 0
    # Unbatched queries still cache as before.
    service.query_knn(1, 5)
    assert len(service._cache) == 1


def test_query_knn_batch_empty_and_bad_k():
    store = make_store(num_nodes=8)
    service = EmbeddingService(store)
    assert service.query_knn_batch([], 5) == []
    with pytest.raises(ValueError):
        service.query_knn_batch([1], 0)


def test_query_knn_batch_matches_query_knn_without_index():
    """Before the index covers the head, both paths exact-scan equally."""
    store = make_store()
    service = EmbeddingService(store, cache_size=0)
    # Force the non-index path by pointing the service at a stale index
    # state: disable refresh's effect via an exact service with no cache.
    batched = service.query_knn_batch([0, 1, 2], 6)
    reference = EmbeddingService(store, cache_size=0)
    for node, result in zip([0, 1, 2], batched):
        assert result == reference.query_knn(node, 6)
