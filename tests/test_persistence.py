"""Tests for GloDyNE checkpointing (save / resume mid-stream)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import GloDyNE
from repro.core.persistence import load_checkpoint, save_checkpoint

KWARGS = dict(
    dim=8, alpha=0.3, num_walks=2, walk_length=8, window_size=2, epochs=1,
)


class TestRoundTrip:
    def test_embeddings_survive(self, tiny_network, tmp_path):
        model = GloDyNE(**KWARGS, seed=0)
        model.update(tiny_network[0])
        model.update(tiny_network[1])
        path = tmp_path / "ckpt.npz"
        save_checkpoint(model, path)

        restored = load_checkpoint(path)
        for node in tiny_network[1].nodes():
            np.testing.assert_array_equal(
                model.model.embedding(node), restored.model.embedding(node)
            )

    def test_reservoir_survives(self, tiny_network, tmp_path):
        model = GloDyNE(**KWARGS, seed=0)
        model.update(tiny_network[0])
        model.update(tiny_network[1])
        path = tmp_path / "ckpt.npz"
        save_checkpoint(model, path)
        restored = load_checkpoint(path)
        assert restored.reservoir.as_dict() == model.reservoir.as_dict()

    def test_config_survives(self, tiny_network, tmp_path):
        model = GloDyNE(**KWARGS, seed=0)
        model.update(tiny_network[0])
        path = tmp_path / "ckpt.npz"
        save_checkpoint(model, path)
        restored = load_checkpoint(path)
        assert restored.config == model.config
        assert restored.time_step == model.time_step

    def test_resume_continues_stream(self, tiny_network, tmp_path):
        """A restored model keeps consuming snapshots without error and
        produces full-coverage embeddings."""
        model = GloDyNE(**KWARGS, seed=0)
        for snapshot in list(tiny_network)[:2]:
            model.update(snapshot)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(model, path)

        restored = load_checkpoint(path, seed=123)
        for snapshot in list(tiny_network)[2:]:
            embeddings = restored.update(snapshot)
            assert set(embeddings) == snapshot.node_set()
        assert restored.time_step == tiny_network.num_snapshots

    def test_previous_snapshot_survives(self, tiny_network, tmp_path):
        model = GloDyNE(**KWARGS, seed=0)
        model.update(tiny_network[0])
        path = tmp_path / "ckpt.npz"
        save_checkpoint(model, path)
        restored = load_checkpoint(path)
        assert restored.previous.edge_set() == model.previous.edge_set()
        assert restored.previous.node_set() == model.previous.node_set()

    def test_version_mismatch_rejected(self, tiny_network, tmp_path):
        model = GloDyNE(**KWARGS, seed=0)
        model.update(tiny_network[0])
        path = tmp_path / "ckpt.npz"
        save_checkpoint(model, path)

        data = dict(np.load(path, allow_pickle=True))
        data["format_version"] = np.array([999])
        np.savez(path, **data)
        with pytest.raises(ValueError):
            load_checkpoint(path)

    def test_string_node_ids(self, tmp_path):
        from repro.graph import Graph

        graph = Graph.from_edges(
            [("a", "b"), ("b", "c"), ("c", "a"), ("c", "d")]
        )
        model = GloDyNE(**KWARGS, seed=0)
        model.update(graph)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(model, path)
        restored = load_checkpoint(path)
        np.testing.assert_array_equal(
            model.model.embedding("a"), restored.model.embedding("a")
        )
