"""Unit tests for DynamicNetwork and edge-stream snapshot building."""

from __future__ import annotations

import pytest

from repro.graph import DynamicNetwork, EdgeEvent, Graph


class TestEdgeEvent:
    def test_default_kind(self):
        assert EdgeEvent(0, 1, 3.0).kind == "add"

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            EdgeEvent(0, 1, 0.0, kind="toggle")


class TestFromEdgeStream:
    def test_cumulative_snapshots(self):
        events = [(0, 1, 0.0), (1, 2, 1.0), (2, 3, 2.0)]
        network = DynamicNetwork.from_edge_stream(
            events, cutoffs=[0.0, 1.0, 2.0], restrict_to_lcc=False
        )
        assert network.num_snapshots == 3
        assert network[0].number_of_edges() == 1
        assert network[1].number_of_edges() == 2
        assert network[2].number_of_edges() == 3

    def test_snapshot_is_cumulative_superset(self):
        events = [(0, 1, 0.0), (1, 2, 1.5)]
        network = DynamicNetwork.from_edge_stream(
            events, cutoffs=[1.0, 2.0], restrict_to_lcc=False
        )
        assert network[0].edge_set() <= network[1].edge_set()

    def test_events_after_last_cutoff_dropped(self):
        events = [(0, 1, 0.0), (5, 6, 99.0)]
        network = DynamicNetwork.from_edge_stream(
            events, cutoffs=[1.0], restrict_to_lcc=False
        )
        assert not network[0].has_edge(5, 6)

    def test_lcc_restriction(self):
        events = [(0, 1, 0.0), (1, 2, 0.0), (10, 11, 0.0)]
        network = DynamicNetwork.from_edge_stream(events, cutoffs=[0.0])
        assert network[0].node_set() == {0, 1, 2}

    def test_remove_events(self):
        events = [
            EdgeEvent(0, 1, 0.0),
            EdgeEvent(1, 2, 0.0),
            EdgeEvent(0, 1, 1.0, kind="remove"),
        ]
        network = DynamicNetwork.from_edge_stream(
            events, cutoffs=[0.0, 1.0], restrict_to_lcc=False
        )
        assert network[0].has_edge(0, 1)
        assert not network[1].has_edge(0, 1)

    def test_non_increasing_cutoffs_rejected(self):
        with pytest.raises(ValueError):
            DynamicNetwork.from_edge_stream([(0, 1, 0.0)], cutoffs=[2.0, 1.0])

    def test_equal_width_builder(self):
        events = [(i, i + 1, float(i)) for i in range(10)]
        network = DynamicNetwork.from_equal_width_stream(
            events, num_snapshots=5, restrict_to_lcc=False
        )
        assert network.num_snapshots == 5
        # Last snapshot must contain every event despite float windows.
        assert network[-1].number_of_edges() == 10

    def test_equal_width_empty_stream_rejected(self):
        with pytest.raises(ValueError):
            DynamicNetwork.from_equal_width_stream([], num_snapshots=3)


class TestDynamicNetworkAPI:
    def test_needs_a_snapshot(self):
        with pytest.raises(ValueError):
            DynamicNetwork([])

    def test_diffs_length(self, tiny_network: DynamicNetwork):
        assert len(tiny_network.diffs()) == tiny_network.num_snapshots - 1

    def test_diff_t0_rejected(self, tiny_network: DynamicNetwork):
        with pytest.raises(ValueError):
            tiny_network.diff(0)

    def test_totals(self):
        g0 = Graph.from_edges([(0, 1)])
        g1 = Graph.from_edges([(0, 1), (1, 2)])
        network = DynamicNetwork([g0, g1])
        assert network.total_nodes() == 2 + 3
        assert network.total_edges() == 1 + 2

    def test_labels_and_labeled_nodes(self):
        g = Graph.from_edges([(0, 1), (1, 2)])
        network = DynamicNetwork([g], labels={0: "x", 2: "y", 99: "ghost"})
        assert sorted(network.labeled_nodes(0)) == [0, 2]

    def test_iteration_and_indexing(self, tiny_network: DynamicNetwork):
        assert len(list(iter(tiny_network))) == len(tiny_network)
        assert tiny_network[0] is tiny_network.snapshot(0)

    def test_snapshots_are_connected_after_lcc(self, tiny_network):
        from repro.graph import is_connected

        for snapshot in tiny_network:
            assert is_connected(snapshot)
