"""Equivalence tests for the vectorised weighted walk stepping.

``_step_weighted`` replaced a per-walker Python ``searchsorted`` loop
with one global-offset binary search. These tests pin its semantics:
transition frequencies must track edge-weight proportions, the looped
reference (``_step_weighted_loop``) must agree distributionally, and on
uniform-weight graphs the weighted path must match the uniform path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.csr import CSRAdjacency
from repro.graph.static import Graph
from repro.walks.random_walk import (
    TRUNCATED,
    _step_uniform,
    _step_weighted,
    _step_weighted_loop,
    simulate_walks,
)


def star_csr(weights: dict[int, float]) -> CSRAdjacency:
    """Hub node 0 connected to leaves with the given weights."""
    graph = Graph()
    for leaf, weight in weights.items():
        graph.add_edge(0, leaf, weight)
    return CSRAdjacency.from_graph(graph)


def transition_frequencies(
    csr: CSRAdjacency, stepper, num_walks: int, seed: int
) -> dict[int, float]:
    """Empirical first-step distribution out of node 0 under ``stepper``."""
    walks = np.full((num_walks, 2), TRUNCATED, dtype=np.int64)
    walks[:, 0] = csr.index_of[0]
    stepper(csr, walks, np.random.default_rng(seed))
    destinations = walks[:, 1]
    assert (destinations != TRUNCATED).all()
    total = destinations.size
    return {
        csr.nodes[idx]: count / total
        for idx, count in zip(*np.unique(destinations, return_counts=True))
    }


class TestWeightProportions:
    def test_frequencies_match_weight_proportions(self):
        weights = {1: 1.0, 2: 2.0, 3: 4.0, 4: 8.0}
        csr = star_csr(weights)
        assert not csr.is_uniform
        freqs = transition_frequencies(csr, _step_weighted, 40_000, seed=0)
        total = sum(weights.values())
        for leaf, weight in weights.items():
            assert freqs[leaf] == pytest.approx(weight / total, abs=0.01)

    def test_extreme_weight_ratio(self):
        csr = star_csr({1: 1e-6, 2: 1.0})
        freqs = transition_frequencies(csr, _step_weighted, 20_000, seed=1)
        assert freqs[2] == pytest.approx(1.0, abs=0.01)
        assert freqs.get(1, 0.0) < 0.01

    def test_loop_reference_matches_weight_proportions(self):
        weights = {1: 3.0, 2: 1.0, 3: 6.0}
        csr = star_csr(weights)
        freqs = transition_frequencies(csr, _step_weighted_loop, 30_000, seed=2)
        total = sum(weights.values())
        for leaf, weight in weights.items():
            assert freqs[leaf] == pytest.approx(weight / total, abs=0.015)

    def test_vectorized_and_loop_agree_distributionally(self):
        weights = {1: 0.5, 2: 2.5, 3: 1.0, 4: 4.0, 5: 2.0}
        csr = star_csr(weights)
        vec = transition_frequencies(csr, _step_weighted, 30_000, seed=3)
        loop = transition_frequencies(csr, _step_weighted_loop, 30_000, seed=4)
        for leaf in weights:
            assert vec[leaf] == pytest.approx(loop[leaf], abs=0.015)


class TestUniformEquivalence:
    def test_uniform_weights_match_uniform_path(self):
        """On a uniform-weight CSR the weighted code path must reproduce
        the uniform path's distribution."""
        graph = Graph()
        for leaf in range(1, 6):
            graph.add_edge(0, leaf, 1.0)
        csr = CSRAdjacency.from_graph(graph)
        weighted = transition_frequencies(csr, _step_weighted, 50_000, seed=5)
        uniform = transition_frequencies(csr, _step_uniform, 50_000, seed=6)
        for leaf in range(1, 6):
            assert weighted[leaf] == pytest.approx(0.2, abs=0.01)
            assert weighted[leaf] == pytest.approx(uniform[leaf], abs=0.012)

    def test_uniform_nonunit_weights_still_uniform(self):
        """All-equal weights != 1.0 must also step uniformly."""
        graph = Graph()
        for leaf in range(1, 5):
            graph.add_edge(0, leaf, 7.5)
        csr = CSRAdjacency.from_graph(graph)
        freqs = transition_frequencies(csr, _step_weighted, 40_000, seed=7)
        for leaf in range(1, 5):
            assert freqs[leaf] == pytest.approx(0.25, abs=0.01)


class TestWalkMechanics:
    def test_weighted_walks_stay_on_graph_edges(self):
        rng = np.random.default_rng(8)
        graph = Graph()
        for _ in range(60):
            u, v = rng.integers(0, 20, size=2)
            if u != v:
                graph.add_edge(int(u), int(v), float(rng.uniform(0.5, 3.0)))
        csr = CSRAdjacency.from_graph(graph)
        walks = simulate_walks(
            csr, np.arange(csr.num_nodes), num_walks=2, walk_length=12, rng=rng
        )
        for row in walks:
            live = row[row != TRUNCATED]
            for a, b in zip(live, live[1:]):
                assert graph.has_edge(csr.nodes[int(a)], csr.nodes[int(b)])

    def test_truncation_at_isolated_node(self):
        """A degree-0 start truncates immediately under the weighted path."""
        graph = Graph()
        graph.add_edge(0, 1, 2.0)
        graph.add_node(2)  # isolated
        csr = CSRAdjacency.from_graph(graph)
        walks = np.full((2, 4), TRUNCATED, dtype=np.int64)
        walks[0, 0] = csr.index_of[2]
        walks[1, 0] = csr.index_of[0]
        _step_weighted(csr, walks, np.random.default_rng(9))
        assert (walks[0, 1:] == TRUNCATED).all()
        assert (walks[1, 1:] != TRUNCATED).all()

    def test_chosen_index_never_escapes_row(self):
        """Stress float round-off: many steps on a weighted graph never
        produce a neighbour outside the current node's row."""
        rng = np.random.default_rng(10)
        graph = Graph()
        for u in range(30):
            for _ in range(3):
                v = int(rng.integers(0, 30))
                if u != v:
                    graph.add_edge(u, v, float(rng.uniform(1e-4, 1e4)))
        csr = CSRAdjacency.from_graph(graph)
        walks = simulate_walks(
            csr, np.arange(csr.num_nodes), num_walks=4, walk_length=30, rng=rng
        )
        for row in walks:
            live = row[row != TRUNCATED]
            for a, b in zip(live, live[1:]):
                assert int(b) in set(csr.neighbors(int(a)))
