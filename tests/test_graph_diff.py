"""Unit tests for snapshot diffs (ΔE^t and per-node change counts)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    Graph,
    diff_snapshots,
    node_change_count,
    weighted_node_changes,
)


class TestDiffSnapshots:
    def test_no_change(self, triangle: Graph):
        diff = diff_snapshots(triangle, triangle.copy())
        assert diff.is_empty()
        assert diff.num_changed_edges == 0

    def test_added_edge(self, triangle: Graph):
        current = triangle.copy()
        current.add_edge(0, 3)
        diff = diff_snapshots(triangle, current)
        assert diff.added_edges == frozenset({frozenset((0, 3))})
        assert diff.added_nodes == frozenset({3})
        assert diff.removed_edges == frozenset()

    def test_removed_edge(self, triangle: Graph):
        current = triangle.copy()
        current.remove_edge(0, 1)
        diff = diff_snapshots(triangle, current)
        assert diff.removed_edges == frozenset({frozenset((0, 1))})
        assert diff.num_changed_edges == 1

    def test_removed_node(self, triangle: Graph):
        current = triangle.copy()
        current.remove_node(2)
        diff = diff_snapshots(triangle, current)
        assert diff.removed_nodes == frozenset({2})
        assert len(diff.removed_edges) == 2  # edges (0,2) and (1,2)

    def test_node_changes_credit_both_endpoints(self, triangle: Graph):
        current = triangle.copy()
        current.add_edge(0, 3)
        diff = diff_snapshots(triangle, current)
        assert diff.node_changes[0] == 1
        assert diff.node_changes[3] == 1
        assert 1 not in diff.node_changes

    def test_changed_nodes_property(self, triangle: Graph):
        current = triangle.copy()
        current.remove_edge(1, 2)
        diff = diff_snapshots(triangle, current)
        assert diff.changed_nodes == {1, 2}


class TestNodeChangeCount:
    def test_matches_eq3_set_formula(self, triangle: Graph):
        """|ΔE_i| = |N(v^t) ∪ N(v^{t-1})| - |N(v^t) ∩ N(v^{t-1})|."""
        current = triangle.copy()
        current.add_edge(0, 3)
        current.remove_edge(0, 1)
        prev_n = triangle.neighbor_set(0)
        curr_n = current.neighbor_set(0)
        expected = len(prev_n | curr_n) - len(prev_n & curr_n)
        assert node_change_count(triangle, current, 0) == expected == 2

    def test_new_node_counts_all_edges(self, triangle: Graph):
        current = triangle.copy()
        current.add_edge(9, 0)
        current.add_edge(9, 1)
        assert node_change_count(triangle, current, 9) == 2


class TestWeightedChanges:
    def test_weight_modification(self):
        previous = Graph.from_edges([(0, 1, 1.0)])
        current = Graph.from_edges([(0, 1, 3.0)])
        changes = weighted_node_changes(previous, current)
        assert changes[0] == 2.0
        assert changes[1] == 2.0

    def test_deleted_weighted_edge(self):
        previous = Graph.from_edges([(0, 1, 4.0), (1, 2, 1.0)])
        current = Graph.from_edges([(1, 2, 1.0)])
        current.add_node(0)
        changes = weighted_node_changes(previous, current)
        assert changes[0] == 4.0

    def test_unweighted_matches_unweighted_count(self, triangle: Graph):
        current = triangle.copy()
        current.add_edge(0, 3)
        current.remove_edge(1, 2)
        weighted = weighted_node_changes(triangle, current)
        diff = diff_snapshots(triangle, current)
        for node, count in diff.node_changes.items():
            assert weighted[node] == count


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2000))
def test_diff_consistency_properties(seed):
    """Properties: applying the diff to `previous` reproduces `current`'s
    edge set; node change totals equal 2x edge changes."""
    rng = np.random.default_rng(seed)
    previous = Graph()
    for i in range(10):
        previous.add_node(i)
    for _ in range(15):
        u, v = rng.integers(0, 10, size=2)
        if u != v:
            previous.add_edge(int(u), int(v))
    current = previous.copy()
    for _ in range(6):
        u, v = rng.integers(0, 12, size=2)
        if u == v:
            continue
        if current.has_edge(int(u), int(v)):
            current.remove_edge(int(u), int(v))
        else:
            current.add_edge(int(u), int(v))

    diff = diff_snapshots(previous, current)

    rebuilt = previous.edge_set() - diff.removed_edges | diff.added_edges
    assert rebuilt == current.edge_set()

    total_credits = sum(diff.node_changes.values())
    # Every changed non-loop edge credits exactly two endpoints.
    loops = sum(
        1 for e in (diff.added_edges | diff.removed_edges) if len(e) == 1
    )
    assert total_credits == 2 * diff.num_changed_edges - 0 * loops
