"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.graph import DynamicNetwork, Graph


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def triangle() -> Graph:
    """Smallest non-trivial graph: a 3-cycle."""
    return Graph.from_edges([(0, 1), (1, 2), (2, 0)])


@pytest.fixture
def path_graph() -> Graph:
    """A 6-node path 0-1-2-3-4-5 (the paper's Figure 1a topology)."""
    return Graph.from_edges([(i, i + 1) for i in range(5)])


@pytest.fixture
def two_cliques() -> Graph:
    """Two 4-cliques joined by one bridge edge — an obvious 2-partition."""
    graph = Graph()
    for base in (0, 4):
        for i in range(4):
            for j in range(i + 1, 4):
                graph.add_edge(base + i, base + j)
    graph.add_edge(0, 4)
    return graph


@pytest.fixture
def karate_like(rng: np.random.Generator) -> Graph:
    """A ~40-node two-community graph for partition/walk tests."""
    graph = Graph()
    for community, base in enumerate((0, 20)):
        nodes = list(range(base, base + 20))
        for i, u in enumerate(nodes):
            graph.add_edge(u, nodes[(i + 1) % 20])  # ring backbone
        for _ in range(40):
            i, j = rng.integers(0, 20, size=2)
            if i != j:
                graph.add_edge(nodes[int(i)], nodes[int(j)])
    graph.add_edge(0, 20)
    graph.add_edge(5, 25)
    return graph


@pytest.fixture
def tiny_network() -> DynamicNetwork:
    """5-snapshot simulated interaction network, small enough for fast tests."""
    return load_dataset("elec-sim", scale=0.25, seed=7, snapshots=5)


@pytest.fixture
def labeled_network() -> DynamicNetwork:
    """Small labelled citation network for NC tests."""
    return load_dataset("cora-sim", scale=0.3, seed=7, snapshots=5)


@pytest.fixture
def churn_network() -> DynamicNetwork:
    """Small network WITH node deletions (AS733 analogue)."""
    return load_dataset("as733-sim", scale=0.3, seed=7, snapshots=5)
