"""Sharded serving tier: split, merge, scatter-gather over real sockets.

The acceptance property of the multi-process tier
(:mod:`repro.server.sharding`): a :class:`ShardRouter` fronting N
disjoint shard workers answers ``/knn`` **bit-identically** to the
unsharded single-process exact answer — ties included — and one dead
worker degrades (503 naming the shard) instead of cascading.

Most tests run the workers as in-process :class:`EmbeddingDaemon`
instances on ephemeral loopback ports (real HTTP, no process spawn);
the spawn/CLI paths are exercised by the E2E-gated tests at the bottom.
"""

from __future__ import annotations

import asyncio
import io
import json
import os
import re
import threading
import time
from contextlib import redirect_stdout
from urllib.request import urlopen

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main as cli_main
from repro.serving import (
    EmbeddingService,
    EmbeddingStore,
    ShardAssignment,
    save_store,
    split_store,
    stable_shard,
)
from repro.server import (
    EmbeddingDaemon,
    ShardRouter,
    ShardSpec,
    merge_topk,
    shutdown_workers,
    spawn_workers,
)


def run(coro):
    """Loop-runner for async tests (stdlib stand-in for pytest-asyncio)."""
    return asyncio.run(coro)


def make_store(
    num_nodes: int = 48,
    dim: int = 12,
    seed: int = 0,
    *,
    versions: int = 1,
    ties: bool = False,
    mixed_ids: bool = False,
):
    """A parent store; ``ties`` duplicates rows so scores collide exactly."""
    rng = np.random.default_rng(seed)
    if mixed_ids:
        nodes = [n if n % 2 else f"n{n}" for n in range(num_nodes)]
    else:
        nodes = list(range(num_nodes))
    store = EmbeddingStore()
    for _ in range(versions):
        matrix = rng.standard_normal((num_nodes, dim))
        if ties:
            # Identical rows produce identical float32 unit rows and
            # therefore *exactly* equal scores — the tie-break matters.
            matrix[1::3] = matrix[0]
            matrix[2::5] = matrix[1]
        store.publish((nodes, matrix))
    return store


async def fetch(port: int, target: str, method: str = "GET", body=None):
    """One request on a fresh connection; returns (status, json payload)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    payload = b"" if body is None else json.dumps(body).encode()
    head = (
        f"{method} {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n"
    )
    if payload:
        head += f"Content-Length: {len(payload)}\r\n"
    writer.write(head.encode("ascii") + b"\r\n" + payload)
    await writer.drain()
    data = await reader.read()
    writer.close()
    await writer.wait_closed()
    status_head, _, status_body = data.partition(b"\r\n\r\n")
    return int(status_head.split(b" ")[1]), json.loads(status_body)


def neighbors_as_pairs(payload: dict) -> list[tuple]:
    return [(entry["node"], entry["score"]) for entry in payload["neighbors"]]


def with_cluster(store, num_shards, coro_fn, *, backend="exact"):
    """Split ``store``, serve each shard in-process, route, run, tear down.

    ``coro_fn(router, workers)`` runs with everything listening on real
    loopback sockets; workers are plain :class:`EmbeddingDaemon`
    instances (same HTTP surface as spawned processes, no fork cost).
    """
    shard_stores, assignment = split_store(store, num_shards)

    async def wrapper():
        workers = []
        router = None
        try:
            for shard_store in shard_stores:
                worker = EmbeddingDaemon(
                    {"main": EmbeddingService(shard_store, backend=backend)},
                    reload_interval=None,
                    idle_timeout=None,
                )
                await worker.start(port=0)
                workers.append(worker)
            specs = [
                ShardSpec(f"shard-{i}", worker.host, worker.port)
                for i, worker in enumerate(workers)
            ]
            router = ShardRouter({"main": (store, assignment)}, specs)
            await router.start(port=0)
            return await coro_fn(router, workers)
        finally:
            if router is not None:
                await router.close()
            for worker in workers:
                await worker.close()

    return run(wrapper())


# ----------------------------------------------------------------------
# split_store
# ----------------------------------------------------------------------
def test_split_store_partitions_rows_disjointly():
    """Every node lands on exactly one shard; rows keep parent order."""
    store = make_store(num_nodes=40, versions=2, mixed_ids=True)
    shards, assignment = split_store(store, 3)
    assert assignment.source == "hash"
    for record in store:
        seen: dict = {}
        for shard_id, shard in enumerate(shards):
            shard_record = shard.version(record.version)
            # Same version ids as the parent, rows ascending in parent order.
            parent_rows = [record.row_of[n] for n in shard_record.nodes]
            assert parent_rows == sorted(parent_rows)
            assert shard_record.metadata["shard"] == {
                "index": shard_id,
                "of": 3,
            }
            for node in shard_record.nodes:
                assert node not in seen
                seen[node] = shard_id
                np.testing.assert_array_equal(
                    shard_record.vector(node), record.vector(node)
                )
        assert set(seen) == set(record.nodes)
    # The assignment agrees with where rows actually went.
    for node, shard_id in seen.items():
        assert assignment.owner_of(node) == shard_id


def test_split_store_follows_partition_cells():
    """Published Step 1 cells drive ownership: cell % num_shards."""
    num_nodes, num_shards = 30, 3
    rng = np.random.default_rng(7)
    cells = [int(c) for c in rng.integers(0, 6, size=num_nodes)]
    store = EmbeddingStore()
    store.publish(
        (list(range(num_nodes)), rng.standard_normal((num_nodes, 8))),
        metadata={"partition_cells": cells},
    )
    shards, assignment = split_store(store, num_shards)
    assert assignment.source == "partition_cells"
    for node, cell in enumerate(cells):
        assert assignment.owner_of(node) == cell % num_shards
    # Each shard's sliced cells stay row-aligned with its own matrix.
    for shard in shards:
        record = shard.latest
        sliced = record.metadata["partition_cells"]
        assert len(sliced) == record.num_nodes
        assert sliced == [cells[node] for node in record.nodes]


def test_split_store_hash_mode_is_deterministic():
    """Hash ownership is process-stable: two splits agree exactly."""
    store = make_store(num_nodes=32, mixed_ids=True)
    shards_a, assignment_a = split_store(store, 4)
    shards_b, assignment_b = split_store(store, 4)
    for a, b in zip(shards_a, shards_b):
        assert a.latest.nodes == b.latest.nodes
    for node in store.latest.nodes:
        assert assignment_a.owner_of(node) == assignment_b.owner_of(node)
        assert assignment_a.owner_of(node) == stable_shard(node, 4)


def test_split_store_rejects_empty_store_and_empty_shards():
    with pytest.raises(ValueError, match="empty store"):
        split_store(EmbeddingStore(), 2)
    with pytest.raises(ValueError, match="num_shards"):
        split_store(make_store(), 0)
    # 3 nodes over 16 shards must leave some shard with no rows.
    with pytest.raises(ValueError, match="use fewer shards"):
        split_store(make_store(num_nodes=3), 16)


def test_assignment_hash_fallback_for_unseen_nodes():
    """Nodes published after the split still get a deterministic owner."""
    assignment = ShardAssignment(4, "partition_cells", {"a": 2})
    assert assignment.owner_of("a") == 2
    assert assignment.owner_of("never-seen") == stable_shard("never-seen", 4)


# ----------------------------------------------------------------------
# merge_topk: property-based bit-identity (no HTTP)
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(
    num_nodes=st.integers(min_value=6, max_value=40),
    dim=st.integers(min_value=2, max_value=10),
    num_shards=st.integers(min_value=1, max_value=4),
    k=st.integers(min_value=1, max_value=9),
    seed=st.integers(min_value=0, max_value=1000),
    ties=st.booleans(),
)
def test_merged_topk_equals_unsharded_exact(
    num_nodes, dim, num_shards, k, seed, ties
):
    """Property: for any split, merge(shard top-(k+1)) == unsharded top-k.

    Exact equality on both node ids and float scores — the merge and
    the exact backends share one scoring kernel and one tie-break, so
    ``==`` on the pair lists is a bit-level assertion.
    """
    store = make_store(num_nodes, dim, seed, ties=ties)
    try:
        shard_stores, assignment = split_store(store, num_shards)
    except ValueError:
        return  # the hash left some shard empty — vacuous draw
    shard_services = [
        EmbeddingService(s, backend="exact") for s in shard_stores
    ]
    reference = EmbeddingService(store, backend="exact")
    record = store.latest
    for node in range(0, num_nodes, max(1, num_nodes // 5)):
        vector = record.vector(node)
        per_shard = [
            service.query_knn_vector(vector, k + 1)
            for service in shard_services
        ]
        merged = merge_topk(per_shard, record.row_of, k, exclude=(node,))
        assert merged == reference.query_knn(node, k)


# ----------------------------------------------------------------------
# router over real sockets (in-process workers)
# ----------------------------------------------------------------------
def test_router_knn_bit_identical_over_http():
    """Router(3 shards) == unsharded exact service, over the wire."""
    store = make_store(num_nodes=48, versions=2, mixed_ids=True)
    reference = EmbeddingService(store, backend="exact")
    nodes = list(store.latest.nodes)

    async def scenario(router, workers):
        checks = []
        for node in nodes[::5]:
            query = json.dumps(node, separators=(",", ":"))
            for k in (1, 5, 23):
                status, payload = await fetch(
                    router.port, f"/g/main/knn?node={query}&k={k}"
                )
                checks.append((node, k, None, status, payload))
            status, payload = await fetch(
                router.port, f"/g/main/knn?node={query}&k=4&version=0"
            )
            checks.append((node, 4, 0, status, payload))
        return checks

    for node, k, version, status, payload in with_cluster(store, 3, scenario):
        assert status == 200
        assert payload["version"] == (1 if version is None else version)
        assert payload["shards"] == 3
        expected = reference.query_knn(node, k, version=version)
        assert neighbors_as_pairs(payload) == expected


def test_router_merges_ties_identically():
    """Duplicated rows (exactly equal scores) merge in parent-row order."""
    store = make_store(num_nodes=36, ties=True, seed=3)
    reference = EmbeddingService(store, backend="exact")

    async def scenario(router, workers):
        answers = []
        for node in range(0, 36, 4):
            status, payload = await fetch(
                router.port, f"/g/main/knn?node={node}&k=8"
            )
            answers.append((node, status, payload))
        return answers

    for node, status, payload in with_cluster(store, 3, scenario):
        assert status == 200
        assert neighbors_as_pairs(payload) == reference.query_knn(node, 8)


def test_dead_shard_answers_503_and_router_stays_up():
    """One dead worker: knn 503 names the shard; the rest keeps serving."""
    store = make_store(num_nodes=30)

    async def scenario(router, workers):
        await workers[1].close()  # kill shard-1's listener
        knn_status, knn_payload = await fetch(
            router.port, "/g/main/knn?node=0&k=3"
        )
        health_status, health = await fetch(router.port, "/healthz")
        versions_status, versions = await fetch(
            router.port, "/g/main/versions"
        )
        return knn_status, knn_payload, health_status, health, versions_status, versions

    knn_status, knn_payload, health_status, health, versions_status, versions = (
        with_cluster(store, 3, scenario)
    )
    assert knn_status == 503
    assert "shard-1" in knn_payload["error"]
    assert health_status == 200
    assert health["status"] == "degraded"
    assert health["shards"]["shard-1"]["status"] == "unreachable"
    assert health["shards"]["shard-0"]["status"] == "ok"
    # Routes that do not touch the dead shard still answer.
    assert versions_status == 200
    assert versions["shards"] == 3


def test_score_and_embed_proxy_to_owning_shard():
    """Same-shard score proxies; cross-shard pairs score at the router."""
    store = make_store(num_nodes=24, seed=5)
    _, assignment = split_store(store, 2)
    reference = EmbeddingService(store, backend="exact")
    nodes = list(store.latest.nodes)
    same = next(
        (u, v)
        for u in nodes
        for v in nodes
        if u != v and assignment.owner_of(u) == assignment.owner_of(v)
    )
    cross = next(
        (u, v)
        for u in nodes
        for v in nodes
        if assignment.owner_of(u) != assignment.owner_of(v)
    )

    async def scenario(router, workers):
        results = {}
        for label, (u, v) in (("same", same), ("cross", cross)):
            for metric in ("cosine", "dot"):
                results[label, metric] = await fetch(
                    router.port,
                    f"/g/main/score?u={u}&v={v}&metric={metric}",
                )
        results["embed"] = await fetch(router.port, f"/g/main/embed?node={nodes[7]}")
        return results

    results = with_cluster(store, 2, scenario)
    for label, (u, v) in (("same", same), ("cross", cross)):
        for metric in ("cosine", "dot"):
            status, payload = results[label, metric]
            assert status == 200
            assert payload["score"] == reference.score_edge(u, v, metric=metric)
            if label == "same":
                assert payload["shard"] == f"shard-{assignment.owner_of(u)}"
            else:
                assert payload["shard"] is None
    status, payload = results["embed"]
    assert status == 200
    assert payload["shard"] == f"shard-{assignment.owner_of(nodes[7])}"
    assert payload["vector"] == [
        float(x) for x in store.latest.vector(nodes[7])
    ]


def test_stats_aggregation_and_reload_broadcast():
    """/stats rolls worker counters up; POST /reload fans out to all."""
    store = make_store(num_nodes=20)

    async def scenario(router, workers):
        for node in range(4):
            status, _ = await fetch(router.port, f"/g/main/knn?node={node}&k=3")
            assert status == 200
        stats_status, stats = await fetch(router.port, "/stats")
        reload_status, reloaded = await fetch(
            router.port, "/g/main/reload", method="POST"
        )
        return stats_status, stats, reload_status, reloaded

    stats_status, stats, reload_status, reloaded = with_cluster(
        store, 2, scenario
    )
    assert stats_status == 200
    assert stats["role"] == "router"
    assert set(stats["shards"]) == {"shard-0", "shard-1"}
    # 4 scatters x 2 shards = 8 worker-side kNN queries.
    assert stats["shards_rollup"]["knn_queries"] == 8
    assert stats["shards_rollup"]["requests"] >= 8
    assert reload_status == 200
    assert set(reloaded["shards"]) == {"shard-0", "shard-1"}
    for payload in reloaded["shards"].values():
        assert payload["indexed_version"] == 0


def test_router_rejects_mismatched_shard_count():
    store = make_store(num_nodes=48)
    _, assignment = split_store(store, 3)
    with pytest.raises(ValueError, match="3 shards but 2 workers"):
        ShardRouter(
            {"main": (store, assignment)},
            [ShardSpec("a", "127.0.0.1", 1), ShardSpec("b", "127.0.0.1", 2)],
        )


# ----------------------------------------------------------------------
# real worker processes (E2E-gated: process spawn is slow)
# ----------------------------------------------------------------------
e2e = pytest.mark.skipif(
    os.environ.get("REPRO_BENCH_E2E") == "0",
    reason="multi-process e2e disabled (CI runs it in the smoke job)",
)


@e2e
def test_spawned_workers_golden_query_and_teardown():
    """Spawned worker processes answer the router bit-identically."""
    store = make_store(num_nodes=32, seed=11)
    shard_stores, assignment = split_store(store, 2)
    reference = EmbeddingService(store, backend="exact")
    handles = spawn_workers(
        [{"main": s} for s in shard_stores], backend="exact"
    )
    try:
        assert [h.spec.name for h in handles] == ["shard-0", "shard-1"]
        assert all(h.process.is_alive() for h in handles)

        async def scenario():
            router = ShardRouter(
                {"main": (store, assignment)},
                [h.spec for h in handles],
            )
            await router.start(port=0)
            try:
                status, payload = await fetch(
                    router.port, "/g/main/knn?node=9&k=6"
                )
                health_status, health = await fetch(router.port, "/healthz")
                return status, payload, health_status, health
            finally:
                await router.close()

        status, payload, health_status, health = run(scenario())
        assert status == 200
        assert neighbors_as_pairs(payload) == reference.query_knn(9, 6)
        assert (health_status, health["status"]) == (200, "ok")
    finally:
        shutdown_workers(handles)
    for handle in handles:
        assert not handle.process.is_alive()


@e2e
def test_cli_serve_http_sharded_golden_over_the_wire(tmp_path):
    """`repro serve-http --shards 2` answers exactly like query_knn."""
    store = make_store(num_nodes=40, seed=2)
    store_path = tmp_path / "store.npz"
    save_store(store, store_path)

    buffer = io.StringIO()
    result: dict = {}

    def target():
        with redirect_stdout(buffer):
            result["rc"] = cli_main(
                [
                    "serve-http", "--store", f"g={store_path}",
                    "--backend", "exact", "--shards", "2",
                    "--port", "0", "--max-seconds", "6",
                ]
            )

    thread = threading.Thread(target=target)
    thread.start()
    try:
        deadline = time.monotonic() + 30
        port = None
        while time.monotonic() < deadline:
            match = re.search(
                r"routing .* on http://127\.0\.0\.1:(\d+)", buffer.getvalue()
            )
            if match:
                port = int(match.group(1))
                break
            time.sleep(0.05)
        assert port is not None, "router never announced its address"
        with urlopen(f"http://127.0.0.1:{port}/g/g/knn?node=7&k=5", timeout=5) as r:
            payload = json.load(r)
        with urlopen(f"http://127.0.0.1:{port}/healthz", timeout=5) as r:
            health = json.load(r)
    finally:
        thread.join(timeout=30)
    assert result["rc"] == 0
    assert health["status"] == "ok"
    assert set(health["shards"]) == {"shard-0", "shard-1"}
    reference = EmbeddingService(store, backend="exact")
    assert neighbors_as_pairs(payload) == reference.query_knn(7, 5)
