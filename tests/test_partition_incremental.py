"""Property + golden tests for the incremental Step 1 partitioner.

The contract under test (see ``repro/partition/incremental.py``):

* every maintained partition satisfies the ``validate_partition``
  invariants — non-overlap, cover, non-empty cells, the Eq. (2)
  ceiling — after *arbitrary* delta sequences (edge adds/removes,
  weight updates, node churn, K drift);
* incremental steps consume no randomness: the partitioner's state is a
  pure function of its seed and the call sequence;
* the quality-gate fallback is bit-identical to a fresh full
  ``partition_graph`` under the documented rebuild RNG stream.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import preferential_attachment_graph
from repro.graph import CSRAdjacency, Graph
from repro.partition import (
    IncrementalPartitioner,
    partition_graph,
    validate_partition,
)


def drifted_graph(n: int = 60, seed: int = 0) -> Graph:
    return preferential_attachment_graph(n, 2, np.random.default_rng(seed))


def apply_random_delta(
    graph: Graph, rng: np.random.Generator, num_ops: int = 8
) -> set:
    """Random adds / removes / weight updates / node churn; returns touched."""
    touched: set = set()
    nodes = sorted(graph.node_set())
    next_id = max(nodes) + 1
    for _ in range(num_ops):
        op = int(rng.integers(0, 5))
        if op == 0 and graph.number_of_nodes() > 4:  # remove a node
            victim = nodes[int(rng.integers(0, len(nodes)))]
            if graph.has_node(victim) and graph.number_of_nodes() > 4:
                touched.update(graph.neighbor_set(victim))
                touched.add(victim)
                graph.remove_node(victim)
        elif op == 1:  # attach a brand-new node
            anchor = nodes[int(rng.integers(0, len(nodes)))]
            if graph.has_node(anchor):
                graph.add_edge(next_id, anchor)
                touched.update((next_id, anchor))
                next_id += 1
        elif op == 2:  # remove an edge
            u = nodes[int(rng.integers(0, len(nodes)))]
            if graph.has_node(u):
                nbrs = sorted(graph.neighbor_set(u), key=repr)
                if nbrs:
                    v = nbrs[int(rng.integers(0, len(nbrs)))]
                    graph.remove_edge(u, v)
                    touched.update((u, v))
        elif op == 3:  # weight update on an existing edge
            u = nodes[int(rng.integers(0, len(nodes)))]
            if graph.has_node(u):
                nbrs = sorted(graph.neighbor_set(u), key=repr)
                if nbrs:
                    v = nbrs[int(rng.integers(0, len(nbrs)))]
                    graph.add_edge(u, v, float(rng.uniform(0.5, 3.0)))
                    touched.update((u, v))
        else:  # add a random edge
            u, v = (
                nodes[int(i)] for i in rng.integers(0, len(nodes), size=2)
            )
            if u != v and graph.has_node(u) and graph.has_node(v):
                graph.add_edge(u, v)
                touched.update((u, v))
        nodes = sorted(graph.node_set())
    return touched


class TestInitialRebuild:
    def test_first_call_matches_fresh_partition_bit_for_bit(self):
        graph = drifted_graph()
        csr = CSRAdjacency.from_graph(graph)
        partitioner = IncrementalPartitioner(eps=0.10, seed=42)
        result = partitioner.partition(graph, k=6, csr=csr)
        fresh = partition_graph(
            graph, k=6, eps=0.10,
            rng=IncrementalPartitioner.rebuild_rng(42, 0), csr=csr,
        )
        assert result.assignment == fresh.assignment
        assert result.edge_cut == fresh.edge_cut
        assert partitioner.num_rebuilds == 1
        assert partitioner.last_reason == "initial"

    def test_builds_csr_itself_when_not_given(self):
        graph = drifted_graph()
        partitioner = IncrementalPartitioner(seed=1)
        result = partitioner.partition(graph, k=5)
        assert validate_partition(result, graph) == []

    def test_requires_graph_or_csr(self):
        with pytest.raises(ValueError):
            IncrementalPartitioner(seed=0).partition(None, k=3)

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            IncrementalPartitioner(seed=0).partition(Graph(), k=2)

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError):
            IncrementalPartitioner(eps=-0.1)
        with pytest.raises(ValueError):
            IncrementalPartitioner(cut_slack=-1.0)
        with pytest.raises(ValueError):
            IncrementalPartitioner(cut_floor=-0.5)


class TestIncrementalMaintenance:
    def test_small_delta_is_maintained_not_rebuilt(self):
        graph = drifted_graph()
        partitioner = IncrementalPartitioner(seed=3)
        partitioner.partition(graph, k=6)
        graph.add_edge(0, 1)  # likely already present; force a new one too
        graph.add_edge(0, 57)
        result = partitioner.partition(graph, k=6, touched={0, 1, 57})
        assert validate_partition(result, graph) == []
        assert partitioner.num_rebuilds == 1  # only the bootstrap
        assert partitioner.num_incremental == 1
        assert partitioner.last_reason == "incremental"

    def test_new_nodes_join_cells_and_removed_nodes_vanish(self):
        graph = drifted_graph()
        partitioner = IncrementalPartitioner(seed=4)
        partitioner.partition(graph, k=6)
        graph.add_edge(999, 0)
        graph.remove_node(5)
        result = partitioner.partition(graph, k=6, touched={999, 0, 5})
        assert validate_partition(result, graph) == []
        assert 999 in result.assignment
        assert 5 not in result.assignment

    def test_k_drift_splits_and_merges(self):
        graph = drifted_graph(n=80)
        partitioner = IncrementalPartitioner(seed=5)
        partitioner.partition(graph, k=4)
        grown = partitioner.partition(graph, k=9, touched=set())
        assert grown.k == 9
        assert validate_partition(grown, graph) == []
        shrunk = partitioner.partition(graph, k=3, touched=set())
        assert shrunk.k == 3
        assert validate_partition(shrunk, graph) == []
        assert partitioner.num_rebuilds == 1  # drift handled structurally

    def test_trivial_k_shortcuts(self):
        graph = drifted_graph()
        n = graph.number_of_nodes()
        partitioner = IncrementalPartitioner(seed=6)
        partitioner.partition(graph, k=5)
        whole = partitioner.partition(graph, k=1, touched=set())
        assert whole.k == 1 and whole.edge_cut == 0.0
        singletons = partitioner.partition(graph, k=n, touched=set())
        assert singletons.k == n
        assert all(len(cell) == 1 for cell in singletons.cells)

    def test_touched_none_refines_everywhere_and_stays_valid(self):
        graph = drifted_graph()
        partitioner = IncrementalPartitioner(seed=7)
        partitioner.partition(graph, k=6)
        graph.add_edge(2, 41)
        result = partitioner.partition(graph, k=6)  # no touched hint
        assert validate_partition(result, graph) == []

    def test_incremental_steps_are_deterministic(self):
        """Same seed + same delta sequence => identical partitions."""
        runs = []
        for _ in range(2):
            graph = drifted_graph(seed=11)
            rng = np.random.default_rng(99)
            partitioner = IncrementalPartitioner(seed=13)
            trail = []
            partitioner.partition(graph, k=6)
            for _ in range(4):
                touched = apply_random_delta(graph, rng)
                k = max(1, round(0.1 * graph.number_of_nodes()))
                trail.append(
                    partitioner.partition(graph, k, touched=touched).assignment
                )
            runs.append(trail)
        assert runs[0] == runs[1]

    def test_reset_restarts_the_rebuild_stream(self):
        graph = drifted_graph()
        partitioner = IncrementalPartitioner(seed=21)
        first = partitioner.partition(graph, k=6)
        partitioner.reset()
        assert partitioner.num_rebuilds == 0
        again = partitioner.partition(graph, k=6)
        assert first.assignment == again.assignment


class TestQualityGate:
    def test_zero_slack_gate_falls_back_bit_identically(self):
        """With no slack, any cut growth forces a rebuild that must be
        bit-identical to a fresh ``partition_graph`` under the documented
        rebuild RNG stream."""
        graph = drifted_graph()
        partitioner = IncrementalPartitioner(
            eps=0.10, seed=17, cut_slack=0.0, cut_floor=0.0
        )
        partitioner.partition(graph, k=6)
        # Cross-cell random edges strictly raise the maintained cut.
        rng = np.random.default_rng(2)
        nodes = sorted(graph.node_set())
        for _ in range(30):
            u, v = (nodes[int(i)] for i in rng.integers(0, len(nodes), size=2))
            if u != v:
                graph.add_edge(u, v)
        csr = CSRAdjacency.from_graph(graph)
        result = partitioner.partition(graph, k=6, csr=csr, touched=None)
        assert partitioner.num_rebuilds == 2
        assert partitioner.last_reason == "cut-degraded"
        fresh = partition_graph(
            graph, k=6, eps=0.10,
            rng=IncrementalPartitioner.rebuild_rng(17, 1), csr=csr,
        )
        assert result.assignment == fresh.assignment
        assert result.edge_cut == fresh.edge_cut

    def test_generous_slack_never_rebuilds_on_small_drift(self):
        graph = drifted_graph()
        partitioner = IncrementalPartitioner(seed=19, cut_slack=10.0)
        partitioner.partition(graph, k=6)
        rng = np.random.default_rng(3)
        for _ in range(5):
            touched = apply_random_delta(graph, rng, num_ops=4)
            result = partitioner.partition(graph, k=6, touched=touched)
            assert validate_partition(result, graph) == []
        assert partitioner.num_rebuilds == 1

    def test_disjoint_snapshot_forces_rebuild(self):
        graph = drifted_graph()
        partitioner = IncrementalPartitioner(seed=23)
        partitioner.partition(graph, k=6)
        fresh = Graph.from_edges(
            [(1000 + i, 1000 + i + 1) for i in range(20)]
        )
        result = partitioner.partition(fresh, k=4)
        assert partitioner.num_rebuilds == 2
        assert partitioner.last_reason == "disjoint"
        assert validate_partition(result, fresh) == []


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(min_value=12, max_value=70),
    steps=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_arbitrary_delta_sequences_keep_invariants(n, steps, seed):
    """Property: the maintained partition passes ``validate_partition``
    after every step of an arbitrary delta sequence, at the drifting
    K = α·|V^t| the online loop requests."""
    rng = np.random.default_rng(seed)
    graph = preferential_attachment_graph(n, 2, rng)
    partitioner = IncrementalPartitioner(eps=0.10, seed=seed)
    k = max(1, round(0.15 * graph.number_of_nodes()))
    partitioner.partition(graph, k)
    for _ in range(steps):
        touched = apply_random_delta(graph, rng)
        k = max(1, round(0.15 * graph.number_of_nodes()))
        result = partitioner.partition(graph, k, touched=touched)
        assert validate_partition(result, graph) == []
        assert result.k == min(k, graph.number_of_nodes())
