"""Determinism goldens and engine mechanics for :mod:`repro.parallel`.

The contracts under test, in order of importance:

1. ``workers=1`` is bit-identical to the pre-parallel serial path — the
   engine must be invisible until explicitly enabled;
2. ``workers>=2`` output is invariant to the worker count and to pool
   availability (per-chunk seeding, never per-worker);
3. serial and chunked corpora are structurally equivalent (same shapes
   and pair counts on truncation-free graphs) even though their rng
   streams differ;
4. the mega-batch negative path (``negative_prefetch``) defaults off and
   reproduces the legacy stream exactly at prefetch=1.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.parallel.engine as engine_mod
from repro import GloDyNE, StreamingGloDyNE
from repro.core.glodyne import GloDyNEConfig
from repro.datasets import load_dataset
from repro.graph.csr import CSRAdjacency
from repro.graph.dynamic import DynamicNetwork
from repro.graph.static import Graph
from repro.parallel import (
    SharedCSR,
    chunk_plan,
    generate_corpus,
    generate_walks,
    spawn_chunk_seeds,
)
from repro.sgns.model import SGNSModel
from repro.sgns.trainer import TrainConfig, train_on_corpus
from repro.walks.corpus import build_pair_corpus
from repro.walks.random_walk import simulate_walks


def dense_graph(num_nodes: int = 150, degree: int = 4, seed: int = 0) -> Graph:
    """Connected graph with min degree >= 1 (walks never truncate)."""
    rng = np.random.default_rng(seed)
    graph = Graph()
    for u in range(1, num_nodes):
        for v in rng.choice(u, size=min(u, degree), replace=False):
            graph.add_edge(u, int(v))
    return graph


def weighted_graph(num_nodes: int = 120, seed: int = 1) -> Graph:
    rng = np.random.default_rng(seed)
    graph = Graph()
    for u in range(1, num_nodes):
        for v in rng.choice(u, size=min(u, 3), replace=False):
            graph.add_edge(u, int(v), float(rng.uniform(0.5, 3.0)))
    return graph


@pytest.fixture()
def csr() -> CSRAdjacency:
    return CSRAdjacency.from_graph(dense_graph())


@pytest.fixture()
def network() -> DynamicNetwork:
    return load_dataset("elec-sim", scale=0.25, seed=0, snapshots=4)


GLODYNE_KWARGS = dict(
    dim=12, alpha=0.2, num_walks=2, walk_length=8, window_size=3, epochs=1
)


def embeddings_equal(a, b) -> bool:
    if len(a) != len(b):
        return False
    for step_a, step_b in zip(a, b):
        if set(step_a) != set(step_b):
            return False
        if not all(np.array_equal(step_a[n], step_b[n]) for n in step_a):
            return False
    return True


# ----------------------------------------------------------------------
# 1. workers=1 is the legacy serial path, bit for bit
# ----------------------------------------------------------------------
def test_workers1_walks_bit_identical_to_serial(csr):
    starts = np.arange(csr.num_nodes)
    legacy = simulate_walks(csr, starts, 3, 10, np.random.default_rng(7))
    via_engine = generate_walks(
        csr, starts, 3, 10, np.random.default_rng(7), workers=1
    )
    assert np.array_equal(legacy, via_engine)


def test_workers1_embeddings_bit_identical_to_default(network):
    default = GloDyNE(seed=0, **GLODYNE_KWARGS).fit(network)
    explicit = GloDyNE(seed=0, workers=1, **GLODYNE_KWARGS).fit(network)
    assert embeddings_equal(default, explicit)


def test_workers1_streaming_flush_unchanged(network):
    from repro.streaming import network_to_events

    events = network_to_events(network)
    serial = StreamingGloDyNE(seed=0, **GLODYNE_KWARGS)
    serial.ingest_many(events)
    flush_serial = serial.flush()
    explicit = StreamingGloDyNE(seed=0, workers=1, **GLODYNE_KWARGS)
    explicit.ingest_many(events)
    flush_explicit = explicit.flush()
    assert set(flush_serial.embeddings) == set(flush_explicit.embeddings)
    for node in flush_serial.embeddings:
        assert np.array_equal(
            flush_serial.embeddings[node], flush_explicit.embeddings[node]
        )


# ----------------------------------------------------------------------
# 2. chunked mode is invariant to worker count and pool availability
# ----------------------------------------------------------------------
def test_worker_count_invariance(csr):
    starts = np.arange(csr.num_nodes)
    walks = {
        workers: generate_walks(
            csr, starts, 2, 9, np.random.default_rng(3),
            workers=workers, chunk_starts=40,
        )
        for workers in (2, 3, 4)
    }
    assert np.array_equal(walks[2], walks[3])
    assert np.array_equal(walks[2], walks[4])


def test_pool_and_inprocess_fallback_identical(csr, monkeypatch):
    starts = np.arange(csr.num_nodes)
    pooled = generate_walks(
        csr, starts, 2, 9, np.random.default_rng(3),
        workers=2, chunk_starts=40,
    )
    monkeypatch.setattr(engine_mod, "_get_pool", lambda workers: None)
    inprocess = generate_walks(
        csr, starts, 2, 9, np.random.default_rng(3),
        workers=2, chunk_starts=40,
    )
    assert np.array_equal(pooled, inprocess)


def test_broken_pool_falls_back_with_identical_result(csr, monkeypatch):
    from concurrent.futures.process import BrokenProcessPool

    starts = np.arange(csr.num_nodes)
    expected = generate_walks(
        csr, starts, 2, 9, np.random.default_rng(3),
        workers=2, chunk_starts=40,
    )

    class ExplodingPool:
        def submit(self, *args, **kwargs):
            raise BrokenProcessPool("worker died")

        def shutdown(self, **kwargs):
            pass

    monkeypatch.setattr(
        engine_mod, "_get_pool", lambda workers: ExplodingPool()
    )
    with pytest.warns(RuntimeWarning, match="worker pool failed"):
        recovered = generate_walks(
            csr, starts, 2, 9, np.random.default_rng(3),
            workers=2, chunk_starts=40,
        )
    assert np.array_equal(expected, recovered)


def test_weighted_graph_chunked_equals_inprocess(monkeypatch):
    csr = CSRAdjacency.from_graph(weighted_graph())
    assert not csr.is_uniform
    starts = np.arange(csr.num_nodes)
    pooled = generate_walks(
        csr, starts, 2, 8, np.random.default_rng(11),
        workers=2, chunk_starts=30,
    )
    monkeypatch.setattr(engine_mod, "_get_pool", lambda workers: None)
    inprocess = generate_walks(
        csr, starts, 2, 8, np.random.default_rng(11),
        workers=2, chunk_starts=30,
    )
    assert np.array_equal(pooled, inprocess)


def test_glodyne_embeddings_worker_count_invariant(network):
    two = GloDyNE(seed=0, workers=2, **GLODYNE_KWARGS).fit(network)
    three = GloDyNE(seed=0, workers=3, **GLODYNE_KWARGS).fit(network)
    assert embeddings_equal(two, three)


# ----------------------------------------------------------------------
# 3. serial vs chunked: structural corpus equivalence
# ----------------------------------------------------------------------
def test_workers1_vs_workers4_corpus_equivalence(csr):
    starts = np.arange(csr.num_nodes)
    serial = generate_corpus(
        csr, starts, 3, 10, 4, np.random.default_rng(5), workers=1
    )
    parallel = generate_corpus(
        csr, starts, 3, 10, 4, np.random.default_rng(5),
        workers=4, chunk_starts=40,
    )
    # Different rng streams, same structure: on a truncation-free graph
    # the walk matrix shape and therefore the pair-count layout are
    # rng-independent.
    assert serial.num_pairs == parallel.num_pairs
    assert int(serial.counts.sum()) == int(parallel.counts.sum())
    assert serial.counts.shape == parallel.counts.shape
    # Every start node contributes the same number of center
    # occurrences in both corpora (walk rows are start-aligned).
    assert serial.centers.size == parallel.centers.size


def test_workers1_vs_workers4_embedding_equivalence(network):
    serial = GloDyNE(seed=0, workers=1, **GLODYNE_KWARGS).fit(network)
    parallel = GloDyNE(seed=0, workers=4, **GLODYNE_KWARGS).fit(network)
    assert len(serial) == len(parallel)
    for step_s, step_p in zip(serial, parallel):
        assert set(step_s) == set(step_p)
        # Same training pipeline modulo walk rng: embeddings stay unit
        # scale and finite, and the two runs agree dimensionally.
        for node in step_s:
            assert step_s[node].shape == step_p[node].shape
            assert np.all(np.isfinite(step_p[node]))


# ----------------------------------------------------------------------
# engine mechanics
# ----------------------------------------------------------------------
def test_chunk_plan_covers_everything_once():
    chunks = chunk_plan(250, 100)
    assert [c.start for c in chunks] == [0, 100, 200]
    assert [c.stop for c in chunks] == [100, 200, 250]
    with pytest.raises(ValueError):
        chunk_plan(10, 0)


def test_spawn_chunk_seeds_deterministic_and_rng_rooted():
    a = spawn_chunk_seeds(np.random.default_rng(1), 5)
    b = spawn_chunk_seeds(np.random.default_rng(1), 5)
    c = spawn_chunk_seeds(np.random.default_rng(2), 5)
    assert len(a) == 5
    for sa, sb in zip(a, b):
        assert sa.entropy == sb.entropy and sa.spawn_key == sb.spawn_key
    assert a[0].entropy != c[0].entropy


def test_shared_csr_roundtrip(csr):
    with SharedCSR(csr) as shared:
        view, blocks = engine_mod._attach_view(shared.spec)
        try:
            assert view.num_nodes == csr.num_nodes
            assert view.is_uniform == csr.is_uniform
            assert np.array_equal(view.indptr, csr.indptr)
            assert np.array_equal(view.indices, csr.indices)
            assert np.array_equal(view.degrees, csr.degrees)
        finally:
            for block in blocks:
                block.close()


def test_shared_csr_weighted_ships_gcum():
    csr = CSRAdjacency.from_graph(weighted_graph())
    with SharedCSR(csr) as shared:
        assert "gcum" in shared.spec["arrays"]
        view, blocks = engine_mod._attach_view(shared.spec)
        try:
            assert np.array_equal(
                view.global_cumulative_weights(),
                csr.global_cumulative_weights(),
            )
        finally:
            for block in blocks:
                block.close()


def test_generate_walks_validates_workers(csr):
    with pytest.raises(ValueError):
        generate_walks(
            csr, [0], 1, 5, np.random.default_rng(0), workers=0
        )


def test_generate_walks_empty_starts(csr):
    walks = generate_walks(
        csr, np.empty(0, dtype=np.int64), 2, 6, np.random.default_rng(0),
        workers=3,
    )
    assert walks.shape == (0, 6)


# ----------------------------------------------------------------------
# 4. mega-batch negatives
# ----------------------------------------------------------------------
def make_corpus(csr):
    walks = simulate_walks(
        csr, np.arange(csr.num_nodes), 2, 10, np.random.default_rng(9)
    )
    return build_pair_corpus(walks, 3, csr.num_nodes)


def train_embeddings(csr, corpus, prefetch: int) -> np.ndarray:
    model = SGNSModel(8, rng=np.random.default_rng(0))
    model.ensure_nodes(csr.nodes)
    row_of = model.vocab.indices(csr.nodes)
    config = TrainConfig(
        epochs=2, batch_size=64, negative_prefetch=prefetch
    )
    train_on_corpus(
        model, corpus, row_of, np.random.default_rng(4), config=config
    )
    return model.embedding_matrix(csr.nodes)


def test_prefetch1_matches_legacy_stream(csr):
    corpus = make_corpus(csr)
    # TrainConfig defaults to prefetch=1; two identical runs agree and a
    # default-config run equals an explicit prefetch=1 run bit for bit.
    explicit = train_embeddings(csr, corpus, prefetch=1)

    model = SGNSModel(8, rng=np.random.default_rng(0))
    model.ensure_nodes(csr.nodes)
    row_of = model.vocab.indices(csr.nodes)
    train_on_corpus(
        model, corpus, row_of, np.random.default_rng(4),
        config=TrainConfig(epochs=2, batch_size=64),
    )
    assert np.array_equal(explicit, model.embedding_matrix(csr.nodes))


def test_prefetch_changes_negatives_but_trains_sanely(csr):
    corpus = make_corpus(csr)
    legacy = train_embeddings(csr, corpus, prefetch=1)
    mega = train_embeddings(csr, corpus, prefetch=16)
    assert mega.shape == legacy.shape
    assert np.all(np.isfinite(mega))
    # Same positives, same lr schedule, different negative draws: the
    # runs must stay close in scale without being identical.
    assert not np.array_equal(mega, legacy)
    assert np.abs(np.linalg.norm(mega) - np.linalg.norm(legacy)) < (
        0.5 * np.linalg.norm(legacy)
    )


def test_train_config_validates_prefetch():
    with pytest.raises(ValueError):
        TrainConfig(negative_prefetch=0)


# ----------------------------------------------------------------------
# config plumbing
# ----------------------------------------------------------------------
def test_config_resolves_prefetch_by_profile():
    assert GloDyNEConfig().resolved_negative_prefetch() == 1
    assert GloDyNEConfig(workers=4).resolved_negative_prefetch() == (
        GloDyNEConfig.PARALLEL_NEGATIVE_PREFETCH
    )
    assert GloDyNEConfig(workers=4, negative_prefetch=7)\
        .resolved_negative_prefetch() == 7
    assert GloDyNEConfig(negative_prefetch=3).resolved_negative_prefetch() == 3


def test_config_validates_parallel_knobs():
    with pytest.raises(ValueError):
        GloDyNEConfig(workers=0)
    with pytest.raises(ValueError):
        GloDyNEConfig(chunk_starts=0)
    with pytest.raises(ValueError):
        GloDyNEConfig(negative_prefetch=0)


def test_streaming_overrides_forward_workers():
    engine = StreamingGloDyNE(seed=0, workers=3, **GLODYNE_KWARGS)
    assert engine.model.config.workers == 3
