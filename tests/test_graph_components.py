"""Unit tests for connected components and BFS distances."""

from __future__ import annotations

from repro.graph import (
    Graph,
    bfs_distances,
    connected_components,
    is_connected,
    largest_connected_component,
)


class TestComponents:
    def test_single_component(self, triangle: Graph):
        components = connected_components(triangle)
        assert len(components) == 1
        assert components[0] == {0, 1, 2}

    def test_two_components_sorted_by_size(self):
        graph = Graph.from_edges([(0, 1), (1, 2), (10, 11)])
        components = connected_components(graph)
        assert [len(c) for c in components] == [3, 2]

    def test_isolated_nodes_are_components(self):
        graph = Graph()
        graph.add_node("a")
        graph.add_node("b")
        assert len(connected_components(graph)) == 2

    def test_empty_graph(self):
        assert connected_components(Graph()) == []
        assert is_connected(Graph())

    def test_is_connected(self, two_cliques: Graph):
        assert is_connected(two_cliques)
        two_cliques.remove_edge(0, 4)
        assert not is_connected(two_cliques)

    def test_largest_connected_component(self):
        graph = Graph.from_edges([(0, 1), (1, 2), (2, 0), (10, 11)])
        lcc = largest_connected_component(graph)
        assert lcc.node_set() == {0, 1, 2}
        assert lcc.number_of_edges() == 3

    def test_lcc_of_empty_graph(self):
        assert largest_connected_component(Graph()).number_of_nodes() == 0

    def test_lcc_does_not_mutate_original(self):
        graph = Graph.from_edges([(0, 1), (10, 11)])
        largest_connected_component(graph)
        assert graph.number_of_nodes() == 4


class TestBFSDistances:
    def test_path_distances(self, path_graph: Graph):
        distances = bfs_distances(path_graph, 0)
        assert distances == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4, 5: 5}

    def test_unreachable_nodes_missing(self):
        graph = Graph.from_edges([(0, 1), (5, 6)])
        distances = bfs_distances(graph, 0)
        assert 5 not in distances

    def test_cutoff_truncates(self, path_graph: Graph):
        distances = bfs_distances(path_graph, 0, cutoff=2)
        assert max(distances.values()) == 2
        assert 3 not in distances

    def test_figure_1a_proximity_shift(self):
        """The paper's Figure 1a: adding edge (1, 6) on a 6-path drops the
        1-6 proximity from 5th order to 1st order."""
        path = Graph.from_edges([(i, i + 1) for i in range(1, 6)])  # 1..6
        before = bfs_distances(path, 1)[6]
        path.add_edge(1, 6)
        after = bfs_distances(path, 1)[6]
        assert before == 5
        assert after == 1
