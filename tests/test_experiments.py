"""Tests for the experiment runner and table formatting."""

from __future__ import annotations

import numpy as np

from repro.base import DynamicEmbeddingMethod, UnsupportedDynamicsError
from repro.core import GloDyNE
from repro.experiments import (
    annotate_cell,
    format_mean_std,
    render_table,
    repeat_runs,
    run_method,
)


class FailingMethod(DynamicEmbeddingMethod):
    name = "failing"
    supports_node_deletion = False

    def reset(self) -> None:
        self.steps = 0

    def update(self, snapshot):
        raise UnsupportedDynamicsError("cannot handle anything")


class TestRunMethod:
    def test_collects_embeddings_and_times(self, tiny_network):
        method = GloDyNE(
            dim=8, num_walks=2, walk_length=8, window_size=2, epochs=1,
            seed=0,
        )
        result = run_method(method, tiny_network)
        assert result.ok
        assert len(result.embeddings) == tiny_network.num_snapshots
        assert len(result.step_seconds) == tiny_network.num_snapshots
        assert result.total_seconds > 0

    def test_unsupported_becomes_na(self, tiny_network):
        result = run_method(FailingMethod(), tiny_network)
        assert not result.ok
        assert "cannot handle" in result.not_available
        assert result.embeddings == []

    def test_keep_embeddings_false(self, tiny_network):
        method = GloDyNE(
            dim=8, num_walks=2, walk_length=8, window_size=2, epochs=1,
            seed=0,
        )
        result = run_method(method, tiny_network, keep_embeddings=False)
        assert result.ok
        assert result.embeddings == []
        assert len(result.step_seconds) == tiny_network.num_snapshots


class TestRepeatRuns:
    def test_scores_per_seed(self, tiny_network):
        def factory(seed):
            return GloDyNE(
                dim=8, num_walks=2, walk_length=8, window_size=2,
                epochs=1, seed=seed,
            )

        scores = repeat_runs(
            factory, tiny_network, seeds=[0, 1],
            evaluate=lambda run: run.total_seconds,
        )
        assert scores.shape == (2,)
        assert np.all(scores > 0)

    def test_na_propagates_as_none(self, tiny_network):
        scores = repeat_runs(
            lambda seed: FailingMethod(), tiny_network, [0, 1],
            evaluate=lambda run: 0.0,
        )
        assert scores is None


class TestFormatting:
    def test_mean_std_percent(self):
        assert format_mean_std([0.5, 0.6], scale=100) == "55.00±7.07"

    def test_none_is_na(self):
        assert format_mean_std(None) == "n/a"
        assert format_mean_std([]) == "n/a"

    def test_single_value_zero_std(self):
        assert format_mean_std([0.25]) == "25.00±0.00"

    def test_annotate_cell_marks_winner(self):
        cell = annotate_cell(
            {
                "good": np.array([0.9, 0.91, 0.9, 0.92, 0.9]),
                "bad": np.array([0.1, 0.12, 0.11, 0.1, 0.1]),
                "gone": None,
            }
        )
        assert cell["gone"] == "n/a"
        assert cell["good"].endswith("‡")
        assert "±" in cell["bad"]

    def test_render_table_alignment(self):
        text = render_table(
            ["method", "score"],
            [["GloDyNE", "1.00"], ["x", "0.5"]],
            title="demo",
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "method" in lines[2]
        header_width = len(lines[2])
        assert all(len(line) <= header_width + 2 for line in lines[3:])
