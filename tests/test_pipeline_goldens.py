"""Bit-identity goldens for the stage-pipeline refactor.

The fixtures under ``tests/goldens/`` were recorded by running
``tools/record_pipeline_goldens.py`` at the last pre-pipeline commit —
they are the monolithic engines' actual outputs. These tests replay the
identical configurations through the stage pipeline and compare
embeddings, node sets and step traces **exactly** (``np.array_equal``,
no tolerance): the refactor's contract is that extracting the online
loop into ``repro.pipeline`` changed no behaviour for any engine, at
workers ∈ {1, 2} and both kernel backends.

The recorder module itself is imported (from ``tools/``) so the replay
can never drift from the recording procedure.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import numpy as np
import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
GOLDEN_DIR = REPO_ROOT / "tests" / "goldens"


def _load_recorder():
    """Import ``tools/record_pipeline_goldens.py`` as a module."""
    path = REPO_ROOT / "tools" / "record_pipeline_goldens.py"
    spec = importlib.util.spec_from_file_location(
        "record_pipeline_goldens", path
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("record_pipeline_goldens", module)
    spec.loader.exec_module(module)
    return module


recorder = _load_recorder()


@pytest.fixture(scope="module")
def network():
    """The golden snapshot sequence (shared by every snapshot case)."""
    from repro.datasets import load_dataset

    spec = recorder.DATASET
    return load_dataset(
        spec["name"], scale=spec["scale"], seed=spec["seed"],
        snapshots=spec["snapshots"],
    )


def _assert_matches_golden(arrays: dict, golden) -> None:
    """Replay arrays must exactly reproduce every recorded golden array.

    Arrays the replay produces *beyond* the golden set are allowed: the
    pipeline gave the variants and tNE step traces the monoliths never
    had, so those keys are new functionality, not drift.
    """
    for name in golden.files:
        assert name in arrays, f"replay lost golden array {name!r}"
        recorded, replayed = golden[name], arrays[name]
        if recorded.dtype == object:
            assert list(recorded) == list(replayed), f"{name} differs"
        else:
            assert recorded.shape == replayed.shape, f"{name} shape differs"
            assert np.array_equal(recorded, replayed), f"{name} differs"


@pytest.mark.parametrize(
    "case,key,engine_kwargs",
    recorder.CASES,
    ids=[case for case, _, _ in recorder.CASES],
)
def test_snapshot_engine_bit_identical(case, key, engine_kwargs, network):
    """GloDyNE grid / variants / tNE reproduce the pre-pipeline outputs."""
    golden = np.load(GOLDEN_DIR / f"{case}.npz", allow_pickle=True)
    method = recorder.build_method(key, engine_kwargs)
    arrays = recorder.run_case(method, network)
    _assert_matches_golden(arrays, golden)


def test_streaming_flush_bit_identical():
    """The streaming engine's flush-per-window run matches its golden.

    Exercises the streaming-specific pipeline entry points: accumulated
    window changes handed to ``ChangeScoreStage`` via the context, the
    incremental CSR, and the shared ``publish_version`` path.
    """
    from repro.datasets import interaction_stream
    from repro.streaming import StreamingGloDyNE, split_stream_at_cutoffs

    golden = np.load(GOLDEN_DIR / "streaming_flush.npz", allow_pickle=True)
    steps = int(golden["num_steps"][0])
    events = interaction_stream(
        num_nodes=60, num_steps=steps, num_communities=3,
        events_per_step=30, seed=11,
    )
    engine = StreamingGloDyNE(seed=recorder.SEED, **recorder.MODEL_KWARGS)
    arrays: dict[str, np.ndarray] = {}
    cutoffs = [float(t) for t in range(steps)]
    for i, window in enumerate(split_stream_at_cutoffs(events, cutoffs)):
        engine.ingest_many(window)
        result = engine.flush()
        nodes = sorted(result.embeddings, key=repr)
        arrays[f"step{i}_nodes"] = np.array(
            [json.dumps(n) for n in nodes], dtype=object
        )
        arrays[f"step{i}_matrix"] = np.stack(
            [result.embeddings[n] for n in nodes]
        ).astype(np.float64)
        trace = result.trace
        arrays[f"step{i}_trace"] = np.array(
            [trace.time_step, trace.num_nodes, trace.num_selected,
             trace.num_pairs],
            dtype=np.int64,
        )
        arrays[f"step{i}_selected"] = np.array(
            [json.dumps(n) for n in trace.selected_nodes], dtype=object
        )
    arrays["num_steps"] = np.array([steps])
    _assert_matches_golden(arrays, golden)


def test_goldens_cover_every_engine():
    """The fixture set spans all four engines and both worker counts."""
    recorded = {path.stem for path in GOLDEN_DIR.glob("*.npz")}
    assert {case for case, _, _ in recorder.CASES} <= recorded
    assert "streaming_flush" in recorded
    keys = {key for _, key, _ in recorder.CASES}
    assert {"glodyne", "sgns-static", "sgns-retrain", "sgns-increment",
            "tne"} <= keys
    workers = {kw.get("workers") for _, _, kw in recorder.CASES}
    assert {1, 2} <= workers
    backends = {kw.get("backend") for _, _, kw in recorder.CASES}
    assert {"python", "auto"} <= backends
