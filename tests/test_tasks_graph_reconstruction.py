"""Tests for the graph-reconstruction task (MeanP@k)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import DynamicNetwork, Graph
from repro.tasks import (
    graph_reconstruction_over_time,
    mean_precision_at_k,
    per_step_precision,
)


def perfect_embeddings(graph: Graph, dim: int = 8) -> dict:
    """Embeddings whose cosine top-k exactly match adjacency: one-hot per
    community where communities are the cliques of the fixture graphs is
    hard in general — instead place adjacent nodes at tiny angular offsets
    using graph distance from a BFS root. For the simple test graphs below
    we instead construct embeddings directly from adjacency rows, which
    reconstruct neighbours perfectly for cliques."""
    nodes = list(graph.nodes())
    index = {n: i for i, n in enumerate(nodes)}
    result = {}
    for node in nodes:
        vec = np.zeros(len(nodes), dtype=np.float64)
        vec[index[node]] = 0.5
        for neighbor in graph.neighbors(node):
            vec[index[neighbor]] = 1.0
        result[node] = vec
    return result


class TestMeanPrecisionAtK:
    def test_clique_reconstructs_perfectly(self):
        clique = Graph.from_edges(
            [(i, j) for i in range(5) for j in range(i + 1, 5)]
        )
        embeddings = perfect_embeddings(clique)
        scores = mean_precision_at_k(embeddings, clique, [1, 4])
        assert scores[4] == pytest.approx(1.0)

    def test_two_cliques_separate(self, two_cliques):
        embeddings = perfect_embeddings(two_cliques)
        scores = mean_precision_at_k(embeddings, two_cliques, [3])
        assert scores[3] > 0.9

    def test_random_embeddings_score_low(self, karate_like, rng):
        embeddings = {n: rng.normal(size=16) for n in karate_like.nodes()}
        scores = mean_precision_at_k(embeddings, karate_like, [10])
        # Random top-10 of 39 candidates with ~10 true neighbours: ~0.26.
        assert scores[10] < 0.5

    def test_missing_embeddings_penalised(self, two_cliques):
        full = perfect_embeddings(two_cliques)
        partial = {n: v for n, v in full.items() if n < 4}
        full_score = mean_precision_at_k(full, two_cliques, [3])[3]
        partial_score = mean_precision_at_k(partial, two_cliques, [3])[3]
        assert partial_score < full_score

    def test_isolated_nodes_skipped(self):
        graph = Graph.from_edges([(0, 1)])
        graph.add_node(9)
        embeddings = {0: np.ones(4), 1: np.ones(4), 9: np.ones(4)}
        scores = mean_precision_at_k(embeddings, graph, [1])
        assert scores[1] == pytest.approx(1.0)

    def test_empty_ks_rejected(self, triangle):
        with pytest.raises(ValueError):
            mean_precision_at_k({}, triangle, [])

    def test_graph_without_edges_rejected(self):
        graph = Graph()
        graph.add_node(0)
        with pytest.raises(ValueError):
            mean_precision_at_k({0: np.ones(2)}, graph, [1])

    def test_monotone_in_k_for_high_degree(self):
        """For nodes with >= k neighbours, P@k cannot decrease when the
        retrieved prefix already contains all hits."""
        clique = Graph.from_edges(
            [(i, j) for i in range(6) for j in range(i + 1, 6)]
        )
        embeddings = perfect_embeddings(clique)
        scores = mean_precision_at_k(embeddings, clique, [1, 3, 5])
        assert scores[5] >= scores[3] - 1e-9


class TestOverTime:
    def test_averages_steps(self):
        g = Graph.from_edges([(0, 1), (1, 2), (2, 0)])
        network = DynamicNetwork([g, g.copy()])
        embeddings = perfect_embeddings(g)
        result = graph_reconstruction_over_time(
            [embeddings, embeddings], network, [2]
        )
        per_step = per_step_precision([embeddings, embeddings], network, 2)
        assert result[2] == pytest.approx(np.mean(per_step))

    def test_length_mismatch_rejected(self, tiny_network):
        with pytest.raises(ValueError):
            graph_reconstruction_over_time([{}], tiny_network, [1])
