"""Tests for the dynamic link-prediction task."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import Graph
from repro.tasks import (
    build_link_prediction_set,
    link_prediction_auc,
    link_prediction_over_time,
    score_pairs,
)


@pytest.fixture
def growth_pair() -> tuple[Graph, Graph]:
    previous = Graph.from_edges([(i, (i + 1) % 6) for i in range(6)])
    current = previous.copy()
    current.add_edge(0, 2)
    current.add_edge(1, 3)
    return previous, current


class TestBuildTestSet:
    def test_changed_edges_included(self, growth_pair, rng):
        previous, current = growth_pair
        test_set = build_link_prediction_set(previous, current, rng)
        pairs = {frozenset(p) for p in test_set.pairs}
        assert frozenset((0, 2)) in pairs
        assert frozenset((1, 3)) in pairs

    def test_balanced_labels(self, growth_pair, rng):
        previous, current = growth_pair
        test_set = build_link_prediction_set(previous, current, rng)
        positives = int(test_set.labels.sum())
        negatives = test_set.labels.size - positives
        assert positives == negatives

    def test_deleted_edges_are_negatives(self, rng):
        previous = Graph.from_edges([(0, 1), (1, 2), (2, 0), (2, 3)])
        current = previous.copy()
        current.remove_edge(0, 1)
        test_set = build_link_prediction_set(previous, current, rng)
        idx = test_set.pairs.index((0, 1)) if (0, 1) in test_set.pairs else (
            test_set.pairs.index((1, 0))
        )
        assert test_set.labels[idx] == 0

    def test_labels_truthful(self, growth_pair, rng):
        previous, current = growth_pair
        test_set = build_link_prediction_set(previous, current, rng)
        for (u, v), label in zip(test_set.pairs, test_set.labels):
            assert current.has_edge(u, v) == bool(label)

    def test_no_duplicate_pairs(self, growth_pair, rng):
        previous, current = growth_pair
        test_set = build_link_prediction_set(previous, current, rng)
        keys = [frozenset(p) for p in test_set.pairs]
        assert len(keys) == len(set(keys))


class TestScoring:
    def test_score_pairs_cosine(self):
        embeddings = {
            0: np.array([1.0, 0.0]),
            1: np.array([1.0, 0.0]),
            2: np.array([0.0, 1.0]),
        }
        scores, keep = score_pairs(embeddings, [(0, 1), (0, 2)])
        assert keep.all()
        assert scores[0] == pytest.approx(1.0)
        assert scores[1] == pytest.approx(0.0)

    def test_unknown_nodes_masked(self):
        embeddings = {0: np.array([1.0, 0.0])}
        scores, keep = score_pairs(embeddings, [(0, "ghost")])
        assert not keep[0]

    def test_zero_vectors_score_zero(self):
        embeddings = {0: np.zeros(2), 1: np.ones(2)}
        scores, keep = score_pairs(embeddings, [(0, 1)])
        assert keep[0]
        assert scores[0] == 0.0


class TestAUC:
    def test_oracle_embeddings_beat_random(self, tiny_network, rng):
        """Embeddings built from t+1 adjacency rows must predict t+1
        edges far better than chance."""
        aucs = []
        for t in range(tiny_network.num_snapshots - 1):
            current = tiny_network[t + 1]
            nodes = list(current.nodes())
            index = {n: i for i, n in enumerate(nodes)}
            oracle = {}
            for node in tiny_network[t].nodes():
                vec = np.zeros(len(nodes))
                if node in index:
                    vec[index[node]] = 0.5
                    for neighbor in current.neighbors(node):
                        vec[index[neighbor]] = 1.0
                oracle[node] = vec
            aucs.append(
                link_prediction_auc(oracle, tiny_network[t], current, rng)
            )
        assert np.mean(aucs) > 0.7

    def test_over_time_requires_two_snapshots(self, rng):
        from repro.graph import DynamicNetwork

        network = DynamicNetwork([Graph.from_edges([(0, 1)])])
        with pytest.raises(ValueError):
            link_prediction_over_time([{}], network, rng)

    def test_over_time_mean(self, tiny_network, rng):
        embeddings = [
            {n: rng.normal(size=8) for n in snapshot.nodes()}
            for snapshot in tiny_network
        ]
        auc = link_prediction_over_time(embeddings, tiny_network, rng)
        assert 0.2 < auc < 0.8  # random embeddings hover around 0.5
