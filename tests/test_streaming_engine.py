"""Golden regression tests for the streaming engine.

The load-bearing guarantee: :class:`StreamingGloDyNE` with one flush per
snapshot window reproduces snapshot-mode :class:`GloDyNE` *bit for bit*
under a fixed seed — same embeddings, same ``StepTrace`` diagnostics.
Plus flush-policy behaviour, LCC mode, weighted auto-detection, and the
event-stream helpers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import DynamicNetwork, GloDyNE, StreamingGloDyNE
from repro.datasets import interaction_stream
from repro.graph import EdgeEvent
from repro.streaming import (
    FlushPolicy,
    network_to_events,
    split_stream_at_cutoffs,
)

MODEL_KWARGS = dict(
    dim=8, alpha=0.2, num_walks=2, walk_length=8, window_size=2, epochs=1
)


def small_stream(seed: int = 11, steps: int = 5):
    events = interaction_stream(
        num_nodes=60,
        num_steps=steps,
        num_communities=3,
        events_per_step=30,
        seed=seed,
    )
    cutoffs = [float(t) for t in range(steps)]
    return events, cutoffs


def run_snapshot_mode(network: DynamicNetwork, seed: int):
    model = GloDyNE(seed=seed, **MODEL_KWARGS)
    embeddings = []
    traces = []
    for snapshot in network:
        embeddings.append(model.update(snapshot))
        traces.append(model.last_trace)
    return embeddings, traces


def run_streaming_mode(events, cutoffs, seed: int, **engine_kwargs):
    engine = StreamingGloDyNE(seed=seed, **MODEL_KWARGS, **engine_kwargs)
    embeddings = []
    traces = []
    for window in split_stream_at_cutoffs(events, cutoffs):
        engine.ingest_many(window)
        result = engine.flush()
        embeddings.append(result.embeddings)
        traces.append(result.trace)
    return embeddings, traces, engine


def assert_embeddings_bit_identical(per_step_a, per_step_b):
    assert len(per_step_a) == len(per_step_b)
    for step_a, step_b in zip(per_step_a, per_step_b):
        assert set(step_a) == set(step_b)
        for node, vector in step_a.items():
            assert np.array_equal(vector, step_b[node]), (
                f"embedding for node {node!r} differs"
            )


class TestGoldenEquivalence:
    def test_flush_per_snapshot_is_bit_identical(self):
        events, cutoffs = small_stream()
        network = DynamicNetwork.from_edge_stream(
            events, cutoffs, restrict_to_lcc=False
        )
        snap_embeddings, snap_traces = run_snapshot_mode(network, seed=7)
        stream_embeddings, stream_traces, engine = run_streaming_mode(
            events, cutoffs, seed=7
        )
        assert_embeddings_bit_identical(snap_embeddings, stream_embeddings)
        for snap_trace, stream_trace in zip(snap_traces, stream_traces):
            assert snap_trace.time_step == stream_trace.time_step
            assert snap_trace.num_nodes == stream_trace.num_nodes
            assert snap_trace.num_selected == stream_trace.num_selected
            assert snap_trace.num_pairs == stream_trace.num_pairs
            assert snap_trace.selected_nodes == stream_trace.selected_nodes
        assert engine.num_flushes == len(cutoffs)

    def test_incremental_partition_streaming_matches_snapshot(self):
        """With the incremental partitioner on, a diff-exact replay
        (``network_to_events`` emits only net changes, so the window's
        touched-node set equals snapshot mode's diff endpoints) must
        still be bit-identical between the two modes."""
        events, cutoffs = small_stream()
        source = DynamicNetwork.from_edge_stream(
            events, cutoffs, restrict_to_lcc=False
        )
        # Canonicalise through the diff-exact event stream: both modes
        # must consume the *same* event order (CSR freeze order mirrors
        # graph insertion order, so a reordered stream is a different —
        # equally valid — trajectory).
        replay = list(network_to_events(source))
        replay_cutoffs = [float(t) for t in range(source.num_snapshots)]
        network = DynamicNetwork.from_edge_stream(
            replay, replay_cutoffs, restrict_to_lcc=False
        )
        kwargs = dict(MODEL_KWARGS, incremental_partition=True)
        model = GloDyNE(seed=7, **kwargs)
        snap_embeddings = [model.update(snapshot) for snapshot in network]

        engine = StreamingGloDyNE(seed=7, **kwargs)
        stream_embeddings = []
        for window in split_stream_at_cutoffs(replay, replay_cutoffs):
            engine.ingest_many(window)
            stream_embeddings.append(engine.flush().embeddings)
        assert_embeddings_bit_identical(snap_embeddings, stream_embeddings)
        # The engine's model maintained its partition incrementally too.
        assert engine.model.partitioner.num_incremental >= 1

    def test_bit_identity_across_seeds(self):
        events, cutoffs = small_stream(seed=23, steps=4)
        network = DynamicNetwork.from_edge_stream(
            events, cutoffs, restrict_to_lcc=False
        )
        for seed in (0, 3):
            snap_embeddings, _ = run_snapshot_mode(network, seed=seed)
            stream_embeddings, _, _ = run_streaming_mode(events, cutoffs, seed=seed)
            assert_embeddings_bit_identical(snap_embeddings, stream_embeddings)

    def test_step_trace_golden_values(self):
        """Pinned StepTrace fields for a fixed seed — any refactor of the
        walk/selection/corpus layers that shifts these is a behaviour
        change, not a cleanup."""
        events, cutoffs = small_stream()
        network = DynamicNetwork.from_edge_stream(
            events, cutoffs, restrict_to_lcc=False
        )
        _, traces = run_snapshot_mode(network, seed=7)
        golden = [
            (0, 42, 42, 2184),
            (1, 44, 9, 468),
            (2, 46, 9, 468),
            (3, 48, 10, 520),
            (4, 50, 10, 520),
        ]
        observed = [
            (t.time_step, t.num_nodes, t.num_selected, t.num_pairs)
            for t in traces
        ]
        assert observed == golden

    def test_lcc_mode_matches_lcc_snapshot_pipeline(self):
        events, cutoffs = small_stream(seed=5, steps=4)
        network = DynamicNetwork.from_edge_stream(
            events, cutoffs, restrict_to_lcc=True
        )
        snap_embeddings, _ = run_snapshot_mode(network, seed=1)
        stream_embeddings, _, _ = run_streaming_mode(
            events, cutoffs, seed=1, restrict_to_lcc=True
        )
        assert_embeddings_bit_identical(snap_embeddings, stream_embeddings)

    def test_weighted_stream_matches_snapshot_mode(self):
        """Weighted auto-detection on the incremental path agrees with the
        snapshot path's is_unweighted() scan."""
        rng = np.random.default_rng(2)
        events = []
        for i in range(240):
            u, v = int(rng.integers(0, 25)), int(rng.integers(0, 25))
            if u != v:
                events.append(
                    EdgeEvent(u, v, float(i), weight=float(rng.uniform(0.5, 2.5)))
                )
        cutoffs = [59.0, 119.0, 179.0, 239.0]
        network = DynamicNetwork.from_edge_stream(
            events, cutoffs, restrict_to_lcc=False
        )
        snap_embeddings, _ = run_snapshot_mode(network, seed=4)
        stream_embeddings, _, _ = run_streaming_mode(events, cutoffs, seed=4)
        assert_embeddings_bit_identical(snap_embeddings, stream_embeddings)


class TestFlushPolicies:
    def _events(self, count: int = 50):
        rng = np.random.default_rng(0)
        events = []
        for i in range(count):
            u, v = int(rng.integers(0, 12)), int(rng.integers(0, 12))
            if u == v:
                v = (v + 1) % 12
            events.append(EdgeEvent(u, v, float(i)))
        return events

    def test_event_count_trigger(self):
        engine = StreamingGloDyNE(
            seed=0, policy=FlushPolicy(max_events=10), **MODEL_KWARGS
        )
        results = engine.ingest_many(self._events(35))
        assert len(results) == 3
        assert all(r.trigger == "events" for r in results)
        assert all(r.num_events == 10 for r in results)
        assert engine.pending_events == 5

    def test_touched_edges_trigger_ignores_rewrites(self):
        engine = StreamingGloDyNE(
            seed=0, policy=FlushPolicy(max_touched_edges=3), **MODEL_KWARGS
        )
        # Re-adding the same edge repeatedly touches one edge only.
        for i in range(5):
            assert engine.ingest(EdgeEvent(0, 1, float(i))) is None
        assert engine.ingest(EdgeEvent(1, 2, 5.0)) is None
        result = engine.ingest(EdgeEvent(2, 3, 6.0))
        assert result is not None and result.trigger == "change"

    def test_wall_clock_trigger(self):
        engine = StreamingGloDyNE(
            seed=0, policy=FlushPolicy(max_seconds=1e-9), **MODEL_KWARGS
        )
        result = engine.ingest(EdgeEvent(0, 1, 0.0))
        assert result is not None and result.trigger == "seconds"

    def test_manual_policy_never_autoflushes(self):
        engine = StreamingGloDyNE(seed=0, **MODEL_KWARGS)
        results = engine.ingest_many(self._events(50))
        assert results == []
        result = engine.flush()
        assert result.trigger == "manual"
        assert result.num_events == 50
        assert engine.embeddings is result.embeddings

    def test_flush_result_observability_fields(self):
        engine = StreamingGloDyNE(seed=0, **MODEL_KWARGS)
        engine.ingest_many(self._events(30))
        result = engine.flush()
        assert result.time_step == 0
        assert result.num_nodes == engine.state.graph.number_of_nodes()
        assert result.num_edges == engine.state.graph.number_of_edges()
        assert result.seconds > 0
        assert result.trace.num_selected > 0

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            FlushPolicy(max_events=0)
        with pytest.raises(ValueError):
            FlushPolicy(max_seconds=0.0)
        with pytest.raises(ValueError):
            FlushPolicy(max_touched_edges=0)

    def test_flush_before_any_event_raises(self):
        engine = StreamingGloDyNE(seed=0, **MODEL_KWARGS)
        with pytest.raises(ValueError):
            engine.flush()

    def test_model_and_overrides_are_exclusive(self):
        model = GloDyNE(seed=0, **MODEL_KWARGS)
        with pytest.raises(ValueError):
            StreamingGloDyNE(model, dim=16)
        with pytest.raises(ValueError):
            StreamingGloDyNE(model, seed=3)

    def test_stream_opening_with_noop_removes_does_not_crash(self):
        """A stream may open with removes of edges that never existed;
        no trigger may fire while the graph is still empty."""
        engine = StreamingGloDyNE(
            seed=0, policy=FlushPolicy(max_events=2), **MODEL_KWARGS
        )
        for i in range(4):
            assert engine.ingest(EdgeEvent(0, i + 1, float(i), kind="remove")) is None
        result = engine.ingest(EdgeEvent(0, 1, 10.0))
        assert result is not None  # first real edge: graph non-empty, fires
        assert result.num_nodes == 2

    def test_wall_clock_window_ages_from_first_event(self):
        """An idle engine must not flush a degenerate one-event window
        just because it was constructed long before the event arrived."""
        engine = StreamingGloDyNE(
            seed=0, policy=FlushPolicy(max_seconds=30.0), **MODEL_KWARGS
        )
        engine._window_opened -= 3600.0  # pretend construction was an hour ago
        assert engine.ingest(EdgeEvent(0, 1, 0.0)) is None

    def test_noop_remove_does_not_count_as_change(self):
        """Removes of absent edges must not inflate the change trigger."""
        engine = StreamingGloDyNE(
            seed=0, policy=FlushPolicy(max_touched_edges=2), **MODEL_KWARGS
        )
        assert engine.ingest(EdgeEvent(1, 2, 0.0)) is None
        # Duplicate/late removes of edges that never existed: no-ops.
        for i in range(5):
            assert engine.ingest(EdgeEvent(7, 8 + i, float(i), kind="remove")) is None
        assert engine.state.num_touched_edges == 1
        result = engine.ingest(EdgeEvent(2, 3, 9.0))
        assert result is not None and result.trigger == "change"

    def test_warm_model_handoff_matches_snapshot_mode(self):
        """Handing a pre-warmed model to the engine must not corrupt the
        first flush's change counts: the engine falls back to the model's
        own diff for that flush."""
        events, cutoffs = small_stream(seed=31, steps=4)
        network = DynamicNetwork.from_edge_stream(
            events, cutoffs, restrict_to_lcc=False
        )
        reference = GloDyNE(seed=9, **MODEL_KWARGS)
        expected = [reference.update(snapshot) for snapshot in network]

        warm = GloDyNE(seed=9, **MODEL_KWARGS)
        warm.update(network[0])
        engine = StreamingGloDyNE(warm)
        windows = split_stream_at_cutoffs(events, cutoffs)
        observed = [expected[0]]
        # Replay the full history so the engine's state reaches network[0]
        # silently, then flush once per remaining window.
        engine.ingest_many(windows[0])
        for window in windows[1:]:
            engine.ingest_many(window)
            observed.append(engine.flush().embeddings)
        assert_embeddings_bit_identical(expected, observed)

    def test_tuple_events_accepted(self):
        engine = StreamingGloDyNE(seed=0, **MODEL_KWARGS)
        engine.ingest((0, 1, 0.0))
        engine.ingest_many([(1, 2, 1.0), (2, 0, 2.0)])
        result = engine.flush()
        assert result.num_nodes == 3


class TestEventHelpers:
    def test_network_round_trips_through_events(self):
        events, cutoffs = small_stream(seed=9, steps=4)
        network = DynamicNetwork.from_edge_stream(
            events, cutoffs, restrict_to_lcc=False
        )
        replayed = DynamicNetwork.from_edge_stream(
            network_to_events(network),
            [float(t) for t in range(len(network))],
            restrict_to_lcc=False,
        )
        assert len(replayed) == len(network)
        for original, rebuilt in zip(network, replayed):
            assert original.node_set() == rebuilt.node_set()
            assert original.edge_set() == rebuilt.edge_set()

    def test_network_to_events_covers_removals(self, churn_network):
        events = network_to_events(churn_network)
        assert any(e.kind == "remove" for e in events)
        replayed = DynamicNetwork.from_edge_stream(
            events,
            [float(t) for t in range(len(churn_network))],
            restrict_to_lcc=False,
        )
        for original, rebuilt in zip(churn_network, replayed):
            assert original.edge_set() == rebuilt.edge_set()
            # Documented ghost-node semantics: an edge stream cannot
            # remove node identities, so replayed node sets may be a
            # superset of the original's — never a subset.
            assert original.node_set() <= rebuilt.node_set()

    def test_network_to_events_emits_weight_only_changes(self):
        from repro.graph import Graph

        g0 = Graph.from_edges([(0, 1, 1.0), (1, 2, 1.0)])
        g1 = Graph.from_edges([(0, 1, 5.0), (1, 2, 1.0), (2, 3, 2.0)])
        network = DynamicNetwork([g0, g1])
        replayed = DynamicNetwork.from_edge_stream(
            network_to_events(network), [0.0, 1.0], restrict_to_lcc=False
        )
        assert replayed[1].edge_weight(0, 1) == 5.0
        assert replayed[1].edge_weight(2, 3) == 2.0
        assert replayed[0].edge_weight(0, 1) == 1.0

    def test_split_stream_matches_from_edge_stream_windows(self):
        events, cutoffs = small_stream(seed=13, steps=4)
        windows = split_stream_at_cutoffs(events, cutoffs)
        assert sum(len(w) for w in windows) <= len(events)
        flat = [e for window in windows for e in window]
        assert flat == sorted(flat, key=lambda e: e.time)
        for window, cutoff in zip(windows, cutoffs):
            assert all(e.time <= cutoff for e in window)

    def test_split_stream_rejects_bad_cutoffs(self):
        with pytest.raises(ValueError):
            split_stream_at_cutoffs([EdgeEvent(0, 1, 0.0)], [2.0, 1.0])
