"""Tests for the tiered store: spill, page-in, compaction, int8 scans.

Covers the three contracts the tiering layer must never bend:

* round-trip fidelity — a version paged back from an mmap spill file is
  bit-identical to what was published (hypothesis property);
* compaction honesty — a compacted version raises unless the caller
  opts into ``nearest=True`` degradation, and pins survive GC;
* quantized recall — the int8 candidate scan plus exact float32 rerank
  keeps recall@10 at golden levels on a clustered grid.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving import (
    BruteForceIndex,
    ColdVersionStorage,
    CompactionPolicy,
    EmbeddingService,
    EmbeddingStore,
    IVFIndex,
    dequantize_int8,
    load_store,
    quantize_int8,
    quantized_scores,
    save_store,
    split_store,
    unit_rows,
)


def _publish_versions(
    store: EmbeddingStore, num: int, *, dim: int = 8, seed: int = 7
) -> None:
    rng = np.random.default_rng(seed)
    for t in range(num):
        nodes = [f"n{i}" for i in range(6 + t)]
        matrix = rng.standard_normal((len(nodes), dim))
        store.publish((nodes, matrix), time_step=t, metadata={"t": t})


def _clustered_grid(n: int = 5000, dim: int = 32, seed: int = 11):
    """Clustered points: k-NN structure a quantizer could plausibly blur."""
    rng = np.random.default_rng(seed)
    centers = rng.standard_normal((32, dim)) * 4.0
    assign = rng.integers(0, len(centers), size=n)
    return centers[assign] + rng.standard_normal((n, dim)) * 0.35


class TestInt8Codec:
    def test_round_trip_error_bounded_by_half_scale(self):
        rng = np.random.default_rng(0)
        matrix = rng.standard_normal((64, 16)).astype(np.float32)
        codes, scales = quantize_int8(matrix)
        assert codes.dtype == np.int8 and scales.dtype == np.float32
        error = np.abs(dequantize_int8(codes, scales) - matrix)
        # Rounding to the nearest code can miss by at most scale/2.
        assert np.all(error <= scales[:, None] * 0.5 + 1e-7)

    def test_zero_rows_survive(self):
        matrix = np.zeros((3, 4), dtype=np.float32)
        codes, scales = quantize_int8(matrix)
        assert np.array_equal(dequantize_int8(codes, scales), matrix)

    def test_quantized_scores_match_dequantized_matmul(self):
        rng = np.random.default_rng(1)
        matrix = rng.standard_normal((300, 12)).astype(np.float32)
        query = rng.standard_normal(12).astype(np.float32)
        codes, scales = quantize_int8(matrix)
        expected = dequantize_int8(codes, scales) @ query
        for chunk in (1, 7, 128, 1024):
            got = quantized_scores(codes, scales, query, chunk=chunk)
            np.testing.assert_allclose(got, expected, rtol=1e-5, atol=1e-5)


class TestColdVersionStorage:
    def test_spill_load_delete(self, tmp_path):
        store = EmbeddingStore()
        _publish_versions(store, 2)
        cold = ColdVersionStorage(tmp_path / "cold")
        record = store.version(0)
        cold.spill(record)
        assert 0 in cold and cold.versions() == [0]
        loaded = cold.load(0)
        assert isinstance(loaded.matrix, np.memmap)
        assert loaded.nodes == record.nodes
        assert loaded.metadata == record.metadata
        assert loaded.time_step == record.time_step
        assert np.array_equal(np.asarray(loaded.matrix), record.matrix)
        assert cold.bytes_on_disk() > 0
        cold.delete(0)
        assert 0 not in cold and cold.versions() == []

    def test_spill_is_idempotent(self, tmp_path):
        store = EmbeddingStore()
        _publish_versions(store, 1)
        cold = ColdVersionStorage(tmp_path)
        cold.spill(store.version(0))
        before = cold.matrix_path(0).stat().st_mtime_ns
        cold.spill(store.version(0))
        assert cold.matrix_path(0).stat().st_mtime_ns == before


class TestTieredStore:
    def test_cold_versions_leave_ram_and_page_back(self, tmp_path):
        store = EmbeddingStore(store_dir=tmp_path, hot_versions=1)
        _publish_versions(store, 4)
        info = store.storage_info()
        assert info["hot"] == 1 and info["cold"] == 3
        assert info["cold_bytes"] > 0
        # Paged-in cold reads are mmap-backed, not resident copies.
        assert isinstance(store.version(0).matrix, np.memmap)
        assert not isinstance(store.latest.matrix, np.memmap)

    @settings(max_examples=20, deadline=None)
    @given(
        num_versions=st.integers(min_value=1, max_value=6),
        hot=st.integers(min_value=1, max_value=3),
        dim=st.integers(min_value=1, max_value=9),
        seed=st.integers(min_value=0, max_value=200),
    )
    def test_spill_page_in_round_trip_bit_identical(
        self, tmp_path_factory, num_versions, hot, dim, seed
    ):
        """Property: publish → spill → page-in returns the same bits."""
        tmp = tmp_path_factory.mktemp("tier")
        plain = EmbeddingStore()
        tiered = EmbeddingStore(store_dir=tmp, hot_versions=hot)
        _publish_versions(plain, num_versions, dim=dim, seed=seed)
        _publish_versions(tiered, num_versions, dim=dim, seed=seed)
        for v in range(num_versions):
            a, b = plain.version(v), tiered.version(v)
            assert a.nodes == b.nodes
            assert a.metadata == b.metadata
            assert np.array_equal(a.matrix, np.asarray(b.matrix))
            assert np.asarray(b.matrix).dtype == np.float32

    def test_page_cache_is_bounded(self, tmp_path):
        store = EmbeddingStore(store_dir=tmp_path, hot_versions=1,
                               page_cache=2)
        _publish_versions(store, 6)
        for v in range(5):
            store.version(v)
        assert len(store._paged) <= 2

    def test_pin_makes_version_resident(self, tmp_path):
        store = EmbeddingStore(store_dir=tmp_path, hot_versions=1)
        _publish_versions(store, 4)
        assert store.pin(0) == 0
        assert store.pinned == (0,)
        assert not isinstance(store.version(0).matrix, np.memmap)
        assert store.storage_info()["pinned"] == 1
        store.unpin(0)
        assert store.pinned == ()
        assert isinstance(store.version(0).matrix, np.memmap)

    def test_iteration_pages_cold_in_order(self, tmp_path):
        store = EmbeddingStore(store_dir=tmp_path, hot_versions=1)
        _publish_versions(store, 4)
        assert [r.version for r in store] == [0, 1, 2, 3]

    def test_pickle_drops_page_cache(self, tmp_path):
        store = EmbeddingStore(store_dir=tmp_path, hot_versions=1)
        _publish_versions(store, 3)
        store.version(0)  # populate the page cache with a memmap
        clone = pickle.loads(pickle.dumps(store))
        assert len(clone._paged) == 0
        assert np.array_equal(
            np.asarray(clone.version(0).matrix),
            np.asarray(store.version(0).matrix),
        )


class TestCompaction:
    def test_policy_survivors(self):
        policy = CompactionPolicy(keep_head_n=2, keep_every_k=4)
        live = list(range(10))
        assert policy.survivors(live) == {0, 4, 8, 9}
        assert policy.survivors(live, pinned=(3,)) == {0, 3, 4, 8, 9}

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            CompactionPolicy(keep_head_n=0)
        with pytest.raises(ValueError):
            CompactionPolicy(keep_head_n=1, keep_every_k=0)

    def test_compact_tombstones_and_nearest(self, tmp_path):
        store = EmbeddingStore(store_dir=tmp_path, hot_versions=1)
        _publish_versions(store, 6)
        dropped = store.compact(keep_head_n=1, keep_every_k=4)
        assert dropped == [1, 2, 3]
        assert store.tombstones == (1, 2, 3)
        assert store.num_versions == 6  # ids never renumber
        with pytest.raises(LookupError, match="compacted away"):
            store.version(2)
        # Distance-based degradation, ties toward the earlier version.
        assert store.version(2, nearest=True).version == 0
        assert store.version(3, nearest=True).version == 4
        assert store.vector("n0", 1, nearest=True) is not None
        # Compacted spill files are gone from disk too (0 and 4 kept
        # cold; the head, 5, is hot and never spilled).
        assert store._cold.versions() == [0, 4]

    def test_pinned_version_survives_compaction(self, tmp_path):
        store = EmbeddingStore(store_dir=tmp_path, hot_versions=1)
        _publish_versions(store, 5)
        store.pin(2)
        dropped = store.compact(keep_head_n=1)
        assert 2 not in dropped
        assert store.version(2).version == 2

    def test_compact_policy_xor_kwargs(self):
        store = EmbeddingStore()
        _publish_versions(store, 2)
        with pytest.raises(ValueError):
            store.compact(CompactionPolicy(), keep_head_n=1)

    def test_embed_at_respects_tombstones(self, tmp_path):
        store = EmbeddingStore(store_dir=tmp_path, hot_versions=1)
        _publish_versions(store, 5)
        service = EmbeddingService(store, backend="exact")
        pinned_map = service.embed_at(2)
        store.compact(keep_head_n=1, keep_every_k=4)
        with pytest.raises(LookupError):
            service.embed_at(2)
        nearest = service.embed_at(2, nearest=True)
        assert set(nearest) >= set()  # readable map
        # The map taken before compaction stays valid (it was copied).
        assert all(vec.flags.owndata or True for vec in pinned_map.values())

    def test_save_load_preserves_tombstones(self, tmp_path):
        store = EmbeddingStore(store_dir=tmp_path / "tier", hot_versions=1)
        _publish_versions(store, 6)
        store.compact(keep_head_n=2, keep_every_k=4)
        path = tmp_path / "store.npz"
        save_store(store, path)
        plain = load_store(path)
        assert plain.tombstones == store.tombstones
        assert plain.num_versions == store.num_versions
        tiered = load_store(path, store_dir=tmp_path / "tier2",
                            hot_versions=1)
        assert tiered.storage_info()["cold"] > 0
        for v in range(store.num_versions):
            if v in store.tombstones:
                continue
            assert np.array_equal(
                np.asarray(store.version(v).matrix),
                np.asarray(tiered.version(v).matrix),
            )


class TestSplitStoreTiering:
    def test_shards_inherit_tiering_and_tombstones(self, tmp_path):
        store = EmbeddingStore(store_dir=tmp_path / "tier", hot_versions=1)
        rng = np.random.default_rng(3)
        for t in range(5):
            nodes = list(range(12))
            store.publish((nodes, rng.standard_normal((12, 6))), time_step=t)
        store.compact(keep_head_n=2)
        shards, _ = split_store(store, 2)
        for i, shard in enumerate(shards):
            assert shard.store_dir == tmp_path / "tier" / "shards" / f"shard-{i}"
            assert shard.tombstones == store.tombstones
            assert shard.num_versions == store.num_versions
            assert shard.storage_info()["cold"] > 0

    def test_plain_parent_keeps_plain_shards(self):
        store = EmbeddingStore()
        rng = np.random.default_rng(4)
        store.publish((list(range(8)), rng.standard_normal((8, 4))))
        shards, _ = split_store(store, 2)
        assert all(shard.store_dir is None for shard in shards)


class TestQuantizedIndexes:
    def test_brute_recall_at_10_golden(self):
        matrix = _clustered_grid()
        exact = BruteForceIndex()
        exact.build(matrix)
        quant = BruteForceIndex(quantized="int8")
        quant.build(matrix)
        rng = np.random.default_rng(5)
        queries = rng.integers(0, len(matrix), size=50)
        hits = total = 0
        for q in queries:
            truth, _ = exact.query(matrix[q], k=10)
            got, _ = quant.query(matrix[q], k=10)
            hits += len(set(truth.tolist()) & set(got.tolist()))
            total += 10
        assert hits / total >= 0.95

    def test_quantized_scores_are_exact_float32(self):
        """Returned scores come from the float32 rerank, not the codes."""
        matrix = _clustered_grid(n=800)
        exact = BruteForceIndex()
        exact.build(matrix)
        quant = BruteForceIndex(quantized="int8")
        quant.build(matrix)
        truth_rows, truth_scores = exact.query(matrix[17], k=5)
        rows, scores = quant.query(matrix[17], k=5)
        shared = set(truth_rows.tolist()) & set(rows.tolist())
        by_row_truth = dict(zip(truth_rows.tolist(), truth_scores.tolist()))
        by_row_quant = dict(zip(rows.tolist(), scores.tolist()))
        for row in shared:
            assert by_row_truth[row] == by_row_quant[row]  # bit-identical

    def test_refresh_matches_rebuild(self):
        rng = np.random.default_rng(6)
        first = rng.standard_normal((120, 16)).astype(np.float32)
        second = first.copy()
        second[::7] += rng.standard_normal((len(second[::7]), 16)) * 0.5
        grown = np.vstack(
            [second, rng.standard_normal((20, 16)).astype(np.float32)]
        )
        for cls in (BruteForceIndex, IVFIndex):
            refreshed = cls(quantized="int8")
            refreshed.build(first)
            refreshed.refresh(grown)
            rebuilt = cls(quantized="int8")
            rebuilt.build(grown)
            n = len(grown)  # code buffers grow amortized: slice to rows
            assert np.array_equal(refreshed._codes[:n], rebuilt._codes[:n])
            assert np.array_equal(refreshed._scales[:n], rebuilt._scales[:n])
            if isinstance(refreshed, BruteForceIndex):
                assert np.array_equal(
                    refreshed._codes_lo[:n], rebuilt._codes_lo[:n]
                )
            q = grown[3]
            np.testing.assert_array_equal(
                refreshed.query(q, k=7)[0], rebuilt.query(q, k=7)[0]
            )

    def test_prescan_engages_on_large_matrices(self):
        """Above ~10k rows the brute scan goes coarse-to-fine; recall
        and refresh-vs-rebuild identity must survive the prescan."""
        from repro.serving.index import (
            _PRESCAN_MIN_RATIO,
            _PRESCAN_POOL,
            _resolve_rerank,
        )

        n = _PRESCAN_MIN_RATIO * _PRESCAN_POOL * _resolve_rerank(None, 10)
        matrix = _clustered_grid(n=n + 500, dim=32)
        exact = BruteForceIndex()
        exact.build(matrix)
        quant = BruteForceIndex(quantized="int8")
        quant.build(matrix)
        rng = np.random.default_rng(12)
        hits = total = 0
        for q in rng.integers(0, len(matrix), size=30):
            truth, _ = exact.query(matrix[q], k=10)
            got, _ = quant.query(matrix[q], k=10)
            hits += len(set(truth.tolist()) & set(got.tolist()))
            total += 10
        assert hits / total >= 0.95
        # A refresh that moves a few rows keeps the prescan copy in sync
        # with a from-scratch rebuild.
        moved = matrix.copy()
        moved[::997] *= 1.5
        quant.refresh(moved)
        rebuilt = BruteForceIndex(quantized="int8")
        rebuilt.build(moved)
        assert np.array_equal(quant._codes_lo, rebuilt._codes_lo)
        q = moved[7]
        np.testing.assert_array_equal(
            quant.query(q, k=10)[0], rebuilt.query(q, k=10)[0]
        )

    def test_rerank_depth_floor(self):
        index = BruteForceIndex(quantized="int8", rerank=2)
        matrix = unit_rows(np.random.default_rng(8).standard_normal((40, 8)))
        index.build(matrix)
        rows, scores = index.query(matrix[0], k=5)
        assert rows.size == 5  # rerank clamps up to k

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError):
            BruteForceIndex(quantized="int4")
        with pytest.raises(ValueError):
            IVFIndex(quantized="fp8")
        store = EmbeddingStore()
        _publish_versions(store, 1)
        with pytest.raises(ValueError, match="lsh"):
            EmbeddingService(store, backend="lsh", quantized="int8")

    def test_ivf_quantized_recall(self):
        matrix = _clustered_grid(n=2000)
        exact = BruteForceIndex()
        exact.build(matrix)
        quant = IVFIndex(quantized="int8")
        quant.build(matrix)
        plain = IVFIndex()
        plain.build(matrix)
        rng = np.random.default_rng(9)
        hits = plain_hits = total = 0
        for q in rng.integers(0, len(matrix), size=30):
            truth, _ = exact.query(matrix[q], k=10)
            got, _ = quant.query(matrix[q], k=10)
            base, _ = plain.query(matrix[q], k=10)
            hits += len(set(truth.tolist()) & set(got.tolist()))
            plain_hits += len(set(truth.tolist()) & set(base.tolist()))
            total += 10
        # Quantization must not cost recall beyond the IVF probe loss.
        assert hits >= plain_hits - total * 0.02
