"""Tests for the shared DynamicEmbeddingMethod contract helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.base import (
    DynamicEmbeddingMethod,
    UnsupportedDynamicsError,
    embeddings_as_matrix,
)
from repro.graph import Graph


class Recorder(DynamicEmbeddingMethod):
    """Minimal concrete method for contract testing."""

    name = "recorder"

    def __init__(self, supports_deletion: bool = True) -> None:
        self.supports_node_deletion = supports_deletion
        self.reset()

    def reset(self) -> None:
        self.snapshots_seen = 0

    def update(self, snapshot: Graph):
        self.snapshots_seen += 1
        return {node: np.zeros(2) for node in snapshot.nodes()}


class TestFitContract:
    def test_fit_resets_then_streams(self, tiny_network):
        method = Recorder()
        method.snapshots_seen = 99
        results = method.fit(tiny_network)
        assert method.snapshots_seen == tiny_network.num_snapshots
        assert len(results) == tiny_network.num_snapshots


class TestCheckDeletions:
    def test_supported_method_ignores(self):
        method = Recorder(supports_deletion=True)
        previous = Graph.from_edges([(0, 1), (1, 2)])
        current = Graph.from_edges([(0, 1)])
        method.check_deletions(previous, current)  # no raise

    def test_unsupported_method_raises(self):
        method = Recorder(supports_deletion=False)
        previous = Graph.from_edges([(0, 1), (1, 2)])
        current = Graph.from_edges([(0, 1)])
        with pytest.raises(UnsupportedDynamicsError):
            method.check_deletions(previous, current)

    def test_no_previous_is_fine(self):
        method = Recorder(supports_deletion=False)
        method.check_deletions(None, Graph.from_edges([(0, 1)]))

    def test_growth_is_fine(self):
        method = Recorder(supports_deletion=False)
        previous = Graph.from_edges([(0, 1)])
        current = Graph.from_edges([(0, 1), (1, 2)])
        method.check_deletions(previous, current)


class TestEmbeddingsAsMatrix:
    def test_row_alignment(self):
        embeddings = {"a": np.array([1.0, 2.0]), "b": np.array([3.0, 4.0])}
        nodes, matrix = embeddings_as_matrix(embeddings, ["b", "a"])
        assert nodes == ["b", "a"]
        np.testing.assert_array_equal(matrix[0], [3.0, 4.0])

    def test_default_order_is_map_order(self):
        embeddings = {"x": np.zeros(2), "y": np.ones(2)}
        nodes, matrix = embeddings_as_matrix(embeddings)
        assert nodes == ["x", "y"]
        assert matrix.shape == (2, 2)

    def test_missing_node_raises(self):
        with pytest.raises(KeyError):
            embeddings_as_matrix({"a": np.zeros(2)}, ["a", "ghost"])
