"""Unit + property tests for the metric implementations."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import (
    cosine_similarity_matrix,
    f1_scores,
    precision_at_k,
    roc_auc_score,
    top_k_neighbors,
)


class TestRocAuc:
    def test_perfect_separation(self):
        assert roc_auc_score([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9]) == 1.0

    def test_inverted_is_zero(self):
        assert roc_auc_score([1, 1, 0, 0], [0.1, 0.2, 0.8, 0.9]) == 0.0

    def test_random_is_half(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 2, size=5000)
        scores = rng.random(5000)
        assert roc_auc_score(labels, scores) == pytest.approx(0.5, abs=0.03)

    def test_ties_averaged(self):
        # All scores tied: AUC must be exactly 0.5.
        assert roc_auc_score([0, 1, 0, 1], [0.5, 0.5, 0.5, 0.5]) == 0.5

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            roc_auc_score([1, 1], [0.1, 0.2])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            roc_auc_score([1, 0], [0.5])

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_complement_symmetry_property(self, seed):
        """Property: AUC(y, s) + AUC(y, -s) = 1 (up to tie handling)."""
        rng = np.random.default_rng(seed)
        labels = np.array([0, 1] * 10)
        scores = rng.normal(size=20)
        forward = roc_auc_score(labels, scores)
        backward = roc_auc_score(labels, -scores)
        assert forward + backward == pytest.approx(1.0)


class TestPrecisionAtK:
    def test_full_hit(self):
        assert precision_at_k(["a", "b"], {"a", "b"}, k=2) == 1.0

    def test_paper_denominator_min_k_n(self):
        """P@k divides by min(k, |N(v)|): querying k=10 for a node with 2
        neighbours can still score 1.0."""
        retrieved = ["a", "b", "x", "y", "z"]
        assert precision_at_k(retrieved, {"a", "b"}, k=5) == 1.0

    def test_partial(self):
        assert precision_at_k(["a", "x"], {"a", "b"}, k=2) == 0.5

    def test_bad_args(self):
        with pytest.raises(ValueError):
            precision_at_k(["a"], {"a"}, k=0)
        with pytest.raises(ValueError):
            precision_at_k(["a"], set(), k=1)


class TestTopKNeighbors:
    def test_identical_vectors_first(self):
        embeddings = np.array(
            [[1.0, 0.0], [1.0, 0.0], [0.0, 1.0], [-1.0, 0.0]]
        )
        ranked = top_k_neighbors(embeddings, k=3)
        assert ranked[0, 0] == 1  # the duplicate of row 0 ranks first
        assert ranked[0, 2] == 3  # the opposite vector ranks last

    def test_self_excluded(self):
        embeddings = np.eye(4)
        ranked = top_k_neighbors(embeddings, k=3)
        for i in range(4):
            assert i not in ranked[i]

    def test_k_clamped(self):
        embeddings = np.eye(3)
        ranked = top_k_neighbors(embeddings, k=50)
        assert ranked.shape == (3, 2)

    def test_blocked_matches_unblocked(self):
        rng = np.random.default_rng(3)
        embeddings = rng.normal(size=(40, 8))
        a = top_k_neighbors(embeddings, k=5, block_size=7)
        b = top_k_neighbors(embeddings, k=5, block_size=1000)
        np.testing.assert_array_equal(a, b)

    def test_zero_vector_handled(self):
        embeddings = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        ranked = top_k_neighbors(embeddings, k=2)
        assert ranked.shape == (3, 2)  # no NaN crash


class TestCosineMatrix:
    def test_unit_diagonal(self):
        rng = np.random.default_rng(1)
        matrix = rng.normal(size=(5, 3))
        sims = cosine_similarity_matrix(matrix, matrix)
        np.testing.assert_allclose(np.diag(sims), 1.0)

    def test_range(self):
        rng = np.random.default_rng(2)
        sims = cosine_similarity_matrix(
            rng.normal(size=(10, 4)), rng.normal(size=(8, 4))
        )
        assert sims.min() >= -1.0 - 1e-9
        assert sims.max() <= 1.0 + 1e-9


class TestF1:
    def test_perfect(self):
        micro, macro = f1_scores([0, 1, 2], [0, 1, 2])
        assert micro == macro == 1.0

    def test_micro_equals_accuracy_single_label(self):
        y_true = np.array([0, 0, 1, 1, 2])
        y_pred = np.array([0, 1, 1, 1, 0])
        micro, _ = f1_scores(y_true, y_pred)
        assert micro == pytest.approx(np.mean(y_true == y_pred))

    def test_macro_punishes_minority_errors(self):
        # Majority class right, minority class always wrong.
        y_true = [0] * 9 + [1]
        y_pred = [0] * 10
        micro, macro = f1_scores(np.array(y_true), np.array(y_pred))
        assert micro == pytest.approx(0.9)
        assert macro < 0.5

    def test_absent_class_zero_division(self):
        micro, macro = f1_scores(
            np.array([0, 0]), np.array([1, 1]), labels=[0, 1, 2]
        )
        assert micro == 0.0
        assert macro == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            f1_scores(np.array([0]), np.array([0, 1]))
