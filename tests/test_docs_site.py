"""Docs-site integrity: local stand-ins for the CI-only doc gates.

CI builds the site with ``mkdocs build --strict`` and gates docstring
coverage with ``interrogate`` — neither tool is part of the runtime
test environment, so these tests enforce the same contracts with the
stdlib: the mkdocs config parses and its nav targets exist, internal
links between pages resolve, every mkdocstrings target in the API page
imports, and the public API surface carries docstrings.
"""

from __future__ import annotations

import ast
import importlib
import re
from pathlib import Path

import pytest

yaml = pytest.importorskip("yaml")

REPO_ROOT = Path(__file__).resolve().parents[1]
DOCS_DIR = REPO_ROOT / "docs"
MKDOCS_YML = REPO_ROOT / "mkdocs.yml"


def load_mkdocs_config() -> dict:
    return yaml.safe_load(MKDOCS_YML.read_text(encoding="utf-8"))


def nav_targets(nav) -> list[str]:
    """Flatten mkdocs' nested nav into the list of page paths."""
    targets: list[str] = []
    if isinstance(nav, str):
        targets.append(nav)
    elif isinstance(nav, list):
        for item in nav:
            targets.extend(nav_targets(item))
    elif isinstance(nav, dict):
        for value in nav.values():
            targets.extend(nav_targets(value))
    return targets


# ----------------------------------------------------------------------
# mkdocs.yml
# ----------------------------------------------------------------------
def test_mkdocs_config_parses_and_names_the_site():
    config = load_mkdocs_config()
    assert config["site_name"]
    assert config["theme"]["name"] == "material"
    plugin_names = [
        plugin if isinstance(plugin, str) else next(iter(plugin))
        for plugin in config["plugins"]
    ]
    assert "search" in plugin_names
    assert "mkdocstrings" in plugin_names


def test_every_nav_entry_is_a_real_page():
    config = load_mkdocs_config()
    targets = nav_targets(config["nav"])
    assert targets, "empty nav"
    for target in targets:
        assert (DOCS_DIR / target).is_file(), f"nav entry missing: {target}"


def test_core_pages_are_reachable_from_nav():
    targets = set(nav_targets(load_mkdocs_config()["nav"]))
    for required in (
        "index.md",
        "architecture.md",
        "paper-to-code.md",
        "guides/train.md",
        "guides/stream.md",
        "guides/serve.md",
        "guides/storage.md",
        "guides/benchmark.md",
        "api.md",
        "contributing.md",
    ):
        assert required in targets, f"{required} not in nav"


def test_no_orphan_docs_pages():
    targets = set(nav_targets(load_mkdocs_config()["nav"]))
    pages = {
        str(path.relative_to(DOCS_DIR))
        for path in DOCS_DIR.rglob("*.md")
    }
    assert pages == targets, (
        "docs/ pages and mkdocs nav disagree "
        f"(orphans: {sorted(pages - targets)}, "
        f"dangling: {sorted(targets - pages)})"
    )


# ----------------------------------------------------------------------
# links
# ----------------------------------------------------------------------
LINK = re.compile(r"\[[^\]]*\]\(([^)]+)\)")


def internal_link_targets(markdown: str):
    for raw in LINK.findall(markdown):
        target = raw.split("#", 1)[0].strip()
        if not target or target.startswith(("http://", "https://", "mailto:")):
            continue
        yield target


def test_docs_internal_links_resolve():
    for page in DOCS_DIR.rglob("*.md"):
        for target in internal_link_targets(page.read_text(encoding="utf-8")):
            resolved = (page.parent / target).resolve()
            assert resolved.exists(), f"{page.name}: dead link -> {target}"


def test_readme_and_contributing_links_resolve():
    for source in (REPO_ROOT / "README.md", REPO_ROOT / "CONTRIBUTING.md"):
        for target in internal_link_targets(
            source.read_text(encoding="utf-8")
        ):
            resolved = (source.parent / target).resolve()
            assert resolved.exists(), f"{source.name}: dead link -> {target}"


def test_readme_is_a_quickstart_that_points_into_docs():
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    assert "docs/architecture.md" in readme
    assert "docs/guides/serve.md" in readme
    # The deep subsystem walkthroughs moved into docs/: the README stays
    # a quickstart, an order of magnitude shorter than the site.
    assert len(readme.splitlines()) < 120


def test_contributing_covers_the_workflows():
    text = (REPO_ROOT / "CONTRIBUTING.md").read_text(encoding="utf-8")
    assert "python -m pytest -x -q" in text          # tier-1 command
    assert "run_all.py" in text                      # bench orchestrator
    assert "mkdocs build --strict" in text           # docs build
    assert "CHANGES.md" in text                      # hand-off entry


# ----------------------------------------------------------------------
# API reference page
# ----------------------------------------------------------------------
def api_reference_targets() -> list[str]:
    page = (DOCS_DIR / "api.md").read_text(encoding="utf-8")
    return [
        line.split()[1]
        for line in page.splitlines()
        if line.startswith(":::")
    ]


def test_api_reference_targets_import():
    targets = api_reference_targets()
    assert targets, "api.md lists no mkdocstrings targets"
    for dotted in targets:
        module_name, _, attribute = dotted.rpartition(".")
        module = importlib.import_module(module_name)
        assert hasattr(module, attribute), f"api.md: {dotted} does not exist"


def test_api_reference_covers_the_headline_surface():
    targets = set(api_reference_targets())
    for required in (
        "repro.core.glodyne.GloDyNE",
        "repro.streaming.engine.StreamingGloDyNE",
        "repro.serving.store.EmbeddingStore",
        "repro.serving.service.EmbeddingService",
        "repro.server.daemon.EmbeddingDaemon",
        "repro.server.batcher.MicroBatcher",
        "repro.bench.registry.register_bench",
    ):
        assert required in targets, f"{required} missing from api.md"


# ----------------------------------------------------------------------
# docstring coverage (interrogate stand-in)
# ----------------------------------------------------------------------
def gated_paths() -> list[Path]:
    """The [tool.interrogate] paths, parsed without a TOML dependency."""
    text = (REPO_ROOT / "pyproject.toml").read_text(encoding="utf-8")
    section = text.split("[tool.interrogate]", 1)[1]
    block = section.split("]", 1)[0]
    paths = [
        REPO_ROOT / entry
        for entry in re.findall(r'"([^"]+)"', block)
    ]
    assert paths, "no interrogate paths configured"
    return paths


def public_defs_missing_docstrings(path: Path) -> list[str]:
    """Public module/class/function defs without docstrings, interrogate-style.

    Mirrors the pyproject exemptions: ``_``-prefixed names (private and
    semiprivate, which also covers dunders) and nested functions are
    exempt; everything else must carry a docstring.
    """
    tree = ast.parse(path.read_text(encoding="utf-8"))
    missing: list[str] = []
    if not ast.get_docstring(tree):
        missing.append(f"{path.name}: module")

    def visit_body(body, prefix: str) -> None:
        for node in body:
            if isinstance(node, ast.ClassDef):
                if node.name.startswith("_"):
                    continue
                if not ast.get_docstring(node):
                    missing.append(f"{path.name}: class {prefix}{node.name}")
                visit_body(node.body, f"{prefix}{node.name}.")
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name.startswith("_"):
                    continue
                if not ast.get_docstring(node):
                    missing.append(f"{path.name}: def {prefix}{node.name}")

    visit_body(tree.body, "")
    return missing


# ----------------------------------------------------------------------
# CLI flags: documented vs. real
# ----------------------------------------------------------------------
FLAG = re.compile(r"(?<![\w-])--[a-z][a-z0-9-]+")

# Flags documented for tools outside this repo's own parsers.
FOREIGN_FLAGS = {
    "--strict",  # mkdocs build --strict
}


def repro_cli_flags() -> set[str]:
    """Every option string ``repro.cli.make_parser`` defines, recursively."""
    import argparse

    from repro.cli import make_parser

    flags: set[str] = set()
    stack = [make_parser()]
    while stack:
        parser = stack.pop()
        for action in parser._actions:
            flags.update(action.option_strings)
            if isinstance(action, argparse._SubParsersAction):
                stack.extend(action.choices.values())
    return flags


def script_flags(path: Path) -> set[str]:
    """``add_argument("--flag", ...)`` literals from a script's AST."""
    tree = ast.parse(path.read_text(encoding="utf-8"))
    flags: set[str] = set()
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "add_argument"
        ):
            for arg in node.args:
                if (
                    isinstance(arg, ast.Constant)
                    and isinstance(arg.value, str)
                    and arg.value.startswith("--")
                ):
                    flags.add(arg.value)
    return flags


def test_documented_cli_flags_exist():
    """Every ``--flag`` the docs mention must exist in a real parser.

    Guards against knob-table drift: renaming a flag in ``repro/cli.py``
    (or ``benchmarks/run_all.py`` / ``examples/``) must take the docs
    along, and a guide cannot document a flag that was never shipped.
    """
    valid = repro_cli_flags() | FOREIGN_FLAGS
    valid |= script_flags(REPO_ROOT / "benchmarks" / "run_all.py")
    for script in sorted((REPO_ROOT / "examples").glob("*.py")):
        valid |= script_flags(script)
    sources = sorted(DOCS_DIR.rglob("*.md")) + [REPO_ROOT / "README.md"]
    unknown = [
        f"{page.relative_to(REPO_ROOT)}: {flag}"
        for page in sources
        for flag in FLAG.findall(page.read_text(encoding="utf-8"))
        if flag not in valid
    ]
    assert unknown == [], (
        "documented flags no parser defines:\n" + "\n".join(unknown)
    )


def test_public_api_surface_is_fully_docstringed():
    files: list[Path] = []
    for path in gated_paths():
        files.extend(sorted(path.rglob("*.py")) if path.is_dir() else [path])
    assert files
    missing = [
        entry for path in files for entry in public_defs_missing_docstrings(path)
    ]
    assert missing == [], "docstrings missing:\n" + "\n".join(missing)
