"""Tests for node2vec-style biased walks (the Step 3 framework hook)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import CSRAdjacency, Graph
from repro.walks import TRUNCATED, simulate_biased_walks


@pytest.fixture
def lollipop() -> Graph:
    """A triangle (0,1,2) with a tail 2-3-4-5: mixes cycles and a path."""
    return Graph.from_edges([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5)])


class TestContract:
    def test_shape_and_validity(self, lollipop, rng):
        csr = CSRAdjacency.from_graph(lollipop)
        walks = simulate_biased_walks(
            csr, [0, 1], num_walks=3, walk_length=6, rng=rng, p=0.5, q=2.0
        )
        assert walks.shape == (6, 6)
        for row in walks:
            for a, b in zip(row[:-1], row[1:]):
                if b == TRUNCATED:
                    break
                assert b in csr.neighbors(a)

    def test_p_q_one_equals_first_order_engine(self, lollipop):
        csr = CSRAdjacency.from_graph(lollipop)
        from repro.walks import simulate_walks

        biased = simulate_biased_walks(
            csr, [0], 4, 8, np.random.default_rng(7), p=1.0, q=1.0
        )
        plain = simulate_walks(csr, [0], 4, 8, np.random.default_rng(7))
        np.testing.assert_array_equal(biased, plain)

    def test_invalid_parameters(self, lollipop, rng):
        csr = CSRAdjacency.from_graph(lollipop)
        with pytest.raises(ValueError):
            simulate_biased_walks(csr, [0], 1, 4, rng, p=0.0)
        with pytest.raises(ValueError):
            simulate_biased_walks(csr, [0], 1, 4, rng, q=-1.0)

    def test_empty_starts(self, lollipop, rng):
        csr = CSRAdjacency.from_graph(lollipop)
        walks = simulate_biased_walks(csr, [], 2, 5, rng, p=0.5)
        assert walks.shape == (0, 5)

    def test_dead_end_truncates(self, rng):
        path = Graph.from_edges([(0, 1)])
        path.add_node(9)
        csr = CSRAdjacency.from_graph(path)
        walks = simulate_biased_walks(
            csr, [csr.index_of[9]], 1, 5, rng, p=0.5, q=0.5
        )
        assert all(walks[0, 1:] == TRUNCATED)


class TestBiasBehaviour:
    def test_low_p_increases_backtracking(self, rng):
        """p << 1 makes the walker return to the previous node often."""
        star = Graph.from_edges([(0, i) for i in range(1, 8)])
        csr = CSRAdjacency.from_graph(star)
        hub = csr.index_of[0]

        def backtrack_rate(p: float) -> float:
            walks = simulate_biased_walks(
                csr, [hub], num_walks=400, walk_length=4,
                rng=np.random.default_rng(0), p=p, q=1.0,
            )
            # Position 2 is a second-order step: from a leaf, the walker
            # either returns to the hub (backtrack) — leaves have only
            # the hub as neighbour, so instead measure position 3
            # returning to the leaf visited at position 1.
            backs = np.sum(walks[:, 3] == walks[:, 1])
            valid = np.sum(walks[:, 3] != TRUNCATED)
            return backs / max(valid, 1)

        assert backtrack_rate(0.05) > backtrack_rate(20.0) + 0.1

    def test_high_q_keeps_walker_local(self, rng):
        """q >> 1 biases toward nodes adjacent to the previous node —
        on a barbell graph the walker crosses the bridge less often."""
        graph = Graph()
        for base in (0, 10):
            for i in range(5):
                for j in range(i + 1, 5):
                    graph.add_edge(base + i, base + j)
        graph.add_edge(0, 10)
        csr = CSRAdjacency.from_graph(graph)

        def crossing_rate(q: float) -> float:
            walks = simulate_biased_walks(
                csr, [csr.index_of[1]], num_walks=200, walk_length=10,
                rng=np.random.default_rng(1), p=1.0, q=q,
            )
            sides = np.where(
                walks == TRUNCATED, -1,
                np.array([0 if csr.nodes[i] < 10 else 1 for i in
                          range(csr.num_nodes)])[walks],
            )
            crossings = 0
            for row in sides:
                valid = row[row >= 0]
                crossings += int(np.sum(valid[1:] != valid[:-1]))
            return crossings / walks.shape[0]

        assert crossing_rate(4.0) < crossing_rate(0.25)


class TestGloDyNEIntegration:
    def test_biased_config_runs(self, tiny_network):
        from repro.core import GloDyNE

        model = GloDyNE(
            dim=8, alpha=0.3, num_walks=2, walk_length=8, window_size=2,
            epochs=1, walk_p=0.5, walk_q=2.0, seed=0,
        )
        embeddings = model.fit(tiny_network)
        assert len(embeddings) == tiny_network.num_snapshots

    def test_bad_pq_rejected(self):
        from repro.core import GloDyNE

        with pytest.raises(ValueError):
            GloDyNE(dim=8, walk_p=0.0)
