"""Unit tests for the stage-pipeline machinery itself.

The golden suite (``test_pipeline_goldens.py``) pins whole-engine
behaviour; these tests pin the pipeline *contracts* — stage timing,
duplicate-name rejection, the shared-RNG rule behind bit-identity, the
one-CSR-per-step invariant, and the publish helpers shared by snapshot
and streaming modes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.static import Graph
from repro.pipeline import (
    StagePipeline,
    StepContext,
    StepTrace,
    deepwalk_pipeline,
    offline_pipeline,
    online_pipeline,
    partition_cells_for,
    publish_version,
)
from repro.pipeline.stages import Stage


def _context(**overrides) -> StepContext:
    """A minimal StepContext for machinery tests (no engine involved)."""
    graph = Graph()
    graph.add_edge(0, 1)
    graph.add_edge(1, 2)
    defaults = dict(
        config=None,
        rng=np.random.default_rng(0),
        model=None,
        snapshot=graph,
        time_step=0,
    )
    defaults.update(overrides)
    return StepContext(**defaults)


class _Recorder:
    """A stage that appends its name to a shared call log."""

    def __init__(self, name: str, log: list) -> None:
        self.name = name
        self.log = log

    def run(self, context: StepContext) -> None:
        """Record the call."""
        self.log.append(self.name)


# ----------------------------------------------------------------------
# StagePipeline
# ----------------------------------------------------------------------

def test_pipeline_runs_stages_in_order_and_times_each():
    log: list[str] = []
    pipeline = StagePipeline([_Recorder(n, log) for n in ("a", "b", "c")])
    context = _context()
    returned = pipeline.run(context)
    assert returned is context
    assert log == ["a", "b", "c"]
    assert set(context.stage_seconds) == {"a", "b", "c"}
    assert all(s >= 0 for s in context.stage_seconds.values())


def test_pipeline_rejects_duplicate_stage_names():
    log: list[str] = []
    with pytest.raises(ValueError, match="duplicate stage names"):
        StagePipeline([_Recorder("walk", log), _Recorder("walk", log)])


def test_pipeline_copies_timings_onto_trace():
    log: list[str] = []

    class _Tracer(_Recorder):
        def run(self, context: StepContext) -> None:
            """Emit a trace like TrainStage does."""
            super().run(context)
            context.trace = StepTrace(
                time_step=0, num_nodes=3, num_selected=1, num_pairs=2
            )

    context = StagePipeline([_Tracer("train", log)]).run(_context())
    assert set(context.trace.stage_seconds) == {"train"}


def test_stage_seconds_excluded_from_trace_equality():
    """Timings are telemetry: equal behaviour must compare equal."""
    fast = StepTrace(time_step=1, num_nodes=5, num_selected=2, num_pairs=9)
    slow = StepTrace(time_step=1, num_nodes=5, num_selected=2, num_pairs=9)
    slow.stage_seconds = {"walk": 123.0}
    assert fast == slow


def test_concrete_stages_satisfy_the_protocol():
    for factory in (online_pipeline, offline_pipeline, deepwalk_pipeline):
        for stage in factory().stages:
            assert isinstance(stage, Stage)
            assert isinstance(stage.name, str) and stage.name


def test_engine_pipeline_shapes():
    """The three factory literals match the documented stage graphs."""
    names = lambda p: [s.name for s in p.stages]  # noqa: E731
    assert names(online_pipeline()) == [
        "changes", "partition", "select", "walk", "train", "publish",
    ]
    assert names(offline_pipeline()) == ["select", "walk", "train", "publish"]
    assert names(deepwalk_pipeline()) == ["select", "walk", "train"]


# ----------------------------------------------------------------------
# StepContext contracts
# ----------------------------------------------------------------------

def test_ensure_csr_builds_once_per_step():
    """The one-CSR-per-step invariant, at the context level."""
    context = _context()
    first = context.ensure_csr()
    assert context.ensure_csr() is first


def test_rng_for_shares_one_stream_by_default():
    """Bit-identity hinges on every stage drawing from the same stream."""
    context = _context()
    assert context.rng_for("select") is context.rng
    assert context.rng_for("walk") is context.rng
    assert context.rng_for("train") is context.rng


def test_rng_for_independent_streams_are_stable_and_distinct():
    context = _context(independent_streams=True)
    select = context.rng_for("select")
    walk = context.rng_for("walk")
    assert select is not context.rng
    assert select is not walk
    assert context.rng_for("select") is select  # cached per stage


# ----------------------------------------------------------------------
# Publish helpers (shared snapshot/streaming path)
# ----------------------------------------------------------------------

class _FakePartition:
    """Partition stand-in: just the assignment mapping."""

    def __init__(self, assignment: dict) -> None:
        self.assignment = assignment


class _FakeStore:
    """Records publish calls."""

    def __init__(self) -> None:
        self.calls: list = []

    def publish(self, payload, *, time_step, metadata) -> None:
        """Record one published version."""
        self.calls.append((payload, time_step, metadata))


def test_partition_cells_require_complete_cover():
    part = _FakePartition({0: 0, 1: 1})
    assert partition_cells_for([0, 1], part) == [0, 1]
    assert partition_cells_for([0, 1, 2], part) is None
    assert partition_cells_for([0], None) is None


def test_publish_version_attaches_cells_only_when_whole():
    store = _FakeStore()
    matrix = np.zeros((2, 4))
    publish_version(
        store, [0, 1], matrix, time_step=3, metadata={"source": "test"},
        partition=_FakePartition({0: 1, 1: 0}),
    )
    publish_version(
        store, [0, 1], matrix, time_step=4, metadata={"source": "test"},
        partition=_FakePartition({0: 1}),
    )
    (payload, step, meta), (_, _, meta_partial) = store.calls
    assert payload == ([0, 1], matrix)
    assert step == 3
    assert meta["partition_cells"] == [1, 0]
    assert "partition_cells" not in meta_partial


# ----------------------------------------------------------------------
# Telemetry plumbing downstream of the pipeline
# ----------------------------------------------------------------------

def test_run_result_aggregates_stage_seconds():
    from repro.experiments.runner import RunResult

    first = StepTrace(time_step=0, num_nodes=3, num_selected=3, num_pairs=5)
    first.stage_seconds = {"walk": 1.0, "train": 2.0}
    second = StepTrace(time_step=1, num_nodes=3, num_selected=1, num_pairs=2)
    second.stage_seconds = {"walk": 0.5, "train": 1.5, "publish": 0.25}
    result = RunResult(
        method_name="m", dataset_name="d",
        step_traces=[first, None, second],
    )
    assert result.stage_seconds == {
        "walk": 1.5, "train": 3.5, "publish": 0.25,
    }


def test_bench_schema_accepts_stage_seconds():
    from repro.bench.schema import validate_result

    doc = {
        "schema": "repro.bench/v1",
        "name": "pipeline_smoke",
        "profile": "tiny",
        "status": "ok",
        "seconds": 1.0,
        "created_unix": 1.0,
        "metrics": {"qps": 1.0},
        "config": {},
        "host": {"python": "3", "platform": "x", "cpu_count": 1,
                 "numpy": "2"},
        "git": {"sha": None, "branch": None, "dirty": None},
        "summary": "ok",
    }
    assert validate_result(doc) == []
    doc["stage_seconds"] = {"walk": 0.5, "train": 1.25}
    assert validate_result(doc) == []
    doc["stage_seconds"] = {"walk": -1.0}
    assert any("stage_seconds" in p for p in validate_result(doc))
    doc["stage_seconds"] = {"": 1.0}
    assert any("stage_seconds" in p for p in validate_result(doc))
    doc["stage_seconds"] = ["walk"]
    assert any("stage_seconds" in p for p in validate_result(doc))


def test_run_method_records_stage_seconds_end_to_end():
    """A real (tiny) GloDyNE run surfaces per-stage timings per step."""
    from repro import GloDyNE
    from repro.datasets import load_dataset
    from repro.experiments import run_method

    network = load_dataset("elec-sim", scale=0.15, seed=0, snapshots=2)
    method = GloDyNE(
        dim=8, num_walks=2, walk_length=6, window_size=2, epochs=1, seed=0,
    )
    result = run_method(method, network)
    assert result.ok
    assert len(result.step_traces) == 2
    for trace in result.step_traces:
        assert set(trace.stage_seconds) >= {"select", "walk", "train"}
    assert set(result.stage_seconds) >= {"select", "walk", "train"}
