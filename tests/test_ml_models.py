"""Tests for logistic regression, PCA, Adam, and the t-test helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml import (
    LogisticRegression,
    OneVsRestLogisticRegression,
    PCA,
    best_two_marker,
    procrustes_disparity,
    two_sample_ttest,
)
from repro.ml.optim import Adam


def linearly_separable(n: int, seed: int) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    features = rng.normal(size=(n, 2))
    labels = (features[:, 0] + features[:, 1] > 0).astype(np.int64)
    return features, labels


class TestLogisticRegression:
    def test_fits_separable_data(self):
        features, labels = linearly_separable(200, 0)
        model = LogisticRegression(c=10.0).fit(features, labels)
        accuracy = np.mean(model.predict(features) == labels)
        assert accuracy > 0.95

    def test_probabilities_valid(self):
        features, labels = linearly_separable(100, 1)
        model = LogisticRegression().fit(features, labels)
        probabilities = model.predict_proba(features)
        assert np.all((probabilities >= 0) & (probabilities <= 1))

    def test_regularisation_shrinks_weights(self):
        features, labels = linearly_separable(200, 2)
        loose = LogisticRegression(c=100.0).fit(features, labels)
        tight = LogisticRegression(c=0.01).fit(features, labels)
        assert np.linalg.norm(tight.weights) < np.linalg.norm(loose.weights)

    def test_non_binary_labels_rejected(self):
        with pytest.raises(ValueError):
            LogisticRegression().fit(np.zeros((3, 2)), np.array([0, 1, 2]))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            LogisticRegression().decision_function(np.zeros((1, 2)))

    def test_bad_c_rejected(self):
        with pytest.raises(ValueError):
            LogisticRegression(c=0.0)


class TestOneVsRest:
    def test_three_gaussians(self):
        rng = np.random.default_rng(3)
        centers = np.array([[0, 4], [4, 0], [-4, -4]])
        features = np.vstack(
            [rng.normal(c, 0.5, size=(50, 2)) for c in centers]
        )
        labels = np.repeat([0, 1, 2], 50)
        model = OneVsRestLogisticRegression(c=10.0).fit(features, labels)
        accuracy = np.mean(model.predict(features) == labels)
        assert accuracy > 0.95

    def test_string_labels(self):
        features, binary = linearly_separable(100, 4)
        labels = np.where(binary == 1, "pos", "neg")
        model = OneVsRestLogisticRegression().fit(features, labels)
        predictions = model.predict(features)
        assert set(predictions.tolist()) <= {"pos", "neg"}

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            OneVsRestLogisticRegression().fit(
                np.zeros((5, 2)), np.zeros(5)
            )


class TestPCA:
    def test_variance_ordering(self):
        rng = np.random.default_rng(5)
        data = rng.normal(size=(100, 5)) * np.array([10, 5, 1, 0.5, 0.1])
        pca = PCA(n_components=3).fit(data)
        ratios = pca.explained_variance_ratio_
        assert ratios[0] > ratios[1] > ratios[2]

    def test_projection_shape(self):
        data = np.random.default_rng(6).normal(size=(30, 8))
        projected = PCA(n_components=2).fit_transform(data)
        assert projected.shape == (30, 2)

    def test_deterministic_sign(self):
        data = np.random.default_rng(7).normal(size=(50, 4))
        a = PCA(2).fit(data).components_
        b = PCA(2).fit(data).components_
        np.testing.assert_array_equal(a, b)

    def test_reconstruction_of_low_rank(self):
        rng = np.random.default_rng(8)
        basis = rng.normal(size=(2, 6))
        data = rng.normal(size=(40, 2)) @ basis  # exactly rank 2
        pca = PCA(2).fit(data)
        assert pca.explained_variance_ratio_.sum() == pytest.approx(1.0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            PCA(2).transform(np.zeros((2, 2)))


class TestProcrustes:
    def test_rotation_detected(self):
        rng = np.random.default_rng(9)
        cloud = rng.normal(size=(30, 2))
        theta = np.pi / 3
        rotation = np.array(
            [[np.cos(theta), -np.sin(theta)], [np.sin(theta), np.cos(theta)]]
        )
        rotated = cloud @ rotation
        with_rotation = procrustes_disparity(cloud, rotated, allow_rotation=True)
        without = procrustes_disparity(cloud, rotated, allow_rotation=False)
        assert with_rotation == pytest.approx(0.0, abs=1e-9)
        assert without > 0.1

    def test_identical_clouds(self):
        cloud = np.random.default_rng(10).normal(size=(10, 3))
        assert procrustes_disparity(cloud, cloud, False) == pytest.approx(0.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            procrustes_disparity(np.zeros((3, 2)), np.zeros((4, 2)), True)


class TestTTest:
    def test_clearly_different_samples(self):
        a = np.array([1.0, 1.1, 0.9, 1.05, 0.95])
        b = np.array([2.0, 2.1, 1.9, 2.05, 1.95])
        result = two_sample_ttest(a, b)
        assert result.p_value < 0.01
        assert result.marker == "‡"

    def test_identical_samples_not_significant(self):
        a = np.array([1.0, 2.0, 3.0])
        result = two_sample_ttest(a, a)
        assert result.p_value > 0.9
        assert result.marker == ""

    def test_constant_identical_samples(self):
        a = np.array([1.0, 1.0, 1.0])
        result = two_sample_ttest(a, a)
        assert result.p_value == 1.0

    def test_small_sample_rejected(self):
        with pytest.raises(ValueError):
            two_sample_ttest(np.array([1.0]), np.array([1.0, 2.0]))

    def test_best_two_marker(self):
        samples = {
            "winner": np.array([0.9, 0.91, 0.92, 0.9, 0.91]),
            "loser": np.array([0.5, 0.52, 0.48, 0.51, 0.5]),
            "middle": np.array([0.7, 0.71, 0.69, 0.7, 0.7]),
        }
        best, marker = best_two_marker(samples)
        assert best == "winner"
        assert marker == "‡"


class TestAdam:
    def test_minimises_quadratic(self):
        param = np.array([5.0, -3.0])
        optimizer = Adam(lr=0.1)
        for _ in range(500):
            optimizer.step(param, 2.0 * param)  # grad of ||x||^2
        assert np.linalg.norm(param) < 0.05

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Adam().step(np.zeros(2), np.zeros(3))

    def test_independent_state_per_param(self):
        a = np.array([1.0])
        b = np.array([1.0])
        optimizer = Adam(lr=0.5)
        optimizer.step(a, np.array([1.0]))
        assert b[0] == 1.0  # untouched

    def test_bad_lr_rejected(self):
        with pytest.raises(ValueError):
            Adam(lr=0.0)
