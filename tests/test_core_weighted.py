"""Tests for the weighted change-score extension (paper footnote 3)."""

from __future__ import annotations

import numpy as np

from repro.core import GloDyNE
from repro.graph import DynamicNetwork, Graph


def weighted_pair() -> tuple[Graph, Graph]:
    """Two snapshots whose only difference is a big weight change on one
    edge plus a tiny new edge elsewhere."""
    previous = Graph.from_edges(
        [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 1.0), (0, 2, 1.0)]
    )
    current = previous.copy()
    current.add_edge(0, 1, 10.0)   # weight 1 -> 10: change of 9 at nodes 0, 1
    current.add_edge(1, 3, 1.0)    # new unit edge
    return previous, current


KWARGS = dict(
    dim=8, alpha=0.5, num_walks=2, walk_length=8, window_size=2, epochs=1,
)


class TestWeightedReservoir:
    def test_auto_detects_weights(self):
        previous, current = weighted_pair()
        model = GloDyNE(**KWARGS, seed=0)
        model.update(previous)
        model.update(current)
        # Weighted accumulation credits 9.0 to nodes 0/1 (minus any
        # eviction); the reservoir for an unselected changed node must be
        # weight-scaled, not the unweighted count 1.
        survivors = {
            node: model.reservoir.get(node)
            for node in (0, 1, 3)
            if node in model.reservoir
        }
        for node, value in survivors.items():
            if node in (0, 1):
                assert value >= 9.0
            else:
                assert value <= 2.0

    def test_forced_unweighted_counts(self):
        previous, current = weighted_pair()
        model = GloDyNE(**KWARGS, weighted_changes=False, seed=0)
        model.update(previous)
        model.update(current)
        for node in model.reservoir.nodes():
            # Unweighted mode counts changed edges: at most 2 per node here.
            assert model.reservoir.get(node) <= 2

    def test_forced_weighted_on_unweighted_graph_matches_counts(self):
        """On a genuinely unweighted pair the weighted formula reduces to
        the plain count, so both modes agree."""
        g0 = Graph.from_edges([(0, 1), (1, 2), (2, 0), (2, 3)])
        g1 = g0.copy()
        g1.add_edge(3, 0)
        weighted = GloDyNE(**KWARGS, weighted_changes=True, seed=1)
        unweighted = GloDyNE(**KWARGS, weighted_changes=False, seed=1)
        for model in (weighted, unweighted):
            model.update(g0)
            model.update(g1)
        assert weighted.reservoir.as_dict() == unweighted.reservoir.as_dict()

    def test_weighted_network_end_to_end(self):
        """GloDyNE runs start-to-finish on a weighted dynamic network and
        walk transitions respect Eq. (5)."""
        rng = np.random.default_rng(0)
        snapshots = []
        graph = Graph()
        for i in range(20):
            graph.add_edge(i, (i + 1) % 20, float(rng.integers(1, 5)))
        snapshots.append(graph.copy())
        for _ in range(3):
            graph = graph.copy()
            u, v = rng.integers(0, 20, size=2)
            if u != v:
                graph.add_edge(int(u), int(v), float(rng.integers(1, 5)))
            snapshots.append(graph.copy())
        network = DynamicNetwork(snapshots)
        model = GloDyNE(**KWARGS, seed=0)
        embeddings = model.fit(network)
        assert len(embeddings) == 4
        assert set(embeddings[-1]) == network[-1].node_set()
