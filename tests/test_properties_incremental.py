"""Property tests for the removal/weight-update paths of IncrementalCSR.

PR 1's equivalence suite mostly exercised additions; these strategies
bias the op mix toward removals and weight overwrites, replay every
sequence through :class:`repro.streaming.IncrementalCSR`, and assert the
frozen CSR is byte-identical to ``CSRAdjacency.from_graph`` on a Graph
mirror of the same sequence — including the dict-ordering contract
(overwrite keeps position, remove shifts left, re-add appends).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import Graph
from repro.graph.csr import CSRAdjacency
from repro.streaming import IncrementalCSR

# Op kinds: weight-heavy mix over a small universe so the same edge gets
# added, overwritten, removed, and re-added many times per sequence.
_OP = st.tuples(
    st.sampled_from(["add", "remove", "update"]),
    st.integers(min_value=0, max_value=6),
    st.integers(min_value=0, max_value=6),
    st.floats(min_value=0.25, max_value=4.0, allow_nan=False),
)


def _replay(ops):
    inc = IncrementalCSR()
    mirror = Graph()
    for kind, u, v, weight in ops:
        if kind == "remove":
            inc.discard_edge(u, v)
            mirror.discard_edge(u, v)
        else:
            # "update" is an overwrite-add: same path, but the strategy
            # makes re-weighting an existing edge an explicit, frequent op.
            inc.add_edge(u, v, weight)
            mirror.add_edge(u, v, weight)
    return inc, mirror


def _assert_matches_from_graph(inc: IncrementalCSR, mirror: Graph) -> None:
    frozen = inc.to_csr()
    expected = CSRAdjacency.from_graph(mirror)
    assert frozen.nodes == expected.nodes
    assert np.array_equal(frozen.indptr, expected.indptr)
    assert np.array_equal(frozen.indices, expected.indices)
    assert np.array_equal(frozen.weights, expected.weights)


class TestRemovalAndWeightUpdates:
    @settings(max_examples=80, deadline=None)
    @given(ops=st.lists(_OP, min_size=1, max_size=150))
    def test_mixed_sequence_matches_batch_freeze(self, ops):
        inc, mirror = _replay(ops)
        _assert_matches_from_graph(inc, mirror)

    @settings(max_examples=40, deadline=None)
    @given(
        ops=st.lists(_OP, min_size=1, max_size=80),
        drain=st.booleans(),
    )
    def test_remove_everything_then_rebuild(self, ops, drain):
        # Removal-path stress: after replay, strip every live edge (and
        # optionally re-add them) — rows must stay coherent throughout.
        inc, mirror = _replay(ops)
        live = list(mirror.edges())
        for u, v in live:
            assert inc.discard_edge(u, v)
            mirror.discard_edge(u, v)
        _assert_matches_from_graph(inc, mirror)
        assert inc.num_entries == 0
        if drain:
            for i, (u, v) in enumerate(live):
                inc.add_edge(u, v, 1.0 + i)
                mirror.add_edge(u, v, 1.0 + i)
            _assert_matches_from_graph(inc, mirror)

    @settings(max_examples=60, deadline=None)
    @given(ops=st.lists(_OP, min_size=1, max_size=120))
    def test_degrees_and_entry_count_track_mirror(self, ops):
        inc, mirror = _replay(ops)
        for node in mirror.nodes():
            assert inc.degree(node) == mirror.degree(node)
        expected_entries = sum(mirror.degree(n) for n in mirror.nodes())
        assert inc.num_entries == expected_entries

    @settings(max_examples=60, deadline=None)
    @given(ops=st.lists(_OP, min_size=1, max_size=120))
    def test_weight_overwrites_preserve_position(self, ops):
        # Overwriting a live edge's weight must not move the neighbour
        # inside its row: the frozen index arrays equal a replay where the
        # overwrite never happened, only the weights differ.
        inc, mirror = _replay(ops)
        live = list(mirror.edges())
        if not live:
            return
        for i, (u, v) in enumerate(live):
            inc.add_edge(u, v, 100.0 + i)
            mirror.add_edge(u, v, 100.0 + i)
        before = inc.to_csr()
        _assert_matches_from_graph(inc, mirror)
        again = inc.to_csr()
        assert np.array_equal(before.indices, again.indices)
        assert before.nodes == again.nodes

    def test_remove_of_absent_and_unknown_nodes(self):
        inc = IncrementalCSR()
        assert not inc.discard_edge("a", "b")  # both unknown
        inc.add_edge("a", "b", 2.0)
        assert not inc.discard_edge("a", "zzz")  # one unknown
        assert inc.discard_edge("a", "b")
        assert not inc.discard_edge("a", "b")  # already gone
        assert inc.degree("a") == inc.degree("b") == 0

    def test_self_loop_remove_path(self):
        inc = IncrementalCSR()
        mirror = Graph()
        inc.add_edge(1, 1, 2.5)
        mirror.add_edge(1, 1, 2.5)
        inc.add_edge(1, 2, 1.0)
        mirror.add_edge(1, 2, 1.0)
        assert inc.discard_edge(1, 1)
        mirror.discard_edge(1, 1)
        _assert_matches_from_graph(inc, mirror)
