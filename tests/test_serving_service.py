"""Service-level golden test: stream -> store -> index -> queries.

Drives the full serving pipeline end-to-end on a seeded synthetic
stream: ``StreamingGloDyNE`` publishes every flush into an
:class:`EmbeddingStore`, an :class:`EmbeddingService` serves kNN from an
LSH index, and the assertions pin the service-level contracts — recall
against the exact backend, incremental refresh equivalence with a
from-scratch rebuild, time-travel reads, and cache behaviour.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    EmbeddingService,
    EmbeddingStore,
    FlushPolicy,
    GloDyNE,
    LSHIndex,
    StreamingGloDyNE,
    load_dataset,
)
from repro.streaming import network_to_events

WALK = dict(num_walks=3, walk_length=12, window_size=4, epochs=2)


@pytest.fixture(scope="module")
def streamed_store() -> EmbeddingStore:
    """Replay a seeded synthetic stream, publishing one version per flush."""
    network = load_dataset("elec-sim", scale=0.5, seed=11, snapshots=6)
    store = EmbeddingStore()
    engine = StreamingGloDyNE(
        dim=32, alpha=0.1, seed=3, policy=FlushPolicy(max_events=80),
        publish_to=store, **WALK,
    )
    engine.ingest_many(network_to_events(network))
    if engine.pending_events:
        engine.flush()
    assert store.num_versions == engine.num_flushes >= 3
    return store


class TestGoldenPipeline:
    def test_flush_metadata_published(self, streamed_store):
        for record in streamed_store:
            assert record.metadata["source"] == "stream"
            assert record.metadata["trigger"] in {"events", "manual"}
            assert record.metadata["num_events"] > 0
        steps = [record.time_step for record in streamed_store]
        assert steps == sorted(steps)

    def test_lsh_recall_vs_brute_force(self, streamed_store):
        exact = EmbeddingService(streamed_store, backend="exact", cache_size=0)
        approx = EmbeddingService(streamed_store, backend="lsh", cache_size=0)
        latest = streamed_store.latest
        queries = list(latest.nodes)[:: max(1, latest.num_nodes // 60)]
        hits = total = 0
        for node in queries:
            truth = {n for n, _ in exact.query_knn(node, 10)}
            found = {n for n, _ in approx.query_knn(node, 10)}
            hits += len(truth & found)
            total += len(truth)
        assert total > 0
        assert hits / total >= 0.9

    def test_incremental_refresh_equals_full_rebuild(self, streamed_store):
        # Serve version after version with incremental refresh only...
        store = EmbeddingStore()
        first = streamed_store.version(0)
        store.publish(
            (list(first.nodes), first.matrix), time_step=first.time_step
        )
        # tolerance 0.0: every row that moved at all re-hashes, so the
        # comparison against the rebuild is bitwise, not approximate.
        service = EmbeddingService(
            store, backend="lsh", cache_size=0, refresh_tolerance=0.0
        )
        service.refresh()  # build at v0 so later syncs are incremental
        for v in range(1, streamed_store.num_versions):
            record = streamed_store.version(v)
            store.publish(
                (list(record.nodes), record.matrix), time_step=record.time_step
            )
            touched = service.refresh()
            assert 0 < touched <= record.num_nodes

        # ... then rebuild from scratch at the final version and compare.
        # The rebuild reuses the serving index's frozen configuration —
        # hashing center and auto-sized table bits — exactly as it reuses
        # the hyperplane seed.
        rebuilt = LSHIndex(
            num_bits=service.index.num_bits, center=service.index.center
        )
        rebuilt.build(streamed_store.latest.matrix)
        latest = streamed_store.latest
        for node in list(latest.nodes)[:: max(1, latest.num_nodes // 40)]:
            vec = latest.vector(node)
            inc_rows, inc_scores = service.index.query(vec, 10)
            full_rows, full_scores = rebuilt.query(vec, 10)
            assert np.array_equal(inc_rows, full_rows)
            assert np.array_equal(inc_scores, full_scores)

    def test_refresh_touches_only_moved_rows(self, streamed_store):
        # GloDyNE's incremental training only moves the rows that took
        # part in a step's walks, so a refresh must re-hash strictly
        # fewer rows than a rebuild re-hashes (= all of them).
        store = EmbeddingStore()
        first = streamed_store.version(0)
        store.publish(
            (list(first.nodes), first.matrix), time_step=first.time_step
        )
        service = EmbeddingService(store, backend="lsh", cache_size=0)
        assert service.indexed_version is None  # lazily built
        assert service.refresh() == first.num_nodes
        assert service.indexed_version == 0
        for v in range(1, streamed_store.num_versions):
            record = streamed_store.version(v)
            store.publish(
                (list(record.nodes), record.matrix),
                time_step=record.time_step,
            )
            touched = service.refresh()
            assert touched < record.num_nodes
            assert service.index.last_refresh_rows == touched
        assert service.indexed_version == store.num_versions - 1
        assert service.refresh() == 0  # already current: no-op

    def test_time_travel_reads(self, streamed_store):
        service = EmbeddingService(streamed_store, backend="lsh")
        v0 = streamed_store.version(0)
        past = service.embed_at(0)
        assert set(past) == set(v0.nodes)
        node = v0.nodes[0]
        assert np.allclose(past[node], v0.vector(node))
        # Pinned-version kNN bypasses the index and is exact at v0.
        result = service.query_knn(node, 5, version=0)
        assert len(result) == 5
        assert all(n != node for n, _ in result)
        # score_edge time-travel agrees with the stored vectors.
        u, v = v0.nodes[0], v0.nodes[1]
        a, b = np.asarray(v0.vector(u)), np.asarray(v0.vector(v))
        expected = float(
            a @ b / (np.linalg.norm(a) * np.linalg.norm(b))
        )
        assert service.score_edge(u, v, version=0) == pytest.approx(
            expected, abs=1e-6
        )

    def test_query_cache(self, streamed_store):
        service = EmbeddingService(
            streamed_store, backend="lsh", cache_size=8
        )
        node = streamed_store.latest.nodes[0]
        first = service.query_knn(node, 5)
        second = service.query_knn(node, 5)
        assert first == second
        assert service.cache_info["hits"] == 1
        # Different k = different key.
        service.query_knn(node, 3)
        assert service.cache_info["misses"] == 2
        # Capacity bound holds under churn.
        for other in streamed_store.latest.nodes[:20]:
            service.query_knn(other, 5)
        assert service.cache_info["entries"] <= 8
        service.clear_cache()
        assert service.cache_info["entries"] == 0

    def test_refresh_survives_shrinking_node_set(self, streamed_store):
        # Node deletions can shrink a published version (GloDyNE supports
        # them); the service must fall back to a rebuild, not crash.
        store = EmbeddingStore()
        latest = streamed_store.latest
        store.publish((list(latest.nodes), latest.matrix), time_step=0)
        service = EmbeddingService(store, backend="lsh", cache_size=0)
        service.refresh()  # index the large version first
        shrunk = streamed_store.version(0)  # earlier = fewer nodes
        assert shrunk.num_nodes < latest.num_nodes
        store.publish((list(shrunk.nodes), shrunk.matrix), time_step=1)
        touched = service.refresh()
        assert touched == shrunk.num_nodes  # full rebuild
        assert service.index.num_rows == shrunk.num_nodes
        result = service.query_knn(shrunk.nodes[0], 5)
        assert len(result) == 5

    def test_pinned_and_index_paths_do_not_share_cache(self, streamed_store):
        service = EmbeddingService(streamed_store, backend="lsh")
        latest_version = streamed_store.latest.version
        node = streamed_store.latest.nodes[0]
        approx = service.query_knn(node, 10)
        exact = service.query_knn(node, 10, version=latest_version)
        # Same version id, but the pinned call must have scanned exactly
        # (never served from the approximate entry): both were misses.
        assert service.cache_info["misses"] == 2
        assert service.cache_info["hits"] == 0
        assert {n for n, _ in exact} >= set()  # both well-formed
        assert len(approx) == len(exact) == 10

    def test_auto_sized_index_rebuilds_after_large_growth(self):
        # An index sized on a tiny first version must re-derive its table
        # bits and center once the store outgrows that sizing by 4x.
        rng = np.random.default_rng(0)
        store = EmbeddingStore()
        store.publish(([f"n{i}" for i in range(30)],
                       rng.standard_normal((30, 8))), time_step=0)
        service = EmbeddingService(store, backend="lsh", cache_size=0)
        service.refresh()
        small_bits = service.index.num_bits
        big = np.vstack([store.latest.matrix, rng.standard_normal((270, 8))])
        store.publish(([f"n{i}" for i in range(300)], big), time_step=1)
        touched = service.refresh()
        assert touched == 300  # full re-sized rebuild, not incremental
        assert service.index.num_bits > small_bits
        assert service.indexed_version == 1
        assert len(service.query_knn("n250", 5)) == 5

    def test_unknown_node_raises(self, streamed_store):
        service = EmbeddingService(streamed_store, backend="exact")
        with pytest.raises(KeyError):
            service.query_knn("no-such-node", 5)
        with pytest.raises(ValueError):
            service.score_edge(
                streamed_store.latest.nodes[0],
                streamed_store.latest.nodes[1],
                metric="euclid",
            )
        with pytest.raises(ValueError):
            EmbeddingService(streamed_store, backend="annoy")


@pytest.fixture(scope="module")
def partitioned_store() -> EmbeddingStore:
    """A stream whose online flushes publish Step 1 partition cells."""
    network = load_dataset("elec-sim", scale=0.5, seed=11, snapshots=6)
    store = EmbeddingStore()
    engine = StreamingGloDyNE(
        dim=32, alpha=0.1, seed=3, policy=FlushPolicy(max_events=80),
        publish_to=store, incremental_partition=True, **WALK,
    )
    engine.ingest_many(network_to_events(network))
    if engine.pending_events:
        engine.flush()
    assert store.num_versions >= 3
    return store


class TestIVFThroughService:
    def test_online_versions_carry_partition_cells(self, partitioned_store):
        # v0 is the offline step (no partition yet); every later flush
        # must publish cells row-aligned with its matrix.
        records = list(partitioned_store)
        assert "partition_cells" not in records[0].metadata
        for record in records[1:]:
            cells = record.metadata["partition_cells"]
            assert len(cells) == record.num_nodes
            assert min(cells) >= 0

    def test_ivf_recall_vs_brute_force(self, partitioned_store):
        exact = EmbeddingService(
            partitioned_store, backend="exact", cache_size=0
        )
        approx = EmbeddingService(
            partitioned_store, backend="ivf", cache_size=0
        )
        approx.refresh()
        assert approx.index.backend_name == "ivf"
        assert "mode=partition" in repr(approx.index)  # cells from Step 1
        latest = partitioned_store.latest
        queries = list(latest.nodes)[:: max(1, latest.num_nodes // 60)]
        hits = total = 0
        for node in queries:
            truth = {n for n, _ in exact.query_knn(node, 10)}
            found = {n for n, _ in approx.query_knn(node, 10)}
            hits += len(truth & found)
            total += len(truth)
        assert total > 0
        assert hits / total >= 0.9

    def test_ivf_incremental_refresh_equals_full_rebuild(
        self, partitioned_store
    ):
        # Serve version after version with incremental refresh only,
        # then compare bitwise against a one-shot build at the final
        # version with its published assignment — covering the anchor ->
        # partition mode switch at v1 along the way.
        from repro.serving import IVFIndex

        store = EmbeddingStore()
        service = EmbeddingService(
            store, backend="ivf", cache_size=0, refresh_tolerance=0.0
        )
        for v in range(partitioned_store.num_versions):
            record = partitioned_store.version(v)
            store.publish(
                (list(record.nodes), record.matrix),
                time_step=record.time_step,
                metadata=dict(record.metadata),
            )
            touched = service.refresh()
            assert 0 < touched <= record.num_nodes

        final = partitioned_store.latest
        rebuilt = IVFIndex()
        rebuilt.build(
            final.matrix,
            assignment=np.asarray(
                final.metadata["partition_cells"], dtype=np.int64
            ),
        )
        for node in list(final.nodes)[:: max(1, final.num_nodes // 40)]:
            vec = final.vector(node)
            inc_rows, inc_scores = service.index.query(vec, 10)
            full_rows, full_scores = rebuilt.query(vec, 10)
            assert np.array_equal(inc_rows, full_rows)
            assert np.array_equal(inc_scores, full_scores)


class TestServingBugfixes:
    def test_unit_cache_is_bounded_lru(self, streamed_store):
        # Regression: pinned-version exact scans memoise a full float32
        # unit matrix per version — the memo must stay a bounded LRU,
        # not grow with every version ever queried.
        service = EmbeddingService(
            streamed_store, backend="exact", cache_size=0, unit_cache_size=2
        )
        num = streamed_store.num_versions
        for v in range(num):
            node = streamed_store.version(v).nodes[0]
            service.query_knn(node, 3, version=v)
        assert len(service._unit_cache) == min(2, num)
        # LRU order: the most recently used versions survive.
        assert set(service._unit_cache) == {num - 2, num - 1}
        # Re-touching the older survivor protects it from eviction.
        service.query_knn(streamed_store.version(num - 2).nodes[0], 3,
                          version=num - 2)
        service.query_knn(streamed_store.version(0).nodes[0], 3, version=0)
        assert set(service._unit_cache) == {num - 2, 0}

    def test_unit_cache_disabled(self, streamed_store):
        service = EmbeddingService(
            streamed_store, backend="exact", cache_size=0, unit_cache_size=0
        )
        service.query_knn(streamed_store.version(0).nodes[0], 3, version=0)
        assert len(service._unit_cache) == 0
        with pytest.raises(ValueError, match="unit_cache_size"):
            EmbeddingService(streamed_store, unit_cache_size=-1)

    def test_shrink_then_regrow_never_serves_stale_rows(self, streamed_store):
        # Audit pin: after a shrinking version forces a rebuild, the
        # LSH buckets (whose buffers never shrink) must not leak rows
        # from the larger generation once the store grows again.
        store = EmbeddingStore()
        latest = streamed_store.latest
        small = streamed_store.version(0)
        assert small.num_nodes < latest.num_nodes
        store.publish((list(latest.nodes), latest.matrix), time_step=0)
        service = EmbeddingService(store, backend="lsh", cache_size=0)
        service.refresh()
        store.publish((list(small.nodes), small.matrix), time_step=1)
        service.refresh()  # shrink -> rebuild
        assert service.index.num_rows == small.num_nodes
        mid = streamed_store.version(1)
        store.publish((list(mid.nodes), mid.matrix), time_step=2)
        service.refresh()  # regrow incrementally
        assert service.index.num_rows == mid.num_nodes
        # Golden: bitwise equal to a fresh index that never saw the
        # larger generation (same frozen configuration).
        rebuilt = LSHIndex(
            num_bits=service.index.num_bits, center=service.index.center
        )
        rebuilt.build(small.matrix)
        rebuilt.refresh(mid.matrix)
        for node in list(mid.nodes)[:: max(1, mid.num_nodes // 30)]:
            vec = mid.vector(node)
            a_rows, a_scores = service.index.query(vec, 10)
            b_rows, b_scores = rebuilt.query(vec, 10)
            assert np.array_equal(a_rows, b_rows)
            assert np.array_equal(a_scores, b_scores)
            assert np.all(a_rows < mid.num_nodes)  # no stale generation


class TestSnapshotModePublish:
    def test_glodyne_update_publishes(self, tiny_network):
        store = EmbeddingStore()
        model = GloDyNE(dim=16, seed=0, publish_to=store, **WALK)
        embeddings = model.fit(tiny_network)
        assert store.num_versions == tiny_network.num_snapshots
        for t, record in enumerate(store):
            assert record.time_step == t
            assert record.metadata["source"] == "snapshot"
            assert record.metadata["num_selected"] >= 1
        # Published matrix rows equal the returned embedding map (float32).
        final = store.latest
        for node in list(final.nodes)[:10]:
            assert np.allclose(
                final.vector(node),
                embeddings[-1][node].astype(np.float32),
            )


class TestEmptyStoreGuard:
    """Regression: a service over a version-less store degrades cleanly."""

    def test_refresh_on_empty_store_is_a_noop(self):
        service = EmbeddingService(EmbeddingStore())
        assert service.refresh() == 0
        assert service.indexed_version is None
        # Still a no-op on repeat — and still nothing indexed.
        assert service.refresh() == 0

    def test_queries_on_empty_store_raise_lookup_not_crash(self):
        service = EmbeddingService(EmbeddingStore())
        with pytest.raises(LookupError):
            service.query_knn(0, 3)
        with pytest.raises(LookupError):
            service.query_knn_vector(np.zeros(4), 3)

    def test_first_publish_after_empty_start_serves(self, streamed_store):
        store = EmbeddingStore()
        service = EmbeddingService(store)
        assert service.refresh() == 0
        record = streamed_store.version(0)
        store.publish((list(record.nodes), record.matrix))
        node = record.nodes[0]
        reference = EmbeddingService(store)
        assert service.query_knn(node, 3) == reference.query_knn(node, 3)


class TestQueryByVector:
    """query_knn_vector: the scatter target of sharded serving."""

    def test_matches_rows_query_knn_ranks(self, streamed_store):
        service = EmbeddingService(streamed_store, backend="exact")
        record = streamed_store.latest
        for node in list(record.nodes)[:8]:
            by_vector = service.query_knn_vector(record.vector(node), 5)
            # Same ranking as query_knn once the self-node (rank 0 for
            # its own vector, similarity exactly 1.0) is dropped.
            assert by_vector[0][0] == node
            assert by_vector[1:5] == service.query_knn(node, 4)

    def test_pinned_version_time_travels(self, streamed_store):
        service = EmbeddingService(streamed_store, backend="exact")
        record = streamed_store.version(0)
        node = record.nodes[3]
        pinned = service.query_knn_vector(record.vector(node), 4, version=0)
        assert pinned[0][0] == node
        assert pinned[1:4] == service.query_knn(node, 3, version=0)

    def test_dim_mismatch_and_bad_k_rejected(self, streamed_store):
        service = EmbeddingService(streamed_store)
        with pytest.raises(ValueError, match="dim"):
            service.query_knn_vector(np.zeros(3), 5)
        with pytest.raises(ValueError, match="k must be"):
            service.query_knn_vector(streamed_store.latest.matrix[0], 0)
