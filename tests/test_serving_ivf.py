"""Goldens and properties for the partition-aware IVF index.

The contracts pinned here are the ones the serving tier leans on:

* ``refresh`` is bit-identical to a from-scratch ``build`` (both cell
  modes) — the incremental path may only be *faster*, never different;
* ``query_many`` is bit-identical to looped ``query`` (the service's
  cross-request cache shares entries between the two paths);
* applying a sequence of deltas lands on the same index as applying
  their net effect in one step (insertion-order invariance);
* after arbitrary churn the cells remain an exact partition of the rows
  and every row stays probe-able (hypothesis property).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving import BruteForceIndex, IVFIndex


def _clustered(rng, clusters=8, per=30, dim=16, spread=0.4):
    centers = rng.standard_normal((clusters, dim)) * 3.0
    return np.vstack(
        [c + rng.standard_normal((per, dim)) * spread for c in centers]
    ).astype(np.float32)


def _block_assignment(clusters, per):
    return np.repeat(np.arange(clusters, dtype=np.int64), per)


def _assert_identical_queries(a, b, queries, k=10):
    for q in queries:
        a_rows, a_scores = a.query(q, k)
        b_rows, b_scores = b.query(q, k)
        assert np.array_equal(a_rows, b_rows)
        assert np.array_equal(a_scores, b_scores)


def _assert_identical_state(a, b):
    assert a.num_cells == b.num_cells
    for cell_a, cell_b in zip(a._members, b._members):
        assert np.array_equal(cell_a, cell_b)
    assert np.array_equal(a._centroids, b._centroids)
    assert np.array_equal(a._assign[: a.num_rows], b._assign[: b.num_rows])


class TestValidation:
    def test_param_validation(self):
        with pytest.raises(ValueError):
            IVFIndex(0)
        with pytest.raises(ValueError):
            IVFIndex(nprobe=0)
        with pytest.raises(ValueError):
            IVFIndex(min_recall_fallback=-0.1)
        with pytest.raises(ValueError):
            IVFIndex(min_recall_fallback=1.5)

    def test_query_error_paths(self):
        index = IVFIndex()
        with pytest.raises(RuntimeError):
            index.query(np.ones(4), 1)
        with pytest.raises(RuntimeError):
            index.query_many(np.ones((2, 4)), 1)
        index.build(np.eye(4, dtype=np.float32))
        with pytest.raises(ValueError):
            index.query(np.ones(4), 0)

    def test_refresh_error_paths(self):
        index = IVFIndex()
        index.build(np.eye(4, dtype=np.float32))
        with pytest.raises(ValueError, match="shrank"):
            index.refresh(np.eye(3, dtype=np.float32))
        with pytest.raises(ValueError, match="dimensionality"):
            index.refresh(np.ones((4, 7), dtype=np.float32))

    def test_assignment_validation(self):
        matrix = np.eye(6, dtype=np.float32)
        index = IVFIndex()
        with pytest.raises(ValueError, match="entries for 6 rows"):
            index.build(matrix, assignment=[0, 1])
        with pytest.raises(ValueError, match="non-negative"):
            index.build(matrix, assignment=[0, 1, 2, 3, 4, -1])
        with pytest.raises(ValueError, match="more cells than rows"):
            index.build(matrix, assignment=[0, 1, 2, 3, 4, 10_000_000])


class TestBuild:
    def test_partition_mode_layout(self):
        rng = np.random.default_rng(0)
        matrix = _clustered(rng, clusters=5, per=20)
        assignment = _block_assignment(5, 20)
        index = IVFIndex()
        index.build(matrix, assignment=assignment)
        assert index.accepts_assignment
        assert index.backend_name == "ivf"
        assert index.num_cells == 5
        assert index.cell_sizes == [20] * 5
        assert index.num_rows == 100

    def test_anchor_mode_covers_every_row(self):
        rng = np.random.default_rng(1)
        matrix = _clustered(rng, clusters=4, per=25)
        index = IVFIndex(seed=3)
        index.build(matrix)
        assert index.num_cells == 10  # round(sqrt(100))
        assert sum(index.cell_sizes) == 100

    def test_full_fallback_is_exact(self):
        # min_recall_fallback=1.0 forces full coverage: results must be
        # bit-identical to the brute-force scan (same _top_k kernel).
        rng = np.random.default_rng(2)
        matrix = _clustered(rng)
        truth = BruteForceIndex()
        truth.build(matrix)
        index = IVFIndex(nprobe=1, min_recall_fallback=1.0)
        index.build(matrix, assignment=_block_assignment(8, 30))
        _assert_identical_queries(index, truth, matrix[::17])

    def test_empty_cells_skipped_without_probe_budget(self):
        # Cell ids 1..4 are empty; nprobe=1 must still reach the real
        # cells because empty ones do not consume the probe budget.
        matrix = np.eye(6, dtype=np.float32)
        index = IVFIndex(nprobe=1)
        index.build(matrix, assignment=[0, 0, 0, 5, 5, 5])
        assert index.num_cells == 6
        rows, _ = index.query(matrix[4], 2)
        assert rows.size == 2

    def test_recall_on_clustered_data(self):
        rng = np.random.default_rng(3)
        matrix = _clustered(rng)
        truth = BruteForceIndex()
        truth.build(matrix)
        index = IVFIndex(nprobe=3)
        index.build(matrix, assignment=_block_assignment(8, 30))
        hits = 0
        queries = list(range(0, matrix.shape[0], 7))
        for q in queries:
            approx = set(index.query(matrix[q], 10)[0].tolist())
            exact = set(truth.query(matrix[q], 10)[0].tolist())
            hits += len(approx & exact)
        assert hits / (len(queries) * 10) >= 0.9


class TestRefreshGoldens:
    def test_refresh_identical_to_rebuild_partition_mode(self):
        rng = np.random.default_rng(4)
        matrix = _clustered(rng, clusters=6, per=25, dim=12)
        assignment = _block_assignment(6, 25)
        index = IVFIndex()
        index.build(matrix, assignment=assignment)

        updated = matrix.copy()
        moved = rng.choice(matrix.shape[0], 12, replace=False)
        updated[moved] += rng.standard_normal((12, 12)).astype(np.float32)
        updated = np.vstack(
            [updated, rng.standard_normal((7, 12)).astype(np.float32)]
        )
        new_assign = np.concatenate(
            [assignment, rng.integers(0, 6, 7)]
        ).copy()
        new_assign[moved[:4]] = (new_assign[moved[:4]] + 1) % 6

        touched = index.refresh(updated, tolerance=1e-9, assignment=new_assign)
        assert touched == 12 + 7

        rebuilt = IVFIndex()
        rebuilt.build(updated, assignment=new_assign)
        _assert_identical_state(index, rebuilt)
        _assert_identical_queries(index, rebuilt, updated[::13])

    def test_refresh_identical_to_rebuild_anchor_mode(self):
        rng = np.random.default_rng(5)
        matrix = _clustered(rng, clusters=4, per=20, dim=8)
        index = IVFIndex(seed=7)
        index.build(matrix)

        updated = matrix.copy()
        moved = rng.choice(matrix.shape[0], 9, replace=False)
        updated[moved] += rng.standard_normal((9, 8)).astype(np.float32) * 2.0
        updated = np.vstack(
            [updated, rng.standard_normal((5, 8)).astype(np.float32)]
        )
        index.refresh(updated, tolerance=1e-9)

        # A rebuild of *the same serving index* reuses the frozen anchor
        # configuration (cell count + assignment center), like LSH's
        # frozen hashing center.
        rebuilt = IVFIndex(index.num_cells, seed=7, center=index.center)
        rebuilt.build(updated)
        _assert_identical_state(index, rebuilt)
        _assert_identical_queries(index, rebuilt, updated[::11])

    def test_delta_order_invariance(self):
        # base -> final in one refresh must equal base -> mid -> final:
        # the net index depends only on the final (matrix, assignment),
        # not on how the deltas were chunked or ordered across flushes.
        rng = np.random.default_rng(6)
        matrix = _clustered(rng, clusters=5, per=20, dim=10)
        assignment = _block_assignment(5, 20)

        final = matrix.copy()
        moved = rng.choice(100, 16, replace=False)
        final[moved] += rng.standard_normal((16, 10)).astype(np.float32)
        final = np.vstack(
            [final, rng.standard_normal((6, 10)).astype(np.float32)]
        )
        final_assign = np.concatenate([assignment, rng.integers(0, 5, 6)])
        final_assign = final_assign.copy()
        final_assign[moved[:5]] = (final_assign[moved[:5]] + 2) % 5

        one_shot = IVFIndex()
        one_shot.build(matrix, assignment=assignment)
        one_shot.refresh(final, tolerance=1e-9, assignment=final_assign)

        # The staged path applies the second half of the movers (and the
        # appended rows) first, then the first half — reversed order.
        mid = matrix.copy()
        mid[moved[8:]] = final[moved[8:]]
        mid = np.vstack([mid, final[100:]])
        mid_assign = final_assign.copy()
        mid_assign[moved[:5]] = assignment[moved[:5]]
        staged = IVFIndex()
        staged.build(matrix, assignment=assignment)
        staged.refresh(mid, tolerance=1e-9, assignment=mid_assign)
        staged.refresh(final, tolerance=1e-9, assignment=final_assign)

        _assert_identical_state(one_shot, staged)
        _assert_identical_queries(one_shot, staged, final[::9])

    def test_query_many_identical_to_looped_query(self):
        rng = np.random.default_rng(7)
        matrix = _clustered(rng, clusters=6, per=20)
        index = IVFIndex(nprobe=2)
        index.build(matrix, assignment=_block_assignment(6, 20))
        queries = rng.standard_normal((9, 16))
        batched = index.query_many(queries, 8)
        for q, (rows, scores) in zip(queries, batched):
            l_rows, l_scores = index.query(q, 8)
            assert np.array_equal(rows, l_rows)
            assert np.array_equal(scores, l_scores)

    def test_noop_refresh(self):
        rng = np.random.default_rng(8)
        matrix = _clustered(rng, clusters=3, per=15, dim=8)
        assignment = _block_assignment(3, 15)
        index = IVFIndex()
        index.build(matrix, assignment=assignment)
        assert index.refresh(matrix + 1e-9, tolerance=1e-6,
                             assignment=assignment) == 0
        assert index.last_refresh_rows == 0

    def test_refresh_without_assignment_homes_new_rows(self):
        # The incremental-only rule: a flush with no partition metadata
        # keeps old rows in their cells and sends brand-new rows to the
        # nearest committed centroid.
        rng = np.random.default_rng(9)
        matrix = _clustered(rng, clusters=4, per=15, dim=8)
        index = IVFIndex()
        index.build(matrix, assignment=_block_assignment(4, 15))
        grown = np.vstack(
            [matrix, matrix[3:5] + 1e-3]  # near cluster 0 members
        )
        assert index.refresh(grown, tolerance=1e-9) == 2
        assert index.num_rows == 62
        assert index._assign[60] == 0
        assert index._assign[61] == 0
        assert sum(index.cell_sizes) == 62

    def test_refresh_can_shrink_cell_count(self):
        matrix = np.eye(6, dtype=np.float32)
        index = IVFIndex()
        index.build(matrix, assignment=[0, 0, 1, 1, 2, 2])
        assert index.num_cells == 3
        index.refresh(matrix, assignment=[0, 0, 1, 1, 1, 0])
        assert index.num_cells == 2
        rebuilt = IVFIndex()
        rebuilt.build(matrix, assignment=[0, 0, 1, 1, 1, 0])
        _assert_identical_state(index, rebuilt)

    def test_refresh_on_empty_index_builds(self):
        index = IVFIndex()
        matrix = np.eye(5, dtype=np.float32)
        assert index.refresh(matrix, assignment=[0, 0, 1, 1, 1]) == 5
        assert index.num_cells == 2

    def test_fresh_like_preserves_knobs(self):
        index = IVFIndex(12, nprobe=3, min_recall_fallback=0.25, seed=5)
        clone = index.fresh_like()
        assert clone.num_rows == 0
        assert clone.num_cells == 12
        assert clone.nprobe == 3
        assert clone.min_recall_fallback == 0.25
        assert clone.seed == 5
        auto = IVFIndex().fresh_like()
        assert auto.auto_sized


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_cells_partition_rows_after_arbitrary_churn(data):
    """After any churn sequence the cells exactly partition the rows.

    Every row must sit in exactly one member list (disjoint cover) and
    remain probe-able: a full-coverage query returns all rows.
    """
    seed = data.draw(st.integers(0, 2**16), label="seed")
    rng = np.random.default_rng(seed)
    dim = 6
    n = data.draw(st.integers(3, 20), label="initial_rows")
    use_assignment = data.draw(st.booleans(), label="partition_mode")
    matrix = rng.standard_normal((n, dim)).astype(np.float32)

    index = IVFIndex(seed=0)
    if use_assignment:
        cells = data.draw(st.integers(1, 5), label="cells")
        index.build(matrix, assignment=rng.integers(0, cells, n))
    else:
        index.build(matrix)

    for round_id in range(data.draw(st.integers(1, 4), label="rounds")):
        grow = data.draw(st.integers(0, 6), label=f"grow{round_id}")
        updated = np.vstack(
            [matrix, rng.standard_normal((grow, dim)).astype(np.float32)]
        )
        perturb = rng.random(n := updated.shape[0]) < 0.3
        updated[perturb] += (
            rng.standard_normal((int(perturb.sum()), dim)).astype(np.float32)
        )
        if use_assignment and data.draw(
            st.booleans(), label=f"reassign{round_id}"
        ):
            cells = data.draw(st.integers(1, 5), label=f"cells{round_id}")
            index.refresh(updated, assignment=rng.integers(0, cells, n))
        else:
            index.refresh(updated)
        matrix = updated

    members = [cell.tolist() for cell in index._members]
    flat = sorted(row for cell in members for row in cell)
    assert flat == list(range(matrix.shape[0]))  # disjoint exact cover
    index.min_recall_fallback = 1.0  # full-coverage probe
    rows, _ = index.query(rng.standard_normal(dim), k=matrix.shape[0])
    assert sorted(rows.tolist()) == list(range(matrix.shape[0]))
