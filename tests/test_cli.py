"""Tests for the command-line interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main


COMMON = ["--scale", "0.25", "--snapshots", "4", "--dim", "8"]


class TestDatasets:
    def test_lists_all(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("as733-sim", "elec-sim", "cora-sim"):
            assert name in out


class TestEmbed:
    def test_embed_runs(self, capsys):
        assert main(["embed", "--dataset", "elec-sim", *COMMON]) == 0
        out = capsys.readouterr().out
        assert "embedded elec-sim" in out

    def test_embed_incremental_partition_flag(self, capsys, monkeypatch):
        """--incremental-partition reaches the GloDyNE config."""
        from repro.core.glodyne import GloDyNE

        built = {}
        original = GloDyNE.__init__

        def spy(self, *args, **kwargs):
            original(self, *args, **kwargs)
            built["incremental"] = self.config.incremental_partition

        monkeypatch.setattr(GloDyNE, "__init__", spy)
        code = main(
            ["embed", "--dataset", "elec-sim", "--incremental-partition",
             *COMMON]
        )
        assert code == 0
        assert built["incremental"] is True
        assert "embedded elec-sim" in capsys.readouterr().out

    def test_embed_writes_npz(self, tmp_path, capsys):
        out_file = tmp_path / "emb.npz"
        code = main(
            ["embed", "--dataset", "elec-sim", *COMMON, "--out", str(out_file)]
        )
        assert code == 0
        data = np.load(out_file)
        assert data["embeddings"].shape[1] == 8
        assert data["nodes"].shape[0] == data["embeddings"].shape[0]

    def test_na_method_exits_nonzero(self, capsys):
        # DynLINE on the deletion dataset must surface the paper's n/a.
        code = main(
            ["embed", "--dataset", "as733-sim", "--method", "dynline", *COMMON]
        )
        assert code == 1
        assert "n/a" in capsys.readouterr().err

    def test_unknown_method_rejected(self):
        with pytest.raises(SystemExit):
            main(["embed", "--method", "fancy-new-method", *COMMON])


class TestEvaluate:
    def test_gr_and_lp(self, capsys):
        code = main(
            ["evaluate", "--dataset", "elec-sim", "--task", "gr,lp", *COMMON]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "GR MeanP@10" in out
        assert "LP AUC" in out

    def test_nc_on_labeled(self, capsys):
        code = main(
            ["evaluate", "--dataset", "cora-sim", "--task", "nc", *COMMON]
        )
        assert code == 0
        assert "NC F1 @ 0.5" in capsys.readouterr().out

    def test_nc_on_unlabeled_reports(self, capsys):
        code = main(
            ["evaluate", "--dataset", "elec-sim", "--task", "nc", *COMMON]
        )
        assert code == 0
        assert "no labels" in capsys.readouterr().out


class TestStream:
    def test_stream_runs_with_event_trigger(self, capsys):
        code = main(
            [
                "stream", "--dataset", "elec-sim", "--scale", "0.25",
                "--snapshots", "4", "--dim", "8", "--flush-events", "100",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "streamed elec-sim" in out
        assert "events/sec" in out

    def test_stream_manual_flush_only(self, capsys):
        # --flush-events 0 disables the trigger: one final manual flush.
        code = main(
            [
                "stream", "--dataset", "elec-sim", "--scale", "0.25",
                "--snapshots", "4", "--dim", "8", "--flush-events", "0",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "1 flushes" in out
        assert "manual" in out

    def test_stream_incremental_partition_flag(self, capsys):
        code = main(
            [
                "stream", "--dataset", "elec-sim", "--scale", "0.25",
                "--snapshots", "4", "--dim", "8", "--flush-events", "100",
                "--incremental-partition",
            ]
        )
        assert code == 0
        assert "streamed elec-sim" in capsys.readouterr().out


class TestAnalyze:
    def test_analyze_runs(self, capsys):
        code = main(
            [
                "analyze", "--dataset", "fbw-sim", "--scale", "0.25",
                "--snapshots", "6", "--cell-size", "10",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cells" in out


class TestServeAndQuery:
    def _serve(self, tmp_path, capsys):
        store_path = tmp_path / "store.npz"
        code = main(
            [
                "serve", "--dataset", "elec-sim", "--scale", "0.25",
                "--snapshots", "4", "--dim", "8", "--flush-events", "100",
                "--store", str(store_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "wrote versioned store" in out
        assert store_path.exists()
        return store_path

    def test_serve_then_query_knn(self, tmp_path, capsys):
        store_path = self._serve(tmp_path, capsys)
        code = main(
            ["query", "--store", str(store_path), "--node", "0", "--k", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "top-3 similar to 0" in out

    def test_query_edge_scoring(self, tmp_path, capsys):
        store_path = self._serve(tmp_path, capsys)
        code = main(
            [
                "query", "--store", str(store_path), "--edge", "0", "1",
                "--metric", "dot", "--backend", "exact",
            ]
        )
        assert code == 0
        assert "[dot]" in capsys.readouterr().out

    def test_query_pinned_version(self, tmp_path, capsys):
        store_path = self._serve(tmp_path, capsys)
        code = main(
            [
                "query", "--store", str(store_path), "--node", "0",
                "--version", "0",
            ]
        )
        assert code == 0
        assert "querying version 0" in capsys.readouterr().out

    def test_query_unknown_node_fails(self, tmp_path, capsys):
        store_path = self._serve(tmp_path, capsys)
        code = main(
            ["query", "--store", str(store_path), "--node", "999999"]
        )
        assert code == 1
        assert "not in version" in capsys.readouterr().err

    def test_query_without_work_exits_2(self, tmp_path, capsys):
        store_path = self._serve(tmp_path, capsys)
        assert main(["query", "--store", str(store_path)]) == 2

    def test_serve_ivf_smoke_and_query_index_alias(self, tmp_path, capsys):
        # `serve --incremental-partition --index ivf` publishes Step 1
        # cells and smoke-queries the IVF index before writing the store;
        # `query --index ivf` (alias of --backend) serves from it.
        store_path = tmp_path / "store.npz"
        code = main(
            [
                "serve", "--dataset", "elec-sim", "--scale", "0.25",
                "--snapshots", "4", "--dim", "8", "--flush-events", "100",
                "--incremental-partition", "--index", "ivf",
                "--store", str(store_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "smoke query [ivf]" in out
        code = main(
            [
                "query", "--store", str(store_path), "--node", "0",
                "--k", "3", "--index", "ivf",
            ]
        )
        assert code == 0
        assert "top-3 similar to 0" in capsys.readouterr().out

    def test_serve_tiered_compact_quantized(self, tmp_path, capsys):
        # --store-dir spills cold versions to disk, --compact GCs before
        # saving, --quantize int8 runs the smoke query through the int8
        # scan path; query then loads the compacted store quantized.
        store_path = tmp_path / "store.npz"
        tier_dir = tmp_path / "tier"
        code = main(
            [
                "serve", "--dataset", "elec-sim", "--scale", "0.25",
                "--snapshots", "4", "--dim", "8", "--flush-events", "40",
                "--store", str(store_path), "--store-dir", str(tier_dir),
                "--compact", "2", "--index", "exact", "--quantize", "int8",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "smoke query [exact]" in out
        assert "compacted store" in out
        assert any(tier_dir.glob("*.npy"))  # cold spill files exist
        code = main(
            [
                "query", "--store", str(store_path), "--node", "0",
                "--k", "3", "--backend", "exact", "--quantize", "int8",
            ]
        )
        assert code == 0
        assert "top-3 similar to 0" in capsys.readouterr().out

    def test_bad_compact_spec_exits(self, tmp_path, capsys):
        store_path = tmp_path / "store.npz"
        with pytest.raises(SystemExit):
            main(
                [
                    "serve", "--dataset", "elec-sim", "--scale", "0.25",
                    "--snapshots", "4", "--dim", "8",
                    "--store", str(store_path), "--compact", "zero",
                ]
            )

    def test_quantize_needs_exact_or_ivf(self, tmp_path, capsys):
        store_path = self._serve(tmp_path, capsys)
        with pytest.raises(SystemExit, match="backend"):
            main(
                [
                    "query", "--store", str(store_path), "--node", "0",
                    "--backend", "lsh", "--quantize", "int8",
                ]
            )
