"""Tests for dataset summaries and the sweep utility."""

from __future__ import annotations

import pytest

from repro.analysis import summarize_network
from repro.core import GloDyNE
from repro.experiments import run_sweep
from repro.graph import DynamicNetwork, Graph
from repro.tasks import graph_reconstruction_over_time


class TestSummarize:
    def test_counts(self):
        g0 = Graph.from_edges([(0, 1), (1, 2)])
        g1 = Graph.from_edges([(0, 1), (1, 2), (2, 3)])
        network = DynamicNetwork([g0, g1], labels={0: "a", 1: "b"})
        summary = summarize_network(network)
        assert summary.num_snapshots == 2
        assert summary.initial_nodes == 3
        assert summary.final_nodes == 4
        assert summary.total_edges == 2 + 3
        assert summary.has_labels
        assert summary.num_classes == 2
        assert not summary.has_node_deletions
        assert summary.mean_changed_edges_per_step == 1.0

    def test_deletions_flagged(self, churn_network):
        summary = summarize_network(churn_network)
        assert summary.has_node_deletions
        assert summary.has_edge_deletions

    def test_as_row_length_matches_headers(self, tiny_network):
        from repro.analysis import DATASET_TABLE_HEADERS

        summary = summarize_network(tiny_network)
        assert len(summary.as_row()) == len(DATASET_TABLE_HEADERS)


class TestSweep:
    def _factory(self, seed: int, alpha: float) -> GloDyNE:
        return GloDyNE(
            dim=8, alpha=alpha, num_walks=2, walk_length=8, window_size=2,
            epochs=1, seed=seed,
        )

    def _metric(self, run, network) -> float:
        return graph_reconstruction_over_time(run.embeddings, network, [5])[5]

    def test_grid_coverage(self, tiny_network):
        result = run_sweep(
            self._factory,
            tiny_network,
            grid={"alpha": [0.1, 0.5]},
            seeds=[0, 1],
            metric=self._metric,
        )
        assert len(result.points) == 2
        for point in result.points:
            assert point.scores.shape == (2,)
            assert point.seconds.shape == (2,)

    def test_by_param_and_best(self, tiny_network):
        result = run_sweep(
            self._factory,
            tiny_network,
            grid={"alpha": [0.1, 1.0]},
            seeds=[0],
            metric=self._metric,
        )
        by_alpha = result.by_param("alpha")
        assert set(by_alpha) == {0.1, 1.0}
        assert result.best().params["alpha"] in (0.1, 1.0)

    def test_empty_grid_rejected(self, tiny_network):
        with pytest.raises(ValueError):
            run_sweep(self._factory, tiny_network, {}, [0], self._metric)

    def test_duplicate_param_values_rejected_in_by_param(self, tiny_network):
        result = run_sweep(
            self._factory,
            tiny_network,
            grid={"alpha": [0.2, 0.2]},
            seeds=[0],
            metric=self._metric,
        )
        with pytest.raises(ValueError):
            result.by_param("alpha")
