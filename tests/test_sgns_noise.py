"""Property tests for the negative-sampling machinery.

The paper draws negatives "from a unigram distribution P_{D^t}" raised to
the word2vec 3/4 power; these tests pin that contract empirically: the
alias table's sampling frequencies must converge to ``counts ** 0.75``
(normalised) within a statistical tolerance, for any corpus count vector
— and the degenerate corpora (all-zero counts, empty input) must fail
loudly rather than silently mis-sample.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sgns import build_noise_table
from repro.walks.alias import AliasTable


def _empirical_frequencies(table: AliasTable, draws: int, seed: int):
    rng = np.random.default_rng(seed)
    samples = table.sample(rng, size=draws)
    return np.bincount(samples, minlength=table.n) / draws


class TestNoiseTableConvergence:
    @settings(max_examples=25, deadline=None)
    @given(
        counts=st.lists(
            st.integers(min_value=0, max_value=500), min_size=2, max_size=24
        ).filter(lambda c: sum(1 for x in c if x > 0) >= 2),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_frequencies_converge_to_unigram_power(self, counts, seed):
        counts = np.asarray(counts, dtype=np.int64)
        table, present = build_noise_table(counts, power=0.75)

        # Only non-zero-count nodes participate, in ascending index order.
        assert np.array_equal(present, np.flatnonzero(counts > 0))
        assert table.n == present.size

        expected = counts[present].astype(np.float64) ** 0.75
        expected /= expected.sum()
        draws = 60_000
        observed = _empirical_frequencies(table, draws, seed)
        # Normal-approximation bound: ~5 sigma per cell plus a small
        # absolute floor keeps the test deterministic-in-practice while
        # still catching any systematic distortion of the distribution.
        sigma = np.sqrt(expected * (1.0 - expected) / draws)
        assert np.all(np.abs(observed - expected) <= 5.0 * sigma + 1e-3)

    @settings(max_examples=15, deadline=None)
    @given(power=st.sampled_from([0.25, 0.5, 0.75, 1.0]))
    def test_power_parameter_reshapes_distribution(self, power):
        counts = np.array([1, 16, 256], dtype=np.int64)
        table, present = build_noise_table(counts, power=power)
        expected = counts.astype(np.float64) ** power
        expected /= expected.sum()
        observed = _empirical_frequencies(table, 80_000, seed=0)
        assert np.allclose(observed, expected, atol=0.01)

    def test_unigram_heavy_tail_dampened(self):
        # The whole point of the 3/4 power: frequent nodes are sampled
        # *less* than proportionally, rare nodes more.
        counts = np.array([1, 10_000], dtype=np.int64)
        table, _ = build_noise_table(counts, power=0.75)
        observed = _empirical_frequencies(table, 50_000, seed=1)
        raw_share = 10_000 / 10_001
        assert observed[1] < raw_share
        assert observed[0] > 1 / 10_001


class TestErrorPaths:
    def test_zero_count_corpus_rejected(self):
        with pytest.raises(ValueError, match="no occurrences"):
            build_noise_table(np.zeros(8, dtype=np.int64))

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError, match="no occurrences"):
            build_noise_table(np.empty(0, dtype=np.int64))

    def test_alias_table_input_validation(self):
        with pytest.raises(ValueError):
            AliasTable(np.empty(0))
        with pytest.raises(ValueError):
            AliasTable(np.array([[1.0, 2.0]]))  # not 1-D
        with pytest.raises(ValueError):
            AliasTable(np.array([1.0, -0.5]))
        with pytest.raises(ValueError):
            AliasTable(np.array([np.inf, 1.0]))
        with pytest.raises(ValueError):
            AliasTable(np.array([np.nan]))
        with pytest.raises(ValueError):
            AliasTable(np.zeros(4))  # sums to zero

    def test_single_survivor_always_sampled(self):
        counts = np.array([0, 7, 0], dtype=np.int64)
        table, present = build_noise_table(counts)
        assert np.array_equal(present, [1])
        rng = np.random.default_rng(0)
        assert np.all(table.sample(rng, size=256) == 0)
