"""SGNS kernel backends: compiled vs canonical-numpy training throughput.

Measures the claim behind ``repro.sgns.kernels``: the numba backend
reproduces the python backend's update stream *bit for bit* (asserted
in-bench on the final weight matrices) while training substantially
faster once jit warm-up is paid. The >= 3x speedup gate is asserted
only where it is meaningful — numba importable and at least 2 CPUs —
and recorded as a caveat otherwise, so a numba-free container's honest
"python only" run is never mistaken for a regression.

Without numba the bench still exercises the differential harness: the
pure-interpreter loop twin ("interpreted" backend) is run on a reduced
slice of the corpus and checked bit-identical against the numpy path.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_train_kernel.py --tiny
    PYTHONPATH=src python benchmarks/run_all.py --only train_kernel --json out/
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from bench_parallel_walks import walk_benchmark_graph
from common import write_result
from repro.bench.telemetry import effective_cpu_count
from repro.experiments import render_table
from repro.graph.csr import CSRAdjacency
from repro.parallel import generate_walks
from repro.sgns import numba_available
from repro.sgns.model import SGNSModel
from repro.sgns.trainer import TrainConfig, train_on_corpus
from repro.walks.corpus import build_pair_corpus

SPEEDUP_GATE = 3.0

#: Fraction of the corpus fed to the pure-interpreter loop twin when
#: numba is absent — full size would dominate the bench runtime.
INTERPRETED_SLICE = 2048


def _train_round(
    corpus, num_nodes: int, dim: int, epochs: int, backend: str
) -> tuple[float, np.ndarray]:
    """Train a fresh, identically-seeded model; return (seconds, w_in)."""
    model = SGNSModel(dim, rng=np.random.default_rng(7))
    nodes = np.arange(num_nodes)
    model.ensure_nodes(nodes)
    row_of = model.vocab.indices(nodes)
    config = TrainConfig(epochs=epochs, batch_size=1024, backend=backend)
    began = time.perf_counter()
    train_on_corpus(
        model, corpus, row_of, np.random.default_rng(11), config=config
    )
    elapsed = time.perf_counter() - began
    return elapsed, model.w_in.copy()


def run_train_kernel(
    num_nodes: int = 2000,
    num_walks: int = 5,
    walk_length: int = 40,
    window_size: int = 5,
    dim: int = 64,
    epochs: int = 1,
) -> tuple[str, dict]:
    """Time one training round per backend and assert bit-identity."""
    graph = walk_benchmark_graph(num_nodes, seed=9)
    csr = CSRAdjacency.from_graph(graph)
    walks = generate_walks(
        csr, np.arange(csr.num_nodes), num_walks, walk_length,
        np.random.default_rng(4),
    )
    corpus = build_pair_corpus(walks, window_size, csr.num_nodes)

    has_numba = numba_available()
    _train_round(corpus, csr.num_nodes, dim, epochs, "python")  # warm caches
    python_s, python_w = _train_round(
        corpus, csr.num_nodes, dim, epochs, "python"
    )

    rows = [
        ["python (numpy)", f"{python_s:.3f}s",
         f"{epochs * corpus.num_pairs / max(python_s, 1e-9):,.0f}"],
    ]
    stats = {
        "pairs": corpus.num_pairs,
        "dim": dim,
        "epochs": epochs,
        "cpu_count": effective_cpu_count() or 1,
        "numba_available": has_numba,
        "python_s": python_s,
        "python_pairs_per_sec":
            epochs * corpus.num_pairs / max(python_s, 1e-9),
        "numba_s": None,
        "numba_pairs_per_sec": None,
        "speedup": None,
    }

    if has_numba:
        # First call pays jit compilation; time the second.
        _train_round(corpus, csr.num_nodes, dim, epochs, "numba")
        numba_s, numba_w = _train_round(
            corpus, csr.num_nodes, dim, epochs, "numba"
        )
        assert np.array_equal(python_w, numba_w), (
            "numba backend diverged bit-wise from the python backend"
        )
        stats["numba_s"] = numba_s
        stats["numba_pairs_per_sec"] = (
            epochs * corpus.num_pairs / max(numba_s, 1e-9)
        )
        stats["speedup"] = python_s / max(numba_s, 1e-9)
        rows.append(
            ["numba (jit, warm)", f"{numba_s:.3f}s",
             f"{stats['numba_pairs_per_sec']:,.0f}"]
        )
        rows.append(["speedup", f"{stats['speedup']:.2f}x",
                     "bit-identical weights"])
    else:
        # No compiler in this environment: keep the differential claim
        # honest with the interpreter twin on a corpus slice.
        sliced = build_pair_corpus(
            walks[: max(1, INTERPRETED_SLICE // walk_length)],
            window_size, csr.num_nodes,
        )
        _, ref_w = _train_round(sliced, csr.num_nodes, dim, 1, "python")
        _, twin_w = _train_round(sliced, csr.num_nodes, dim, 1, "interpreted")
        assert np.array_equal(ref_w, twin_w), (
            "interpreter loop twin diverged bit-wise from the python backend"
        )
        rows.append(["numba (jit)", "unavailable",
                     "interpreter twin verified bit-identical"])

    text = render_table(
        ["backend", "seconds", "pairs/sec"],
        rows,
        title=(
            f"SGNS train round: {corpus.num_pairs} pairs, d={dim}, "
            f"{epochs} epoch(s)"
        ),
    )
    return text, stats


def _check_acceptance(stats: dict, tiny: bool) -> list[str]:
    """Assert the speedup gate where meaningful; caveat otherwise."""
    caveats: list[str] = []
    if not stats["numba_available"]:
        caveats.append(
            "numba not installed: python backend timed alone; the jit "
            "speedup gate cannot run here (differential check used the "
            "interpreter twin instead)"
        )
        return caveats
    if tiny:
        caveats.append(
            "tiny profile: jit warm-up dominates; speedup recorded but "
            "not gated"
        )
        return caveats
    if stats["cpu_count"] < 2:
        caveats.append(
            f"single-core host (cpu_count={stats['cpu_count']}): speedup "
            f"{stats['speedup']:.2f}x recorded but the {SPEEDUP_GATE}x "
            "gate is not asserted"
        )
        return caveats
    assert stats["speedup"] >= SPEEDUP_GATE, stats
    return caveats


# ----------------------------------------------------------------------
# pytest entry point
# ----------------------------------------------------------------------
def test_train_kernel_backends(benchmark):
    text, stats = benchmark.pedantic(run_train_kernel, rounds=1, iterations=1)
    print("\n" + text)
    write_result("train_kernel.txt", text)
    # Bit-identity is asserted inside run_train_kernel on every run; the
    # speedup gate applies only where the jit can actually win.
    for caveat in _check_acceptance(stats, tiny=False):
        print(f"caveat: {caveat}")


# ----------------------------------------------------------------------
# standalone entry
# ----------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tiny", action="store_true",
        help="CI smoke profile: seconds; identity asserted, gate skipped",
    )
    args = parser.parse_args(argv)

    if args.tiny:
        text, stats = run_train_kernel(
            num_nodes=300, num_walks=2, walk_length=12, window_size=3,
            dim=16,
        )
    else:
        text, stats = run_train_kernel()
    print(text)
    for caveat in _check_acceptance(stats, tiny=args.tiny):
        print(f"caveat: {caveat}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())


# ----------------------------------------------------------------------
# orchestrator entry
# ----------------------------------------------------------------------
from repro.bench import register_bench  # noqa: E402


@register_bench("train_kernel", tags=("perf", "sgns", "kernels"))
def run_bench(tiny: bool) -> dict:
    if tiny:
        text, stats = run_train_kernel(
            num_nodes=300, num_walks=2, walk_length=12, window_size=3,
            dim=16,
        )
    else:
        text, stats = run_train_kernel()
    caveats = _check_acceptance(stats, tiny=tiny)
    return {
        "metrics": dict(stats),
        "config": {
            "speedup_gate": SPEEDUP_GATE,
            "gate_asserted": (
                not tiny
                and stats["numba_available"]
                and stats["cpu_count"] >= 2
            ),
        },
        "summary": text,
        "caveats": caveats,
    }
