"""Figure 3 — SGNS-static vs SGNS-retrain per-step GR (necessity of DNE).

Paper shape to reproduce: SGNS-retrain holds a high MeanP@k at every time
step, while SGNS-static decays after t = 0 — suddenly on the churny
dataset (AS733: big snapshot-to-snapshot variation), gradually on the
slow-drift one (Elec).
"""

from __future__ import annotations

import numpy as np

from common import SEEDS, bench_network, pick, write_result
from repro.core import SGNSRetrain, SGNSStatic
from repro.experiments import render_table
from repro.tasks import per_step_precision

DATASETS = pick(["as733-sim", "elec-sim"], ["elec-sim"])
K_EVAL = 10
VARIANT_KWARGS = pick(
    dict(dim=32, num_walks=5, walk_length=20, window_size=5, epochs=2),
    dict(dim=16, num_walks=3, walk_length=12, window_size=3, epochs=1),
)


def per_step_curve(method_cls, dataset: str) -> np.ndarray:
    network = bench_network(dataset)
    curves = []
    for seed in SEEDS:
        method = method_cls(**VARIANT_KWARGS, seed=seed)
        embeddings = method.fit(network)
        curves.append(per_step_precision(embeddings, network, K_EVAL))
    return np.mean(np.asarray(curves), axis=0)


def build_fig3() -> tuple[str, dict]:
    sections = []
    summary = {}
    for dataset in DATASETS:
        static_curve = per_step_curve(SGNSStatic, dataset)
        retrain_curve = per_step_curve(SGNSRetrain, dataset)
        rows = [
            [str(t), f"{static_curve[t] * 100:.2f}", f"{retrain_curve[t] * 100:.2f}"]
            for t in range(len(static_curve))
        ]
        sections.append(
            render_table(
                ["t", "SGNS-static", "SGNS-retrain"],
                rows,
                title=f"Figure 3: MeanP@{K_EVAL} (%) per step on {dataset}",
            )
        )
        summary[dataset] = {"static": static_curve, "retrain": retrain_curve}
    return "\n\n".join(sections), summary


def test_fig3_static_vs_retrain(benchmark):
    text, summary = benchmark.pedantic(build_fig3, rounds=1, iterations=1)
    print("\n" + text)
    write_result("fig3_static_vs_retrain.txt", text)

    for dataset, curves in summary.items():
        static, retrain = curves["static"], curves["retrain"]
        # Paper shape 1: retrain dominates static after t = 0.
        assert np.mean(retrain[1:]) > np.mean(static[1:])
        # Paper shape 2: static decays — its late average falls below its
        # t=0 value.
        assert np.mean(static[-3:]) < static[0]
        # Paper shape 3: retrain stays roughly level (no such decay).
        assert np.mean(retrain[-3:]) > 0.75 * retrain[0]


# ----------------------------------------------------------------------
# orchestrator entry
# ----------------------------------------------------------------------
from repro.bench import register_bench  # noqa: E402


@register_bench("fig3_static_vs_retrain", tags=("paper", "variants"))
def run_bench(tiny: bool) -> dict:
    text, summary = build_fig3()
    metrics = {}
    for dataset, curves in summary.items():
        slug = dataset.replace("-", "_")
        metrics[f"{slug}_static_mean"] = float(np.mean(curves["static"][1:]))
        metrics[f"{slug}_retrain_mean"] = float(np.mean(curves["retrain"][1:]))
    return {
        "metrics": metrics,
        "config": {"datasets": DATASETS, "k": K_EVAL, **VARIANT_KWARGS},
        "summary": text,
    }
