"""Streaming-path throughput: events/sec, flush latency, and hot-path wins.

Three claims measured here, matching the streaming subsystem's design:

1. **Engine throughput** — events/sec through ``StreamingGloDyNE`` under
   an event-count flush policy, with per-flush latency stats (the
   serving-style observability snapshot mode cannot give).
2. **Incremental CSR vs rebuild** — applying a small delta and freezing
   via ``IncrementalCSR.to_csr`` must beat mutating a ``Graph`` and
   re-freezing with ``CSRAdjacency.from_graph`` (a per-edge Python loop
   over the *whole* graph) once deltas are small relative to the graph.
3. **Vectorised weighted stepping** — the global-binary-search
   ``_step_weighted`` must beat the per-walker ``_step_weighted_loop``.

Run standalone for a quick smoke (CI uses this)::

    PYTHONPATH=src python benchmarks/bench_streaming_throughput.py --tiny
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from common import write_result
from repro import GloDyNE, StreamingGloDyNE
from repro.datasets import interaction_stream
from repro.experiments import render_table
from repro.graph import EdgeEvent, Graph
from repro.graph.csr import CSRAdjacency
from repro.streaming import FlushPolicy, IncrementalGraphState
from repro.walks.random_walk import (
    TRUNCATED,
    _step_weighted,
    _step_weighted_loop,
)

WALK_KWARGS = dict(
    dim=16, alpha=0.1, num_walks=3, walk_length=12, window_size=3, epochs=1
)


# ----------------------------------------------------------------------
# 1. engine throughput + flush latency
# ----------------------------------------------------------------------
def run_engine_throughput(
    num_nodes: int = 400, num_steps: int = 12, events_per_step: int = 300,
    flush_every: int = 500,
) -> tuple[str, dict]:
    events = interaction_stream(
        num_nodes=num_nodes,
        num_steps=num_steps,
        num_communities=6,
        events_per_step=events_per_step,
        seed=42,
    )
    engine = StreamingGloDyNE(
        seed=0, policy=FlushPolicy(max_events=flush_every), **WALK_KWARGS
    )
    started = time.perf_counter()
    results = engine.ingest_many(events)
    if engine.pending_events:
        results.append(engine.flush())
    elapsed = time.perf_counter() - started

    latencies = np.array([r.seconds for r in results])
    ingest_seconds = elapsed - latencies.sum()
    stats = {
        "events": len(events),
        "events_per_sec": len(events) / elapsed,
        "ingest_events_per_sec": len(events) / max(ingest_seconds, 1e-9),
        "flushes": len(results),
        "flush_mean_s": float(latencies.mean()),
        "flush_max_s": float(latencies.max()),
        "final_nodes": results[-1].num_nodes,
        "final_edges": results[-1].num_edges,
    }
    rows = [
        ["events ingested", str(stats["events"])],
        ["flushes", str(stats["flushes"])],
        ["end-to-end events/sec", f"{stats['events_per_sec']:,.0f}"],
        ["ingest-only events/sec", f"{stats['ingest_events_per_sec']:,.0f}"],
        ["flush latency mean", f"{stats['flush_mean_s'] * 1e3:.1f}ms"],
        ["flush latency max", f"{stats['flush_max_s'] * 1e3:.1f}ms"],
        ["final graph", f"{stats['final_nodes']}n / {stats['final_edges']}e"],
    ]
    text = render_table(
        ["metric", "value"],
        rows,
        title=f"streaming engine throughput (flush every {flush_every} events)",
    )
    return text, stats


# ----------------------------------------------------------------------
# 2. incremental CSR maintenance vs full rebuild
# ----------------------------------------------------------------------
def run_csr_maintenance(
    num_nodes: int = 2000, edges_per_node: int = 4, num_updates: int = 20,
    delta_per_update: int = 10,
) -> tuple[str, dict]:
    rng = np.random.default_rng(7)
    base_events = []
    for u in range(1, num_nodes):
        for v in rng.choice(u, size=min(u, edges_per_node), replace=False):
            base_events.append(EdgeEvent(u, int(v), 0.0))

    state = IncrementalGraphState()
    graph = Graph()
    for event in base_events:
        state.apply(event)
        graph.add_edge(event.u, event.v)

    deltas = []
    for step in range(num_updates):
        batch = []
        for _ in range(delta_per_update):
            u, v = rng.integers(0, num_nodes, size=2)
            if u != v:
                batch.append(EdgeEvent(int(u), int(v), float(step + 1)))
        deltas.append(batch)

    started = time.perf_counter()
    for batch in deltas:
        state.apply_many(batch)
        state.csr.to_csr()
    incremental_s = time.perf_counter() - started

    started = time.perf_counter()
    for batch in deltas:
        for event in batch:
            graph.add_edge(event.u, event.v)
        CSRAdjacency.from_graph(graph)
    rebuild_s = time.perf_counter() - started

    stats = {
        "edges": graph.number_of_edges(),
        "updates": num_updates,
        "delta": delta_per_update,
        "incremental_s": incremental_s,
        "rebuild_s": rebuild_s,
        "speedup": rebuild_s / max(incremental_s, 1e-9),
    }
    text = render_table(
        ["path", "seconds", "per update"],
        [
            [
                "IncrementalCSR.to_csr",
                f"{incremental_s:.4f}s",
                f"{incremental_s / num_updates * 1e3:.2f}ms",
            ],
            [
                "CSRAdjacency.from_graph",
                f"{rebuild_s:.4f}s",
                f"{rebuild_s / num_updates * 1e3:.2f}ms",
            ],
            ["speedup", f"{stats['speedup']:.1f}x", ""],
        ],
        title=(
            f"CSR maintenance: {num_updates} updates of {delta_per_update} "
            f"events on ~{stats['edges']} edges"
        ),
    )
    return text, stats


# ----------------------------------------------------------------------
# 3. vectorised vs looped weighted stepping
# ----------------------------------------------------------------------
def run_weighted_stepping(
    num_nodes: int = 600, edges_per_node: int = 6, num_walkers: int = 400,
    walk_length: int = 40,
) -> tuple[str, dict]:
    rng = np.random.default_rng(3)
    graph = Graph()
    for u in range(1, num_nodes):
        for v in rng.choice(u, size=min(u, edges_per_node), replace=False):
            graph.add_edge(u, int(v), float(rng.uniform(0.5, 4.0)))
    csr = CSRAdjacency.from_graph(graph)
    assert not csr.is_uniform
    starts = rng.integers(0, csr.num_nodes, size=num_walkers)

    def run(stepper) -> float:
        walks = np.full((num_walkers, walk_length), TRUNCATED, dtype=np.int64)
        walks[:, 0] = starts
        began = time.perf_counter()
        stepper(csr, walks, np.random.default_rng(0))
        return time.perf_counter() - began

    # Warm both steppers' cumulative-weight caches outside timing so the
    # comparison measures stepping, not one-time cache construction.
    run(_step_weighted)
    run(_step_weighted_loop)
    vectorized_s = run(_step_weighted)
    looped_s = run(_step_weighted_loop)
    transitions = num_walkers * (walk_length - 1)
    stats = {
        "vectorized_s": vectorized_s,
        "looped_s": looped_s,
        "speedup": looped_s / max(vectorized_s, 1e-9),
        "transitions": transitions,
    }
    text = render_table(
        ["stepper", "seconds", "transitions/sec"],
        [
            [
                "vectorized (global search)",
                f"{vectorized_s:.4f}s",
                f"{transitions / max(vectorized_s, 1e-9):,.0f}",
            ],
            [
                "looped (per-walker)",
                f"{looped_s:.4f}s",
                f"{transitions / max(looped_s, 1e-9):,.0f}",
            ],
            ["speedup", f"{stats['speedup']:.1f}x", ""],
        ],
        title=f"weighted stepping: {num_walkers} walkers x {walk_length} steps",
    )
    return text, stats


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
def test_streaming_engine_throughput(benchmark):
    text, stats = benchmark.pedantic(run_engine_throughput, rounds=1, iterations=1)
    print("\n" + text)
    write_result("streaming_throughput.txt", text)
    assert stats["flushes"] >= 2
    # Ingestion without flushing must be far cheaper than end-to-end: the
    # per-event path is O(degree) bookkeeping, not an embedding update.
    assert stats["ingest_events_per_sec"] > stats["events_per_sec"]


def test_incremental_csr_beats_rebuild(benchmark):
    text, stats = benchmark.pedantic(run_csr_maintenance, rounds=1, iterations=1)
    print("\n" + text)
    write_result("streaming_csr_maintenance.txt", text)
    assert stats["speedup"] > 1.0, (
        f"incremental CSR slower than full rebuild ({stats})"
    )


def test_vectorized_weighted_stepping_beats_loop(benchmark):
    text, stats = benchmark.pedantic(run_weighted_stepping, rounds=1, iterations=1)
    print("\n" + text)
    write_result("streaming_weighted_stepping.txt", text)
    assert stats["speedup"] > 1.0, (
        f"vectorized weighted stepping slower than loop ({stats})"
    )


# ----------------------------------------------------------------------
# standalone smoke entry (CI)
# ----------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tiny", action="store_true",
        help="CI smoke profile: seconds, not minutes",
    )
    args = parser.parse_args(argv)

    if args.tiny:
        sections = [
            run_engine_throughput(
                num_nodes=120, num_steps=5, events_per_step=80, flush_every=120
            ),
            run_csr_maintenance(num_nodes=400, num_updates=8, delta_per_update=5),
            run_weighted_stepping(num_nodes=200, num_walkers=100, walk_length=15),
        ]
    else:
        sections = [
            run_engine_throughput(),
            run_csr_maintenance(),
            run_weighted_stepping(),
        ]
    for text, _ in sections:
        print(text)
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())


# ----------------------------------------------------------------------
# orchestrator entry
# ----------------------------------------------------------------------
from repro.bench import register_bench  # noqa: E402


@register_bench("streaming_throughput", tags=("perf", "streaming"))
def run_bench(tiny: bool) -> dict:
    if tiny:
        engine_text, engine = run_engine_throughput(
            num_nodes=120, num_steps=5, events_per_step=80, flush_every=120
        )
        csr_text, csr = run_csr_maintenance(
            num_nodes=400, num_updates=8, delta_per_update=5
        )
        step_text, step = run_weighted_stepping(
            num_nodes=200, num_walkers=100, walk_length=15
        )
    else:
        engine_text, engine = run_engine_throughput()
        csr_text, csr = run_csr_maintenance()
        step_text, step = run_weighted_stepping()
    return {
        "metrics": {
            "events_per_sec": engine["events_per_sec"],
            "ingest_events_per_sec": engine["ingest_events_per_sec"],
            "flush_mean_s": engine["flush_mean_s"],
            "flush_max_s": engine["flush_max_s"],
            "flushes": engine["flushes"],
            "csr_incremental_s": csr["incremental_s"],
            "csr_rebuild_s": csr["rebuild_s"],
            "csr_speedup": csr["speedup"],
            "weighted_vectorized_s": step["vectorized_s"],
            "weighted_looped_s": step["looped_s"],
            "weighted_speedup": step["speedup"],
        },
        "config": {
            "events": engine["events"],
            "csr_edges": csr["edges"],
            "weighted_transitions": step["transitions"],
            **WALK_KWARGS,
        },
        "summary": "\n\n".join([engine_text, csr_text, step_text]),
    }
