"""Table 2 — dynamic link prediction AUC, 7 methods x 6 datasets.

Paper shape to reproduce: GloDyNE is best or second best everywhere
(top-2), winning clearly on the churny dataset (AS733); high-order
proximity from long walks acts as the temporal feature.
"""

from __future__ import annotations

import numpy as np

from common import DATASET_NAMES, METHOD_NAMES, collect_metric, write_result
from repro.experiments import annotate_cell, render_table


def build_table2() -> tuple[str, dict]:
    samples_by_dataset = {
        dataset: {
            method: collect_metric(method, dataset, lambda r: r["lp"])
            for method in METHOD_NAMES
        }
        for dataset in DATASET_NAMES
    }
    formatted = {
        dataset: annotate_cell(samples)
        for dataset, samples in samples_by_dataset.items()
    }
    rows = [
        [method] + [formatted[d][method] for d in DATASET_NAMES]
        for method in METHOD_NAMES
    ]
    text = render_table(
        ["AUC"] + DATASET_NAMES, rows, title="Table 2: link prediction AUC (%)"
    )

    # as733-sim is excluded from the shape assertions: with laptop-scale
    # per-step diffs, "deleted edges are negatives" is adversarial for
    # every t-faithful embedding (a just-deleted edge is necessarily
    # high-cosine at t) — see EXPERIMENTS.md deviation D6. The column is
    # still reported above.
    growth_datasets = [d for d in DATASET_NAMES if d != "as733-sim"]
    near_best = 0
    aucs = []
    for dataset in growth_datasets:
        samples = {
            m: v for m, v in samples_by_dataset[dataset].items() if v is not None
        }
        best = max(float(v.mean()) for v in samples.values())
        glodyne = float(samples["GloDyNE"].mean())
        if glodyne >= best - 0.07:
            near_best += 1
        aucs.append(glodyne)
    return text, {
        "near_best": near_best,
        "num_growth": len(growth_datasets),
        "glodyne_mean_auc": float(np.mean(aucs)),
    }


def test_table2_link_prediction(benchmark):
    text, summary = benchmark.pedantic(build_table2, rounds=1, iterations=1)
    print("\n" + text)
    write_result("table2_link_prediction.txt", text)

    # Paper shape: GloDyNE top-2 everywhere. Calibrated for simulation
    # noise and the D2 substrate caveat: within 0.07 AUC of the best
    # method on at least 4 of the 5 growth datasets ...
    assert summary["near_best"] >= summary["num_growth"] - 1
    # ... and meaningfully above chance on average.
    assert summary["glodyne_mean_auc"] > 0.55


# ----------------------------------------------------------------------
# orchestrator entry
# ----------------------------------------------------------------------
from repro.bench import register_bench  # noqa: E402


@register_bench("table2_link_prediction", tags=("paper", "lp"))
def run_bench(tiny: bool) -> dict:
    text, summary = build_table2()
    return {
        "metrics": {
            "glodyne_mean_auc": summary["glodyne_mean_auc"],
            "near_best": summary["near_best"],
            "num_growth_datasets": summary["num_growth"],
        },
        "config": {"datasets": DATASET_NAMES, "methods": METHOD_NAMES},
        "summary": text,
    }
