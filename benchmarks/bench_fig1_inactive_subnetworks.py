"""Figure 1 d-f — inactive sub-network histograms.

Paper shape to reproduce: partitioning the largest snapshot into ~50-node
cells (scaled down here with the graphs), a substantial number of cells
experience no change for >= 5 consecutive steps — the blind spot of
most-affected-node DNE methods that motivates GloDyNE.
"""

from __future__ import annotations

import numpy as np

from common import bench_network, pick, write_result
from repro.analysis import inactive_subnetworks
from repro.experiments import render_table

DATASETS = pick(["elec-sim", "hepph-sim", "fbw-sim"], ["elec-sim"])
CELL_SIZE = 15  # scaled from the paper's ~50-node cells
MIN_STREAK = 5


def build_fig1_inactive() -> tuple[str, dict]:
    sections = []
    summary = {}
    for dataset in DATASETS:
        network = bench_network(dataset)
        report = inactive_subnetworks(
            network,
            cell_size=CELL_SIZE,
            min_streak=MIN_STREAK,
            rng=np.random.default_rng(0),
        )
        rows = [
            [str(length), str(count)]
            for length, count in sorted(report.streak_histogram.items())
        ]
        if not rows:
            rows = [["-", "0"]]
        sections.append(
            render_table(
                ["quiet for # steps", "# inactive sub-networks"],
                rows,
                title=(
                    f"Figure 1 d-f analogue: {dataset} "
                    f"({report.num_cells} cells, {report.num_steps} steps, "
                    f"{report.cells_with_streak} cells with a >= "
                    f"{MIN_STREAK}-step quiet streak)"
                ),
            )
        )
        summary[dataset] = report
    return "\n\n".join(sections), summary


def test_fig1_inactive_subnetworks(benchmark):
    text, summary = benchmark.pedantic(
        build_fig1_inactive, rounds=1, iterations=1
    )
    print("\n" + text)
    write_result("fig1_inactive_subnetworks.txt", text)

    # Paper shape: every interaction dataset exhibits inactive
    # sub-networks lasting >= 5 steps.
    for dataset, report in summary.items():
        assert report.total_streaks > 0, f"no quiet streaks on {dataset}"
        assert report.inactive_fraction > 0.05, (
            f"too few inactive cells on {dataset}"
        )


# ----------------------------------------------------------------------
# orchestrator entry
# ----------------------------------------------------------------------
from repro.bench import register_bench  # noqa: E402


@register_bench("fig1_inactive_subnetworks", tags=("paper", "analysis"))
def run_bench(tiny: bool) -> dict:
    text, summary = build_fig1_inactive()
    metrics = {}
    for dataset, report in summary.items():
        slug = dataset.replace("-", "_")
        metrics[f"{slug}_inactive_fraction"] = report.inactive_fraction
        metrics[f"{slug}_cells_with_streak"] = report.cells_with_streak
        metrics[f"{slug}_num_cells"] = report.num_cells
    return {
        "metrics": metrics,
        "config": {
            "datasets": DATASETS,
            "cell_size": CELL_SIZE,
            "min_streak": MIN_STREAK,
        },
        "summary": text,
    }
