"""Table 5 — node-selection strategies S1-S4 vs walk length l.

Paper shape to reproduce: at a fixed α = 0.1, the GR performance ranking
is S1 < S2 < S3 < S4 (matching selected-node diversity), and the gap
shrinks as the walk length l grows (long walks explore globally no matter
where they start).
"""

from __future__ import annotations

import numpy as np

from common import SEEDS, bench_network, pick, write_result
from repro import GloDyNE
from repro.experiments import render_table, run_method
from repro.tasks import graph_reconstruction_over_time

STRATEGIES = ["s1", "s2", "s3", "s4"]
WALK_LENGTHS = pick([3, 5, 10, 20, 40], [3, 10])
DATASETS = pick(["as733-sim", "elec-sim"], ["elec-sim"])
K_EVAL = 10


def run_strategy(dataset: str, strategy: str, walk_length: int) -> float:
    network = bench_network(dataset)
    scores = []
    for seed in SEEDS:
        method = GloDyNE(
            dim=32,
            alpha=0.1,
            strategy=strategy,
            num_walks=5,
            walk_length=walk_length,
            window_size=min(5, walk_length - 1),
            epochs=2,
            seed=seed,
        )
        result = run_method(method, network)
        scores.append(
            graph_reconstruction_over_time(
                result.embeddings, network, [K_EVAL]
            )[K_EVAL]
        )
    return float(np.mean(scores))


def build_table5() -> tuple[str, dict]:
    sections = []
    summary: dict = {}
    for dataset in DATASETS:
        rows = []
        table: dict[int, dict[str, float]] = {}
        for walk_length in WALK_LENGTHS:
            table[walk_length] = {
                strategy: run_strategy(dataset, strategy, walk_length)
                for strategy in STRATEGIES
            }
            rows.append(
                [str(walk_length)]
                + [f"{table[walk_length][s] * 100:.2f}" for s in STRATEGIES]
            )
        sections.append(
            render_table(
                ["l"] + [s.upper() for s in STRATEGIES],
                rows,
                title=f"Table 5: MeanP@{K_EVAL} (%) on {dataset}",
            )
        )
        summary[dataset] = table
    return "\n\n".join(sections), summary


def test_table5_selection_strategies(benchmark):
    text, summary = benchmark.pedantic(build_table5, rounds=1, iterations=1)
    print("\n" + text)
    write_result("table5_selection_strategies.txt", text)

    for dataset, table in summary.items():
        short = WALK_LENGTHS[0]
        mid = 10
        long = WALK_LENGTHS[-1]
        # Paper shape 1: where walks are long enough to learn anything
        # but short enough that start diversity matters (the mid regime),
        # S4 is the best strategy. (At l=3 every strategy is ~noise at
        # laptop scale — our graphs are 10-40x smaller than the paper's,
        # so absolute short-l differences sit inside seed variance.)
        s_mid = table[mid]
        others_best = max(s_mid[s] for s in ("s1", "s2", "s3"))
        assert s_mid["s4"] >= others_best - 0.01, (
            f"S4 not leading at l={mid} on {dataset}: {s_mid}"
        )
        # Paper shape 2: strategies become less distinguishable as l
        # grows — the relative spread collapses.
        def relative_spread(at_l: int) -> float:
            values = [table[at_l][s] for s in STRATEGIES]
            return (max(values) - min(values)) / max(np.mean(values), 1e-9)

        assert relative_spread(long) < relative_spread(short), (
            f"strategy spread did not shrink with l on {dataset}"
        )
        # Paper shape 3: performance rises with walk length for every
        # strategy.
        for strategy in STRATEGIES:
            assert table[long][strategy] > table[short][strategy]


# ----------------------------------------------------------------------
# orchestrator entry
# ----------------------------------------------------------------------
from repro.bench import register_bench  # noqa: E402


@register_bench("table5_selection_strategies", tags=("paper", "ablation"))
def run_bench(tiny: bool) -> dict:
    text, summary = build_table5()
    metrics = {}
    for dataset, table in summary.items():
        slug = dataset.replace("-", "_")
        for walk_length, per_strategy in table.items():
            for strategy, score in per_strategy.items():
                metrics[f"{slug}_l{walk_length}_{strategy}"] = score
    return {
        "metrics": metrics,
        "config": {
            "datasets": DATASETS,
            "strategies": STRATEGIES,
            "walk_lengths": WALK_LENGTHS,
            "k": K_EVAL,
        },
        "summary": text,
    }
