"""Table 3 — node classification micro/macro F1 on Cora/DBLP.

Paper shape to reproduce: GloDyNE beats every baseline at all three train
ratios, and Cora (clean labels) is easier than DBLP (noisy labels).
"""

from __future__ import annotations

import numpy as np

from common import METHOD_NAMES, NC_RATIOS, collect_metric, pick, write_result
from repro.experiments import annotate_cell, render_table

LABELED = pick(["cora-sim", "dblp-sim"], ["cora-sim"])


def build_table3() -> tuple[str, dict]:
    sections = []
    summary: dict = {}
    for metric_name, metric_index in (("Micro-F1", 0), ("Macro-F1", 1)):
        headers = [metric_name] + [
            f"{d}@{r}" for d in LABELED for r in NC_RATIOS
        ]
        samples_by_column: dict[str, dict[str, np.ndarray | None]] = {}
        for dataset in LABELED:
            for ratio in NC_RATIOS:
                column = f"{dataset}@{ratio}"
                samples_by_column[column] = {
                    method: collect_metric(
                        method,
                        dataset,
                        lambda r, rr=ratio, i=metric_index: (
                            r["nc"][rr].micro_f1 if i == 0 else r["nc"][rr].macro_f1
                        ),
                    )
                    for method in METHOD_NAMES
                }
        formatted = {
            column: annotate_cell(samples)
            for column, samples in samples_by_column.items()
        }
        rows = [
            [method] + [
                formatted[f"{d}@{r}"][method]
                for d in LABELED
                for r in NC_RATIOS
            ]
            for method in METHOD_NAMES
        ]
        sections.append(
            render_table(headers, rows, title=f"Table 3 section: {metric_name}")
        )
        if metric_index == 0:
            for dataset in LABELED:
                means = {}
                for method in METHOD_NAMES:
                    values = samples_by_column[f"{dataset}@0.7"][method]
                    if values is not None:
                        means[method] = float(values.mean())
                summary[dataset] = means
    return "\n\n".join(sections), summary


def test_table3_node_classification(benchmark):
    text, summary = benchmark.pedantic(build_table3, rounds=1, iterations=1)
    print("\n" + text)
    write_result("table3_node_classification.txt", text)

    for dataset in LABELED:
        means = summary[dataset]
        ranked = sorted(means, key=means.get, reverse=True)
        # Paper shape: GloDyNE leads NC; require top-2 under noise.
        assert "GloDyNE" in ranked[:2], f"GloDyNE not top-2 on {dataset}"
    # Cora (clean labels) easier than DBLP (noisy labels) for GloDyNE.
    assert summary["cora-sim"]["GloDyNE"] > summary["dblp-sim"]["GloDyNE"]


# ----------------------------------------------------------------------
# orchestrator entry
# ----------------------------------------------------------------------
from repro.bench import register_bench  # noqa: E402


@register_bench("table3_node_classification", tags=("paper", "nc"))
def run_bench(tiny: bool) -> dict:
    text, summary = build_table3()
    metrics = {}
    for dataset, means in summary.items():
        slug = dataset.replace("-", "_")
        for method, value in means.items():
            metrics[f"{slug}_micro_f1_{method.lower()}"] = value
    return {
        "metrics": metrics,
        "config": {
            "datasets": LABELED,
            "methods": METHOD_NAMES,
            "ratios": NC_RATIOS,
        },
        "summary": text,
    }
