"""Shared infrastructure for the benchmark suite.

Tables 1, 2 and 4 of the paper report different views (graph
reconstruction, link prediction, wall-clock) of the *same* embedding runs,
so this module maintains a process-wide cache keyed by
``(method, dataset, seed)``: the first bench that needs a run computes all
metrics once, later benches reuse them.

Scale knobs (environment variables):

* ``REPRO_BENCH_SCALE``  — dataset size multiplier (default 1.0);
* ``REPRO_BENCH_SEEDS``  — number of repeat runs per cell (default 3; the
  paper uses 20, which also works here if you have the time);
* ``REPRO_BENCH_TINY``   — set to ``1`` (``run_all.py --tiny`` does) to
  shrink the shared grids to a CI-smoke footprint: tiny datasets, one
  seed, three methods, minimal walk budgets. Must be set before this
  module is imported — the grids freeze at import time.

Rendered ``.txt`` tables under ``benchmarks/results/`` are transient
local artifacts; the committed perf trajectory is the ``BENCH_*.json``
documents emitted by ``benchmarks/run_all.py`` (see :mod:`repro.bench`).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Callable

import numpy as np

from repro import (
    BCGDGlobal,
    BCGDLocal,
    DynGEM,
    DynLINE,
    DynTriad,
    GloDyNE,
    TNE,
)
from repro.base import DynamicEmbeddingMethod
from repro.datasets import get_spec, load_dataset
from repro.experiments import run_method
from repro.graph import DynamicNetwork
from repro.tasks import (
    graph_reconstruction_over_time,
    link_prediction_over_time,
    node_classification_over_time,
)

TINY = os.environ.get("REPRO_BENCH_TINY") == "1"

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
NUM_SEEDS = int(os.environ.get("REPRO_BENCH_SEEDS", "3"))

EMBED_DIM = 32
GR_KS = [1, 5, 10, 20, 40]
NC_RATIOS = [0.5, 0.7, 0.9]

# Paper's Table 1-4 line-up: six datasets, seven methods.
DATASET_NAMES = [
    "as733-sim", "cora-sim", "dblp-sim", "elec-sim", "fbw-sim", "hepph-sim",
]
METHOD_NAMES = [
    "BCGDg", "BCGDl", "DynGEM", "DynLINE", "DynTriad", "tNE", "GloDyNE",
]

# Scaled-down walk parameters shared by all Skip-Gram-based methods so the
# comparison stays fair (paper §5.1.2 fixes d and the walk budget across
# methods).
WALK_KWARGS = dict(num_walks=5, walk_length=20, window_size=5, epochs=2)

if TINY:
    # CI smoke footprint: every registered bench still runs end to end,
    # but over one seed, small graphs, the cheapest representative of
    # each method regime, and minimal walk budgets.
    BENCH_SCALE = min(BENCH_SCALE, 0.25)
    NUM_SEEDS = 1
    DATASET_NAMES = ["elec-sim", "cora-sim"]
    METHOD_NAMES = ["BCGDl", "tNE", "GloDyNE"]
    WALK_KWARGS = dict(num_walks=3, walk_length=12, window_size=3, epochs=1)
    EMBED_DIM = 16
    GR_KS = [1, 10]
    NC_RATIOS = [0.7]

SEEDS = list(range(NUM_SEEDS))

RESULTS_DIR = Path(__file__).parent / "results"


def make_method(name: str, seed: int) -> DynamicEmbeddingMethod:
    """Instantiate a method with bench-calibrated hyper-parameters."""
    factories: dict[str, Callable[[], DynamicEmbeddingMethod]] = {
        "GloDyNE": lambda: GloDyNE(
            dim=EMBED_DIM, alpha=0.1, seed=seed, **WALK_KWARGS
        ),
        "BCGDg": lambda: BCGDGlobal(
            dim=EMBED_DIM, iterations=60, cycles=1, seed=seed
        ),
        "BCGDl": lambda: BCGDLocal(dim=EMBED_DIM, iterations=60, seed=seed),
        "DynGEM": lambda: DynGEM(
            dim=EMBED_DIM, hidden_dim=64, epochs=20, warm_epochs=8, seed=seed
        ),
        "DynLINE": lambda: DynLINE(dim=EMBED_DIM, epochs=3, seed=seed),
        "DynTriad": lambda: DynTriad(dim=EMBED_DIM, epochs=2, seed=seed),
        "tNE": lambda: TNE(dim=EMBED_DIM, seed=seed, **WALK_KWARGS),
    }
    try:
        return factories[name]()
    except KeyError:
        raise ValueError(f"unknown bench method {name!r}") from None


_NETWORK_CACHE: dict[str, DynamicNetwork] = {}


def pick(full, tiny):
    """Per-bench constant selector: ``full`` normally, ``tiny`` under TINY."""
    return tiny if TINY else full


def bench_network(name: str) -> DynamicNetwork:
    """Load (and cache) a dataset at bench scale."""
    if name not in _NETWORK_CACHE:
        spec = get_spec(name)
        snapshots = min(spec.default_snapshots, pick(10, 6))
        _NETWORK_CACHE[name] = load_dataset(
            name, scale=BENCH_SCALE, seed=100, snapshots=snapshots
        )
    return _NETWORK_CACHE[name]


_RUN_CACHE: dict[tuple[str, str, int], dict] = {}


def evaluate_run(method_name: str, dataset: str, seed: int) -> dict:
    """Embed + evaluate one (method, dataset, seed) cell, cached.

    Returns ``{"na": str}`` for the paper's n/a cells, else::

        {"gr": {k: score}, "lp": auc, "nc": {ratio: (micro, macro)} | None,
         "time": seconds}
    """
    key = (method_name, dataset, seed)
    if key in _RUN_CACHE:
        return _RUN_CACHE[key]

    network = bench_network(dataset)
    method = make_method(method_name, seed)
    run = run_method(method, network)
    if not run.ok:
        record: dict = {"na": run.not_available}
        _RUN_CACHE[key] = record
        return record

    rng = np.random.default_rng(1000 + seed)
    record = {
        "gr": graph_reconstruction_over_time(run.embeddings, network, GR_KS),
        "lp": link_prediction_over_time(run.embeddings, network, rng),
        "time": run.total_seconds,
        "nc": None,
    }
    if network.labels:
        record["nc"] = {
            ratio: node_classification_over_time(
                run.embeddings, network, ratio, rng, min_labeled=20
            )
            for ratio in NC_RATIOS
        }
    _RUN_CACHE[key] = record
    return record


def collect_metric(
    method_name: str, dataset: str, metric: Callable[[dict], float]
) -> np.ndarray | None:
    """Per-seed values of one metric; None when the method is n/a."""
    values = []
    for seed in SEEDS:
        record = evaluate_run(method_name, dataset, seed)
        if "na" in record:
            return None
        values.append(metric(record))
    return np.asarray(values, dtype=np.float64)


def write_result(filename: str, text: str) -> None:
    """Persist a rendered table under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / filename).write_text(text + "\n", encoding="utf-8")


def reset_run_cache() -> None:
    """Drop memoized (method, dataset, seed) evaluation runs.

    The orchestrator calls this before each bench so a document's
    ``seconds`` measures that bench from a cold run cache, independent of
    which benches ran before it. Dataset loads (`_NETWORK_CACHE`) stay
    warm — they are deterministic, cheap relative to embedding runs, and
    sharing them does not distort per-bench timing materially.
    """
    _RUN_CACHE.clear()
