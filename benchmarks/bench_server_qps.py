"""Server-path benchmark: batched vs unbatched QPS through the HTTP daemon.

``bench_serving_qps`` measures the index kernels in-process; this bench
measures the *network front door* (:mod:`repro.server`): concurrent
clients issuing ``/g/<name>/knn`` requests over keep-alive connections
against one daemon, with micro-batching on (tick coalescing, up to 64
per dispatch) versus off (``max_batch=1``, every request dispatches
alone). Both index backends run, because they bound the two ends of the
batching design space:

* **exact** — ``query_many`` scores a whole batch with one gemm, so
  coalescing amortises the probe itself. This is where the batched-QPS
  gate is asserted (full profile on ``cpu_count >= 4`` hosts — the
  weekly CI orchestrator run exercises it).
* **lsh** — the serving default. Its ``query_many`` is pinned
  bit-identical to single queries (the determinism contract the
  daemon's response cache relies on), which forbids fusing the probe
  kernels; batching amortises only the per-request service and
  event-loop overhead, so its speedup is structurally smaller. The
  bench asserts batched responses are byte-identical to unbatched ones
  on this backend.

A fixed hold-back window (e.g. 2 ms) is deliberately *not* the batched
configuration: under closed-loop clients it only adds latency — tick
coalescing already groups concurrent bursts (see
:data:`repro.server.batcher.DEFAULT_WINDOW`).

Committed single-core runs carry a ``caveats`` entry instead of the
gate; see the benchmarking guide in ``docs/``.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_server_qps.py --tiny   # smoke
    PYTHONPATH=src python benchmarks/bench_server_qps.py          # full
"""

from __future__ import annotations

import argparse
import asyncio
import json
import time

import numpy as np

from repro.bench.telemetry import effective_cpu_count
from repro.experiments import render_table
from repro.server import EmbeddingDaemon
from repro.serving import EmbeddingService, EmbeddingStore

#: Queries per dispatch in the batched configuration.
MAX_BATCH = 64
#: Batched-vs-unbatched gate on the exact backend, asserted when
#: ``cpu_count >= 4``.
SPEEDUP_GATE = 1.3
SINGLE_CORE_NOTE = (
    "cpu_count < 4 on the recording host: the exact-backend batched-QPS "
    f"gate (>= {SPEEDUP_GATE}x) was reported but not asserted"
)


def build_service(
    num_nodes: int, dim: int, backend: str = "lsh", seed: int = 0
) -> EmbeddingService:
    """A store of random unit-scale embeddings behind a kNN service.

    Random rows are fine here: this bench measures request handling and
    dispatch overhead, not recall (``bench_serving_qps`` owns that).
    """
    rng = np.random.default_rng(seed)
    store = EmbeddingStore()
    store.publish(
        (list(range(num_nodes)), rng.standard_normal((num_nodes, dim)))
    )
    return EmbeddingService(store, backend=backend)


async def _client(
    port: int, node_ids: np.ndarray, k: int
) -> list[tuple[int, bytes]]:
    """One keep-alive client: sequential kNN requests, parsed minimally."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    responses = []
    try:
        for node in node_ids:
            writer.write(
                f"GET /g/bench/knn?node={int(node)}&k={k} HTTP/1.1\r\n"
                "Host: bench\r\n\r\n".encode("ascii")
            )
            await writer.drain()
            header = await reader.readuntil(b"\r\n\r\n")
            status = int(header.split(b" ", 2)[1])
            length = 0
            for line in header.lower().split(b"\r\n"):
                if line.startswith(b"content-length:"):
                    length = int(line.split(b":", 1)[1])
            body = await reader.readexactly(length)
            responses.append((status, body))
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover
            pass
    return responses


async def _measure(
    service: EmbeddingService,
    *,
    clients: int,
    requests_per_client: int,
    k: int,
    max_batch: int,
    window: float,
    seed: int,
) -> dict:
    """Serve one daemon configuration and hammer it; returns raw stats."""
    daemon = EmbeddingDaemon(
        {"bench": service}, max_batch=max_batch, window=window,
        reload_interval=None,
    )
    await daemon.start(port=0)
    num_nodes = service.store.latest.num_nodes
    rng = np.random.default_rng(seed)
    plans = [
        rng.integers(0, num_nodes, size=requests_per_client)
        for _ in range(clients)
    ]
    try:
        # Warm pass: index build, bucket dicts, route dispatch. Its
        # cold-path latencies and size-1 dispatches must not leak into
        # the recorded percentiles / batch histogram.
        await _client(daemon.port, plans[0][:5], k)
        daemon.stats.reset()
        started = time.perf_counter()
        all_responses = await asyncio.gather(
            *(_client(daemon.port, plan, k) for plan in plans)
        )
        elapsed = time.perf_counter() - started
    finally:
        snapshot = daemon.stats.snapshot()
        await daemon.close()
    total = clients * requests_per_client
    flat = [resp for per_client in all_responses for resp in per_client]
    assert all(status == 200 for status, _ in flat), "non-200 under load"
    return {
        "qps": total / elapsed,
        "seconds": elapsed,
        "requests": total,
        "p50_ms": snapshot["latency_ms"]["p50"],
        "p99_ms": snapshot["latency_ms"]["p99"],
        "mean_batch": snapshot["knn"]["mean_batch_size"],
        "dispatches": snapshot["knn"]["batch_dispatches"],
        "responses": all_responses[0],
    }


def run_server_qps(
    num_nodes: int = 4000, dim: int = 64, clients: int = 32,
    requests_per_client: int = 100, k: int = 10,
) -> tuple[str, dict]:
    """Batched vs unbatched daemon throughput, both index backends."""
    common = dict(
        clients=clients, requests_per_client=requests_per_client, k=k, seed=3
    )
    measured: dict[tuple[str, str], dict] = {}
    for backend in ("exact", "lsh"):
        for label, max_batch in (("batched", MAX_BATCH), ("unbatched", 1)):
            service = build_service(num_nodes, dim, backend=backend)
            measured[(backend, label)] = asyncio.run(
                _measure(service, max_batch=max_batch, window=0.0, **common)
            )
    # LSH determinism contract at the HTTP boundary: one client's full
    # response stream must be byte-identical with and without batching.
    assert [
        json.loads(body)["neighbors"]
        for _, body in measured[("lsh", "batched")]["responses"]
    ] == [
        json.loads(body)["neighbors"]
        for _, body in measured[("lsh", "unbatched")]["responses"]
    ], "lsh batched and unbatched responses diverged"

    stats: dict = {
        "nodes": num_nodes,
        "dim": dim,
        "clients": clients,
        "requests": measured[("lsh", "batched")]["requests"],
    }
    rows = []
    for backend in ("exact", "lsh"):
        batched = measured[(backend, "batched")]
        unbatched = measured[(backend, "unbatched")]
        speedup = batched["qps"] / max(unbatched["qps"], 1e-9)
        stats[f"{backend}_batched_qps"] = batched["qps"]
        stats[f"{backend}_unbatched_qps"] = unbatched["qps"]
        stats[f"{backend}_batch_speedup"] = speedup
        stats[f"{backend}_mean_batch_size"] = batched["mean_batch"] or 0.0
        stats[f"{backend}_batched_p50_ms"] = batched["p50_ms"]
        stats[f"{backend}_batched_p99_ms"] = batched["p99_ms"]
        stats[f"{backend}_unbatched_p50_ms"] = unbatched["p50_ms"]
        stats[f"{backend}_unbatched_p99_ms"] = unbatched["p99_ms"]
        rows.append(
            [
                f"{backend} micro-batched",
                f"{batched['qps']:,.0f}",
                f"{batched['p50_ms']:.2f}ms",
                f"{batched['p99_ms']:.2f}ms",
                f"{batched['mean_batch'] or 0:.1f}",
            ]
        )
        rows.append(
            [
                f"{backend} unbatched",
                f"{unbatched['qps']:,.0f}",
                f"{unbatched['p50_ms']:.2f}ms",
                f"{unbatched['p99_ms']:.2f}ms",
                "1.0",
            ]
        )
        rows.append([f"{backend} speedup", f"{speedup:.2f}x", "", "", ""])
    text = render_table(
        ["configuration", "QPS", "p50", "p99", "mean batch"],
        rows,
        title=(
            f"HTTP /knn throughput: {clients} clients x "
            f"{requests_per_client} requests, {num_nodes} nodes d={dim}"
        ),
    )
    return text, stats


def _check_acceptance(stats: dict, tiny: bool = False) -> list[str]:
    """Gate when the profile and host can show it; caveat otherwise.

    The tiny profile never asserts (400-node batches are too small to
    clear the gate even on fast hosts); the full profile asserts on
    ``cpu_count >= 4`` hosts (the weekly CI run) and records a caveat on
    single-core recording hosts instead.
    """
    if tiny:
        return []
    cores = effective_cpu_count() or 1
    if cores >= 4:
        assert stats["exact_batch_speedup"] >= SPEEDUP_GATE, stats
        return []
    return [SINGLE_CORE_NOTE]


# ----------------------------------------------------------------------
# pytest entry point (run via `pytest benchmarks/bench_server_qps.py`)
# ----------------------------------------------------------------------
def test_server_qps(benchmark):
    text, stats = benchmark.pedantic(run_server_qps, rounds=1, iterations=1)
    print("\n" + text)
    _check_acceptance(stats)


# ----------------------------------------------------------------------
# standalone entry
# ----------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tiny", action="store_true",
        help="CI smoke profile: seconds; gate only on multi-core hosts",
    )
    args = parser.parse_args(argv)

    if args.tiny:
        text, stats = run_server_qps(
            num_nodes=400, dim=32, clients=8, requests_per_client=25
        )
    else:
        text, stats = run_server_qps()
    print(text)
    for caveat in _check_acceptance(stats, tiny=args.tiny):
        print(f"caveat: {caveat}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())


# ----------------------------------------------------------------------
# orchestrator entry
# ----------------------------------------------------------------------
from repro.bench import register_bench  # noqa: E402


@register_bench("server_qps", tags=("perf", "serving", "server"))
def run_bench(tiny: bool) -> dict:
    if tiny:
        text, stats = run_server_qps(
            num_nodes=400, dim=32, clients=8, requests_per_client=25
        )
    else:
        text, stats = run_server_qps()
    caveats = _check_acceptance(stats, tiny=tiny)
    return {
        "metrics": dict(stats),
        "config": {
            "max_batch": MAX_BATCH,
            "window_ms": 0.0,
            "backends": ["exact", "lsh"],
            "speedup_gate": SPEEDUP_GATE,
            # Mirrors _check_acceptance exactly: the tiny profile never
            # asserts, whatever the host — a tiny multi-core document
            # must not claim an enforced gate.
            "gate_asserted": not tiny and (effective_cpu_count() or 1) >= 4,
        },
        "summary": text,
        "caveats": caveats,
    }
