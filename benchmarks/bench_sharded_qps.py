"""Sharded-serving benchmark: router + N worker processes vs one daemon.

``bench_server_qps`` measures what micro-batching buys a *single*
daemon process; this bench measures what the multi-process tier
(:mod:`repro.server.sharding`) buys on top. One closed-loop client pool
hammers ``/g/bench/knn``:

* **single** — one :class:`EmbeddingDaemon`, exact backend (the
  configuration the router must reproduce bit for bit);
* **sharded** — :func:`split_store` into ``NUM_SHARDS`` disjoint
  views, one spawned worker process per shard
  (:func:`repro.server.spawn_workers`), a :class:`ShardRouter` front
  door scatter-gathering and merging.

The exact backend is measured because its per-query cost scales with
rows scanned — the component sharding actually divides. Every run also
asserts the **merge identity**: the router's response stream for one
client plan is neighbor-for-neighbor, score-for-score identical to the
single-process stream, ties included.

The throughput gate (>= ``SPEEDUP_GATE`` x single-process QPS) is
asserted on ``cpu_count >= 4`` hosts in the full profile; single-core
recording hosts (where N worker processes time-slice one core and the
scatter fan-out is pure overhead) record a caveat instead.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_sharded_qps.py --tiny   # smoke
    PYTHONPATH=src python benchmarks/bench_sharded_qps.py          # full
"""

from __future__ import annotations

import argparse
import asyncio
import json
import time

import numpy as np

from repro.bench.telemetry import effective_cpu_count
from repro.experiments import render_table
from repro.server import EmbeddingDaemon, ShardRouter, shutdown_workers, spawn_workers
from repro.serving import EmbeddingService, EmbeddingStore, split_store

#: Worker processes in the sharded configuration (full profile).
NUM_SHARDS = 4
#: Sharded-vs-single QPS gate, asserted when ``cpu_count >= 4``.
SPEEDUP_GATE = 1.8
SINGLE_CORE_NOTE = (
    "cpu_count < 4 on the recording host: the sharded-QPS gate "
    f"(>= {SPEEDUP_GATE}x single-process) was reported but not asserted — "
    "worker processes time-slice one core, so the fan-out cannot pay"
)


def build_store(num_nodes: int, dim: int, seed: int = 0) -> EmbeddingStore:
    """A one-version store of random embeddings (request-path bench)."""
    rng = np.random.default_rng(seed)
    store = EmbeddingStore()
    store.publish(
        (list(range(num_nodes)), rng.standard_normal((num_nodes, dim)))
    )
    return store


async def _client(
    port: int, node_ids: np.ndarray, k: int
) -> list[tuple[int, bytes]]:
    """One keep-alive client: sequential kNN requests, parsed minimally."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    responses = []
    try:
        for node in node_ids:
            writer.write(
                f"GET /g/bench/knn?node={int(node)}&k={k} HTTP/1.1\r\n"
                "Host: bench\r\n\r\n".encode("ascii")
            )
            await writer.drain()
            header = await reader.readuntil(b"\r\n\r\n")
            status = int(header.split(b" ", 2)[1])
            length = 0
            for line in header.lower().split(b"\r\n"):
                if line.startswith(b"content-length:"):
                    length = int(line.split(b":", 1)[1])
            body = await reader.readexactly(length)
            responses.append((status, body))
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover
            pass
    return responses


async def _hammer(
    port: int, plans: list[np.ndarray], k: int, stats
) -> dict:
    """Warm, reset, then run every client plan concurrently."""
    await _client(port, plans[0][:5], k)
    stats.reset()
    started = time.perf_counter()
    all_responses = await asyncio.gather(
        *(_client(port, plan, k) for plan in plans)
    )
    elapsed = time.perf_counter() - started
    flat = [resp for per_client in all_responses for resp in per_client]
    assert all(status == 200 for status, _ in flat), "non-200 under load"
    snapshot = stats.snapshot()
    total = sum(len(plan) for plan in plans)
    return {
        "qps": total / elapsed,
        "seconds": elapsed,
        "requests": total,
        "p50_ms": snapshot["latency_ms"]["p50"],
        "p99_ms": snapshot["latency_ms"]["p99"],
        "responses": all_responses[0],
    }


async def _measure_single(store: EmbeddingStore, plans, k) -> dict:
    daemon = EmbeddingDaemon(
        {"bench": EmbeddingService(store, backend="exact")},
        reload_interval=None,
    )
    await daemon.start(port=0)
    try:
        return await _hammer(daemon.port, plans, k, daemon.stats)
    finally:
        await daemon.close()


def _measure_sharded(store: EmbeddingStore, plans, k, num_shards: int) -> dict:
    """Spawn workers, route, hammer, tear down — all from sync code."""
    shard_stores, assignment = split_store(store, num_shards)
    handles = spawn_workers(
        [{"bench": s} for s in shard_stores], backend="exact"
    )
    try:

        async def run() -> dict:
            router = ShardRouter(
                {"bench": (store, assignment)},
                [handle.spec for handle in handles],
            )
            await router.start(port=0)
            try:
                return await _hammer(router.port, plans, k, router.stats)
            finally:
                await router.close()

        return asyncio.run(run())
    finally:
        shutdown_workers(handles)


def run_sharded_qps(
    num_nodes: int = 20000, dim: int = 64, clients: int = 32,
    requests_per_client: int = 60, k: int = 10, num_shards: int = NUM_SHARDS,
) -> tuple[str, dict]:
    """Single-process vs sharded throughput, plus the merge identity."""
    store = build_store(num_nodes, dim)
    rng = np.random.default_rng(7)
    plans = [
        rng.integers(0, num_nodes, size=requests_per_client)
        for _ in range(clients)
    ]
    single = asyncio.run(_measure_single(store, plans, k))
    sharded = _measure_sharded(store, plans, k, num_shards)
    # Merge identity: the router's answer stream for client 0's plan is
    # exactly the unsharded exact answer — node ids AND float scores
    # (JSON round-trips both losslessly). The single *daemon* is not
    # the reference here: its batched dispatch scores with a gemm,
    # whose reduction order is not the per-query kernel's.
    reference = EmbeddingService(store, backend="exact")
    assert [
        [(entry["node"], entry["score"])
         for entry in json.loads(body)["neighbors"]]
        for _, body in sharded["responses"]
    ] == [
        reference.query_knn(int(node), k) for node in plans[0]
    ], "sharded answers diverged from the unsharded exact reference"

    speedup = sharded["qps"] / max(single["qps"], 1e-9)
    stats = {
        "nodes": num_nodes,
        "dim": dim,
        "clients": clients,
        "requests": single["requests"],
        "num_shards": num_shards,
        "single_qps": single["qps"],
        "sharded_qps": sharded["qps"],
        "sharded_speedup": speedup,
        "single_p50_ms": single["p50_ms"],
        "single_p99_ms": single["p99_ms"],
        "sharded_p50_ms": sharded["p50_ms"],
        "sharded_p99_ms": sharded["p99_ms"],
        "merge_identity": True,  # asserted above
    }
    text = render_table(
        ["configuration", "QPS", "p50", "p99"],
        [
            [
                "single process (exact)",
                f"{single['qps']:,.0f}",
                f"{single['p50_ms']:.2f}ms",
                f"{single['p99_ms']:.2f}ms",
            ],
            [
                f"router + {num_shards} workers",
                f"{sharded['qps']:,.0f}",
                f"{sharded['p50_ms']:.2f}ms",
                f"{sharded['p99_ms']:.2f}ms",
            ],
            ["speedup", f"{speedup:.2f}x", "", ""],
        ],
        title=(
            f"sharded /knn throughput: {clients} clients x "
            f"{requests_per_client} requests, {num_nodes} nodes d={dim}"
        ),
    )
    return text, stats


def _check_acceptance(stats: dict, tiny: bool = False) -> list[str]:
    """Gate when the profile and host can show it; caveat otherwise.

    The tiny profile never asserts (a few hundred nodes make the scan
    cheaper than the scatter hop); the full profile asserts on
    ``cpu_count >= 4`` hosts and records a caveat on smaller ones.
    """
    if tiny:
        return []
    cores = effective_cpu_count() or 1
    if cores >= 4:
        assert stats["sharded_speedup"] >= SPEEDUP_GATE, stats
        return []
    return [SINGLE_CORE_NOTE]


# ----------------------------------------------------------------------
# pytest entry point (run via `pytest benchmarks/bench_sharded_qps.py`)
# ----------------------------------------------------------------------
def test_sharded_qps(benchmark):
    text, stats = benchmark.pedantic(
        run_sharded_qps,
        kwargs=dict(
            num_nodes=600, dim=32, clients=8, requests_per_client=20,
            num_shards=2,
        ),
        rounds=1,
        iterations=1,
    )
    print("\n" + text)
    _check_acceptance(stats, tiny=True)


# ----------------------------------------------------------------------
# standalone entry
# ----------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tiny", action="store_true",
        help="CI smoke profile: seconds; identity asserted, gate skipped",
    )
    args = parser.parse_args(argv)

    if args.tiny:
        text, stats = run_sharded_qps(
            num_nodes=600, dim=32, clients=8, requests_per_client=20,
            num_shards=2,
        )
    else:
        text, stats = run_sharded_qps()
    print(text)
    for caveat in _check_acceptance(stats, tiny=args.tiny):
        print(f"caveat: {caveat}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())


# ----------------------------------------------------------------------
# orchestrator entry
# ----------------------------------------------------------------------
from repro.bench import register_bench  # noqa: E402


@register_bench("sharded_qps", tags=("perf", "serving", "server", "sharding"))
def run_bench(tiny: bool) -> dict:
    if tiny:
        text, stats = run_sharded_qps(
            num_nodes=600, dim=32, clients=8, requests_per_client=20,
            num_shards=2,
        )
    else:
        text, stats = run_sharded_qps()
    caveats = _check_acceptance(stats, tiny=tiny)
    return {
        "metrics": dict(stats),
        "config": {
            "backend": "exact",
            "num_shards": stats["num_shards"],
            "speedup_gate": SPEEDUP_GATE,
            # Mirrors _check_acceptance exactly: the tiny profile never
            # asserts, whatever the host.
            "gate_asserted": not tiny and (effective_cpu_count() or 1) >= 4,
        },
        "summary": text,
        "caveats": caveats,
    }
