"""Unified benchmark orchestrator — the single entry point for perf runs.

Replaces running the ``bench_*.py`` scripts by hand: every bench module
registers a callable with :mod:`repro.bench`, this script discovers and
runs them, and each bench emits a schema-validated ``BENCH_<name>.json``
(metrics + git SHA + config + host info) next to a human summary on
stdout.

Usage::

    # CI smoke: every bench under the tiny profile, JSON artifacts to out/
    PYTHONPATH=src python benchmarks/run_all.py --tiny --json out/

    # Full run of selected benches, refreshing the committed trajectory
    PYTHONPATH=src python benchmarks/run_all.py \
        --only parallel_walks,streaming_throughput --json benchmarks/results/

    # What is registered?
    PYTHONPATH=src python benchmarks/run_all.py --list

The tiny profile also shrinks the shared dataset/method grids in
``benchmarks/common.py`` (via ``REPRO_BENCH_TINY=1``, set *before* the
bench modules import it), so a tiny suite finishes in CI minutes while
exercising every registered bench end to end.

Every emitted document carries a top-level ``caveats`` list qualifying
its numbers — most importantly ``"single-core host: parallel speedups
not representative"`` whenever the recording host exposes one
schedulable core, so trajectory tooling never misreads a ~1x speedup
measured on starved hardware as a regression. See
:mod:`repro.bench.schema` for the field's contract.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent

# Allow `python benchmarks/run_all.py` without PYTHONPATH=src.
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument(
        "--tiny", action="store_true",
        help="CI smoke profile: shrunk datasets/methods, seconds per bench",
    )
    parser.add_argument(
        "--json", metavar="DIR", default=None,
        help="write one BENCH_<name>.json per bench into DIR",
    )
    parser.add_argument(
        "--only", metavar="NAME[,NAME...]", default=None,
        help="comma-separated bench names (default: every registered bench)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list registered benches and exit"
    )
    args = parser.parse_args(argv)

    if args.tiny:
        # Must precede bench-module imports: common.py freezes its grids
        # (datasets, methods, seeds, walk budgets) at import time.
        os.environ["REPRO_BENCH_TINY"] = "1"

    from repro.bench.orchestrator import discover, run_suite
    from repro.bench.registry import registered_benches

    discover(BENCH_DIR)

    if args.list:
        for spec in registered_benches():
            tags = f"  [{', '.join(spec.tags)}]" if spec.tags else ""
            print(f"{spec.name}{tags}")
        return 0

    names = None
    if args.only:
        names = [name.strip() for name in args.only.split(",") if name.strip()]
    json_dir = Path(args.json) if args.json else None

    def reset_shared_caches() -> None:
        # Each bench's `seconds` must measure the bench, not its position
        # in the run order: drop the memoized evaluation runs that the
        # table/figure benches share through benchmarks/common.py.
        common = sys.modules.get("common")
        if common is not None:
            common.reset_run_cache()

    run_suite(
        names, tiny=args.tiny, json_dir=json_dir,
        before_each=reset_shared_caches,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
