"""Tiered-store benchmark: cold-version RSS and int8 scan throughput.

Two claims from the serving-tier storage design
(:mod:`repro.serving.storage`, ``docs/guides/storage.md``) under test:

1. **Cold versions cost disk, not RAM.** A tiered store
   (``store_dir=...``, ``hot_versions=1``) spills every non-head version
   to an mmap file; at >= 8 published versions its accounted resident
   footprint must be >= 10x smaller than the same history kept all-RAM.
   The gate runs on accounted matrix bytes (``storage_info()``) — what
   the tiering layer controls; process ``VmRSS`` deltas ride along as
   telemetry because allocator slack and numpy pools blur them.
2. **Int8 candidate scans beat the float32 brute scan.** The quantized
   brute path (coarse-to-fine int8 scan: a strided-column prescan copy
   shortlists, the full-width chunked dequantize-and-GEMV scan re-ranks
   the shortlist, an exact float32 rerank scores the final pool) must
   answer >= 1.5x the queries per second of the shipped exact brute
   backend on a large grid while holding recall@10 >= 0.95. The
   quantized scan owes no bit-exactness, so it is free to use a
   different kernel than the exact path's shared einsum — part of the
   win is that freedom, and the committed document says so in its
   caveats.

Run standalone for a quick smoke (CI uses this)::

    PYTHONPATH=src python benchmarks/bench_store_tiering.py --tiny

The full run (committed to benchmarks/results/) scans a 200k x 128 grid
and takes a couple of minutes::

    PYTHONPATH=src python benchmarks/bench_store_tiering.py
"""

from __future__ import annotations

import argparse
import tempfile
import time
from pathlib import Path

import numpy as np

from common import write_result
from repro.experiments import render_table
from repro.serving import BruteForceIndex, EmbeddingStore

#: Full-profile store shape for the RSS section.
RSS_VERSIONS = 12
RSS_NODES = 20_000
RSS_DIM = 64
#: Accounted resident-bytes reduction the tiered store must deliver.
RSS_GATE = 10.0
#: Version count floor the RSS gate is defined at.
RSS_GATE_VERSIONS = 8

#: Full-profile grid for the scan section (large enough that the scan,
#: not the rerank, dominates).
SCAN_NODES = 200_000
SCAN_DIM = 128
SCAN_QUERIES = 50
SCAN_K = 10
#: Timed sweeps per backend; the fastest is reported (noise floor on a
#: shared 1-core host).
SCAN_PASSES = 3
#: Quantized-vs-float32 throughput and recall gates.
QPS_GATE = 1.5
RECALL_GATE = 0.95

KERNEL_NOTE = (
    "the exact baseline is bound to the repo's shape-independent einsum "
    "kernel for bit-identical scores; the int8 scan owes no bit-exactness "
    "and uses a coarse-to-fine chunked dequantize+GEMV kernel, so part of "
    "its speedup is that kernel freedom, not quantization alone"
)


def _vm_rss_kb() -> int | None:
    """Current process ``VmRSS`` in kB (Linux), else ``None``."""
    try:
        with open("/proc/self/status", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except OSError:
        pass
    return None


def _publish_history(
    store: EmbeddingStore, versions: int, nodes: int, dim: int, seed: int = 0
) -> None:
    """Publish ``versions`` drifting snapshots of a ``nodes x dim`` matrix."""
    rng = np.random.default_rng(seed)
    ids = np.arange(nodes)
    matrix = rng.standard_normal((nodes, dim)).astype(np.float32)
    for t in range(versions):
        matrix = matrix + rng.standard_normal((nodes, dim)).astype(
            np.float32
        ) * 0.01
        store.publish((ids.tolist(), matrix), time_step=t)


def run_rss(
    versions: int = RSS_VERSIONS,
    nodes: int = RSS_NODES,
    dim: int = RSS_DIM,
) -> tuple[str, dict]:
    """All-RAM vs tiered store residency for the same version history."""
    before = _vm_rss_kb()
    plain = EmbeddingStore()
    _publish_history(plain, versions, nodes, dim)
    after_plain = _vm_rss_kb()

    tier_dir = Path(tempfile.mkdtemp(prefix="bench-tier-"))
    tiered = EmbeddingStore(store_dir=tier_dir, hot_versions=1)
    _publish_history(tiered, versions, nodes, dim)
    after_tiered = _vm_rss_kb()

    plain_info = plain.storage_info()
    tiered_info = tiered.storage_info()
    ratio = plain_info["resident_bytes"] / max(
        tiered_info["resident_bytes"], 1
    )

    # Cold page-in latency telemetry: how long one historical version
    # takes to come back as an mmap view.
    started = time.perf_counter()
    record = tiered.version(0)
    page_in_ms = (time.perf_counter() - started) * 1e3
    assert record.num_nodes == nodes

    stats = {
        "versions": versions,
        "nodes": nodes,
        "dim": dim,
        "plain_resident_bytes": int(plain_info["resident_bytes"]),
        "tiered_resident_bytes": int(tiered_info["resident_bytes"]),
        "tiered_cold_bytes": int(tiered_info["cold_bytes"]),
        "resident_reduction": ratio,
        "page_in_ms": page_in_ms,
    }
    if before is not None and after_plain is not None:
        stats["plain_vmrss_delta_kb"] = after_plain - before
        stats["tiered_vmrss_delta_kb"] = after_tiered - after_plain
    mib = 1024 * 1024
    text = render_table(
        ["store", "resident", "on disk", "reduction"],
        [
            [
                "all-RAM",
                f"{stats['plain_resident_bytes'] / mib:.1f} MiB",
                "0 MiB",
                "1.0x",
            ],
            [
                "tiered (hot_versions=1)",
                f"{stats['tiered_resident_bytes'] / mib:.1f} MiB",
                f"{stats['tiered_cold_bytes'] / mib:.1f} MiB",
                f"{ratio:.1f}x",
            ],
        ],
        title=(
            f"store residency: {versions} versions x {nodes} nodes x "
            f"d={dim} (cold page-in {page_in_ms:.2f}ms)"
        ),
    )
    return text, stats


def run_scan_qps(
    nodes: int = SCAN_NODES,
    dim: int = SCAN_DIM,
    num_queries: int = SCAN_QUERIES,
    k: int = SCAN_K,
) -> tuple[str, dict]:
    """Float32 exact brute vs int8-scan brute: QPS and recall@k."""
    rng = np.random.default_rng(3)
    centers = rng.standard_normal((256, dim)).astype(np.float32) * 4.0
    assign = rng.integers(0, len(centers), size=nodes)
    matrix = centers[assign] + rng.standard_normal((nodes, dim)).astype(
        np.float32
    ) * 0.35

    exact = BruteForceIndex()
    exact.build(matrix)
    quant = BruteForceIndex(quantized="int8")
    quant.build(matrix)
    queries = matrix[rng.choice(nodes, num_queries, replace=False)]

    # Warm pass (BLAS handles, staging buffers, page-faulting the member
    # arrays in) outside the timed runs.
    for index in (exact, quant):
        index.query(queries[0], k)

    def _passes(index) -> tuple[float, list]:
        """Fastest of ``SCAN_PASSES`` timed sweeps over ``queries``.

        The 1-core recording host jitters the memory-bandwidth-bound
        float32 sweep by up to 2x run to run; min-of-passes measures
        what each kernel can do, not what the box happened to allow.
        """
        best, results = float("inf"), []
        for _ in range(SCAN_PASSES):
            rows = []
            started = time.perf_counter()
            for q in queries:
                rows.append(index.query(q, k)[0])
            elapsed = time.perf_counter() - started
            if elapsed < best:
                best, results = elapsed, rows
        return best, results

    exact_s, exact_results = _passes(exact)
    quant_s, quant_results = _passes(quant)

    hits = sum(
        len(set(a.tolist()) & set(e.tolist()))
        for a, e in zip(quant_results, exact_results)
    )
    recall = hits / (num_queries * k)
    speedup = exact_s / max(quant_s, 1e-9)
    stats = {
        "nodes": nodes,
        "dim": dim,
        "queries": num_queries,
        "k": k,
        "float32_qps": num_queries / exact_s,
        "int8_qps": num_queries / quant_s,
        "speedup": speedup,
        "recall_at_k": recall,
    }
    text = render_table(
        ["scan", "single QPS", f"recall@{k}"],
        [
            ["float32 brute (exact einsum)", f"{num_queries / exact_s:,.1f}",
             "1.000"],
            ["int8 scan + f32 rerank", f"{num_queries / quant_s:,.1f}",
             f"{recall:.3f}"],
            ["speedup", f"{speedup:.2f}x", ""],
        ],
        title=(
            f"candidate scans: {nodes:,} nodes x d={dim}, "
            f"{num_queries} queries, k={k}"
        ),
    )
    return text, stats


def run_full_suite() -> list[tuple[str, dict]]:
    """The committed-results profile."""
    return [run_rss(), run_scan_qps()]


def _tiny_suite() -> list[tuple[str, dict]]:
    return [
        run_rss(versions=8, nodes=1500, dim=16),
        run_scan_qps(nodes=20_000, dim=32, num_queries=20),
    ]


def _check_acceptance(sections: list[tuple[str, dict]]) -> None:
    rss, scan = (stats for _, stats in sections)
    assert rss["versions"] >= RSS_GATE_VERSIONS, rss
    assert rss["resident_reduction"] >= RSS_GATE, rss
    assert scan["recall_at_k"] >= RECALL_GATE, scan
    assert scan["speedup"] >= QPS_GATE, scan


# ----------------------------------------------------------------------
# pytest entry point (run via `pytest benchmarks/bench_store_tiering.py`)
# ----------------------------------------------------------------------
def test_store_tiering_acceptance(benchmark):
    sections = benchmark.pedantic(run_full_suite, rounds=1, iterations=1)
    text = "\n\n".join(section_text for section_text, _ in sections)
    print("\n" + text)
    write_result("store_tiering.txt", text)
    _check_acceptance(sections)


# ----------------------------------------------------------------------
# standalone entry: --tiny for the CI smoke, full otherwise
# ----------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tiny", action="store_true",
        help="CI smoke profile: seconds, not minutes; no acceptance gate",
    )
    args = parser.parse_args(argv)

    sections = _tiny_suite() if args.tiny else run_full_suite()
    for text, _ in sections:
        print(text)
        print()
    if not args.tiny:
        _check_acceptance(sections)
        write_result(
            "store_tiering.txt",
            "\n\n".join(section_text for section_text, _ in sections),
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())


# ----------------------------------------------------------------------
# orchestrator entry
# ----------------------------------------------------------------------
from repro.bench import register_bench  # noqa: E402


@register_bench("store_tiering", tags=("perf", "serving", "storage"))
def run_bench(tiny: bool) -> dict:
    sections = _tiny_suite() if tiny else run_full_suite()
    rss, scan = (stats for _, stats in sections)
    metrics = {
        "resident_reduction": rss["resident_reduction"],
        "plain_resident_bytes": rss["plain_resident_bytes"],
        "tiered_resident_bytes": rss["tiered_resident_bytes"],
        "tiered_cold_bytes": rss["tiered_cold_bytes"],
        "page_in_ms": rss["page_in_ms"],
        "float32_qps": scan["float32_qps"],
        "int8_qps": scan["int8_qps"],
        "int8_vs_float32_qps": scan["speedup"],
        "int8_recall_at_k": scan["recall_at_k"],
    }
    for key in ("plain_vmrss_delta_kb", "tiered_vmrss_delta_kb"):
        if key in rss:
            metrics[key] = rss[key]
    caveats = [
        KERNEL_NOTE,
        "VmRSS deltas are telemetry only: the asserted RSS gate runs on "
        "accounted matrix bytes (storage_info), which allocator slack "
        "cannot blur",
    ]
    if not tiny:
        _check_acceptance(sections)
    else:
        caveats.append("tiny profile: gates reported but not asserted")
    return {
        "metrics": metrics,
        "config": {
            "rss": {
                "versions": rss["versions"],
                "nodes": rss["nodes"],
                "dim": rss["dim"],
                "gate": RSS_GATE,
                "gate_versions": RSS_GATE_VERSIONS,
            },
            "scan": {
                "nodes": scan["nodes"],
                "dim": scan["dim"],
                "queries": scan["queries"],
                "k": scan["k"],
                "qps_gate": QPS_GATE,
                "recall_gate": RECALL_GATE,
            },
        },
        "summary": "\n\n".join(text for text, _ in sections),
        "caveats": caveats,
    }
