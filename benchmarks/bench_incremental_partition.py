"""Step 1 latency: incremental partition maintenance vs full rebuild.

GloDyNE's online loop needs a (K, ε)-balanced partition of every
snapshot. The full multilevel partitioner re-coarsens and re-refines the
whole graph — O(E) Python work per step — while the
:class:`repro.partition.IncrementalPartitioner` applies the step's delta
to the previous partition and refines only dirty boundary vertices.
This bench drifts a preferential-attachment graph with small deltas
(~1% of edges per step) and measures, per step:

* wall-clock of ``partition_graph`` (full rebuild) vs
  ``IncrementalPartitioner.partition`` on the *same* prebuilt CSR;
* edge-cut quality of the maintained partition relative to the fresh
  rebuild (the acceptance gate: within 10%);
* how often the quality gate forced a fallback rebuild.

Unlike the parallel benches, both paths are single-threaded, so the
speedup gate is asserted in-bench even on a single-core recording host.

Run standalone for a quick smoke (CI uses this)::

    PYTHONPATH=src python benchmarks/bench_incremental_partition.py --tiny
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from common import write_result
from repro.datasets import preferential_attachment_graph
from repro.experiments import render_table
from repro.graph.csr import CSRAdjacency
from repro.partition import (
    IncrementalPartitioner,
    partition_graph,
    validate_partition,
)

#: Acceptance gates (ISSUE 5): the incremental path must be at least
#: this much faster per small-delta step, at an edge cut within this
#: factor of the full rebuild's.
SPEEDUP_GATE = 3.0
CUT_RATIO_GATE = 1.10


def _apply_delta(graph, rng, num_changes: int) -> set:
    """Rewire ~``num_changes`` edges in place; returns touched node ids.

    Half removals of existing edges, half fresh random edges — the
    "many small updates against a mostly stable topology" regime the
    incremental partitioner targets.
    """
    n = graph.number_of_nodes()
    touched: set = set()
    edges = list(graph.edges())
    removals = num_changes // 2
    for _ in range(removals):
        u, v = edges[int(rng.integers(0, len(edges)))]
        if graph.has_edge(u, v) and graph.degree(u) > 1 and graph.degree(v) > 1:
            graph.remove_edge(u, v)
            touched.update((u, v))
    additions = num_changes - removals
    added = 0
    while added < additions:
        u, v = (int(x) for x in rng.integers(0, n, size=2))
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v)
            touched.update((u, v))
            added += 1
    return touched


def run_partition_drift(
    num_nodes: int = 5000,
    attach: int = 3,
    num_steps: int = 8,
    delta_fraction: float = 0.01,
    alpha: float = 0.1,
    seed: int = 0,
) -> tuple[str, dict]:
    """Drift a graph and time incremental vs full Step 1 per snapshot."""
    rng = np.random.default_rng(seed)
    graph = preferential_attachment_graph(num_nodes, attach, rng)
    k = max(1, round(alpha * graph.number_of_nodes()))
    delta_edges = max(2, round(delta_fraction * graph.number_of_edges()))

    partitioner = IncrementalPartitioner(eps=0.10, seed=seed)
    csr = CSRAdjacency.from_graph(graph)
    partitioner.partition(graph, k, csr=csr)  # bootstrap rebuild, untimed

    inc_seconds, full_seconds, cut_ratios = [], [], []
    for step in range(num_steps):
        touched = _apply_delta(graph, rng, delta_edges)
        csr = CSRAdjacency.from_graph(graph)  # shared input, untimed
        began = time.perf_counter()
        incremental = partitioner.partition(graph, k, csr=csr, touched=touched)
        mid = time.perf_counter()
        full = partition_graph(
            graph, k, rng=np.random.default_rng(1_000_000 + step), csr=csr
        )
        done = time.perf_counter()
        problems = validate_partition(incremental, graph)
        if problems:  # defence in depth; the property suite pins this
            raise AssertionError(f"invalid incremental partition: {problems}")
        inc_seconds.append(mid - began)
        full_seconds.append(done - mid)
        cut_ratios.append(incremental.edge_cut / max(full.edge_cut, 1e-9))

    stats = {
        "nodes": graph.number_of_nodes(),
        "edges": graph.number_of_edges(),
        "k": k,
        "delta_edges": delta_edges,
        "steps": num_steps,
        "incremental_mean_s": float(np.mean(inc_seconds)),
        "full_mean_s": float(np.mean(full_seconds)),
        "speedup": float(np.mean(full_seconds) / max(np.mean(inc_seconds), 1e-9)),
        "cut_ratio_mean": float(np.mean(cut_ratios)),
        "cut_ratio_max": float(np.max(cut_ratios)),
        "fallback_rebuilds": partitioner.num_rebuilds - 1,
    }
    text = render_table(
        ["path", "mean / step", "edge cut vs full"],
        [
            [
                "IncrementalPartitioner",
                f"{stats['incremental_mean_s'] * 1e3:.1f}ms",
                f"{stats['cut_ratio_mean']:.3f}x (max {stats['cut_ratio_max']:.3f}x)",
            ],
            ["partition_graph (full)", f"{stats['full_mean_s'] * 1e3:.1f}ms", "1.000x"],
            ["speedup", f"{stats['speedup']:.1f}x", ""],
            ["fallback rebuilds", str(stats["fallback_rebuilds"]), ""],
        ],
        title=(
            f"Step 1 on {stats['nodes']}n/{stats['edges']}e, K={k}, "
            f"{delta_edges} changed edges per step"
        ),
    )
    return text, stats


def _assert_gates(stats: dict) -> None:
    """The ISSUE 5 acceptance gates, asserted on the full profile."""
    assert stats["speedup"] >= SPEEDUP_GATE, (
        f"incremental partition speedup {stats['speedup']:.2f}x under the "
        f"{SPEEDUP_GATE}x gate ({stats})"
    )
    assert stats["cut_ratio_mean"] <= CUT_RATIO_GATE, (
        f"incremental edge cut {stats['cut_ratio_mean']:.3f}x over the "
        f"{CUT_RATIO_GATE}x gate ({stats})"
    )


# ----------------------------------------------------------------------
# pytest entry point
# ----------------------------------------------------------------------
def test_incremental_partition_beats_full(benchmark):
    text, stats = benchmark.pedantic(run_partition_drift, rounds=1, iterations=1)
    print("\n" + text)
    write_result("incremental_partition.txt", text)
    _assert_gates(stats)


# ----------------------------------------------------------------------
# standalone smoke entry (CI)
# ----------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tiny", action="store_true",
        help="CI smoke profile: seconds, not minutes",
    )
    args = parser.parse_args(argv)
    if args.tiny:
        text, _ = run_partition_drift(num_nodes=600, num_steps=5)
    else:
        text, stats = run_partition_drift()
        _assert_gates(stats)
    print(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())


# ----------------------------------------------------------------------
# orchestrator entry
# ----------------------------------------------------------------------
from repro.bench import register_bench  # noqa: E402


@register_bench("incremental_partition", tags=("perf", "partition"))
def run_bench(tiny: bool) -> dict:
    if tiny:
        text, stats = run_partition_drift(num_nodes=600, num_steps=5)
        caveats = ["tiny profile: speedup/cut gates reported, not asserted"]
    else:
        text, stats = run_partition_drift()
        _assert_gates(stats)
        caveats = []
    return {
        "metrics": {
            "incremental_mean_s": stats["incremental_mean_s"],
            "full_mean_s": stats["full_mean_s"],
            "speedup": stats["speedup"],
            "cut_ratio_mean": stats["cut_ratio_mean"],
            "cut_ratio_max": stats["cut_ratio_max"],
            "fallback_rebuilds": stats["fallback_rebuilds"],
        },
        "config": {
            "nodes": stats["nodes"],
            "edges": stats["edges"],
            "k": stats["k"],
            "delta_edges": stats["delta_edges"],
            "steps": stats["steps"],
            "speedup_gate": SPEEDUP_GATE,
            "cut_ratio_gate": CUT_RATIO_GATE,
        },
        "summary": text,
        "caveats": caveats,
    }
