"""Table 4 — wall-clock embedding time, 7 methods x 6 datasets.

Paper shape to reproduce: GloDyNE is far cheaper than the methods that do
a full static round per snapshot (tNE, and in our line-up SGNS-retrain is
the same regime), and its advantage *grows with network size*. At laptop
scale the dense O(n^2) baselines (BCGD, DynGEM) have tiny constants, so
the paper's "fastest overall" cell shows up as "fastest among walk-based
methods + best scaling"; the scalability sweep below makes the asymptotic
ordering explicit (paper §5.2.4's large-scale argument).
"""

from __future__ import annotations

import numpy as np

from common import (
    DATASET_NAMES,
    METHOD_NAMES,
    bench_network,
    collect_metric,
    pick,
    write_result,
)
from repro.experiments import format_mean_std, render_table, run_method
from repro.datasets import load_dataset


def build_table4() -> tuple[str, dict]:
    rows = []
    means: dict[str, dict[str, float]] = {m: {} for m in METHOD_NAMES}
    for method in METHOD_NAMES:
        row = [method]
        for dataset in DATASET_NAMES:
            values = collect_metric(method, dataset, lambda r: r["time"])
            if values is None:
                row.append("n/a")
            else:
                row.append(format_mean_std(values, scale=1.0) + "s")
                means[method][dataset] = float(values.mean())
        rows.append(row)

    # Dataset size footer (paper's Table 4 lists nodes/edges totals).
    node_row = ["# nodes (all t)"]
    edge_row = ["# edges (all t)"]
    for dataset in DATASET_NAMES:
        network = bench_network(dataset)
        node_row.append(str(network.total_nodes()))
        edge_row.append(str(network.total_edges()))
    rows.extend([node_row, edge_row])

    text = render_table(
        ["seconds"] + DATASET_NAMES,
        rows,
        title="Table 4: wall-clock embedding time (s, mean±std over seeds)",
    )
    return text, means


def build_scalability_sweep() -> tuple[str, dict]:
    """GloDyNE vs the per-step-retrain regime vs a dense baseline as n
    grows — the §5.2.4 scalability claim."""
    from repro import BCGDLocal, GloDyNE, SGNSRetrain

    rows = []
    times: dict[str, list[float]] = {"GloDyNE": [], "SGNS-retrain": [], "BCGDl": []}
    sizes = []
    for scale in pick((0.5, 1.0, 2.0), (0.2, 0.4)):
        network = load_dataset("fbw-sim", scale=scale, seed=7, snapshots=6)
        n = network[-1].number_of_nodes()
        sizes.append(n)
        for name, method in (
            (
                "GloDyNE",
                GloDyNE(dim=32, alpha=0.1, num_walks=5, walk_length=20,
                        window_size=5, epochs=2, seed=0),
            ),
            (
                "SGNS-retrain",
                SGNSRetrain(dim=32, num_walks=5, walk_length=20,
                            window_size=5, epochs=2, seed=0),
            ),
            ("BCGDl", BCGDLocal(dim=32, iterations=60, seed=0)),
        ):
            result = run_method(method, network, keep_embeddings=False)
            times[name].append(result.total_seconds)
        rows.append(
            [f"n={n}"]
            + [f"{times[name][-1]:.2f}s" for name in times]
        )
    text = render_table(
        ["final size", "GloDyNE", "SGNS-retrain", "BCGDl"],
        rows,
        title="Table 4 addendum: wall-clock vs network size (fbw-sim)",
    )
    return text, {"sizes": sizes, "times": times}


def test_table4_wall_clock(benchmark):
    text, means = benchmark.pedantic(build_table4, rounds=1, iterations=1)
    print("\n" + text)
    write_result("table4_wall_clock.txt", text)

    # Paper shape: GloDyNE is much faster than the per-snapshot-retrain
    # regime (tNE) on every dataset where both run.
    for dataset, glodyne_time in means["GloDyNE"].items():
        tne_time = means["tNE"].get(dataset)
        if tne_time is not None:
            assert glodyne_time < tne_time, (
                f"GloDyNE slower than tNE on {dataset}"
            )


def test_table4_scalability(benchmark):
    text, data = benchmark.pedantic(
        build_scalability_sweep, rounds=1, iterations=1
    )
    print("\n" + text)
    write_result("table4_scalability.txt", text)

    times = data["times"]
    # GloDyNE's growth from the smallest to the largest size must be the
    # gentlest of the three regimes (near-linear with a small constant in
    # the selected-node count, vs full retrain / dense quadratic). Note:
    # absolute seconds at tiny n can favour the BLAS-backed dense
    # baseline; the paper's claim is about scaling, which this asserts.
    def growth(name: str) -> float:
        series = times[name]
        return series[-1] / max(series[0], 1e-9)

    assert growth("GloDyNE") < growth("BCGDl")
    # Within the Skip-Gram regime GloDyNE is the fastest at every size.
    for glodyne_t, retrain_t in zip(times["GloDyNE"], times["SGNS-retrain"]):
        assert glodyne_t < retrain_t


# ----------------------------------------------------------------------
# orchestrator entry
# ----------------------------------------------------------------------
from repro.bench import register_bench  # noqa: E402


@register_bench("table4_wall_clock", tags=("paper", "perf"))
def run_bench(tiny: bool) -> dict:
    table_text, means = build_table4()
    sweep_text, sweep = build_scalability_sweep()
    metrics = {}
    for method, per_dataset in means.items():
        if per_dataset:
            metrics[f"mean_seconds_{method.lower()}"] = float(
                np.mean(list(per_dataset.values()))
            )
    for name, series in sweep["times"].items():
        slug = name.lower().replace("-", "_")
        metrics[f"sweep_growth_{slug}"] = float(
            series[-1] / max(series[0], 1e-9)
        )
    metrics["sweep_largest_n"] = sweep["sizes"][-1]
    return {
        "metrics": metrics,
        "config": {"datasets": DATASET_NAMES, "methods": METHOD_NAMES},
        "summary": table_text + "\n\n" + sweep_text,
    }
