"""Section 5.1.1 — dataset description table.

Regenerates the paper's per-dataset profile (initial/final snapshot sizes,
snapshot counts, totals, label classes, deletion presence) for the six
simulated datasets, and asserts the dynamics-class facts the reproduction
depends on: only the AS733 analogue deletes nodes, only Cora/DBLP carry
labels, and every stream produces localised per-step change.
"""

from __future__ import annotations

from common import DATASET_NAMES, bench_network, write_result
from repro.analysis import DATASET_TABLE_HEADERS, summarize_network
from repro.experiments import render_table


def build_overview() -> tuple[str, dict]:
    summaries = {
        name: summarize_network(bench_network(name)) for name in DATASET_NAMES
    }
    rows = [summaries[name].as_row() for name in DATASET_NAMES]
    text = render_table(
        DATASET_TABLE_HEADERS,
        rows,
        title="Section 5.1.1: simulated dataset profiles",
    )
    return text, summaries


def test_datasets_overview(benchmark):
    text, summaries = benchmark.pedantic(build_overview, rounds=1, iterations=1)
    print("\n" + text)
    write_result("datasets_overview.txt", text)

    # Dynamics classes match the paper's datasets.
    assert summaries["as733-sim"].has_node_deletions
    for name in ("elec-sim", "fbw-sim", "hepph-sim", "cora-sim", "dblp-sim"):
        assert not summaries[name].has_node_deletions, name

    assert summaries["cora-sim"].num_classes == 10   # paper: 10 fields
    assert summaries["dblp-sim"].num_classes == 15   # paper: 15 fields
    for name in ("as733-sim", "elec-sim", "fbw-sim", "hepph-sim"):
        assert not summaries[name].has_labels, name

    # Growth datasets grow; every dataset changes every few steps.
    for name, summary in summaries.items():
        assert summary.final_nodes >= summary.initial_nodes or (
            name == "as733-sim"
        )
        assert summary.mean_changed_edges_per_step > 0


# ----------------------------------------------------------------------
# orchestrator entry
# ----------------------------------------------------------------------
from repro.bench import register_bench  # noqa: E402


@register_bench("datasets_overview", tags=("datasets",))
def run_bench(tiny: bool) -> dict:
    text, summaries = build_overview()
    metrics = {}
    for name, summary in summaries.items():
        slug = name.replace("-", "_")
        metrics[f"{slug}_final_nodes"] = summary.final_nodes
        metrics[f"{slug}_final_edges"] = summary.final_edges
        metrics[f"{slug}_snapshots"] = summary.num_snapshots
        metrics[f"{slug}_mean_changed_edges"] = (
            summary.mean_changed_edges_per_step
        )
    return {
        "metrics": metrics,
        "config": {"datasets": DATASET_NAMES},
        "summary": text,
    }
