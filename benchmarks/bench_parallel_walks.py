"""Parallel hot path: walk-corpus throughput and mega-batch negatives.

Two claims measured, matching :mod:`repro.parallel`'s design:

1. **Multi-worker corpus generation** — ``generate_walks(workers=4)``
   over shared-memory CSR buffers vs the serial path on a >= 5k-node
   community graph. The outputs are equivalence-checked in-bench
   (identical shape; identical corpus-pair structure on a graph with no
   degree-0 truncation). Speedup scales with physical cores: the
   committed JSON records ``host.cpu_count`` so a 1-core container's
   honest ~1x is never mistaken for a regression of the 4-core >= 2x.
2. **Negative prefetch** — ``TrainConfig(negative_prefetch=32)`` draws
   SGNS negatives once per mega-batch instead of once per minibatch;
   measured as a train-round timing against the legacy per-minibatch
   stream.
3. **Walk kernel backends** — serial walk generation with
   ``backend="python"`` vs ``backend="auto"`` (the compiled transition
   kernel when numba is installed, the python kernel otherwise). On an
   unweighted graph the walk stream is bit-identical across backends —
   asserted in-bench — so the timing difference is pure kernel cost.

Run standalone::

    PYTHONPATH=src python benchmarks/run_all.py --only parallel_walks --json out/
"""

from __future__ import annotations

import time

import numpy as np

from common import write_result
from repro.bench import register_bench
from repro.bench.telemetry import effective_cpu_count
from repro.experiments import render_table
from repro.graph.csr import CSRAdjacency
from repro.graph.static import Graph
from repro.parallel import DEFAULT_CHUNK_STARTS, generate_walks
from repro.sgns.model import SGNSModel
from repro.sgns.trainer import TrainConfig, train_on_corpus
from repro.walks.corpus import build_pair_corpus

WORKERS = 4
CHUNK_STARTS = DEFAULT_CHUNK_STARTS


def walk_benchmark_graph(num_nodes: int, seed: int = 0) -> Graph:
    """Ring-of-communities graph with min degree 2 (no walk truncation).

    Truncation-free matters for the equivalence check: on such a graph
    every walk reaches full length, so serial and chunked corpora must
    agree exactly in shape and per-node pair counts, whatever the rng.
    """
    rng = np.random.default_rng(seed)
    graph = Graph()
    comm_size = 25
    for base in range(0, num_nodes, comm_size):
        nodes = list(range(base, min(base + comm_size, num_nodes)))
        for i, u in enumerate(nodes):
            graph.add_edge(u, nodes[(i + 1) % len(nodes)])
        for _ in range(len(nodes) * 3):
            i, j = rng.integers(0, len(nodes), size=2)
            if i != j:
                graph.add_edge(nodes[int(i)], nodes[int(j)])
    for _ in range(num_nodes // 3):
        u, v = rng.integers(0, num_nodes, size=2)
        if u != v:
            graph.add_edge(int(u), int(v))
    return graph


def _cpu_count() -> int:
    return effective_cpu_count() or 1


def run_corpus_throughput(
    num_nodes: int = 5000,
    num_walks: int = 10,
    walk_length: int = 80,
    window_size: int = 10,
    workers: int = WORKERS,
) -> tuple[str, dict]:
    graph = walk_benchmark_graph(num_nodes)
    csr = CSRAdjacency.from_graph(graph)
    starts = np.arange(csr.num_nodes)

    # Warm the pool (process spawn is a one-time cost, not throughput)
    # and the serial path's caches before timing either.
    generate_walks(csr, starts[:256], 1, 5, np.random.default_rng(0),
                   workers=workers, chunk_starts=CHUNK_STARTS)
    generate_walks(csr, starts[:256], 1, 5, np.random.default_rng(0))

    began = time.perf_counter()
    serial_walks = generate_walks(
        csr, starts, num_walks, walk_length, np.random.default_rng(1)
    )
    serial_corpus = build_pair_corpus(serial_walks, window_size, csr.num_nodes)
    serial_s = time.perf_counter() - began

    began = time.perf_counter()
    parallel_walks = generate_walks(
        csr, starts, num_walks, walk_length, np.random.default_rng(1),
        workers=workers, chunk_starts=CHUNK_STARTS,
    )
    parallel_corpus = build_pair_corpus(
        parallel_walks, window_size, csr.num_nodes
    )
    parallel_s = time.perf_counter() - began

    # Equivalence: different rng streams, same corpus structure.
    assert parallel_walks.shape == serial_walks.shape
    assert parallel_corpus.num_pairs == serial_corpus.num_pairs
    assert int(parallel_corpus.counts.sum()) == int(serial_corpus.counts.sum())

    transitions = serial_walks.shape[0] * (walk_length - 1)
    stats = {
        "nodes": csr.num_nodes,
        "edges": csr.num_edges,
        "walks": int(serial_walks.shape[0]),
        "pairs": serial_corpus.num_pairs,
        "workers": workers,
        "cpu_count": _cpu_count(),
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": serial_s / max(parallel_s, 1e-9),
        "serial_transitions_per_sec": transitions / max(serial_s, 1e-9),
        "parallel_transitions_per_sec": transitions / max(parallel_s, 1e-9),
    }
    text = render_table(
        ["path", "seconds", "transitions/sec"],
        [
            ["serial (workers=1)", f"{serial_s:.3f}s",
             f"{stats['serial_transitions_per_sec']:,.0f}"],
            [f"parallel (workers={workers})", f"{parallel_s:.3f}s",
             f"{stats['parallel_transitions_per_sec']:,.0f}"],
            ["speedup", f"{stats['speedup']:.2f}x",
             f"({stats['cpu_count']} cores available)"],
        ],
        title=(
            f"walk corpus generation: {csr.num_nodes} nodes, "
            f"{stats['walks']} walks x {walk_length} steps"
        ),
    )
    return text, stats


def run_negative_prefetch(
    num_nodes: int = 2000,
    num_walks: int = 5,
    walk_length: int = 40,
    window_size: int = 5,
    dim: int = 64,
    prefetch: int = 32,
) -> tuple[str, dict]:
    graph = walk_benchmark_graph(num_nodes, seed=3)
    csr = CSRAdjacency.from_graph(graph)
    walks = generate_walks(
        csr, np.arange(csr.num_nodes), num_walks, walk_length,
        np.random.default_rng(2),
    )
    corpus = build_pair_corpus(walks, window_size, csr.num_nodes)

    def train_round(negative_prefetch: int) -> float:
        model = SGNSModel(dim, rng=np.random.default_rng(0))
        model.ensure_nodes(csr.nodes)
        row_of = model.vocab.indices(csr.nodes)
        config = TrainConfig(
            epochs=1, batch_size=1024, negative_prefetch=negative_prefetch
        )
        began = time.perf_counter()
        train_on_corpus(
            model, corpus, row_of, np.random.default_rng(5), config=config
        )
        return time.perf_counter() - began

    train_round(1)  # warm caches/allocators outside timing
    legacy_s = train_round(1)
    mega_s = train_round(prefetch)
    stats = {
        "pairs": corpus.num_pairs,
        "prefetch": prefetch,
        "legacy_s": legacy_s,
        "mega_s": mega_s,
        "speedup": legacy_s / max(mega_s, 1e-9),
    }
    text = render_table(
        ["negative drawing", "seconds", "pairs/sec"],
        [
            ["per minibatch (prefetch=1)", f"{legacy_s:.3f}s",
             f"{corpus.num_pairs / max(legacy_s, 1e-9):,.0f}"],
            [f"per mega-batch (prefetch={prefetch})", f"{mega_s:.3f}s",
             f"{corpus.num_pairs / max(mega_s, 1e-9):,.0f}"],
            ["speedup", f"{stats['speedup']:.2f}x", ""],
        ],
        title=f"SGNS train round over {corpus.num_pairs} pairs (d={dim})",
    )
    return text, stats


def run_backend_walks(
    num_nodes: int = 2000,
    num_walks: int = 5,
    walk_length: int = 40,
) -> tuple[str, dict]:
    """Serial walk throughput per kernel backend, identity asserted."""
    from repro.sgns import numba_available

    graph = walk_benchmark_graph(num_nodes, seed=6)
    csr = CSRAdjacency.from_graph(graph)
    starts = np.arange(csr.num_nodes)

    def walk_round(backend: str) -> tuple[float, np.ndarray]:
        began = time.perf_counter()
        walks = generate_walks(
            csr, starts, num_walks, walk_length, np.random.default_rng(8),
            backend=backend,
        )
        return time.perf_counter() - began, walks

    walk_round("python")  # warm caches outside timing
    walk_round("auto")
    python_s, python_walks = walk_round("python")
    auto_s, auto_walks = walk_round("auto")

    # Uniform walks consume the same rng draws on every backend: the
    # streams must match exactly, whether or not numba resolved.
    assert np.array_equal(python_walks, auto_walks)

    transitions = python_walks.shape[0] * (walk_length - 1)
    stats = {
        "numba_available": numba_available(),
        "backend_python_s": python_s,
        "backend_auto_s": auto_s,
        "backend_python_transitions_per_sec":
            transitions / max(python_s, 1e-9),
        "backend_auto_transitions_per_sec": transitions / max(auto_s, 1e-9),
    }
    resolved = "numba" if stats["numba_available"] else "python fallback"
    text = render_table(
        ["backend", "seconds", "transitions/sec"],
        [
            ["python", f"{python_s:.3f}s",
             f"{stats['backend_python_transitions_per_sec']:,.0f}"],
            [f"auto ({resolved})", f"{auto_s:.3f}s",
             f"{stats['backend_auto_transitions_per_sec']:,.0f}"],
        ],
        title=(
            f"serial walk kernels: {python_walks.shape[0]} walks x "
            f"{walk_length} steps, bit-identical streams"
        ),
    )
    return text, stats


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
def test_parallel_corpus_throughput(benchmark):
    text, stats = benchmark.pedantic(
        run_corpus_throughput, rounds=1, iterations=1
    )
    print("\n" + text)
    write_result("parallel_walks.txt", text)
    # The >= 2x gate holds where the hardware can deliver it; a 1-core
    # container can only assert the engine is not pathologically slower.
    if stats["cpu_count"] >= 4:
        assert stats["speedup"] >= 2.0, stats
    else:
        assert stats["speedup"] > 0.3, stats


def test_backend_walks_bit_identical(benchmark):
    text, stats = benchmark.pedantic(run_backend_walks, rounds=1, iterations=1)
    print("\n" + text)
    write_result("parallel_backend_walks.txt", text)
    # Identity is asserted inside run_backend_walks; without numba the
    # two timings measure the same kernel, so only sanity-check them.
    assert stats["backend_auto_s"] > 0.0


def test_negative_prefetch_not_slower(benchmark):
    text, stats = benchmark.pedantic(
        run_negative_prefetch, rounds=1, iterations=1
    )
    print("\n" + text)
    write_result("parallel_negative_prefetch.txt", text)
    # Mega-batch drawing removes sampler round-trips; allow scheduler
    # noise but catch a real regression.
    assert stats["speedup"] > 0.8, stats


# ----------------------------------------------------------------------
# orchestrator entry
# ----------------------------------------------------------------------
@register_bench("parallel_walks", tags=("perf", "walks", "sgns"))
def run_bench(tiny: bool) -> dict:
    corpus_kwargs = (
        dict(num_nodes=600, num_walks=3, walk_length=15, window_size=3)
        if tiny
        else dict(num_nodes=5000, num_walks=10, walk_length=80, window_size=10)
    )
    prefetch_kwargs = (
        dict(num_nodes=400, num_walks=3, walk_length=15, window_size=3, dim=16)
        if tiny
        else dict()
    )
    backend_kwargs = (
        dict(num_nodes=400, num_walks=3, walk_length=15) if tiny else dict()
    )
    corpus_text, corpus_stats = run_corpus_throughput(**corpus_kwargs)
    prefetch_text, prefetch_stats = run_negative_prefetch(**prefetch_kwargs)
    backend_text, backend_stats = run_backend_walks(**backend_kwargs)
    return {
        "metrics": {
            "corpus_speedup": corpus_stats["speedup"],
            "corpus_serial_s": corpus_stats["serial_s"],
            "corpus_parallel_s": corpus_stats["parallel_s"],
            "serial_transitions_per_sec":
                corpus_stats["serial_transitions_per_sec"],
            "parallel_transitions_per_sec":
                corpus_stats["parallel_transitions_per_sec"],
            "nodes": corpus_stats["nodes"],
            "edges": corpus_stats["edges"],
            "pairs": corpus_stats["pairs"],
            "prefetch_speedup": prefetch_stats["speedup"],
            "prefetch_legacy_s": prefetch_stats["legacy_s"],
            "prefetch_mega_s": prefetch_stats["mega_s"],
            **backend_stats,
        },
        "config": {
            "workers": corpus_stats["workers"],
            "chunk_starts": CHUNK_STARTS,
            "negative_prefetch": prefetch_stats["prefetch"],
            **{f"corpus_{k}": v for k, v in corpus_kwargs.items()},
        },
        "summary": "\n\n".join([corpus_text, prefetch_text, backend_text]),
    }
