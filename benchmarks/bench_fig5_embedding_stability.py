"""Figure 5 — embedding-space stability across consecutive steps.

The paper projects embeddings to 2-D with PCA over six consecutive steps:
GloDyNE keeps both the relative *and absolute* positions, while
SGNS-retrain's clouds rotate/flip between steps (the 'v' shape spins).

Quantified here: for consecutive-step common nodes, compare the alignment
residual with and without an optimal orthogonal registration
(:func:`repro.ml.pca.procrustes_disparity`). A method that preserves
absolute positions has a small translation-only residual, so allowing a
rotation barely helps; a method that re-randomises the basis needs the
rotation — the gap between the two residuals is the "rotation benefit".
"""

from __future__ import annotations

import numpy as np

from common import bench_network, pick, write_result
from repro.core import GloDyNE, SGNSRetrain
from repro.experiments import render_table
from repro.ml import PCA, procrustes_disparity
from repro.tasks import per_step_precision  # noqa: F401 (doc cross-ref)

DATASET = "elec-sim"
KWARGS = pick(
    dict(dim=32, num_walks=5, walk_length=20, window_size=5, epochs=2),
    dict(dim=16, num_walks=3, walk_length=12, window_size=3, epochs=1),
)


def rotation_benefit(embeddings_per_step, network) -> list[float]:
    """Per consecutive-step pair: residual(no rotation) - residual(rotation)."""
    benefits = []
    for t in range(network.num_snapshots - 1):
        common = sorted(
            set(embeddings_per_step[t]) & set(embeddings_per_step[t + 1]),
            key=repr,
        )
        if len(common) < 8:
            continue
        a = np.stack([embeddings_per_step[t][n] for n in common])
        b = np.stack([embeddings_per_step[t + 1][n] for n in common])
        # Project the *pair* into a common 2-D PCA basis (Figure 5's view).
        pca = PCA(n_components=2).fit(np.vstack([a, b]))
        a2, b2 = pca.transform(a), pca.transform(b)
        without = procrustes_disparity(a2, b2, allow_rotation=False)
        with_rot = procrustes_disparity(a2, b2, allow_rotation=True)
        benefits.append(without - with_rot)
    return benefits


def build_fig5() -> tuple[str, dict]:
    network = bench_network(DATASET)
    glodyne = GloDyNE(alpha=0.1, seed=0, **KWARGS)
    retrain = SGNSRetrain(seed=0, **KWARGS)
    glodyne_embeddings = glodyne.fit(network)
    retrain_embeddings = retrain.fit(network)

    glodyne_benefit = rotation_benefit(glodyne_embeddings, network)
    retrain_benefit = rotation_benefit(retrain_embeddings, network)

    rows = [
        [
            str(t),
            f"{glodyne_benefit[t]:.4f}",
            f"{retrain_benefit[t]:.4f}",
        ]
        for t in range(len(glodyne_benefit))
    ]
    text = render_table(
        ["step pair", "GloDyNE rotation benefit", "SGNS-retrain rotation benefit"],
        rows,
        title=(
            "Figure 5: how much an optimal rotation improves consecutive-"
            "step alignment (higher = absolute positions NOT preserved)"
        ),
    )
    summary = {
        "glodyne": float(np.mean(glodyne_benefit)),
        "retrain": float(np.mean(retrain_benefit)),
    }
    text += (
        f"\n\nmean rotation benefit: GloDyNE={summary['glodyne']:.4f}, "
        f"SGNS-retrain={summary['retrain']:.4f}"
    )
    return text, summary


def test_fig5_embedding_stability(benchmark):
    text, summary = benchmark.pedantic(build_fig5, rounds=1, iterations=1)
    print("\n" + text)
    write_result("fig5_embedding_stability.txt", text)

    # Paper shape: GloDyNE preserves absolute positions (rotation adds
    # little), retrain does not (rotation helps a lot).
    assert summary["glodyne"] < summary["retrain"], (
        "GloDyNE should need less rotation than retrain"
    )
    assert summary["retrain"] > 2 * summary["glodyne"]


# ----------------------------------------------------------------------
# orchestrator entry
# ----------------------------------------------------------------------
from repro.bench import register_bench  # noqa: E402


@register_bench("fig5_embedding_stability", tags=("paper", "stability"))
def run_bench(tiny: bool) -> dict:
    text, summary = build_fig5()
    return {
        "metrics": {
            "glodyne_rotation_benefit": summary["glodyne"],
            "retrain_rotation_benefit": summary["retrain"],
        },
        "config": {"dataset": DATASET, **KWARGS},
        "summary": text,
    }
