"""Table 1 — graph reconstruction MeanP@k, 7 methods x 6 datasets.

Paper shape to reproduce: GloDyNE wins the large majority of cells with a
very small standard deviation, because its node-selection strategy is the
only one that keeps refreshing *inactive* regions of the network.
"""

from __future__ import annotations

import numpy as np

from common import (
    DATASET_NAMES,
    GR_KS,
    METHOD_NAMES,
    collect_metric,
    write_result,
)
from repro.experiments import annotate_cell, render_table


def build_table1() -> tuple[str, dict]:
    sections: list[str] = []
    wins: dict[str, int] = {name: 0 for name in METHOD_NAMES}
    cells = 0
    glodyne_scores: list[float] = []

    for k in GR_KS:
        rows = []
        samples_by_dataset: dict[str, dict[str, np.ndarray | None]] = {}
        for dataset in DATASET_NAMES:
            samples_by_dataset[dataset] = {
                method: collect_metric(
                    method, dataset, lambda r, kk=k: r["gr"][kk]
                )
                for method in METHOD_NAMES
            }
        formatted = {
            dataset: annotate_cell(samples)
            for dataset, samples in samples_by_dataset.items()
        }
        for method in METHOD_NAMES:
            rows.append(
                [method] + [formatted[d][method] for d in DATASET_NAMES]
            )
        sections.append(
            render_table(
                ["MeanP@%d" % k] + DATASET_NAMES,
                rows,
                title=f"Table 1 section: MeanP@{k} (%)",
            )
        )
        # Win counting for the shape assertions.
        for dataset in DATASET_NAMES:
            samples = {
                m: v
                for m, v in samples_by_dataset[dataset].items()
                if v is not None
            }
            if not samples:
                continue
            cells += 1
            best = max(samples, key=lambda m: samples[m].mean())
            wins[best] += 1
            if samples_by_dataset[dataset]["GloDyNE"] is not None:
                glodyne_scores.append(
                    float(samples_by_dataset[dataset]["GloDyNE"].mean())
                )

    summary = {
        "wins": wins,
        "cells": cells,
        "glodyne_mean": float(np.mean(glodyne_scores)),
    }
    text = "\n\n".join(sections)
    text += (
        f"\n\nwins by method (over {cells} dataset x k cells): "
        + ", ".join(f"{m}={wins[m]}" for m in METHOD_NAMES)
    )
    return text, summary


def test_table1_graph_reconstruction(benchmark):
    text, summary = benchmark.pedantic(build_table1, rounds=1, iterations=1)
    print("\n" + text)
    write_result("table1_graph_reconstruction.txt", text)

    # Paper shape: GloDyNE dominates GR (28/30 cells in the paper). At
    # laptop scale two documented deviations compress its margin —
    # rank-32 BCGD factorisation is unrealistically strong on 10^2-node
    # graphs (EXPERIMENTS.md D1) and per-step-static tNE is cheap enough
    # to saturate (D2) — so the assertions target the robust core: a
    # substantial win share, strictly more wins than every *incremental*
    # competitor, and uniformly high absolute precision.
    wins = summary["wins"]
    assert wins["GloDyNE"] >= summary["cells"] // 4
    for incremental in ("DynGEM", "DynLINE", "DynTriad", "BCGDl", "BCGDg"):
        assert wins["GloDyNE"] >= wins[incremental], (
            f"GloDyNE won {wins['GloDyNE']} cells, {incremental} won "
            f"{wins[incremental]}"
        )
    assert summary["glodyne_mean"] > 0.5


# ----------------------------------------------------------------------
# orchestrator entry
# ----------------------------------------------------------------------
from repro.bench import register_bench  # noqa: E402


@register_bench("table1_graph_reconstruction", tags=("paper", "gr"))
def run_bench(tiny: bool) -> dict:
    text, summary = build_table1()
    return {
        "metrics": {
            "cells": summary["cells"],
            "glodyne_mean_precision": summary["glodyne_mean"],
            **{
                f"wins_{method.lower()}": count
                for method, count in summary["wins"].items()
            },
        },
        "config": {
            "datasets": DATASET_NAMES,
            "methods": METHOD_NAMES,
            "ks": GR_KS,
        },
        "summary": text,
    }
