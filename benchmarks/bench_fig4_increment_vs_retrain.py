"""Figure 4 — SGNS-increment vs SGNS-retrain per-step GR.

Paper shape to reproduce: reusing the previous model as the next step's
initialisation (incremental learning) is at least as good as retraining
from scratch at each step — usually better, thanks to knowledge transfer.
"""

from __future__ import annotations

import numpy as np

from common import SEEDS, bench_network, pick, write_result
from repro.core import SGNSIncrement, SGNSRetrain
from repro.experiments import render_table
from repro.tasks import per_step_precision

DATASETS = pick(["as733-sim", "elec-sim"], ["elec-sim"])
K_EVAL = 10
VARIANT_KWARGS = pick(
    dict(dim=32, num_walks=5, walk_length=20, window_size=5, epochs=2),
    dict(dim=16, num_walks=3, walk_length=12, window_size=3, epochs=1),
)


def per_step_curve(method_cls, dataset: str) -> np.ndarray:
    network = bench_network(dataset)
    curves = []
    for seed in SEEDS:
        method = method_cls(**VARIANT_KWARGS, seed=seed)
        embeddings = method.fit(network)
        curves.append(per_step_precision(embeddings, network, K_EVAL))
    return np.mean(np.asarray(curves), axis=0)


def build_fig4() -> tuple[str, dict]:
    sections = []
    summary = {}
    for dataset in DATASETS:
        increment_curve = per_step_curve(SGNSIncrement, dataset)
        retrain_curve = per_step_curve(SGNSRetrain, dataset)
        rows = [
            [
                str(t),
                f"{increment_curve[t] * 100:.2f}",
                f"{retrain_curve[t] * 100:.2f}",
            ]
            for t in range(len(increment_curve))
        ]
        sections.append(
            render_table(
                ["t", "SGNS-increment", "SGNS-retrain"],
                rows,
                title=f"Figure 4: MeanP@{K_EVAL} (%) per step on {dataset}",
            )
        )
        summary[dataset] = {
            "increment": increment_curve,
            "retrain": retrain_curve,
        }
    return "\n\n".join(sections), summary


def test_fig4_increment_vs_retrain(benchmark):
    text, summary = benchmark.pedantic(build_fig4, rounds=1, iterations=1)
    print("\n" + text)
    write_result("fig4_increment_vs_retrain.txt", text)

    for dataset, curves in summary.items():
        increment, retrain = curves["increment"], curves["retrain"]
        # Paper shape: increment >= retrain on average over the online
        # steps (t >= 1), i.e. warm starts help.
        assert np.mean(increment[1:]) >= np.mean(retrain[1:]) - 0.01, (
            f"incremental learning lost to retraining on {dataset}"
        )


# ----------------------------------------------------------------------
# orchestrator entry
# ----------------------------------------------------------------------
from repro.bench import register_bench  # noqa: E402


@register_bench("fig4_increment_vs_retrain", tags=("paper", "variants"))
def run_bench(tiny: bool) -> dict:
    text, summary = build_fig4()
    metrics = {}
    for dataset, curves in summary.items():
        slug = dataset.replace("-", "_")
        metrics[f"{slug}_increment_mean"] = float(
            np.mean(curves["increment"][1:])
        )
        metrics[f"{slug}_retrain_mean"] = float(np.mean(curves["retrain"][1:]))
    return {
        "metrics": metrics,
        "config": {"datasets": DATASETS, "k": K_EVAL, **VARIANT_KWARGS},
        "summary": text,
    }
