"""Figure 6 — the free hyper-parameter α: effectiveness vs time.

Paper shape to reproduce: GR MeanP@k rises with α and saturates well
before α = 1.0 (selecting ~all nodes), while wall-clock grows steadily —
i.e. a modest α already approximates SGNS-increment at a fraction of the
cost.
"""

from __future__ import annotations

import numpy as np

from common import SEEDS, bench_network, pick, write_result
from repro import GloDyNE
from repro.experiments import render_table, run_method
from repro.tasks import graph_reconstruction_over_time

DATASETS = pick(["as733-sim", "elec-sim"], ["elec-sim"])
ALPHAS = pick([0.01, 0.05, 0.1, 0.3, 0.5, 1.0], [0.05, 0.1, 1.0])
K_EVAL = 10
KWARGS = pick(
    dict(dim=32, num_walks=5, walk_length=20, window_size=5, epochs=2),
    dict(dim=16, num_walks=3, walk_length=12, window_size=3, epochs=1),
)


def sweep_alpha(dataset: str) -> dict[float, tuple[float, float]]:
    network = bench_network(dataset)
    curve = {}
    for alpha in ALPHAS:
        scores, times = [], []
        for seed in SEEDS:
            method = GloDyNE(alpha=alpha, seed=seed, **KWARGS)
            result = run_method(method, network)
            scores.append(
                graph_reconstruction_over_time(
                    result.embeddings, network, [K_EVAL]
                )[K_EVAL]
            )
            times.append(result.total_seconds)
        curve[alpha] = (float(np.mean(scores)), float(np.mean(times)))
    return curve


def build_fig6() -> tuple[str, dict]:
    sections = []
    summary = {}
    for dataset in DATASETS:
        curve = sweep_alpha(dataset)
        rows = [
            [f"{alpha}", f"{score * 100:.2f}", f"{seconds:.2f}s"]
            for alpha, (score, seconds) in curve.items()
        ]
        sections.append(
            render_table(
                ["alpha", f"MeanP@{K_EVAL} (%)", "time"],
                rows,
                title=f"Figure 6: alpha trade-off on {dataset}",
            )
        )
        summary[dataset] = curve
    return "\n\n".join(sections), summary


def test_fig6_alpha_tradeoff(benchmark):
    text, summary = benchmark.pedantic(build_fig6, rounds=1, iterations=1)
    print("\n" + text)
    write_result("fig6_alpha_tradeoff.txt", text)

    for dataset, curve in summary.items():
        smallest_alpha = ALPHAS[0]
        mid_alpha = 0.1
        full_alpha = 1.0
        # Paper shape 1: effectiveness rises from the tiniest alpha.
        assert curve[mid_alpha][0] > curve[smallest_alpha][0] - 0.02
        # Paper shape 2: alpha = 0.1 already approximates alpha = 1.0
        # ("increasing alpha to a certain level achieves a very
        # competitive performance as alpha = 1.0").
        assert curve[mid_alpha][0] > 0.85 * curve[full_alpha][0]
        # Paper shape 3: alpha = 1.0 costs much more time than alpha = 0.1.
        assert curve[full_alpha][1] > 1.5 * curve[mid_alpha][1]


# ----------------------------------------------------------------------
# orchestrator entry
# ----------------------------------------------------------------------
from repro.bench import register_bench  # noqa: E402


@register_bench("fig6_alpha_tradeoff", tags=("paper", "ablation"))
def run_bench(tiny: bool) -> dict:
    text, summary = build_fig6()
    metrics = {}
    for dataset, curve in summary.items():
        slug = dataset.replace("-", "_")
        for alpha, (score, seconds) in curve.items():
            alpha_slug = str(alpha).replace(".", "p")
            metrics[f"{slug}_a{alpha_slug}_precision"] = score
            metrics[f"{slug}_a{alpha_slug}_seconds"] = seconds
    return {
        "metrics": metrics,
        "config": {"datasets": DATASETS, "alphas": ALPHAS, "k": K_EVAL,
                   **KWARGS},
        "summary": text,
    }
