"""Serving-path benchmark: query throughput and index refresh latency.

Two claims measured, matching the serving subsystem's design:

1. **LSH vs brute-force QPS** — on a 5k-node community graph embedded by
   GloDyNE's offline stage, the multi-probe LSH backend must answer kNN
   queries >= 5x faster than the exact scan at recall@10 >= 0.9
   (candidates are re-ranked exactly, so recall is a coverage knob, not
   hash luck). Both single-query latency and micro-batched
   (``query_many``) throughput are reported, at the paper's d=128 and at
   a serving-grade d=256. The exact scan is one near-bandwidth BLAS gemv
   per query, so the LSH edge widens with dimensionality: hashing cost
   is fixed while the scan grows linearly — the acceptance gate is
   asserted at d=256, with d=128 reported alongside.
2. **Incremental refresh vs rebuild** — after a small-delta flush (only
   ~1% of embedding rows moved plus a few new nodes, GloDyNE's
   steady-state), re-hashing just the moved rows must beat rebuilding
   the index from scratch >= 5x.

The workload graph is 200 communities of 25 nodes plus random bridges —
the community structure GloDyNE-style embeddings actually exhibit, and
what gives kNN queries well-defined answers.

Run standalone for a quick smoke (CI uses this)::

    PYTHONPATH=src python benchmarks/bench_serving_qps.py --tiny

The full run (committed to benchmarks/results/) trains two 5k-node
embeddings and takes ~10 minutes::

    PYTHONPATH=src python benchmarks/bench_serving_qps.py
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from common import write_result
from repro import GloDyNE
from repro.experiments import render_table
from repro.graph.static import Graph
from repro.serving import BruteForceIndex, LSHIndex

# Tuned LSH operating point for ~5k rows: auto table bits (=11 at 5k),
# 8 tables, small candidate target — recall ~0.9 with ~2% of the matrix
# re-ranked per query.
LSH_PARAMS = dict(num_tables=8, min_candidates=48, seed=0)
BATCH_SIZE = 32


def community_graph(
    num_nodes: int, comm_size: int = 25, intra: int = 8,
    bridge_fraction: float = 0.3, seed: int = 0,
) -> Graph:
    """Ring-backbone communities with random intra edges + global bridges."""
    rng = np.random.default_rng(seed)
    graph = Graph()
    num_comm = max(1, num_nodes // comm_size)
    for c in range(num_comm):
        base = c * comm_size
        nodes = list(range(base, min(base + comm_size, num_nodes)))
        for i, u in enumerate(nodes):
            graph.add_edge(u, nodes[(i + 1) % len(nodes)])
        for _ in range(len(nodes) * intra // 2):
            i, j = rng.integers(0, len(nodes), size=2)
            if i != j:
                graph.add_edge(nodes[int(i)], nodes[int(j)])
    for _ in range(int(num_nodes * bridge_fraction)):
        u, v = rng.integers(0, num_nodes, size=2)
        if u != v:
            graph.add_edge(int(u), int(v))
    return graph


def embed_graph(graph: Graph, dim: int, seed: int = 0) -> np.ndarray:
    """Z^0 via GloDyNE's offline stage (full DeepWalk round)."""
    model = GloDyNE(
        dim=dim, num_walks=4, walk_length=20, window_size=5, epochs=3,
        batch_size=8192, seed=seed,
    )
    embeddings = model.update(graph)
    nodes = list(graph.nodes())
    return np.stack([embeddings[n] for n in nodes]).astype(np.float32)


def _time_single(index, queries: np.ndarray, k: int) -> tuple[float, list]:
    results = []
    started = time.perf_counter()
    for q in queries:
        results.append(index.query(q, k)[0])
    return time.perf_counter() - started, results


def _time_batched(index, queries: np.ndarray, k: int) -> tuple[float, list]:
    results = []
    started = time.perf_counter()
    for s in range(0, len(queries), BATCH_SIZE):
        results.extend(
            r[0] for r in index.query_many(queries[s: s + BATCH_SIZE], k)
        )
    return time.perf_counter() - started, results


def run_query_throughput(
    num_nodes: int = 5000, dim: int = 128, num_queries: int = 400, k: int = 10,
    matrix: np.ndarray | None = None,
) -> tuple[str, dict]:
    if matrix is None:
        matrix = embed_graph(community_graph(num_nodes), dim)
    rng = np.random.default_rng(1)
    queries = matrix[rng.choice(matrix.shape[0], num_queries, replace=False)]

    brute = BruteForceIndex()
    brute.build(matrix)
    lsh = LSHIndex(**LSH_PARAMS)
    lsh.build(matrix)

    # Warm pass (bucket dicts, BLAS) outside the timed runs.
    for index in (brute, lsh):
        _time_single(index, queries[:20], k)
        _time_batched(index, queries[:BATCH_SIZE], k)

    brute_s, exact_results = _time_single(brute, queries, k)
    lsh_s, approx_results = _time_single(lsh, queries, k)
    brute_batch_s, _ = _time_batched(brute, queries, k)
    lsh_batch_s, _ = _time_batched(lsh, queries, k)

    hits = sum(
        len(set(a.tolist()) & set(e.tolist()))
        for a, e in zip(approx_results, exact_results)
    )
    recall = hits / (num_queries * k)
    stats = {
        "nodes": int(matrix.shape[0]),
        "dim": int(matrix.shape[1]),
        "queries": num_queries,
        "brute_qps": num_queries / brute_s,
        "lsh_qps": num_queries / lsh_s,
        "brute_batch_qps": num_queries / brute_batch_s,
        "lsh_batch_qps": num_queries / lsh_batch_s,
        "speedup": brute_s / max(lsh_s, 1e-9),
        "batch_speedup": brute_batch_s / max(lsh_batch_s, 1e-9),
        "recall_at_k": recall,
    }
    text = render_table(
        ["backend", "single QPS", "latency", f"batch{BATCH_SIZE} QPS",
         "recall@10"],
        [
            [
                "brute force (exact)",
                f"{stats['brute_qps']:,.0f}",
                f"{brute_s / num_queries * 1e6:.0f}us",
                f"{stats['brute_batch_qps']:,.0f}",
                "1.000",
            ],
            [
                "LSH (multi-probe)",
                f"{stats['lsh_qps']:,.0f}",
                f"{lsh_s / num_queries * 1e6:.0f}us",
                f"{stats['lsh_batch_qps']:,.0f}",
                f"{recall:.3f}",
            ],
            [
                "speedup",
                f"{stats['speedup']:.1f}x",
                "",
                f"{stats['batch_speedup']:.1f}x",
                "",
            ],
        ],
        title=(
            f"kNN throughput: {stats['nodes']} nodes x d={stats['dim']}, "
            f"{num_queries} queries, k={k}"
        ),
    )
    return text, stats


def run_refresh_latency(
    num_nodes: int = 5000, dim: int = 128, moved_fraction: float = 0.01,
    new_rows: int = 25, rounds: int = 10, matrix: np.ndarray | None = None,
) -> tuple[str, dict]:
    """Small-delta flush: re-hash moved rows vs rebuild from scratch."""
    rng = np.random.default_rng(2)
    if matrix is None:
        matrix = embed_graph(community_graph(num_nodes), dim)
    dim = int(matrix.shape[1])
    num_moved = max(1, int(matrix.shape[0] * moved_fraction))

    incremental = LSHIndex(**LSH_PARAMS)
    incremental.build(matrix)

    current = matrix
    refresh_s = rebuild_s = 0.0
    touched = 0
    for _ in range(rounds):
        updated = np.vstack(
            [current, rng.standard_normal((new_rows, dim)).astype(np.float32)]
        )
        moved = rng.choice(current.shape[0], num_moved, replace=False)
        updated[moved] += (
            rng.standard_normal((num_moved, dim)).astype(np.float32) * 0.05
        )

        started = time.perf_counter()
        touched += incremental.refresh(updated, tolerance=1e-7)
        refresh_s += time.perf_counter() - started

        # The rebuild reuses the serving index's frozen configuration
        # (auto-sized bits + hashing center), exactly as a production
        # re-index would.
        started = time.perf_counter()
        rebuilt = LSHIndex(
            num_tables=incremental.num_tables,
            num_bits=incremental.num_bits,
            seed=incremental.seed,
            center=incremental.center,
        )
        rebuilt.build(updated)
        rebuild_s += time.perf_counter() - started

        current = updated

    stats = {
        "rounds": rounds,
        "moved_per_round": num_moved,
        "new_per_round": new_rows,
        "touched": touched,
        "refresh_s": refresh_s,
        "rebuild_s": rebuild_s,
        "speedup": rebuild_s / max(refresh_s, 1e-9),
    }
    text = render_table(
        ["path", "seconds", "per flush"],
        [
            [
                f"incremental refresh ({num_moved}+{new_rows} rows)",
                f"{refresh_s:.4f}s",
                f"{refresh_s / rounds * 1e3:.2f}ms",
            ],
            [
                "full rebuild",
                f"{rebuild_s:.4f}s",
                f"{rebuild_s / rounds * 1e3:.2f}ms",
            ],
            ["speedup", f"{stats['speedup']:.1f}x", ""],
        ],
        title=(
            f"index refresh after a small-delta flush: {rounds} flushes on "
            f"{matrix.shape[0]}+ rows x d={dim}"
        ),
    )
    return text, stats


def run_full_suite() -> list[tuple[str, dict]]:
    """The committed-results profile: both dims share one 5k graph."""
    graph = community_graph(5000)
    mat128 = embed_graph(graph, 128)
    mat256 = embed_graph(graph, 256)
    return [
        run_query_throughput(matrix=mat128),
        run_query_throughput(matrix=mat256),
        run_refresh_latency(matrix=mat128),
    ]


def _check_acceptance(sections: list[tuple[str, dict]]) -> None:
    qps128, qps256, refresh = (stats for _, stats in sections)
    assert qps128["recall_at_k"] >= 0.9, qps128
    assert qps256["recall_at_k"] >= 0.9, qps256
    assert qps256["speedup"] >= 5.0, qps256
    assert refresh["speedup"] >= 5.0, refresh


# ----------------------------------------------------------------------
# pytest entry points (run via `pytest benchmarks/bench_serving_qps.py`)
# ----------------------------------------------------------------------
def test_serving_acceptance(benchmark):
    sections = benchmark.pedantic(run_full_suite, rounds=1, iterations=1)
    text = "\n\n".join(section_text for section_text, _ in sections)
    print("\n" + text)
    write_result("serving_qps.txt", text)
    _check_acceptance(sections)


# ----------------------------------------------------------------------
# standalone entry: --tiny for the CI smoke, full otherwise
# ----------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tiny", action="store_true",
        help="CI smoke profile: seconds, not minutes; no acceptance gate",
    )
    args = parser.parse_args(argv)

    if args.tiny:
        matrix = embed_graph(community_graph(600), 32)
        sections = [
            run_query_throughput(num_queries=100, matrix=matrix),
            run_refresh_latency(new_rows=10, rounds=4, matrix=matrix),
        ]
    else:
        sections = run_full_suite()
    for text, _ in sections:
        print(text)
        print()
    if not args.tiny:
        _check_acceptance(sections)
        write_result(
            "serving_qps.txt",
            "\n\n".join(section_text for section_text, _ in sections),
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())


# ----------------------------------------------------------------------
# orchestrator entry
# ----------------------------------------------------------------------
from repro.bench import register_bench  # noqa: E402


@register_bench("serving_qps", tags=("perf", "serving"))
def run_bench(tiny: bool) -> dict:
    if tiny:
        matrix = embed_graph(community_graph(600), 32)
        sections = [
            run_query_throughput(num_queries=100, matrix=matrix),
            run_refresh_latency(new_rows=10, rounds=4, matrix=matrix),
        ]
        qps, refresh = (stats for _, stats in sections)
        metrics = {
            "lsh_single_qps": qps["lsh_qps"],
            "brute_single_qps": qps["brute_qps"],
            "qps_speedup": qps["speedup"],
            "recall_at_k": qps["recall_at_k"],
            "refresh_speedup": refresh["speedup"],
        }
    else:
        sections = run_full_suite()
        qps128, qps256, refresh = (stats for _, stats in sections)
        metrics = {
            "lsh_single_qps_d128": qps128["lsh_qps"],
            "brute_single_qps_d128": qps128["brute_qps"],
            "qps_speedup_d128": qps128["speedup"],
            "recall_at_k_d128": qps128["recall_at_k"],
            "lsh_single_qps_d256": qps256["lsh_qps"],
            "brute_single_qps_d256": qps256["brute_qps"],
            "qps_speedup_d256": qps256["speedup"],
            "recall_at_k_d256": qps256["recall_at_k"],
            "refresh_speedup": refresh["speedup"],
        }
    return {
        "metrics": metrics,
        "config": {"lsh": LSH_PARAMS, "batch_size": BATCH_SIZE,
                   "tiny_nodes": 600 if tiny else 5000},
        "summary": "\n\n".join(text for text, _ in sections),
    }
