"""Ablation — does the change-biased softmax (Eq. 3-4) matter?

DESIGN.md §6 calls out two separable ingredients in GloDyNE's selection:
(a) the *diversity* from one-representative-per-partition-cell, and
(b) the *bias* toward accumulated topological change inside each cell.

Table 5 isolates (a) by comparing S4 against S1-S3. This bench isolates
(b): `s4-uniform` keeps the partition but samples representatives
uniformly. Expected shape: on a churny dataset the bias helps (changed
regions get refreshed sooner); the gap is modest because at α = 0.1 every
cell is revisited often either way — consistent with the paper's framing
of diversity as the primary mechanism.
"""

from __future__ import annotations

import numpy as np

from common import SEEDS, bench_network, pick, write_result
from repro import GloDyNE
from repro.experiments import format_mean_std, render_table, run_method
from repro.tasks import graph_reconstruction_over_time, link_prediction_over_time

DATASETS = pick(["as733-sim", "elec-sim"], ["elec-sim"])
K_EVAL = 10
KWARGS = pick(
    dict(dim=32, alpha=0.1, num_walks=5, walk_length=20, window_size=5,
         epochs=2),
    dict(dim=16, alpha=0.1, num_walks=3, walk_length=12, window_size=3,
         epochs=1),
)


def run_variant(dataset: str, strategy: str) -> dict[str, np.ndarray]:
    network = bench_network(dataset)
    gr, lp = [], []
    for seed in SEEDS:
        method = GloDyNE(strategy=strategy, seed=seed, **KWARGS)
        result = run_method(method, network)
        gr.append(
            graph_reconstruction_over_time(
                result.embeddings, network, [K_EVAL]
            )[K_EVAL]
        )
        lp.append(
            link_prediction_over_time(
                result.embeddings, network, np.random.default_rng(seed)
            )
        )
    return {"gr": np.asarray(gr), "lp": np.asarray(lp)}


def build_ablation() -> tuple[str, dict]:
    rows = []
    summary = {}
    for dataset in DATASETS:
        biased = run_variant(dataset, "s4")
        uniform = run_variant(dataset, "s4-uniform")
        rows.append(
            [
                dataset,
                format_mean_std(biased["gr"]),
                format_mean_std(uniform["gr"]),
                format_mean_std(biased["lp"]),
                format_mean_std(uniform["lp"]),
            ]
        )
        summary[dataset] = {"biased": biased, "uniform": uniform}
    text = render_table(
        [
            "dataset",
            "GR s4 (biased)",
            "GR s4-uniform",
            "LP s4 (biased)",
            "LP s4-uniform",
        ],
        rows,
        title="Ablation: change-biased vs uniform in-cell selection (%)",
    )
    return text, summary


def test_ablation_reservoir_bias(benchmark):
    text, summary = benchmark.pedantic(build_ablation, rounds=1, iterations=1)
    print("\n" + text)
    write_result("ablation_reservoir_bias.txt", text)

    # Both variants must be strong (diversity does the heavy lifting)...
    for dataset, result in summary.items():
        assert result["uniform"]["gr"].mean() > 0.4
        # ... and the biased variant must not be clearly *worse* — the
        # reservoir's job is to never lose to uniform while catching
        # drifting regions sooner.
        assert (
            result["biased"]["gr"].mean()
            >= result["uniform"]["gr"].mean() - 0.05
        )


# ----------------------------------------------------------------------
# orchestrator entry
# ----------------------------------------------------------------------
from repro.bench import register_bench  # noqa: E402


@register_bench("ablation_reservoir", tags=("ablation",))
def run_bench(tiny: bool) -> dict:
    text, summary = build_ablation()
    metrics = {}
    for dataset, result in summary.items():
        slug = dataset.replace("-", "_")
        metrics[f"{slug}_gr_biased"] = float(result["biased"]["gr"].mean())
        metrics[f"{slug}_gr_uniform"] = float(result["uniform"]["gr"].mean())
        metrics[f"{slug}_lp_biased"] = float(result["biased"]["lp"].mean())
        metrics[f"{slug}_lp_uniform"] = float(result["uniform"]["lp"].mean())
    return {
        "metrics": metrics,
        "config": {"datasets": DATASETS, "k": K_EVAL, **KWARGS},
        "summary": text,
    }
