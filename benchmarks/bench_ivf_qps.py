"""IVF serving benchmark: partition-cell coarse quantization vs LSH.

The claim under test: GloDyNE's own Step 1 partition cells make a better
coarse quantizer for serving-tier kNN than generic LSH buckets, because
the (K, eps) partition already groups topological neighbours — the rows
a cosine query over their embeddings wants scanned together. Measured on
the same grid as ``bench_serving_qps`` (5k-node community graph, d=128,
400 queries, k=10):

1. **QPS vs recall** — brute force, multi-probe LSH (the committed
   ``bench_serving_qps`` operating point), and IVF over partition cells
   at several ``nprobe`` settings. The acceptance gate: at some probed
   operating point IVF answers at least as many queries per second as
   LSH while holding recall@10 >= 0.92. Single-threaded per query on
   every backend, so the comparison is valid on a 1-core host.
2. **Incremental refresh vs rebuild** — after a small-delta flush (~1%
   of rows moved, a few appended, a little partition churn), re-assigning
   just the movers and recomputing only their cells' centroids must beat
   rebuilding the IVF index from scratch.

Run standalone for a quick smoke (CI uses this)::

    PYTHONPATH=src python benchmarks/bench_ivf_qps.py --tiny

The full run (committed to benchmarks/results/) trains one 5k-node
d=128 embedding and takes a few minutes::

    PYTHONPATH=src python benchmarks/bench_ivf_qps.py
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from bench_serving_qps import (
    BATCH_SIZE,
    LSH_PARAMS,
    _time_batched,
    _time_single,
    community_graph,
    embed_graph,
)
from common import write_result
from repro.experiments import render_table
from repro.graph.static import Graph
from repro.partition import IncrementalPartitioner
from repro.serving import BruteForceIndex, IVFIndex, LSHIndex

#: nprobe sweep: the QPS-vs-recall trade-off knob. With K = N/25 cells
#: (one per planted community) probing P cells exact-scans ~25*P rows.
IVF_NPROBES = (4, 8, 16)
COMM_SIZE = 25
RECALL_GATE = 0.92


def partition_cells(graph: Graph, seed: int = 0) -> np.ndarray:
    """Step 1 cells for the bench graph, row-aligned with its embedding.

    Runs the same :class:`IncrementalPartitioner` the trainer owns with
    ``K = |V| / COMM_SIZE`` — the serving layer receives exactly this
    assignment as ``partition_cells`` version metadata.
    """
    nodes = list(graph.nodes())
    k = max(1, len(nodes) // COMM_SIZE)
    result = IncrementalPartitioner(seed=seed).partition(graph, k)
    return np.asarray(
        [result.assignment[node] for node in nodes], dtype=np.int64
    )


def _recall(approx: list, exact: list, k: int) -> float:
    hits = sum(
        len(set(a.tolist()) & set(e.tolist()))
        for a, e in zip(approx, exact)
    )
    return hits / (len(exact) * k)


def run_qps_grid(
    matrix: np.ndarray, assignment: np.ndarray,
    num_queries: int = 400, k: int = 10,
) -> tuple[str, dict]:
    """Brute / LSH / IVF-at-each-nprobe throughput and recall@k."""
    rng = np.random.default_rng(1)
    queries = matrix[rng.choice(matrix.shape[0], num_queries, replace=False)]

    brute = BruteForceIndex()
    brute.build(matrix)
    lsh = LSHIndex(**LSH_PARAMS)
    lsh.build(matrix)
    ivfs = {}
    for nprobe in IVF_NPROBES:
        ivf = IVFIndex(nprobe=nprobe)
        ivf.build(matrix, assignment=assignment)
        ivfs[nprobe] = ivf

    # Warm pass (member arrays, BLAS) outside the timed runs.
    for index in (brute, lsh, *ivfs.values()):
        _time_single(index, queries[:20], k)
        _time_batched(index, queries[:BATCH_SIZE], k)

    brute_s, exact_results = _time_single(brute, queries, k)
    lsh_s, lsh_results = _time_single(lsh, queries, k)
    lsh_batch_s, _ = _time_batched(lsh, queries, k)
    lsh_recall = _recall(lsh_results, exact_results, k)

    table_rows = [
        [
            "brute force (exact)",
            f"{num_queries / brute_s:,.0f}",
            "",
            "1.000",
        ],
        [
            "LSH (multi-probe)",
            f"{num_queries / lsh_s:,.0f}",
            f"{num_queries / lsh_batch_s:,.0f}",
            f"{lsh_recall:.3f}",
        ],
    ]
    stats = {
        "nodes": int(matrix.shape[0]),
        "dim": int(matrix.shape[1]),
        "cells": int(assignment.max()) + 1,
        "queries": num_queries,
        "brute_qps": num_queries / brute_s,
        "lsh_qps": num_queries / lsh_s,
        "lsh_batch_qps": num_queries / lsh_batch_s,
        "lsh_recall": lsh_recall,
        "ivf": {},
    }
    for nprobe, ivf in ivfs.items():
        ivf_s, ivf_results = _time_single(ivf, queries, k)
        ivf_batch_s, _ = _time_batched(ivf, queries, k)
        recall = _recall(ivf_results, exact_results, k)
        stats["ivf"][nprobe] = {
            "qps": num_queries / ivf_s,
            "batch_qps": num_queries / ivf_batch_s,
            "recall": recall,
        }
        table_rows.append(
            [
                f"IVF cells (nprobe={nprobe})",
                f"{num_queries / ivf_s:,.0f}",
                f"{num_queries / ivf_batch_s:,.0f}",
                f"{recall:.3f}",
            ]
        )
    # The committed operating point: fastest IVF config that clears the
    # recall gate (the QPS-vs-recall frontier's gated knee).
    qualifying = {
        nprobe: entry
        for nprobe, entry in stats["ivf"].items()
        if entry["recall"] >= RECALL_GATE
    }
    if qualifying:
        best = max(qualifying, key=lambda nprobe: qualifying[nprobe]["qps"])
        stats["ivf_nprobe"] = best
        stats["ivf_qps"] = qualifying[best]["qps"]
        stats["ivf_batch_qps"] = qualifying[best]["batch_qps"]
        stats["ivf_recall"] = qualifying[best]["recall"]
        stats["ivf_vs_lsh"] = stats["ivf_qps"] / stats["lsh_qps"]
    text = render_table(
        ["backend", "single QPS", f"batch{BATCH_SIZE} QPS", "recall@10"],
        table_rows,
        title=(
            f"IVF over {stats['cells']} partition cells: {stats['nodes']} "
            f"nodes x d={stats['dim']}, {num_queries} queries, k={k}"
        ),
    )
    return text, stats


def run_ivf_refresh(
    matrix: np.ndarray, assignment: np.ndarray,
    moved_fraction: float = 0.01, new_rows: int = 25, rounds: int = 10,
) -> tuple[str, dict]:
    """Small-delta flush: dirty-cell refresh vs IVF rebuild from scratch."""
    rng = np.random.default_rng(2)
    num_cells = int(assignment.max()) + 1
    num_moved = max(1, int(matrix.shape[0] * moved_fraction))
    dim = int(matrix.shape[1])

    incremental = IVFIndex(nprobe=8)
    incremental.build(matrix, assignment=assignment)

    current, assign = matrix, assignment
    refresh_s = rebuild_s = 0.0
    touched = 0
    for _ in range(rounds):
        updated = np.vstack(
            [current, rng.standard_normal((new_rows, dim)).astype(np.float32)]
        )
        moved = rng.choice(current.shape[0], num_moved, replace=False)
        updated[moved] += (
            rng.standard_normal((num_moved, dim)).astype(np.float32) * 0.05
        )
        # Partition churn rides along: the partitioner re-homes a few of
        # the moved nodes and assigns every appended one.
        assign = np.concatenate(
            [assign, rng.integers(0, num_cells, new_rows)]
        )
        drift = moved[: max(1, num_moved // 4)]
        assign = assign.copy()
        assign[drift] = rng.integers(0, num_cells, drift.size)

        started = time.perf_counter()
        touched += incremental.refresh(
            updated, tolerance=1e-7, assignment=assign
        )
        refresh_s += time.perf_counter() - started

        started = time.perf_counter()
        rebuilt = IVFIndex(nprobe=8)
        rebuilt.build(updated, assignment=assign)
        rebuild_s += time.perf_counter() - started

        current = updated

    stats = {
        "rounds": rounds,
        "moved_per_round": num_moved,
        "new_per_round": new_rows,
        "touched": touched,
        "refresh_s": refresh_s,
        "rebuild_s": rebuild_s,
        "speedup": rebuild_s / max(refresh_s, 1e-9),
    }
    text = render_table(
        ["path", "seconds", "per flush"],
        [
            [
                f"incremental refresh ({num_moved}+{new_rows} rows)",
                f"{refresh_s:.4f}s",
                f"{refresh_s / rounds * 1e3:.2f}ms",
            ],
            [
                "full rebuild",
                f"{rebuild_s:.4f}s",
                f"{rebuild_s / rounds * 1e3:.2f}ms",
            ],
            ["speedup", f"{stats['speedup']:.1f}x", ""],
        ],
        title=(
            f"IVF refresh after a small-delta flush: {rounds} flushes on "
            f"{matrix.shape[0]}+ rows x d={dim}, {num_cells} cells"
        ),
    )
    return text, stats


def run_full_suite() -> list[tuple[str, dict]]:
    """The committed-results profile: one 5k-node d=128 embedding."""
    graph = community_graph(5000)
    matrix = embed_graph(graph, 128)
    assignment = partition_cells(graph)
    return [
        run_qps_grid(matrix, assignment),
        run_ivf_refresh(matrix, assignment),
    ]


def _tiny_suite() -> list[tuple[str, dict]]:
    graph = community_graph(600)
    matrix = embed_graph(graph, 32)
    assignment = partition_cells(graph)
    return [
        run_qps_grid(matrix, assignment, num_queries=100),
        run_ivf_refresh(matrix, assignment, new_rows=10, rounds=4),
    ]


def _check_acceptance(sections: list[tuple[str, dict]]) -> None:
    qps, refresh = (stats for _, stats in sections)
    # The headline gate: some IVF operating point beats LSH throughput
    # while clearing the recall floor.
    assert "ivf_qps" in qps, f"no nprobe reached recall {RECALL_GATE}: {qps}"
    assert qps["ivf_recall"] >= RECALL_GATE, qps
    assert qps["ivf_qps"] >= qps["lsh_qps"], qps
    assert refresh["speedup"] >= 1.5, refresh


# ----------------------------------------------------------------------
# pytest entry points (run via `pytest benchmarks/bench_ivf_qps.py`)
# ----------------------------------------------------------------------
def test_ivf_acceptance(benchmark):
    sections = benchmark.pedantic(run_full_suite, rounds=1, iterations=1)
    text = "\n\n".join(section_text for section_text, _ in sections)
    print("\n" + text)
    write_result("ivf_qps.txt", text)
    _check_acceptance(sections)


# ----------------------------------------------------------------------
# standalone entry: --tiny for the CI smoke, full otherwise
# ----------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tiny", action="store_true",
        help="CI smoke profile: seconds, not minutes; no acceptance gate",
    )
    args = parser.parse_args(argv)

    sections = _tiny_suite() if args.tiny else run_full_suite()
    for text, _ in sections:
        print(text)
        print()
    if not args.tiny:
        _check_acceptance(sections)
        write_result(
            "ivf_qps.txt",
            "\n\n".join(section_text for section_text, _ in sections),
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())


# ----------------------------------------------------------------------
# orchestrator entry
# ----------------------------------------------------------------------
from repro.bench import register_bench  # noqa: E402


@register_bench("ivf_qps", tags=("perf", "serving"))
def run_bench(tiny: bool) -> dict:
    sections = _tiny_suite() if tiny else run_full_suite()
    qps, refresh = (stats for _, stats in sections)
    metrics = {
        "brute_single_qps": qps["brute_qps"],
        "lsh_single_qps": qps["lsh_qps"],
        "lsh_recall_at_k": qps["lsh_recall"],
        "refresh_speedup": refresh["speedup"],
    }
    for nprobe, entry in qps["ivf"].items():
        metrics[f"ivf_qps_nprobe{nprobe}"] = entry["qps"]
        metrics[f"ivf_recall_nprobe{nprobe}"] = entry["recall"]
    caveats = []
    if "ivf_qps" in qps:
        metrics["ivf_single_qps"] = qps["ivf_qps"]
        metrics["ivf_batch_qps"] = qps["ivf_batch_qps"]
        metrics["ivf_recall_at_k"] = qps["ivf_recall"]
        metrics["ivf_vs_lsh_qps"] = qps["ivf_vs_lsh"]
        metrics["ivf_nprobe"] = qps["ivf_nprobe"]
    else:
        caveats.append(
            f"no IVF operating point reached recall {RECALL_GATE} "
            "on this profile"
        )
    if not tiny:
        _check_acceptance(sections)
    else:
        caveats.append("tiny profile: gate reported but not asserted")
    return {
        "metrics": metrics,
        "config": {
            "lsh": LSH_PARAMS,
            "nprobes": list(IVF_NPROBES),
            "comm_size": COMM_SIZE,
            "recall_gate": RECALL_GATE,
            "batch_size": BATCH_SIZE,
            "nodes": 600 if tiny else 5000,
        },
        "summary": "\n\n".join(text for text, _ in sections),
        "caveats": caveats,
    }
