"""Figure 2 — effectiveness (LP AUC) vs efficiency (wall-clock) scatter.

Paper shape to reproduce: GloDyNE sits at (or on the frontier of) the
top-left corner — best or near-best AUC at the lowest cost among the
Skip-Gram regime. The bench emits the scatter's coordinates as a table
(one row per method per dataset) plus a Pareto summary.
"""

from __future__ import annotations


from common import DATASET_NAMES, METHOD_NAMES, collect_metric, write_result
from repro.experiments import render_table


# The substrate caveat (EXPERIMENTS.md deviation D2): pure-numpy SGNS has
# a far larger per-pair constant than the BLAS matmuls driving BCGD /
# DynGEM at toy sizes, so absolute seconds across *regimes* don't
# reproduce at n ~ 10^2-10^3. The comparison our substrate preserves
# faithfully is within the Skip-Gram regime — GloDyNE vs tNE share the
# exact same walk + SGNS code and differ only in how much work they do.
SKIPGRAM_REGIME = ["tNE", "GloDyNE"]


def build_fig2() -> tuple[str, dict]:
    rows = []
    dominated_by_tne = 0
    close_to_best = 0
    evaluable = 0
    for dataset in DATASET_NAMES:
        points: dict[str, tuple[float, float]] = {}
        for method in METHOD_NAMES:
            auc = collect_metric(method, dataset, lambda r: r["lp"])
            seconds = collect_metric(method, dataset, lambda r: r["time"])
            if auc is None or seconds is None:
                rows.append([dataset, method, "n/a", "n/a", ""])
                continue
            points[method] = (float(seconds.mean()), float(auc.mean()))
        # Pareto frontier over all methods (reported, not asserted: D2).
        for method, (seconds, auc) in points.items():
            dominated = any(
                other_s < seconds and other_a > auc
                for other_m, (other_s, other_a) in points.items()
                if other_m != method
            )
            rows.append(
                [
                    dataset,
                    method,
                    f"{seconds:.2f}s",
                    f"{auc * 100:.2f}",
                    "" if dominated else "pareto",
                ]
            )
        if "GloDyNE" in points:
            evaluable += 1
            glodyne_s, glodyne_a = points["GloDyNE"]
            best_auc = max(a for _, a in points.values())
            if glodyne_a >= best_auc - 0.05:
                close_to_best += 1
            if "tNE" in points:
                tne_s, tne_a = points["tNE"]
                if tne_s < glodyne_s and tne_a > glodyne_a:
                    dominated_by_tne += 1
    text = render_table(
        ["dataset", "method", "time", "LP AUC", "frontier"],
        rows,
        title="Figure 2: effectiveness vs efficiency (scatter coordinates)",
    )
    summary = {
        "dominated_by_tne": dominated_by_tne,
        "close_to_best": close_to_best,
        "evaluable": evaluable,
    }
    return text, summary


def test_fig2_effectiveness_efficiency(benchmark):
    text, summary = benchmark.pedantic(build_fig2, rounds=1, iterations=1)
    print("\n" + text)
    write_result("fig2_effectiveness_efficiency.txt", text)

    # Paper shape, restricted to the regime the substrate preserves
    # (D2): within the Skip-Gram family GloDyNE is never dominated — it
    # is always the cheaper of the two, so tNE can't be both faster and
    # better.
    assert summary["dominated_by_tne"] == 0
    # And GloDyNE's effectiveness stays near the per-dataset best AUC on
    # at least half the datasets (the 'top-left corner' effectiveness).
    assert summary["close_to_best"] >= summary["evaluable"] / 2


# ----------------------------------------------------------------------
# orchestrator entry
# ----------------------------------------------------------------------
from repro.bench import register_bench  # noqa: E402


@register_bench("fig2_effectiveness_efficiency", tags=("paper", "perf"))
def run_bench(tiny: bool) -> dict:
    text, summary = build_fig2()
    return {
        "metrics": dict(summary),
        "config": {
            "datasets": DATASET_NAMES,
            "methods": METHOD_NAMES,
            "skipgram_regime": SKIPGRAM_REGIME,
        },
        "summary": text,
    }
