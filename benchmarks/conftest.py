"""Benchmark-suite configuration."""

import sys
from pathlib import Path

# Make `import common` work regardless of invocation directory.
sys.path.insert(0, str(Path(__file__).parent))
