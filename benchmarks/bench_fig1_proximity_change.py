"""Figure 1 b-c — shortest-path modifications per changed edge.

Paper shape to reproduce: between consecutive snapshots, the total
all-pairs shortest-path modification divided by the number of changed
edges is large (hundreds+ on Elec/HepPh-scale graphs) — a handful of edge
events perturbs proximity globally via high-order propagation.
"""

from __future__ import annotations

import numpy as np

from common import bench_network, pick, write_result
from repro.analysis import proximity_change_profile
from repro.experiments import render_table

DATASETS = pick(["elec-sim", "hepph-sim", "fbw-sim"], ["elec-sim"])


def build_fig1_proximity() -> tuple[str, dict]:
    rows = []
    summary = {}
    rng = np.random.default_rng(0)
    for dataset in DATASETS:
        network = bench_network(dataset)
        profile = proximity_change_profile(network, max_sources=48, rng=rng)
        changed = [p for p in profile if p.num_changed_edges > 0]
        per_edge = [p.change_per_edge for p in changed]
        initial = changed[0].change_per_edge if changed else 0.0
        middle = changed[len(changed) // 2].change_per_edge if changed else 0.0
        final = changed[-1].change_per_edge if changed else 0.0
        mean = float(np.mean(per_edge)) if per_edge else 0.0
        rows.append(
            [
                dataset,
                f"{initial:.1f}",
                f"{middle:.1f}",
                f"{final:.1f}",
                f"{mean:.1f}",
            ]
        )
        summary[dataset] = mean
    text = render_table(
        ["dataset", "initial", "middle", "final", "mean"],
        rows,
        title="Figure 1c: Δsp per changed edge",
    )
    return text, summary


def test_fig1_proximity_change(benchmark):
    text, summary = benchmark.pedantic(
        build_fig1_proximity, rounds=1, iterations=1
    )
    print("\n" + text)
    write_result("fig1_proximity_change.txt", text)

    # Paper shape: modification per edge is large — far above the 1.0 that
    # purely local damage would produce. (The paper's absolute values,
    # 82-21k, depend on |V|^2; our graphs are ~100x smaller.)
    for dataset, mean in summary.items():
        assert mean > 5.0, f"Δsp/edge suspiciously small on {dataset}"


# ----------------------------------------------------------------------
# orchestrator entry
# ----------------------------------------------------------------------
from repro.bench import register_bench  # noqa: E402


@register_bench("fig1_proximity_change", tags=("paper", "analysis"))
def run_bench(tiny: bool) -> dict:
    text, summary = build_fig1_proximity()
    return {
        "metrics": {
            f"{dataset.replace('-', '_')}_mean_dsp_per_edge": mean
            for dataset, mean in summary.items()
        },
        "config": {"datasets": DATASETS, "max_sources": 48},
        "summary": text,
    }
