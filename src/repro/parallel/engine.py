"""Process-pool walk generation over shared-memory CSR buffers.

The hot loop of every snapshot update is Step 3: ``r`` truncated walks of
length ``l`` from each selected node. Walks from different start nodes
are independent, so the engine

1. freezes the snapshot CSR into ``multiprocessing.shared_memory`` blocks
   (:class:`SharedCSR`) — workers attach zero-copy views instead of
   unpickling megabytes of adjacency per task;
2. splits the start nodes into fixed-size chunks (:func:`chunk_plan`);
3. spawns one deterministic child ``SeedSequence`` per chunk
   (:func:`spawn_chunk_seeds`) and walks each chunk with its own
   ``Generator``;
4. concatenates the chunk results in chunk order.

Because seeding is per *chunk* and chunk boundaries depend only on
``chunk_starts``, the output is invariant to the worker count and to
whether a pool was used at all — ``workers=2`` equals ``workers=8``
equals the in-process fallback, bit for bit. ``workers=1`` skips the
engine and runs the legacy serial path on the caller's rng unchanged.

Pool processes are reused across calls (one pool per worker count,
shut down atexit); a pool that cannot be created or breaks mid-flight
degrades to in-process chunk execution with identical results.
"""

from __future__ import annotations

import atexit
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import shared_memory

import numpy as np

from repro.graph.csr import CSRAdjacency
from repro.walks.corpus import PairCorpus, StreamedCorpusBuilder, build_pair_corpus
from repro.walks.random_walk import simulate_walks

#: Start nodes per chunk. Part of the determinism contract: changing it
#: changes which child SeedSequence drives which walk, so it is a config
#: knob (``GloDyNEConfig.chunk_starts``) recorded in bench telemetry, not
#: something derived from the worker count.
DEFAULT_CHUNK_STARTS = 128

_MAX_ENTROPY = 2**63


class SharedCSR:
    """A CSR adjacency copied into shared-memory blocks for worker attach.

    Only the arrays the walk steppers touch are shared: ``indptr`` and
    ``indices`` always, plus the zero-prefixed global cumulative weight
    array for non-uniform graphs (the steppers never read raw weights).
    Use as a context manager; exit closes *and unlinks* the blocks.
    """

    def __init__(self, csr: CSRAdjacency, backend: str = "python") -> None:
        self._blocks: list[shared_memory.SharedMemory] = []
        arrays = {"indptr": csr.indptr, "indices": csr.indices}
        if not csr.is_uniform:
            arrays["gcum"] = csr.global_cumulative_weights()
            if backend != "python":
                # Non-python backends step weighted walks through per-row
                # alias tables instead of the global cumsum; workers need
                # the flattened tables attached (built once, parent-side).
                probability, alias = csr.row_alias_tables()
                arrays["aprob"] = probability
                arrays["aalias"] = alias
        described = {}
        try:
            for name, array in arrays.items():
                block = shared_memory.SharedMemory(
                    create=True, size=max(1, array.nbytes)
                )
                self._blocks.append(block)
                view = np.ndarray(array.shape, dtype=array.dtype, buffer=block.buf)
                view[:] = array
                described[name] = (block.name, array.shape, array.dtype.str)
        except BaseException:
            self.close()
            raise
        #: Picklable description workers use to attach (:func:`_attach_view`).
        self.spec = {
            "num_nodes": csr.num_nodes,
            "uniform": csr.is_uniform,
            "arrays": described,
        }

    def close(self) -> None:
        """Release and unlink every block (idempotent)."""
        for block in self._blocks:
            try:
                block.close()
                block.unlink()
            except FileNotFoundError:  # pragma: no cover - double unlink
                pass
        self._blocks = []

    def __enter__(self) -> "SharedCSR":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class _SharedCSRView:
    """Duck-typed stand-in for :class:`CSRAdjacency` inside a worker.

    Exposes exactly the surface :func:`simulate_walks` and its steppers
    read — ``num_nodes``, ``is_uniform``, ``degrees``, ``indptr``,
    ``indices``, ``global_cumulative_weights`` — backed by the attached
    shared-memory buffers, with no node-id list and no index dict.
    """

    def __init__(self, spec: dict, attached: dict[str, np.ndarray]) -> None:
        self.num_nodes: int = spec["num_nodes"]
        self.is_uniform: bool = spec["uniform"]
        self.indptr = attached["indptr"]
        self.indices = attached["indices"]
        self._gcum = attached.get("gcum")
        self._aprob = attached.get("aprob")
        self._aalias = attached.get("aalias")
        self.degrees = np.diff(self.indptr)

    def global_cumulative_weights(self) -> np.ndarray:
        assert self._gcum is not None
        return self._gcum

    def row_alias_tables(self) -> tuple[np.ndarray, np.ndarray]:
        """Attached flattened alias tables (shared only for kernel backends)."""
        assert self._aprob is not None and self._aalias is not None
        return self._aprob, self._aalias


def _attach_view(
    spec: dict,
) -> tuple[_SharedCSRView, list[shared_memory.SharedMemory]]:
    blocks: list[shared_memory.SharedMemory] = []
    attached: dict[str, np.ndarray] = {}
    for name, (block_name, shape, dtype) in spec["arrays"].items():
        block = shared_memory.SharedMemory(name=block_name)
        blocks.append(block)
        attached[name] = np.ndarray(shape, dtype=np.dtype(dtype), buffer=block.buf)
    return _SharedCSRView(spec, attached), blocks


def _walk_chunk(
    spec: dict,
    out: tuple[str, tuple[int, int], int],
    starts: np.ndarray,
    num_walks: int,
    walk_length: int,
    seed: np.random.SeedSequence,
    backend: str = "python",
) -> None:
    """Pool task: walk one chunk against the shared CSR. Top-level for pickling.

    Results are written straight into the shared output matrix described
    by ``out`` (block name, full shape, this chunk's starting row) — the
    walk rows never round-trip through pickle, which on a full snapshot
    is tens of megabytes per update. ``backend`` travels as a plain
    string and is resolved inside the worker (per-process, per the
    kernel-backend contract).
    """
    out_name, out_shape, row_offset = out
    view, blocks = _attach_view(spec)
    out_block = shared_memory.SharedMemory(name=out_name)
    try:
        rng = np.random.default_rng(seed)
        walks = simulate_walks(
            view, starts, num_walks, walk_length, rng, backend=backend
        )
        matrix = np.ndarray(out_shape, dtype=np.int64, buffer=out_block.buf)
        matrix[row_offset: row_offset + walks.shape[0]] = walks
    finally:
        out_block.close()
        for block in blocks:
            block.close()


def _walk_chunk_rows(
    spec: dict,
    starts: np.ndarray,
    num_walks: int,
    walk_length: int,
    seed: np.random.SeedSequence,
    backend: str = "python",
) -> np.ndarray:
    """Pool task for the streaming path: walk one chunk, *return* its rows.

    Unlike :func:`_walk_chunk` there is no shared output matrix — that is
    the point: the fused walk→train path never materializes the full walk
    matrix anywhere, so each chunk's rows come back through pickle and
    are folded into the corpus builder as they arrive.
    """
    view, blocks = _attach_view(spec)
    try:
        rng = np.random.default_rng(seed)
        return simulate_walks(
            view, starts, num_walks, walk_length, rng, backend=backend
        )
    finally:
        for block in blocks:
            block.close()


# ----------------------------------------------------------------------
# deterministic chunking
# ----------------------------------------------------------------------
def chunk_plan(num_starts: int, chunk_starts: int) -> list[slice]:
    """Fixed-size slices over the start array (last chunk may be short)."""
    if chunk_starts < 1:
        raise ValueError("chunk_starts must be >= 1")
    return [
        slice(lo, min(lo + chunk_starts, num_starts))
        for lo in range(0, num_starts, chunk_starts)
    ]


def spawn_chunk_seeds(
    rng: np.random.Generator, num_chunks: int
) -> list[np.random.SeedSequence]:
    """One child SeedSequence per chunk, rooted in the caller's rng state.

    Exactly one draw is consumed from ``rng`` regardless of the chunk
    count, so the parent stream advances the same way for every graph
    size — and the children depend only on that draw, never on how many
    workers later execute them.
    """
    entropy = int(rng.integers(0, _MAX_ENTROPY))
    return np.random.SeedSequence(entropy).spawn(num_chunks)


# ----------------------------------------------------------------------
# pool lifecycle
# ----------------------------------------------------------------------
_POOLS: dict[int, ProcessPoolExecutor] = {}
_POOL_UNAVAILABLE = False


def _get_pool(workers: int) -> ProcessPoolExecutor | None:
    """A cached pool of ``workers`` processes, or None when unavailable."""
    global _POOL_UNAVAILABLE
    if _POOL_UNAVAILABLE:
        return None
    pool = _POOLS.get(workers)
    if pool is None:
        try:
            pool = ProcessPoolExecutor(max_workers=workers)
        except (OSError, ValueError) as error:  # pragma: no cover - env dep
            _POOL_UNAVAILABLE = True
            warnings.warn(
                f"process pool unavailable ({error}); walk generation "
                "falls back to in-process chunk execution",
                RuntimeWarning,
                stacklevel=3,
            )
            return None
        _POOLS[workers] = pool
    return pool


def shutdown_pools() -> None:
    """Tear down every cached pool (atexit hook; safe to call any time)."""
    for pool in _POOLS.values():
        pool.shutdown(wait=False, cancel_futures=True)
    _POOLS.clear()


atexit.register(shutdown_pools)


# ----------------------------------------------------------------------
# public entry points
# ----------------------------------------------------------------------
def generate_walks(
    csr: CSRAdjacency,
    start_indices,
    num_walks: int,
    walk_length: int,
    rng: np.random.Generator,
    *,
    workers: int = 1,
    chunk_starts: int = DEFAULT_CHUNK_STARTS,
    backend: str = "python",
) -> np.ndarray:
    """Truncated walks from ``start_indices`` — serial or chunked-parallel.

    ``workers=1`` is the legacy serial path on the caller's rng, bit for
    bit. ``workers>=2`` runs the chunked engine; its output is invariant
    to the worker count and to pool availability (see module docstring).
    ``backend`` selects the transition kernels (see
    :func:`repro.walks.random_walk.simulate_walks`); it is threaded to
    workers as a string and resolved per process.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    starts = np.asarray(start_indices, dtype=np.int64)
    if workers == 1:
        return simulate_walks(
            csr, starts, num_walks, walk_length, rng, backend=backend
        )

    chunks = chunk_plan(starts.size, chunk_starts)
    seeds = spawn_chunk_seeds(rng, len(chunks))
    if starts.size == 0:
        return np.empty((0, walk_length), dtype=np.int64)

    if len(chunks) > 1:
        pool = _get_pool(workers)
        if pool is not None:
            shape = (starts.size * num_walks, walk_length)
            out_block = None
            try:
                out_block = shared_memory.SharedMemory(
                    create=True, size=max(1, shape[0] * shape[1] * 8)
                )
                with SharedCSR(csr, backend=backend) as shared:
                    futures = [
                        pool.submit(
                            _walk_chunk,
                            shared.spec,
                            (out_block.name, shape, chunk.start * num_walks),
                            starts[chunk],
                            num_walks,
                            walk_length,
                            seed,
                            backend,
                        )
                        for chunk, seed in zip(chunks, seeds)
                    ]
                    for future in futures:
                        future.result()
                    return np.array(
                        np.ndarray(shape, dtype=np.int64, buffer=out_block.buf)
                    )
            except (BrokenProcessPool, OSError) as error:
                _discard_pool(workers, error)
                # fall through to the in-process path — same results.
            finally:
                if out_block is not None:
                    out_block.close()
                    out_block.unlink()

    return np.concatenate(
        [
            simulate_walks(
                csr, starts[chunk], num_walks, walk_length,
                np.random.default_rng(seed), backend=backend,
            )
            for chunk, seed in zip(chunks, seeds)
        ]
    )


def iter_walk_chunks(
    csr: CSRAdjacency,
    start_indices,
    num_walks: int,
    walk_length: int,
    rng: np.random.Generator,
    *,
    workers: int = 1,
    chunk_starts: int = DEFAULT_CHUNK_STARTS,
    backend: str = "python",
):
    """Yield walk-row chunks instead of one stacked matrix (fused path).

    Yields ``(rows, walk_length)`` int64 blocks whose row-order
    concatenation equals :func:`generate_walks` with identical arguments,
    bit for bit — both paths consume the caller rng the same way
    (``workers=1``: the serial stream; ``workers>=2``: the single
    :func:`spawn_chunk_seeds` draw) and walk each chunk from the same
    child seed.

    ``workers=1`` walks the full matrix up front (chunking the *serial
    rng stream* would change it) and yields row-block views, so the fused
    path's memory win applies at ``workers>=2``: there, chunks are walked
    by pool workers and stream back one at a time — the full
    ``(n_walks, walk_length)`` matrix never exists in any process. A pool
    that breaks mid-stream finishes the remaining chunks in-process from
    their own seeds, so even a mid-iteration failure yields the exact
    same blocks.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    starts = np.asarray(start_indices, dtype=np.int64)
    if workers == 1:
        walks = simulate_walks(
            csr, starts, num_walks, walk_length, rng, backend=backend
        )
        for chunk in chunk_plan(starts.size, chunk_starts):
            yield walks[chunk.start * num_walks: chunk.stop * num_walks]
        return

    chunks = chunk_plan(starts.size, chunk_starts)
    seeds = spawn_chunk_seeds(rng, len(chunks))
    if starts.size == 0:
        return

    def _in_process(position: int):
        for chunk, seed in zip(chunks[position:], seeds[position:]):
            yield simulate_walks(
                csr, starts[chunk], num_walks, walk_length,
                np.random.default_rng(seed), backend=backend,
            )

    pool = _get_pool(workers) if len(chunks) > 1 else None
    if pool is None:
        yield from _in_process(0)
        return

    shared = SharedCSR(csr, backend=backend)
    try:
        try:
            futures = [
                pool.submit(
                    _walk_chunk_rows,
                    shared.spec,
                    starts[chunk],
                    num_walks,
                    walk_length,
                    seed,
                    backend,
                )
                for chunk, seed in zip(chunks, seeds)
            ]
        except (BrokenProcessPool, OSError) as error:
            _discard_pool(workers, error)
            yield from _in_process(0)
            return
        for position, future in enumerate(futures):
            try:
                block = future.result()
            except (BrokenProcessPool, OSError) as error:
                _discard_pool(workers, error)
                # Recompute this chunk and every later one from their own
                # seeds — chunk results depend only on (chunk, seed), so
                # the stream picks up exactly where the pool died.
                yield from _in_process(position)
                return
            yield block
    finally:
        shared.close()


def _discard_pool(workers: int, error: BaseException) -> None:
    pool = _POOLS.pop(workers, None)
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)
    warnings.warn(
        f"walk worker pool failed ({error}); this call ran its chunks "
        "in-process (results are identical by construction) and a fresh "
        "pool will be created on the next parallel call",
        RuntimeWarning,
        stacklevel=3,
    )


def generate_corpus(
    csr: CSRAdjacency,
    start_indices,
    num_walks: int,
    walk_length: int,
    window_size: int,
    rng: np.random.Generator,
    *,
    workers: int = 1,
    chunk_starts: int = DEFAULT_CHUNK_STARTS,
    backend: str = "python",
    fused: bool = False,
) -> PairCorpus:
    """Walks plus sliding-window pair corpus in one call (Eq. 5 + Eq. 6).

    With ``fused=True`` walk chunks are folded straight into a
    :class:`~repro.walks.corpus.StreamedCorpusBuilder` as they arrive
    from :func:`iter_walk_chunks`, so at ``workers>=2`` the stacked walk
    matrix never exists in any process. The returned corpus is
    bit-identical either way (same rng consumption, same pair order).
    """
    if fused:
        builder = StreamedCorpusBuilder(
            window_size=window_size, num_nodes=csr.num_nodes
        )
        for chunk in iter_walk_chunks(
            csr, start_indices, num_walks, walk_length, rng,
            workers=workers, chunk_starts=chunk_starts, backend=backend,
        ):
            builder.push(chunk)
        return builder.finalize()
    walks = generate_walks(
        csr, start_indices, num_walks, walk_length, rng,
        workers=workers, chunk_starts=chunk_starts, backend=backend,
    )
    return build_pair_corpus(walks, window_size, csr.num_nodes)
