"""Multi-worker random-walk corpus generation (the parallel hot path).

Walk simulation is embarrassingly parallel across start nodes, and the
frozen :class:`~repro.graph.csr.CSRAdjacency` buffers are plain numpy
arrays — so the engine ships them to a process pool once per snapshot via
``multiprocessing.shared_memory`` and fans the start nodes out in fixed-
size chunks. Determinism is part of the contract:

* ``workers=1`` bypasses the engine entirely and replays today's serial
  path bit for bit (same rng stream, same output);
* ``workers>=2`` derives one child ``SeedSequence`` per *chunk* (never
  per worker), so the corpus depends only on the parent rng state and
  the chunk size — two pools of different sizes, or the in-process
  fallback, produce identical walks.
"""

from repro.parallel.engine import (
    DEFAULT_CHUNK_STARTS,
    SharedCSR,
    chunk_plan,
    generate_corpus,
    generate_walks,
    iter_walk_chunks,
    shutdown_pools,
    spawn_chunk_seeds,
)

__all__ = [
    "DEFAULT_CHUNK_STARTS",
    "SharedCSR",
    "chunk_plan",
    "generate_corpus",
    "generate_walks",
    "iter_walk_chunks",
    "shutdown_pools",
    "spawn_chunk_seeds",
]
