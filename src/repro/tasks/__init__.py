"""Downstream evaluation tasks: GR (P@k), LP (AUC), NC (F1)."""

from repro.tasks.graph_reconstruction import (
    graph_reconstruction_over_time,
    mean_precision_at_k,
    per_step_precision,
)
from repro.tasks.link_prediction import (
    LinkPredictionSet,
    build_link_prediction_set,
    link_prediction_auc,
    link_prediction_over_time,
    score_pairs,
)
from repro.tasks.node_classification import (
    ClassificationScores,
    node_classification_f1,
    node_classification_over_time,
)

__all__ = [
    "ClassificationScores",
    "LinkPredictionSet",
    "build_link_prediction_set",
    "graph_reconstruction_over_time",
    "link_prediction_auc",
    "link_prediction_over_time",
    "mean_precision_at_k",
    "node_classification_f1",
    "node_classification_over_time",
    "per_step_precision",
    "score_pairs",
]
