"""Dynamic link prediction (Section 5.2.2).

Embeddings obtained at time ``t`` predict the edges of time ``t + 1``. The
test set follows the paper:

* the *changed* edges between t and t+1 — added edges are positives (they
  exist at t+1), deleted edges are negatives (they no longer exist);
* extra edges sampled from snapshot t+1 (positives) or random non-edges of
  snapshot t+1 (negatives) top up whichever side is smaller, so positives
  and negatives are balanced.

Scores are cosine similarities of the endpoint embeddings; the metric is
ROC-AUC. Pairs with an endpoint unknown at time t are skipped — a method
cannot be asked about a node it has never seen.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

import numpy as np

from repro.base import EmbeddingMap
from repro.graph.diff import diff_snapshots
from repro.graph.dynamic import DynamicNetwork
from repro.graph.static import Graph
from repro.ml.metrics import roc_auc_score

Node = Hashable


@dataclass(frozen=True)
class LinkPredictionSet:
    """A balanced test set of node pairs with existence labels at t+1."""

    pairs: list[tuple[Node, Node]]
    labels: np.ndarray  # 1 = edge exists at t+1

    @property
    def num_pairs(self) -> int:
        return len(self.pairs)


def _sample_existing_edges(
    graph: Graph, count: int, exclude: set[frozenset], rng: np.random.Generator
) -> list[tuple[Node, Node]]:
    edges = [
        (u, v) for u, v in graph.edges() if frozenset((u, v)) not in exclude
    ]
    if not edges or count <= 0:
        return []
    picks = rng.choice(len(edges), size=min(count, len(edges)), replace=False)
    return [edges[int(i)] for i in picks]


def _sample_non_edges(
    graph: Graph, count: int, exclude: set[frozenset], rng: np.random.Generator
) -> list[tuple[Node, Node]]:
    nodes = sorted(graph.node_set(), key=repr)
    if len(nodes) < 2 or count <= 0:
        return []
    result: list[tuple[Node, Node]] = []
    attempts = 0
    max_attempts = 50 * count + 100
    while len(result) < count and attempts < max_attempts:
        attempts += 1
        i, j = rng.integers(0, len(nodes), size=2)
        if i == j:
            continue
        u, v = nodes[int(i)], nodes[int(j)]
        key = frozenset((u, v))
        if key in exclude or graph.has_edge(u, v):
            continue
        exclude.add(key)
        result.append((u, v))
    return result


def build_link_prediction_set(
    previous: Graph,
    current: Graph,
    rng: np.random.Generator,
) -> LinkPredictionSet:
    """Balanced changed-edge test set for predicting ``current`` from t.

    Pairs are restricted to nodes that exist at time t: no method can be
    asked about a node it has never observed, and keeping unknown-node
    pairs would silently unbalance the set once they are filtered at
    scoring time (on fast-growing networks most added edges touch brand-
    new nodes).
    """
    diff = diff_snapshots(previous, current)
    known = previous.node_set()

    def is_known(edge) -> bool:
        return all(endpoint in known for endpoint in edge)

    positives: list[tuple[Node, Node]] = [
        tuple(edge) for edge in diff.added_edges if is_known(edge)
    ]
    negatives: list[tuple[Node, Node]] = [
        tuple(edge) for edge in diff.removed_edges if is_known(edge)
    ]
    used = {frozenset(p) for p in positives} | {frozenset(n) for n in negatives}

    # The evaluable part of t+1: its subgraph on nodes known at t.
    evaluable = current.subgraph(known & current.node_set())

    if len(positives) < len(negatives):
        positives.extend(
            _sample_existing_edges(
                evaluable, len(negatives) - len(positives), used, rng
            )
        )
    elif len(negatives) < len(positives):
        negatives.extend(
            _sample_non_edges(
                evaluable, len(positives) - len(negatives), used, rng
            )
        )
    # Quiet steps (no changed edges among known nodes) still get a usable
    # set: balanced samples of existing edges vs non-edges.
    if not positives:
        positives = _sample_existing_edges(
            evaluable, max(len(negatives), 10), used, rng
        )
    if not negatives:
        negatives = _sample_non_edges(
            evaluable, len(positives), used, rng
        )

    pairs = positives + negatives
    labels = np.concatenate(
        [np.ones(len(positives)), np.zeros(len(negatives))]
    ).astype(np.int64)
    return LinkPredictionSet(pairs=pairs, labels=labels)


def score_pairs(
    embeddings: EmbeddingMap, pairs: list[tuple[Node, Node]]
) -> tuple[np.ndarray, np.ndarray]:
    """Cosine scores for pairs with both endpoints known.

    Returns ``(scores, keep_mask)`` where ``keep_mask`` marks scoreable
    pairs.
    """
    scores = np.zeros(len(pairs), dtype=np.float64)
    keep = np.zeros(len(pairs), dtype=bool)
    for i, (u, v) in enumerate(pairs):
        if u not in embeddings or v not in embeddings:
            continue
        a, b = embeddings[u], embeddings[v]
        norm = np.linalg.norm(a) * np.linalg.norm(b)
        scores[i] = float(a @ b / norm) if norm > 0 else 0.0
        keep[i] = True
    return scores, keep


def link_prediction_auc(
    embeddings_t: EmbeddingMap,
    previous: Graph,
    current: Graph,
    rng: np.random.Generator,
) -> float:
    """AUC of predicting snapshot t+1's edges from Z^t."""
    test_set = build_link_prediction_set(previous, current, rng)
    scores, keep = score_pairs(embeddings_t, test_set.pairs)
    labels = test_set.labels[keep]
    if labels.size == 0 or labels.min() == labels.max():
        raise ValueError("test set lost a class after filtering unknown nodes")
    return roc_auc_score(labels, scores[keep])


def link_prediction_over_time(
    embeddings_per_step: list[EmbeddingMap],
    network: DynamicNetwork,
    rng: np.random.Generator,
) -> float:
    """Mean AUC over all prediction steps t -> t+1 (Table 2 cell).

    Steps whose test set degenerates (e.g. a step where every candidate
    pair became unscoreable) are skipped; at least one step must remain.
    """
    if network.num_snapshots < 2:
        raise ValueError("link prediction needs at least two snapshots")
    aucs = []
    for t in range(network.num_snapshots - 1):
        try:
            aucs.append(
                link_prediction_auc(
                    embeddings_per_step[t],
                    network.snapshot(t),
                    network.snapshot(t + 1),
                    rng,
                )
            )
        except ValueError:
            continue
    if not aucs:
        raise ValueError("no time step produced a valid LP test set")
    return float(np.mean(aucs))
