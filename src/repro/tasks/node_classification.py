"""Node classification (Section 5.2.3).

At every time step the latest embeddings feed a one-vs-rest logistic
regression; {50, 70, 90}% of labelled nodes train the classifier and the
rest are tested, scored by micro- and macro-F1. Only datasets with node
labels (Cora/DBLP and their simulations) support this task.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

import numpy as np

from repro.base import EmbeddingMap, embeddings_as_matrix
from repro.graph.dynamic import DynamicNetwork
from repro.ml.logreg import OneVsRestLogisticRegression
from repro.ml.metrics import f1_scores

Node = Hashable


@dataclass(frozen=True)
class ClassificationScores:
    micro_f1: float
    macro_f1: float


def node_classification_f1(
    embeddings: EmbeddingMap,
    labels: dict[Node, object],
    train_ratio: float,
    rng: np.random.Generator,
    c: float = 1.0,
) -> ClassificationScores:
    """Train/test split, one-vs-rest logistic regression, F1 scores.

    The split is re-drawn per call (the paper repeats over 20 runs); nodes
    must both carry a label and have an embedding.
    """
    if not (0.0 < train_ratio < 1.0):
        raise ValueError("train_ratio must lie strictly between 0 and 1")
    nodes = [node for node in embeddings if node in labels]
    if len(nodes) < 4:
        raise ValueError("too few labelled embedded nodes to split")
    nodes, features = embeddings_as_matrix(embeddings, nodes)
    targets = np.array([labels[node] for node in nodes])

    order = rng.permutation(len(nodes))
    cut = max(1, int(round(train_ratio * len(nodes))))
    cut = min(cut, len(nodes) - 1)
    train_idx, test_idx = order[:cut], order[cut:]

    # Retry the split a few times if the training fold lost all but one
    # class (possible on tiny early snapshots).
    attempts = 0
    while len(set(targets[train_idx].tolist())) < 2 and attempts < 10:
        order = rng.permutation(len(nodes))
        train_idx, test_idx = order[:cut], order[cut:]
        attempts += 1
    if len(set(targets[train_idx].tolist())) < 2:
        raise ValueError("training fold has a single class")

    model = OneVsRestLogisticRegression(c=c)
    model.fit(features[train_idx], targets[train_idx])
    predictions = model.predict(features[test_idx])
    micro, macro = f1_scores(targets[test_idx], predictions)
    return ClassificationScores(micro_f1=micro, macro_f1=macro)


def node_classification_over_time(
    embeddings_per_step: list[EmbeddingMap],
    network: DynamicNetwork,
    train_ratio: float,
    rng: np.random.Generator,
    min_labeled: int = 20,
) -> ClassificationScores:
    """Mean micro/macro F1 over evaluable time steps (Table 3 cell).

    Early snapshots of growth datasets may have too few labelled nodes to
    classify; steps with fewer than ``min_labeled`` labelled nodes are
    skipped (at least one step must remain).
    """
    if not network.labels:
        raise ValueError(f"dataset {network.name!r} has no node labels")
    micros: list[float] = []
    macros: list[float] = []
    for embeddings, snapshot in zip(embeddings_per_step, network):
        labeled = [n for n in snapshot.nodes() if n in network.labels]
        if len(labeled) < min_labeled:
            continue
        scores = node_classification_f1(
            {n: embeddings[n] for n in labeled if n in embeddings},
            network.labels,
            train_ratio,
            rng,
        )
        micros.append(scores.micro_f1)
        macros.append(scores.macro_f1)
    if not micros:
        raise ValueError("no snapshot had enough labelled nodes")
    return ClassificationScores(
        micro_f1=float(np.mean(micros)), macro_f1=float(np.mean(macros))
    )
