"""Graph reconstruction (Section 5.2.1) — the global-topology probe.

For every node, the top-k most cosine-similar nodes in embedding space are
compared against the node's true neighbours:

    P@k(v) = |Q(v)@k ∩ N(v)| / min(k, |N(v)|)

and MeanP@k averages over all nodes of the snapshot. There is no training
set — the metric directly asks how much of the original topology survives
in the embedding, which is why the paper uses it to demonstrate global
topology preservation.
"""

from __future__ import annotations

from typing import Hashable, Sequence

import numpy as np

from repro.base import EmbeddingMap, embeddings_as_matrix
from repro.graph.dynamic import DynamicNetwork
from repro.graph.static import Graph
from repro.ml.metrics import top_k_neighbors

Node = Hashable


def mean_precision_at_k(
    embeddings: EmbeddingMap,
    graph: Graph,
    ks: Sequence[int],
) -> dict[int, float]:
    """MeanP@k of one snapshot for every k in ``ks``.

    Nodes without embeddings are scored 0 for every k (they cannot be
    queried), keeping denominators comparable across methods; isolated
    nodes (no neighbours) are skipped as P@k is undefined for them.
    """
    if not ks:
        raise ValueError("ks must be non-empty")
    nodes = [node for node in graph.nodes() if graph.degree(node) > 0]
    if not nodes:
        raise ValueError("graph has no non-isolated nodes")
    known = [node for node in nodes if node in embeddings]
    missing = len(nodes) - len(known)

    max_k = max(ks)
    totals = {k: 0.0 for k in ks}
    if known:
        _, matrix = embeddings_as_matrix(embeddings, known)
        ranked = top_k_neighbors(matrix, k=max_k, exclude_self=True)
        index_to_node = dict(enumerate(known))
        for i, node in enumerate(known):
            neighbors = graph.neighbor_set(node)
            neighbors.discard(node)
            if not neighbors:
                continue
            retrieved = [index_to_node[j] for j in ranked[i]]
            hits_prefix = np.cumsum(
                [1 if candidate in neighbors else 0 for candidate in retrieved]
            )
            for k in ks:
                kk = min(k, len(retrieved))
                hits = int(hits_prefix[kk - 1]) if kk > 0 else 0
                totals[k] += hits / min(k, len(neighbors))

    denominator = len(known) + missing
    return {k: totals[k] / denominator for k in ks}


def graph_reconstruction_over_time(
    embeddings_per_step: list[EmbeddingMap],
    network: DynamicNetwork,
    ks: Sequence[int],
) -> dict[int, float]:
    """Mean of MeanP@k over all time steps (Table 1 cell definition)."""
    if len(embeddings_per_step) != network.num_snapshots:
        raise ValueError("one embedding map per snapshot is required")
    sums = {k: 0.0 for k in ks}
    for embeddings, snapshot in zip(embeddings_per_step, network):
        step_scores = mean_precision_at_k(embeddings, snapshot, ks)
        for k in ks:
            sums[k] += step_scores[k]
    steps = network.num_snapshots
    return {k: sums[k] / steps for k in ks}


def per_step_precision(
    embeddings_per_step: list[EmbeddingMap],
    network: DynamicNetwork,
    k: int,
) -> list[float]:
    """MeanP@k at every time step (Figures 3-4 curves)."""
    return [
        mean_precision_at_k(embeddings, snapshot, [k])[k]
        for embeddings, snapshot in zip(embeddings_per_step, network)
    ]
