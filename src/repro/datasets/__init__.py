"""Simulated dynamic-network datasets and KONECT-style IO."""

from repro.datasets.generators import (
    coauthor_growth,
    community_citation_growth,
    interaction_stream,
    preferential_attachment_graph,
    router_churn,
)
from repro.datasets.io import (
    read_edge_stream,
    read_labels,
    read_snapshots,
    write_edge_stream,
    write_labels,
    write_snapshots,
)
from repro.datasets.registry import (
    DATASETS,
    DatasetSpec,
    get_spec,
    list_datasets,
    load_dataset,
)

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "coauthor_growth",
    "community_citation_growth",
    "get_spec",
    "interaction_stream",
    "list_datasets",
    "load_dataset",
    "preferential_attachment_graph",
    "read_edge_stream",
    "read_labels",
    "read_snapshots",
    "router_churn",
    "write_edge_stream",
    "write_labels",
    "write_snapshots",
]
