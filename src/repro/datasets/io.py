"""Reading and writing dynamic-network data in KONECT-style formats.

Real KONECT/SNAP downloads can be dropped into the same pipeline used by
the simulated datasets: timestamped edge streams are whitespace-separated
``u v timestamp`` lines (``%`` comments allowed), labels are ``node label``
lines, and snapshot-given datasets use ``# snapshot <t>`` section headers.
"""

from __future__ import annotations

from pathlib import Path
from typing import Hashable

from repro.graph.dynamic import DynamicNetwork, EdgeEvent
from repro.graph.static import Graph

Node = Hashable


def write_edge_stream(path: str | Path, events: list[EdgeEvent]) -> None:
    """Write events as ``u v time [kind]`` lines (kind omitted for adds)."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        handle.write("% source target time [kind]\n")
        for event in events:
            suffix = "" if event.kind == "add" else f" {event.kind}"
            handle.write(f"{event.u} {event.v} {event.time}{suffix}\n")


def read_edge_stream(path: str | Path) -> list[EdgeEvent]:
    """Parse a KONECT-style edge stream; node ids become ints when possible."""
    events: list[EdgeEvent] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith(("%", "#")):
                continue
            parts = line.split()
            if len(parts) < 3:
                raise ValueError(f"malformed edge-stream line: {line!r}")
            u, v = _coerce(parts[0]), _coerce(parts[1])
            time = float(parts[2])
            kind = parts[3] if len(parts) > 3 else "add"
            events.append(EdgeEvent(u, v, time, kind))
    return events


def write_labels(path: str | Path, labels: dict[Node, object]) -> None:
    """Write ``node label`` lines."""
    with Path(path).open("w", encoding="utf-8") as handle:
        handle.write("% node label\n")
        for node, label in labels.items():
            handle.write(f"{node} {label}\n")


def read_labels(path: str | Path) -> dict[Node, object]:
    """Parse ``node label`` lines (ints coerced on both columns)."""
    labels: dict[Node, object] = {}
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith(("%", "#")):
                continue
            parts = line.split()
            if len(parts) != 2:
                raise ValueError(f"malformed label line: {line!r}")
            labels[_coerce(parts[0])] = _coerce(parts[1])
    return labels


def write_snapshots(path: str | Path, network: DynamicNetwork) -> None:
    """Write a snapshot-given dynamic network (``# snapshot t`` sections)."""
    with Path(path).open("w", encoding="utf-8") as handle:
        handle.write(f"% dynamic network {network.name}\n")
        for t, snapshot in enumerate(network):
            handle.write(f"# snapshot {t}\n")
            for node in snapshot.nodes():
                if snapshot.degree(node) == 0:
                    handle.write(f"{node}\n")  # isolated node line
            for u, v, w in snapshot.weighted_edges():
                handle.write(f"{u} {v} {w}\n")


def read_snapshots(path: str | Path, name: str = "loaded") -> DynamicNetwork:
    """Parse a snapshot-section file back into a :class:`DynamicNetwork`."""
    snapshots: list[Graph] = []
    current: Graph | None = None
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith("%"):
                continue
            if line.startswith("# snapshot"):
                current = Graph()
                snapshots.append(current)
                continue
            if current is None:
                raise ValueError("edge data before any '# snapshot' header")
            parts = line.split()
            if len(parts) == 1:
                current.add_node(_coerce(parts[0]))
            elif len(parts) in (2, 3):
                weight = float(parts[2]) if len(parts) == 3 else 1.0
                current.add_edge(_coerce(parts[0]), _coerce(parts[1]), weight)
            else:
                raise ValueError(f"malformed snapshot line: {line!r}")
    if not snapshots:
        raise ValueError("file contains no snapshots")
    return DynamicNetwork.from_snapshots(snapshots, name=name)


def _coerce(token: str):
    """Turn numeric-looking tokens into ints (KONECT ids are integers)."""
    try:
        return int(token)
    except ValueError:
        return token
