"""Named dataset registry mapping paper datasets to their simulations.

Each entry configures a generator so the resulting dynamic network matches
the paper dataset's *dynamics class* (Section 5.1.1) at laptop scale. The
``scale`` knob multiplies node/event counts; the snapshot counts echo the
paper (21 for the KONECT streams, 11 for Cora/DBLP) but can be reduced for
quick runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.graph.dynamic import DynamicNetwork
from repro.datasets.generators import (
    coauthor_growth,
    community_citation_growth,
    interaction_stream,
    router_churn,
)


@dataclass(frozen=True)
class DatasetSpec:
    """Registry entry: how to materialise one simulated dataset."""

    name: str
    paper_dataset: str
    description: str
    has_labels: bool
    has_deletions: bool
    default_snapshots: int
    loader: Callable[[float, int, int], DynamicNetwork]


def _load_as733(scale: float, seed: int, snapshots: int) -> DynamicNetwork:
    network = router_churn(
        initial_nodes=max(30, int(150 * scale)),
        num_steps=snapshots,
        seed=seed,
        add_nodes_per_step=max(1, int(6 * scale)),
        remove_nodes_per_step=max(1, int(1 * scale)),
        rewire_edges_per_step=max(2, int(8 * scale)),
        drop_edges_per_step=max(1, int(1 * scale)),
    )
    network.name = "as733-sim"
    return network


def _load_elec(scale: float, seed: int, snapshots: int) -> DynamicNetwork:
    events = interaction_stream(
        num_nodes=max(60, int(300 * scale)),
        num_steps=snapshots,
        num_communities=max(4, int(12 * scale)),
        events_per_step=max(10, int(60 * scale)),
        seed=seed,
        growth_per_step=max(1, int(2 * scale)),
        active_fraction=0.3,
    )
    return DynamicNetwork.from_edge_stream(
        events, cutoffs=list(range(snapshots)), name="elec-sim"
    )


def _load_fbw(scale: float, seed: int, snapshots: int) -> DynamicNetwork:
    events = interaction_stream(
        num_nodes=max(100, int(600 * scale)),
        num_steps=snapshots,
        num_communities=max(6, int(24 * scale)),
        events_per_step=max(15, int(80 * scale)),
        seed=seed,
        growth_per_step=max(2, int(6 * scale)),
        active_fraction=0.2,  # sparser activity: more inactive cells
        intra_community_prob=0.9,
    )
    return DynamicNetwork.from_edge_stream(
        events, cutoffs=list(range(snapshots)), name="fbw-sim"
    )


def _load_hepph(scale: float, seed: int, snapshots: int) -> DynamicNetwork:
    events, _ = coauthor_growth(
        num_steps=snapshots,
        papers_per_step=max(5, int(25 * scale)),
        num_fields=max(4, int(10 * scale)),
        seed=seed,
        authors_per_paper=(2, 5),
        new_author_prob=0.12,
    )
    return DynamicNetwork.from_edge_stream(
        events, cutoffs=list(range(snapshots)), name="hepph-sim"
    )


def _load_cora(scale: float, seed: int, snapshots: int) -> DynamicNetwork:
    events, labels = community_citation_growth(
        num_steps=snapshots,
        nodes_per_step=max(8, int(30 * scale)),
        num_labels=10,
        seed=seed,
        homophily=0.85,
        label_noise=0.0,
    )
    return DynamicNetwork.from_edge_stream(
        events, cutoffs=list(range(snapshots)), labels=labels, name="cora-sim"
    )


def _load_dblp(scale: float, seed: int, snapshots: int) -> DynamicNetwork:
    events, labels = community_citation_growth(
        num_steps=snapshots,
        nodes_per_step=max(10, int(40 * scale)),
        num_labels=15,
        seed=seed,
        homophily=0.7,     # weaker homophily and ...
        label_noise=0.15,  # ... noisy labels: DBLP is harder than Cora
    )
    return DynamicNetwork.from_edge_stream(
        events, cutoffs=list(range(snapshots)), labels=labels, name="dblp-sim"
    )


DATASETS: dict[str, DatasetSpec] = {
    "as733-sim": DatasetSpec(
        name="as733-sim",
        paper_dataset="AS733",
        description="router topology with node/edge churn (snapshot-given)",
        has_labels=False,
        has_deletions=True,
        default_snapshots=15,
        loader=_load_as733,
    ),
    "elec-sim": DatasetSpec(
        name="elec-sim",
        paper_dataset="Elec",
        description="election-style interaction stream, additions only",
        has_labels=False,
        has_deletions=False,
        default_snapshots=15,
        loader=_load_elec,
    ),
    "fbw-sim": DatasetSpec(
        name="fbw-sim",
        paper_dataset="FBW",
        description="large sparse wall-post stream, strong locality",
        has_labels=False,
        has_deletions=False,
        default_snapshots=12,
        loader=_load_fbw,
    ),
    "hepph-sim": DatasetSpec(
        name="hepph-sim",
        paper_dataset="HepPh",
        description="densifying co-author clique stream",
        has_labels=False,
        has_deletions=False,
        default_snapshots=12,
        loader=_load_hepph,
    ),
    "cora-sim": DatasetSpec(
        name="cora-sim",
        paper_dataset="Cora",
        description="labelled citation growth, clean labels (10 classes)",
        has_labels=True,
        has_deletions=False,
        default_snapshots=11,
        loader=_load_cora,
    ),
    "dblp-sim": DatasetSpec(
        name="dblp-sim",
        paper_dataset="DBLP",
        description="labelled co-author growth, noisy labels (15 classes)",
        has_labels=True,
        has_deletions=False,
        default_snapshots=11,
        loader=_load_dblp,
    ),
}


def list_datasets() -> list[str]:
    """Names of all registered simulated datasets."""
    return sorted(DATASETS)


def get_spec(name: str) -> DatasetSpec:
    try:
        return DATASETS[name]
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; available: {list_datasets()}"
        ) from None


def load_dataset(
    name: str,
    scale: float = 1.0,
    seed: int = 0,
    snapshots: int | None = None,
) -> DynamicNetwork:
    """Materialise a simulated dataset.

    Parameters
    ----------
    name:
        One of :func:`list_datasets` (e.g. ``"elec-sim"``).
    scale:
        Size multiplier (0.3 is plenty for unit tests; 1.0 for benches).
    seed:
        Generator seed — same (name, scale, seed, snapshots) always yields
        the same network.
    snapshots:
        Override the default snapshot count.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    spec = get_spec(name)
    steps = snapshots if snapshots is not None else spec.default_snapshots
    if steps < 2:
        raise ValueError("a dynamic network needs at least 2 snapshots")
    return spec.loader(scale, seed, steps)
