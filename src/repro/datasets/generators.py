"""Seeded synthetic dynamic-network generators (the offline-data substitute).

The paper evaluates on six public dynamic graphs (AS733, Elec, FBW, HepPh,
Cora, DBLP). This environment has no network access, so each dataset is
replaced by a generator reproducing its *dynamic character* — the property
the paper's argument actually depends on:

* changes between snapshots are sparse and **localised** (only a few
  communities are active per step), which creates the inactive
  sub-networks of Figure 1 d-f;
* some datasets only grow (Elec, FBW, HepPh, Cora, DBLP), one also deletes
  nodes and edges (AS733);
* Cora/DBLP carry node labels with community-correlated topology, DBLP's
  labels being noisier.

Every generator takes an explicit seed and emits either a timestamped edge
stream (run through the same snapshot pipeline as real KONECT data) or, for
the AS733 analogue, snapshots directly (as SNAP distributes it).
"""

from __future__ import annotations

from typing import Hashable

import numpy as np

from repro.graph.dynamic import DynamicNetwork, EdgeEvent
from repro.graph.static import Graph

Node = Hashable


# ----------------------------------------------------------------------
# building blocks
# ----------------------------------------------------------------------
def preferential_attachment_graph(
    num_nodes: int, edges_per_node: int, rng: np.random.Generator
) -> Graph:
    """Barabási-Albert-style preferential attachment graph.

    Node ids are 0..num_nodes-1; each arriving node attaches to
    ``edges_per_node`` existing nodes sampled proportionally to degree
    (repeat-target draws are retried, falling back to uniform).
    """
    if num_nodes < 2:
        raise ValueError("need at least two nodes")
    m = max(1, min(edges_per_node, num_nodes - 1))
    graph = Graph()
    # Seed clique of m+1 nodes keeps early attachment well-defined.
    seed_size = m + 1
    for u in range(seed_size):
        for v in range(u + 1, seed_size):
            graph.add_edge(u, v)
    # Degree-proportional sampling via a repeated-endpoint urn.
    urn: list[int] = []
    for u in range(seed_size):
        urn.extend([u] * graph.degree(u))
    for new in range(seed_size, num_nodes):
        targets: set[int] = set()
        while len(targets) < m:
            if urn and rng.random() < 0.9:
                targets.add(urn[int(rng.integers(0, len(urn)))])
            else:
                targets.add(int(rng.integers(0, new)))
        for target in targets:
            graph.add_edge(new, target)
            urn.extend([new, target])
    return graph


def _spanning_backbone(nodes: list[int], rng: np.random.Generator) -> list[tuple[int, int]]:
    """Random-tree edges connecting ``nodes`` (keeps the LCC snapshot whole)."""
    edges = []
    shuffled = list(nodes)
    rng.shuffle(shuffled)
    for i in range(1, len(shuffled)):
        j = int(rng.integers(0, i))
        edges.append((shuffled[i], shuffled[j]))
    return edges


def _active_communities(
    num_communities: int,
    active_fraction: float,
    rng: np.random.Generator,
    previous_active: set[int] | None,
    persistence: float = 0.6,
) -> set[int]:
    """Bursty community-activity process.

    A community stays active with probability ``persistence`` and wakes up
    with probability scaled so the expected active count matches
    ``active_fraction``. Persistence makes inactivity *streaky*, producing
    the multi-step quiet spells counted in Figure 1 d-f.
    """
    active: set[int] = set()
    wake = active_fraction * (1.0 - persistence) / max(1e-9, 1.0 - active_fraction * persistence)
    for community in range(num_communities):
        if previous_active and community in previous_active:
            if rng.random() < persistence:
                active.add(community)
        elif rng.random() < wake:
            active.add(community)
    if not active:  # never allow a fully dead step
        active.add(int(rng.integers(0, num_communities)))
    return active


# ----------------------------------------------------------------------
# Elec / FBW analogue: interaction stream
# ----------------------------------------------------------------------
def interaction_stream(
    num_nodes: int,
    num_steps: int,
    num_communities: int,
    events_per_step: int,
    seed: int,
    growth_per_step: int = 2,
    intra_community_prob: float = 0.85,
    active_fraction: float = 0.3,
) -> list[EdgeEvent]:
    """Growth-only interaction stream with bursty community locality.

    Mirrors Elec/FBW: a large initial snapshot, slow node growth, edge
    additions concentrated in the currently active communities.
    """
    rng = np.random.default_rng(seed)
    if num_communities < 2:
        raise ValueError("need at least two communities")
    initial = max(num_communities * 3, int(num_nodes * 0.7))
    community_of = {n: int(rng.integers(0, num_communities)) for n in range(num_nodes)}
    members: list[list[int]] = [[] for _ in range(num_communities)]
    for n in range(initial):
        members[community_of[n]].append(n)

    events: list[EdgeEvent] = []
    # t=0: connected backbone + a dense-ish burst of intra-community edges.
    events.extend(
        EdgeEvent(u, v, 0.0) for u, v in _spanning_backbone(list(range(initial)), rng)
    )
    for _ in range(events_per_step * 3):
        community = int(rng.integers(0, num_communities))
        pool = members[community]
        if len(pool) < 2:
            continue
        u, v = rng.choice(len(pool), size=2, replace=False)
        events.append(EdgeEvent(pool[int(u)], pool[int(v)], 0.0))

    next_node = initial
    active: set[int] | None = None
    for t in range(1, num_steps):
        active = _active_communities(num_communities, active_fraction, rng, active)
        active_list = sorted(active)
        for _ in range(events_per_step):
            community = active_list[int(rng.integers(0, len(active_list)))]
            pool = members[community]
            if rng.random() < intra_community_prob and len(pool) >= 2:
                i, j = rng.choice(len(pool), size=2, replace=False)
                events.append(EdgeEvent(pool[int(i)], pool[int(j)], float(t)))
            else:
                other = int(rng.integers(0, num_communities))
                if members[other] and pool:
                    u = pool[int(rng.integers(0, len(pool)))]
                    v = members[other][int(rng.integers(0, len(members[other])))]
                    if u != v:
                        events.append(EdgeEvent(u, v, float(t)))
        # Slow growth: new users join an active community.
        for _ in range(growth_per_step):
            if next_node >= num_nodes:
                break
            community = active_list[int(rng.integers(0, len(active_list)))]
            community_of[next_node] = community
            pool = members[community]
            anchor = pool[int(rng.integers(0, len(pool)))] if pool else 0
            members[community].append(next_node)
            events.append(EdgeEvent(next_node, anchor, float(t)))
            next_node += 1
    return events


# ----------------------------------------------------------------------
# HepPh analogue: densifying co-authorship
# ----------------------------------------------------------------------
def coauthor_growth(
    num_steps: int,
    papers_per_step: int,
    num_fields: int,
    seed: int,
    authors_per_paper: tuple[int, int] = (2, 5),
    new_author_prob: float = 0.15,
    active_fraction: float = 0.4,
) -> tuple[list[EdgeEvent], dict[Node, int]]:
    """Clique-stamping co-author stream (HepPh/DBLP shape).

    Every "paper" stamps a clique over its authors; authors are drawn
    preferentially within the paper's field, fields activate in bursts.
    Returns the event stream and the author -> field labelling.
    """
    rng = np.random.default_rng(seed)
    lo, hi = authors_per_paper
    if not (2 <= lo <= hi):
        raise ValueError("authors_per_paper must satisfy 2 <= lo <= hi")
    field_authors: list[list[int]] = [[] for _ in range(num_fields)]
    labels: dict[Node, int] = {}
    next_author = 0

    def new_author(field: int) -> int:
        nonlocal next_author
        author = next_author
        next_author += 1
        field_authors[field].append(author)
        labels[author] = field
        return author

    # Bootstrap: a few authors per field.
    for field in range(num_fields):
        for _ in range(max(2, hi)):
            new_author(field)

    events: list[EdgeEvent] = []
    # Backbone so the initial LCC covers most authors.
    events.extend(
        EdgeEvent(u, v, 0.0)
        for u, v in _spanning_backbone(list(range(next_author)), rng)
    )

    active: set[int] | None = None
    for t in range(num_steps):
        active = _active_communities(num_fields, active_fraction, rng, active)
        active_list = sorted(active)
        burst = papers_per_step * (3 if t == 0 else 1)
        for _ in range(burst):
            field = active_list[int(rng.integers(0, len(active_list)))]
            size = int(rng.integers(lo, hi + 1))
            authors: set[int] = set()
            while len(authors) < size:
                pool = field_authors[field]
                if rng.random() < new_author_prob or not pool:
                    authors.add(new_author(field))
                else:
                    authors.add(pool[int(rng.integers(0, len(pool)))])
            authors_list = sorted(authors)
            for i in range(len(authors_list)):
                for j in range(i + 1, len(authors_list)):
                    events.append(
                        EdgeEvent(authors_list[i], authors_list[j], float(t))
                    )
    return events, labels


# ----------------------------------------------------------------------
# AS733 analogue: router topology with churn (node/edge deletions)
# ----------------------------------------------------------------------
def router_churn(
    initial_nodes: int,
    num_steps: int,
    seed: int,
    add_nodes_per_step: int = 4,
    remove_nodes_per_step: int = 2,
    rewire_edges_per_step: int = 6,
    drop_edges_per_step: int | None = None,
    attachment: int = 2,
) -> DynamicNetwork:
    """Snapshot-given dynamic network with node additions AND deletions.

    Mirrors AS733's character: a preferential-attachment core, per-step
    arrivals of new routers, departures of *peripheral* routers (degree
    <= 2 — transient systems, the ones that actually leave the real AS
    graph), link additions dominated by triadic closure, and a smaller
    number of weak-tie link drops (``drop_edges_per_step``, default a
    third of the additions — real AS churn is growth-dominated).
    Emitted directly as snapshots (as SNAP distributes AS733).
    """
    if drop_edges_per_step is None:
        drop_edges_per_step = max(1, rewire_edges_per_step // 3)
    # Real AS733 is growth-dominated (+~100 nodes/day against a handful
    # of departures and link flaps); keep deletion-side churn a clear
    # minority or the LP test set degenerates into "rank yesterday's
    # edges below tomorrow's" — an impossible task for any t-faithful
    # embedding.
    flap_fraction = 0.05
    flap_toggle_prob = 0.3
    rng = np.random.default_rng(seed)
    graph = preferential_attachment_graph(initial_nodes, attachment, rng)
    next_node = initial_nodes
    snapshots: list[Graph] = []

    # Flapping links: real AS733 churn is dominated by BGP-visibility
    # flaps — the same peripheral links toggling off and on across daily
    # snapshots. They make both added and deleted edges *structurally
    # remembered*, which is what keeps dynamic link prediction meaningful
    # on churny data (and what GloDyNE's accumulated-change reservoir is
    # designed to track — paper footnote 2).
    all_edges = list(graph.edges())
    rng.shuffle(all_edges)
    flap_pool = [
        tuple(edge)
        for edge in all_edges[: max(2, int(flap_fraction * len(all_edges)))]
    ]
    flap_on = {edge: True for edge in flap_pool}

    def preferential_target(exclude: set[int]) -> int | None:
        candidates = [n for n in graph.nodes() if n not in exclude]
        if not candidates:
            return None
        degrees = np.array([graph.degree(n) for n in candidates], dtype=np.float64)
        degrees += 1.0
        probabilities = degrees / degrees.sum()
        return candidates[int(rng.choice(len(candidates), p=probabilities))]

    for _ in range(num_steps):
        # Flapping first: toggle each unstable link with fixed probability.
        for edge in flap_pool:
            u, v = edge
            if not (graph.has_node(u) and graph.has_node(v)):
                continue
            if rng.random() >= flap_toggle_prob:
                continue
            if flap_on[edge]:
                if graph.degree(u) > 1 and graph.degree(v) > 1:
                    graph.discard_edge(u, v)
                    flap_on[edge] = False
            else:
                graph.add_edge(u, v)
                flap_on[edge] = True

        # Departures: only peripheral routers (degree <= 2) ever leave.
        removable = [n for n in graph.nodes() if graph.degree(n) <= 2]
        rng.shuffle(removable)
        for node in removable[:remove_nodes_per_step]:
            if graph.number_of_nodes() > 10:
                graph.remove_node(node)

        # Arrivals: new routers attach preferentially.
        for _ in range(add_nodes_per_step):
            new = next_node
            next_node += 1
            graph.add_node(new)
            targets: set[int] = set()
            for _ in range(attachment):
                target = preferential_target(exclude={new} | targets)
                if target is not None:
                    targets.add(target)
            for target in targets:
                graph.add_edge(new, target)

        # Rewiring. Real AS link churn is proximity-structured, not
        # uniform: peering links appear between topologically close
        # systems (triadic closure) and the links that drop are weak ties
        # (few shared neighbours). Uniform-random rewiring would make
        # deleted edges *anti*-predictive and break the LP task's premise.
        def common_neighbors(u: int, v: int) -> int:
            return len(graph.neighbor_set(u) & graph.neighbor_set(v))

        edges = list(graph.edges())
        rng.shuffle(edges)
        # Drop the weakest ties first among a shuffled sample.
        candidates = sorted(
            edges[: 4 * drop_edges_per_step],
            key=lambda e: common_neighbors(*e),
        )
        dropped = 0
        for u, v in candidates:
            if dropped >= drop_edges_per_step:
                break
            if graph.degree(u) > 1 and graph.degree(v) > 1:
                graph.remove_edge(u, v)
                dropped += 1
        for _ in range(rewire_edges_per_step):
            u = preferential_target(exclude=set())
            if u is None:
                continue
            # Triadic closure most of the time, preferential otherwise.
            two_hop = sorted(
                {
                    w
                    for nbr in graph.neighbors(u)
                    for w in graph.neighbors(nbr)
                    if w != u and not graph.has_edge(u, w)
                }
            )
            if two_hop and rng.random() < 0.7:
                v = two_hop[int(rng.integers(0, len(two_hop)))]
            else:
                v = preferential_target(exclude={u})
            if v is not None and u != v:
                graph.add_edge(u, v)

        snapshots.append(graph.copy())

    return DynamicNetwork.from_snapshots(
        snapshots, name="router-churn", restrict_to_lcc=True
    )


# ----------------------------------------------------------------------
# Cora analogue: labelled citation growth
# ----------------------------------------------------------------------
def community_citation_growth(
    num_steps: int,
    nodes_per_step: int,
    num_labels: int,
    seed: int,
    homophily: float = 0.85,
    citations_per_node: tuple[int, int] = (1, 4),
    label_noise: float = 0.0,
) -> tuple[list[EdgeEvent], dict[Node, int]]:
    """Growing labelled citation network (Cora shape; DBLP with noise).

    Every arriving node carries a label and cites existing nodes —
    preferentially within its label community (``homophily``), else
    anywhere. ``label_noise`` reassigns a fraction of labels uniformly at
    random after generation, modelling DBLP's noisier author fields.
    """
    rng = np.random.default_rng(seed)
    lo, hi = citations_per_node
    labels: dict[Node, int] = {}
    community_members: list[list[int]] = [[] for _ in range(num_labels)]
    next_node = 0

    def spawn(label: int) -> int:
        nonlocal next_node
        node = next_node
        next_node += 1
        labels[node] = label
        community_members[label].append(node)
        return node

    events: list[EdgeEvent] = []
    # Seed core: a handful of nodes per label plus a connecting backbone.
    for label in range(num_labels):
        for _ in range(3):
            spawn(label)
    events.extend(
        EdgeEvent(u, v, 0.0)
        for u, v in _spanning_backbone(list(range(next_node)), rng)
    )

    for t in range(num_steps):
        arrivals = nodes_per_step * (2 if t == 0 else 1)
        for _ in range(arrivals):
            label = int(rng.integers(0, num_labels))
            node = spawn(label)
            cites = int(rng.integers(lo, hi + 1))
            for _ in range(cites):
                if rng.random() < homophily and len(community_members[label]) > 1:
                    pool = community_members[label]
                else:
                    pool = list(range(node))
                target = pool[int(rng.integers(0, len(pool)))]
                if target != node:
                    events.append(EdgeEvent(node, target, float(t)))

    if label_noise > 0.0:
        for node in list(labels):
            if rng.random() < label_noise:
                labels[node] = int(rng.integers(0, num_labels))
    return events, labels
