"""Dynamic networks: snapshot sequences and edge-stream builders.

Section 5.1.1 of the paper constructs each dynamic network from a
timestamped edge stream:

1. the initial snapshot ``G^0`` contains all edges up to the first cut-off
   timestamp;
2. each following snapshot appends the edges that newly appeared before the
   next cut-off;
3. every snapshot is restricted to its largest connected component and
   treated as undirected and unweighted.

AS733-style datasets are instead given directly as snapshots (and include
node/edge deletions); :meth:`DynamicNetwork.from_snapshots` covers that path.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator, Sequence

from repro.graph.components import largest_connected_component
from repro.graph.diff import SnapshotDiff, diff_snapshots
from repro.graph.static import Graph

Node = Hashable
TimedEdge = tuple[Node, Node, float]


@dataclass(frozen=True)
class EdgeEvent:
    """A timestamped edge event in an edge stream.

    ``kind`` is ``"add"`` or ``"remove"``; KONECT-style streams with only
    additions use the default. ``weight`` is the edge weight carried by an
    ``add`` event (re-adding an existing edge overwrites its weight, as
    :meth:`repro.graph.static.Graph.add_edge` does); it is ignored by
    ``remove`` events.
    """

    u: Node
    v: Node
    time: float
    kind: str = "add"
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in ("add", "remove"):
            raise ValueError(f"unknown edge event kind: {self.kind!r}")


def coerce_event(event: EdgeEvent | TimedEdge) -> EdgeEvent:
    """Coerce a plain ``(u, v, t)`` tuple to an ``add`` :class:`EdgeEvent`.

    The single definition of the tuple convention — the snapshot builder,
    the streaming helpers, and the streaming engine all route through it.
    """
    if isinstance(event, EdgeEvent):
        return event
    return EdgeEvent(event[0], event[1], event[2])


class DynamicNetwork:
    """A sequence of graph snapshots with optional node labels.

    Labels (used by the node-classification task on Cora/DBLP) are a single
    mapping ``node -> label``: the paper assigns one static label per node
    (paper field / author field).
    """

    def __init__(
        self,
        snapshots: Sequence[Graph],
        labels: dict[Node, object] | None = None,
        name: str = "dynamic-network",
    ) -> None:
        if not snapshots:
            raise ValueError("a dynamic network needs at least one snapshot")
        self._snapshots = list(snapshots)
        self.labels = dict(labels) if labels else {}
        self.name = name

    # ------------------------------------------------------------------
    # builders
    # ------------------------------------------------------------------
    @classmethod
    def from_snapshots(
        cls,
        snapshots: Sequence[Graph],
        labels: dict[Node, object] | None = None,
        name: str = "dynamic-network",
        restrict_to_lcc: bool = False,
    ) -> "DynamicNetwork":
        """Wrap pre-built snapshots, optionally keeping only each LCC."""
        if restrict_to_lcc:
            snapshots = [largest_connected_component(g) for g in snapshots]
        return cls(snapshots, labels=labels, name=name)

    @classmethod
    def from_edge_stream(
        cls,
        events: Iterable[EdgeEvent | TimedEdge],
        cutoffs: Sequence[float],
        labels: dict[Node, object] | None = None,
        name: str = "dynamic-network",
        restrict_to_lcc: bool = True,
    ) -> "DynamicNetwork":
        """Replay a timestamped edge stream into snapshots (paper §5.1.1).

        ``cutoffs`` are the inclusive cut-off timestamps, one per snapshot,
        strictly increasing. Events after the final cut-off are dropped.
        Plain ``(u, v, t)`` tuples are treated as additions.
        """
        normalized = [coerce_event(e) for e in events]
        normalized.sort(key=lambda e: e.time)
        if list(cutoffs) != sorted(set(cutoffs)):
            raise ValueError("cutoffs must be strictly increasing")

        snapshots: list[Graph] = []
        accumulator = Graph()
        # Compute the (sorted) times array once; re-slicing it per cutoff
        # would make the loop O(T·E) for T cutoffs over E events.
        times = [e.time for e in normalized]
        cursor = 0
        for cutoff in cutoffs:
            # bisect on times: apply all events with time <= cutoff
            advance = bisect_right(times, cutoff, lo=cursor)
            for event in normalized[cursor:advance]:
                if event.kind == "add":
                    accumulator.add_edge(event.u, event.v, event.weight)
                else:
                    accumulator.discard_edge(event.u, event.v)
            cursor = advance
            snapshot = accumulator.copy()
            if restrict_to_lcc:
                snapshot = largest_connected_component(snapshot)
            snapshots.append(snapshot)
        return cls(snapshots, labels=labels, name=name)

    @classmethod
    def from_equal_width_stream(
        cls,
        events: Iterable[EdgeEvent | TimedEdge],
        num_snapshots: int,
        labels: dict[Node, object] | None = None,
        name: str = "dynamic-network",
        restrict_to_lcc: bool = True,
    ) -> "DynamicNetwork":
        """Edge-stream builder with equal-width time windows.

        Mirrors the paper's "the gap between snapshots on a same dataset is
        identical" convention by splitting the stream's time span into
        ``num_snapshots`` equal windows.
        """
        normalized = [coerce_event(e) for e in events]
        if not normalized:
            raise ValueError("edge stream is empty")
        if num_snapshots < 1:
            raise ValueError("num_snapshots must be >= 1")
        t_min = min(e.time for e in normalized)
        t_max = max(e.time for e in normalized)
        if num_snapshots == 1 or t_max == t_min:
            cutoffs: list[float] = [t_max]
        else:
            width = (t_max - t_min) / num_snapshots
            cutoffs = [t_min + width * (i + 1) for i in range(num_snapshots)]
            cutoffs[-1] = t_max  # guard against float round-off losing events
        return cls.from_edge_stream(
            normalized,
            cutoffs,
            labels=labels,
            name=name,
            restrict_to_lcc=restrict_to_lcc,
        )

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    @property
    def num_snapshots(self) -> int:
        return len(self._snapshots)

    def snapshot(self, t: int) -> Graph:
        return self._snapshots[t]

    def diffs(self) -> list[SnapshotDiff]:
        """Edge streams ΔE^t for t = 1 .. T-1 (length ``num_snapshots - 1``)."""
        return [
            diff_snapshots(self._snapshots[t - 1], self._snapshots[t])
            for t in range(1, len(self._snapshots))
        ]

    def diff(self, t: int) -> SnapshotDiff:
        """ΔE^t between snapshots ``t - 1`` and ``t`` (t >= 1)."""
        if t < 1:
            raise ValueError("diff is defined for t >= 1")
        return diff_snapshots(self._snapshots[t - 1], self._snapshots[t])

    def total_nodes(self) -> int:
        """Sum of node counts over snapshots (paper Table 4 footer stat)."""
        return sum(g.number_of_nodes() for g in self._snapshots)

    def total_edges(self) -> int:
        """Sum of edge counts over snapshots (paper Table 4 footer stat)."""
        return sum(g.number_of_edges() for g in self._snapshots)

    def labeled_nodes(self, t: int) -> list[Node]:
        """Nodes of snapshot ``t`` that carry a label."""
        snapshot = self._snapshots[t]
        return [node for node in snapshot.nodes() if node in self.labels]

    def __getitem__(self, t: int) -> Graph:
        return self._snapshots[t]

    def __len__(self) -> int:
        return len(self._snapshots)

    def __iter__(self) -> Iterator[Graph]:
        return iter(self._snapshots)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        last = self._snapshots[-1]
        return (
            f"DynamicNetwork(name={self.name!r}, snapshots={len(self)}, "
            f"final_nodes={last.number_of_nodes()}, "
            f"final_edges={last.number_of_edges()})"
        )
