"""Connected-component utilities.

The paper's snapshot-building pipeline (Section 5.1.1) keeps only the
largest connected component of each snapshot; the partitioner and the
Figure 1 analysis also need component decomposition.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Iterable

from repro.graph.static import Graph

Node = Hashable


def connected_components(graph: Graph) -> list[set[Node]]:
    """All connected components as node sets, largest first.

    Iterative BFS — safe for deep/path-like graphs where recursion would
    overflow.
    """
    remaining = graph.node_set()
    components: list[set[Node]] = []
    while remaining:
        seed = next(iter(remaining))
        component = {seed}
        frontier = deque([seed])
        while frontier:
            node = frontier.popleft()
            for neighbor in graph.neighbors(node):
                if neighbor not in component:
                    component.add(neighbor)
                    frontier.append(neighbor)
        components.append(component)
        remaining -= component
    components.sort(key=len, reverse=True)
    return components


def largest_connected_component(graph: Graph) -> Graph:
    """Induced subgraph on the largest component (empty graph passes through)."""
    if graph.number_of_nodes() == 0:
        return graph.copy()
    components = connected_components(graph)
    return graph.subgraph(components[0])


def is_connected(graph: Graph) -> bool:
    """True for the empty graph and any single-component graph."""
    if graph.number_of_nodes() == 0:
        return True
    return len(connected_components(graph)) == 1


def bfs_distances(graph: Graph, source: Node, cutoff: int | None = None) -> dict[Node, int]:
    """Unweighted shortest-path (hop) distances from ``source``.

    Used by the Figure 1 proximity-change analysis, where the paper's
    "shortest path via Dijkstra" reduces to BFS because snapshots are
    unweighted. ``cutoff`` truncates the search at a hop radius.
    """
    distances = {source: 0}
    frontier = deque([source])
    while frontier:
        node = frontier.popleft()
        depth = distances[node]
        if cutoff is not None and depth >= cutoff:
            continue
        for neighbor in graph.neighbors(node):
            if neighbor not in distances:
                distances[neighbor] = depth + 1
                frontier.append(neighbor)
    return distances


def induced_partition_components(graph: Graph, cells: Iterable[Iterable[Node]]) -> list[list[set[Node]]]:
    """Component decomposition of each partition cell's induced subgraph.

    Helper for partition-quality diagnostics: a good METIS-style cell is
    usually connected, but the balance constraint can force disconnected
    cells; callers may want to know how often.
    """
    return [connected_components(graph.subgraph(cell)) for cell in cells]
