"""Dynamic-graph substrate: snapshots, CSR views, diffs, components."""

from repro.graph.components import (
    bfs_distances,
    connected_components,
    is_connected,
    largest_connected_component,
)
from repro.graph.csr import CSRAdjacency
from repro.graph.diff import (
    SnapshotDiff,
    diff_snapshots,
    node_change_count,
    weighted_node_changes,
)
from repro.graph.dynamic import DynamicNetwork, EdgeEvent
from repro.graph.static import Graph

__all__ = [
    "CSRAdjacency",
    "DynamicNetwork",
    "EdgeEvent",
    "Graph",
    "SnapshotDiff",
    "bfs_distances",
    "connected_components",
    "diff_snapshots",
    "is_connected",
    "largest_connected_component",
    "node_change_count",
    "weighted_node_changes",
]
