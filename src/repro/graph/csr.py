"""Compressed-sparse-row adjacency view for numeric hot loops.

The adjacency-map :class:`repro.graph.static.Graph` is convenient for
mutation while replaying edge streams, but random walks (millions of
transitions) and multilevel partitioning want flat arrays. ``CSRAdjacency``
freezes a snapshot into numpy CSR arrays plus a stable node <-> index map.
"""

from __future__ import annotations

from typing import Hashable, Sequence

import numpy as np

from repro.graph.static import Graph

Node = Hashable


class CSRAdjacency:
    """Immutable CSR adjacency of an undirected (optionally weighted) graph.

    Attributes
    ----------
    nodes:
        ``nodes[i]`` is the original node id of index ``i``. Order is the
        insertion order of the source graph, making the mapping deterministic.
    indptr, indices, weights:
        Standard CSR arrays; the neighbours of index ``i`` are
        ``indices[indptr[i]:indptr[i + 1]]``.
    """

    __slots__ = (
        "nodes",
        "index_of",
        "indptr",
        "indices",
        "weights",
        "_cumulative",
        "_global_cumulative",
        "_row_alias",
        "_uniform",
    )

    def __init__(
        self,
        nodes: Sequence[Node],
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: np.ndarray,
    ) -> None:
        self.nodes: list[Node] = list(nodes)
        self.index_of: dict[Node, int] = {n: i for i, n in enumerate(self.nodes)}
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.weights = np.asarray(weights, dtype=np.float64)
        self._uniform = bool(
            self.weights.size == 0 or np.allclose(self.weights, self.weights[0])
        )
        # Per-node cumulative weights for O(log deg) weighted transition
        # sampling (Eq. 5); built lazily because unweighted graphs never
        # need it.
        self._cumulative: np.ndarray | None = None
        self._global_cumulative: np.ndarray | None = None
        self._row_alias: tuple[np.ndarray, np.ndarray] | None = None

    @classmethod
    def from_graph(cls, graph: Graph) -> "CSRAdjacency":
        """Freeze ``graph`` into CSR form (nodes in graph iteration order)."""
        nodes = list(graph.nodes())
        index_of = {n: i for i, n in enumerate(nodes)}
        degrees = np.fromiter(
            (graph.degree(n) for n in nodes), dtype=np.int64, count=len(nodes)
        )
        indptr = np.zeros(len(nodes) + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        indices = np.empty(int(indptr[-1]), dtype=np.int64)
        weights = np.empty(int(indptr[-1]), dtype=np.float64)
        cursor = indptr[:-1].copy()
        for u_idx, u in enumerate(nodes):
            for v, w in graph._adj[u].items():  # noqa: SLF001 - perf-critical
                pos = cursor[u_idx]
                indices[pos] = index_of[v]
                weights[pos] = w
                cursor[u_idx] += 1
        return cls(nodes, indptr, indices, weights)

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_edges(self) -> int:
        """Undirected edge count (CSR stores both directions)."""
        loops = int(np.sum(self.indices == self._row_of_entries()))
        return (int(self.indices.size) + loops) // 2

    def _row_of_entries(self) -> np.ndarray:
        """Row index for every CSR entry (used to detect self-loops)."""
        return np.repeat(np.arange(self.num_nodes), np.diff(self.indptr))

    @property
    def degrees(self) -> np.ndarray:
        """Unweighted degree per node index."""
        return np.diff(self.indptr)

    @property
    def is_uniform(self) -> bool:
        """True when all edge weights are equal (fast uniform-walk path)."""
        return self._uniform

    def neighbors(self, idx: int) -> np.ndarray:
        """Neighbour indices of node index ``idx`` (zero-copy slice)."""
        return self.indices[self.indptr[idx]: self.indptr[idx + 1]]

    def neighbor_weights(self, idx: int) -> np.ndarray:
        """Edge weights aligned with :meth:`neighbors`."""
        return self.weights[self.indptr[idx]: self.indptr[idx + 1]]

    def cumulative_weights(self) -> np.ndarray:
        """Per-row cumulative edge weights for inverse-CDF sampling."""
        if self._cumulative is None:
            cumulative = np.cumsum(self.weights)
            # Convert the global cumsum into per-row cumsums by subtracting
            # the running total at each row start.
            starts = self.indptr[:-1]
            offsets = np.zeros_like(cumulative)
            row_base = np.concatenate(([0.0], cumulative))[starts]
            offsets = np.repeat(row_base, np.diff(self.indptr))
            self._cumulative = cumulative - offsets
        return self._cumulative

    def global_cumulative_weights(self) -> np.ndarray:
        """Zero-prefixed global cumsum of CSR weights (length ``nnz + 1``).

        With strictly positive weights this array is non-decreasing across
        the whole CSR, so one ``searchsorted`` against it resolves weighted
        transition draws for *every* walker at once: the draw for a walker
        at node ``i`` is offset by ``gcum[indptr[i]]`` (the row base) and
        searched globally instead of per-row.
        """
        if self._global_cumulative is None:
            gcum = np.empty(self.weights.size + 1, dtype=np.float64)
            gcum[0] = 0.0
            np.cumsum(self.weights, out=gcum[1:])
            self._global_cumulative = gcum
        return self._global_cumulative

    def row_alias_tables(self) -> tuple[np.ndarray, np.ndarray]:
        """Flattened per-row alias tables for O(1) weighted transitions.

        Builds a Walker/Vose :class:`repro.walks.alias.AliasTable` per
        node row and flattens them into two CSR-aligned arrays
        ``(probability, alias)``: the table slot for neighbour ``k`` of
        node ``i`` lives at ``indptr[i] + k``, and ``alias`` entries are
        row-local neighbour positions. Consumed by the alias walk kernels
        (:mod:`repro.sgns.kernels`); built lazily and cached because only
        weighted graphs on the alias backend need it.
        """
        if self._row_alias is None:
            from repro.walks.alias import AliasTable

            probability = np.ones(self.weights.size, dtype=np.float64)
            alias = np.zeros(self.weights.size, dtype=np.int64)
            for i in range(self.num_nodes):
                start, end = int(self.indptr[i]), int(self.indptr[i + 1])
                if end == start:
                    continue
                table = AliasTable(self.weights[start:end])
                probability[start:end] = table.probability
                alias[start:end] = table.alias
            self._row_alias = (probability, alias)
        return self._row_alias

    def to_scipy(self):
        """Export as ``scipy.sparse.csr_matrix`` (symmetric adjacency)."""
        from scipy.sparse import csr_matrix

        n = self.num_nodes
        return csr_matrix((self.weights, self.indices, self.indptr), shape=(n, n))

    def adjacency_dense(self) -> np.ndarray:
        """Dense adjacency matrix — only for small graphs (tests, baselines)."""
        n = self.num_nodes
        dense = np.zeros((n, n), dtype=np.float64)
        rows = self._row_of_entries()
        dense[rows, self.indices] = self.weights
        return dense

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CSRAdjacency(nodes={self.num_nodes}, entries={self.indices.size})"
