"""Static undirected graph used as the snapshot representation.

The paper (Definition 1-2) treats every snapshot of a dynamic network as a
static, undirected, unweighted graph; edge weights are nevertheless supported
because Eq. (3)'s footnote defines a weighted variant of the change score and
Eq. (5) defines weighted random-walk transitions.

``Graph`` is a thin adjacency-map structure (dict of dicts) optimised for the
operations the pipeline needs: edge insertion/removal while replaying an edge
stream, neighbour-set queries for the change score, and a one-shot export to
:class:`repro.graph.csr.CSRAdjacency` for the hot loops (random walks,
partitioning).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator

Node = Hashable
Edge = tuple[Node, Node]
WeightedEdge = tuple[Node, Node, float]


class Graph:
    """An undirected, optionally weighted graph over hashable node ids.

    Parallel edges are not supported; re-adding an existing edge overwrites
    its weight. Self-loops are allowed but discouraged (random walks treat
    them as ordinary transitions).
    """

    __slots__ = ("_adj",)

    def __init__(self) -> None:
        self._adj: dict[Node, dict[Node, float]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(cls, edges: Iterable[Edge | WeightedEdge]) -> "Graph":
        """Build a graph from an iterable of ``(u, v)`` or ``(u, v, w)``."""
        graph = cls()
        for edge in edges:
            if len(edge) == 2:
                u, v = edge  # type: ignore[misc]
                graph.add_edge(u, v)
            else:
                u, v, w = edge  # type: ignore[misc]
                graph.add_edge(u, v, w)
        return graph

    @classmethod
    def from_networkx(cls, nx_graph) -> "Graph":
        """Convert a ``networkx`` graph (weights read from ``weight`` attr)."""
        graph = cls()
        for node in nx_graph.nodes():
            graph.add_node(node)
        for u, v, data in nx_graph.edges(data=True):
            graph.add_edge(u, v, float(data.get("weight", 1.0)))
        return graph

    def to_networkx(self):
        """Export to a ``networkx.Graph`` with ``weight`` edge attributes."""
        import networkx as nx

        nx_graph = nx.Graph()
        nx_graph.add_nodes_from(self._adj)
        nx_graph.add_weighted_edges_from(
            (u, v, w) for u, v, w in self.weighted_edges()
        )
        return nx_graph

    def copy(self) -> "Graph":
        """Return a deep copy (adjacency maps are duplicated)."""
        clone = Graph()
        clone._adj = {node: dict(nbrs) for node, nbrs in self._adj.items()}
        return clone

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> None:
        """Insert an isolated node (no-op if present)."""
        self._adj.setdefault(node, {})

    def add_edge(self, u: Node, v: Node, weight: float = 1.0) -> None:
        """Insert or overwrite the undirected edge ``(u, v)``."""
        self._adj.setdefault(u, {})[v] = weight
        self._adj.setdefault(v, {})[u] = weight

    def remove_edge(self, u: Node, v: Node) -> None:
        """Delete the edge ``(u, v)``; raises ``KeyError`` if absent."""
        del self._adj[u][v]
        if u != v:
            del self._adj[v][u]

    def discard_edge(self, u: Node, v: Node) -> bool:
        """Delete the edge if present. Returns True when an edge was removed."""
        if u in self._adj and v in self._adj[u]:
            self.remove_edge(u, v)
            return True
        return False

    def remove_node(self, node: Node) -> None:
        """Delete a node and all incident edges; ``KeyError`` if absent."""
        for neighbor in list(self._adj[node]):
            if neighbor != node:
                del self._adj[neighbor][node]
        del self._adj[node]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def has_node(self, node: Node) -> bool:
        return node in self._adj

    def has_edge(self, u: Node, v: Node) -> bool:
        return u in self._adj and v in self._adj[u]

    def neighbors(self, node: Node) -> Iterator[Node]:
        """Iterate over the neighbours of ``node``."""
        return iter(self._adj[node])

    def neighbor_set(self, node: Node) -> set[Node]:
        """Neighbour set ``N(v)``; empty set for unknown nodes.

        Unknown nodes return an empty set (rather than raising) because the
        change score Eq. (3) compares neighbourhoods across snapshots in
        which a node may not yet / no longer exist.
        """
        nbrs = self._adj.get(node)
        return set(nbrs) if nbrs is not None else set()

    def edge_weight(self, u: Node, v: Node, default: float = 0.0) -> float:
        """Weight of the edge ``(u, v)``; ``default`` when absent."""
        nbrs = self._adj.get(u)
        if nbrs is None:
            return default
        return nbrs.get(v, default)

    def degree(self, node: Node) -> int:
        """Number of incident edges (self-loop counts once)."""
        return len(self._adj[node])

    def weighted_degree(self, node: Node) -> float:
        """Sum of incident edge weights."""
        return float(sum(self._adj[node].values()))

    def nodes(self) -> Iterator[Node]:
        return iter(self._adj)

    def node_set(self) -> set[Node]:
        return set(self._adj)

    def edges(self) -> Iterator[Edge]:
        """Iterate each undirected edge once as ``(u, v)``."""
        seen: set[Node] = set()
        for u, nbrs in self._adj.items():
            for v in nbrs:
                if v not in seen or v == u:
                    yield (u, v)
            seen.add(u)

    def weighted_edges(self) -> Iterator[WeightedEdge]:
        """Iterate each undirected edge once as ``(u, v, weight)``."""
        seen: set[Node] = set()
        for u, nbrs in self._adj.items():
            for v, w in nbrs.items():
                if v not in seen or v == u:
                    yield (u, v, w)
            seen.add(u)

    def edge_set(self) -> set[frozenset]:
        """Edges as a set of ``frozenset({u, v})`` for order-free comparison."""
        return {frozenset((u, v)) for u, v in self.edges()}

    def subgraph(self, nodes: Iterable[Node]) -> "Graph":
        """Induced subgraph on ``nodes`` (nodes absent from self are ignored)."""
        keep = {node for node in nodes if node in self._adj}
        sub = Graph()
        for node in keep:
            sub.add_node(node)
        for node in keep:
            for neighbor, weight in self._adj[node].items():
                if neighbor in keep:
                    sub.add_edge(node, neighbor, weight)
        return sub

    # ------------------------------------------------------------------
    # dunder / stats
    # ------------------------------------------------------------------
    def number_of_nodes(self) -> int:
        return len(self._adj)

    def number_of_edges(self) -> int:
        loops = sum(1 for node, nbrs in self._adj.items() if node in nbrs)
        return (sum(len(nbrs) for nbrs in self._adj.values()) + loops) // 2

    def total_edge_weight(self) -> float:
        """Sum of weights over undirected edges (each edge counted once)."""
        return float(sum(w for _, _, w in self.weighted_edges()))

    def is_unweighted(self, tolerance: float = 1e-12) -> bool:
        """True when every edge weight equals 1 (within ``tolerance``)."""
        return all(abs(w - 1.0) <= tolerance for _, _, w in self.weighted_edges())

    def __contains__(self, node: Node) -> bool:
        return node in self._adj

    def __iter__(self) -> Iterator[Node]:
        return iter(self._adj)

    def __len__(self) -> int:
        return len(self._adj)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Graph(nodes={self.number_of_nodes()}, "
            f"edges={self.number_of_edges()})"
        )
