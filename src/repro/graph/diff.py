"""Snapshot-to-snapshot differences (the edge stream ΔE^t).

Algorithm 1 line 9 reads the edge stream between consecutive snapshots "or
obtains it by differences between G^{t-1} and G^t if not given". This module
is that fallback, and it also exposes the per-node change counts |ΔE^t_i|
that feed the change score of Eq. (3):

    |ΔE^t_i| = |N(v^t_i) ∪ N(v^{t-1}_i)  -  N(v^t_i) ∩ N(v^{t-1}_i)|

i.e. the symmetric difference of the node's neighbour sets across the two
snapshots. Footnote 3 of the paper defines a weighted generalisation, which
:func:`weighted_node_changes` implements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from repro.graph.static import Graph

Node = Hashable


@dataclass(frozen=True)
class SnapshotDiff:
    """Difference between two consecutive snapshots ``previous`` -> ``current``.

    ``added_edges``/``removed_edges`` hold each undirected edge once as a
    ``frozenset`` pair; ``node_changes`` maps every touched node to its
    |ΔE_i| count (symmetric-difference size of its neighbourhoods).
    """

    added_nodes: frozenset[Node]
    removed_nodes: frozenset[Node]
    added_edges: frozenset[frozenset]
    removed_edges: frozenset[frozenset]
    node_changes: dict[Node, int] = field(hash=False, default_factory=dict)

    @property
    def num_changed_edges(self) -> int:
        """|ΔE^t| — total number of added plus removed edges."""
        return len(self.added_edges) + len(self.removed_edges)

    @property
    def changed_nodes(self) -> set[Node]:
        """Nodes incident to at least one added or removed edge."""
        return {node for node, count in self.node_changes.items() if count > 0}

    def is_empty(self) -> bool:
        return (
            not self.added_nodes
            and not self.removed_nodes
            and not self.added_edges
            and not self.removed_edges
        )


def diff_snapshots(previous: Graph, current: Graph) -> SnapshotDiff:
    """Compute :class:`SnapshotDiff` between two snapshots.

    Node changes count the neighbour-set symmetric difference per node,
    which equals the number of changed edges incident to that node; both
    endpoints of a changed edge are credited (as in Eq. (3)).
    """
    prev_nodes = previous.node_set()
    curr_nodes = current.node_set()
    added_nodes = frozenset(curr_nodes - prev_nodes)
    removed_nodes = frozenset(prev_nodes - curr_nodes)

    prev_edges = previous.edge_set()
    curr_edges = current.edge_set()
    added_edges = frozenset(curr_edges - prev_edges)
    removed_edges = frozenset(prev_edges - curr_edges)

    node_changes: dict[Node, int] = {}
    for edge in added_edges | removed_edges:
        for endpoint in edge:
            node_changes[endpoint] = node_changes.get(endpoint, 0) + 1
        if len(edge) == 1:  # self-loop frozenset collapses to one element
            (endpoint,) = edge
            node_changes[endpoint] += 1

    return SnapshotDiff(
        added_nodes=added_nodes,
        removed_nodes=removed_nodes,
        added_edges=added_edges,
        removed_edges=removed_edges,
        node_changes=node_changes,
    )


def node_change_count(previous: Graph, current: Graph, node: Node) -> int:
    """|ΔE_i| for a single node — neighbour-set symmetric difference size.

    Equivalent to the per-node entries of :func:`diff_snapshots` but usable
    standalone (tests, the scoring module's reference implementation).
    """
    prev_nbrs = previous.neighbor_set(node)
    curr_nbrs = current.neighbor_set(node)
    return len(prev_nbrs.symmetric_difference(curr_nbrs))


def weighted_node_changes(previous: Graph, current: Graph) -> dict[Node, float]:
    """Weighted |ΔE_i| per footnote 3 of the paper.

    For every node ``i``::

        sum_{j in N(v^t_i)}               |w^t_ij - w^{t-1}_ij|
      + sum_{j in N(v^{t-1}_i) - N(v^t_i)} |w^{t-1}_ij|

    The first term covers weight changes (including new edges, whose
    previous weight is 0); the second covers edges deleted at ``t``.
    """
    changes: dict[Node, float] = {}
    nodes = previous.node_set() | current.node_set()
    for node in nodes:
        curr_nbrs = current.neighbor_set(node)
        prev_nbrs = previous.neighbor_set(node)
        total = 0.0
        for neighbor in curr_nbrs:
            total += abs(
                current.edge_weight(node, neighbor)
                - previous.edge_weight(node, neighbor)
            )
        for neighbor in prev_nbrs - curr_nbrs:
            total += abs(previous.edge_weight(node, neighbor))
        if total > 0.0:
            changes[node] = total
    return changes
