"""``python -m repro.bench <file-or-dir>...`` — validate bench JSON."""

from repro.bench.schema import main

if __name__ == "__main__":
    raise SystemExit(main())
