"""Bench registry: named callables producing structured results.

A bench module registers an entry point with::

    from repro.bench import register_bench

    @register_bench("parallel_walks")
    def run_bench(tiny: bool) -> dict:
        ...
        return {
            "metrics": {"speedup": 2.3, "nodes": 5000},
            "config": {"workers": 4, "num_walks": 10},
            "summary": rendered_table,
            "caveats": ["gate reported but not asserted"],  # optional
        }

The callable does the measuring and returns the payload; the registry
wraps it with timing, host/git telemetry, host-derived ``caveats``
(e.g. the single-core annotation), and schema validation
(:func:`run_registered`), producing the final ``BENCH_<name>.json``
document the orchestrator writes.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.bench.schema import SCHEMA_ID, valid_name, validate_result
from repro.bench.telemetry import git_info, host_info

#: Caveat stamped into every document recorded on a host where the
#: scheduler gives this process a single core: parallel / batched
#: speedup metrics from such hosts hover around 1x by construction, and
#: trajectory tooling must not read them as regressions.
SINGLE_CORE_CAVEAT = (
    "single-core host: parallel speedups not representative"
)

#: Environment flag the bench modules' shared grids key off at import
#: time (see ``benchmarks/common.py``). :func:`run_registered` refuses a
#: profile that disagrees with it — otherwise a ``tiny=True`` run over
#: modules imported at full scale would stamp full-scale numbers with
#: ``profile: "tiny"`` and silently corrupt the trajectory.
TINY_ENV = "REPRO_BENCH_TINY"


@dataclass(frozen=True)
class BenchSpec:
    """One registered bench: its name, entry point, and search tags."""

    name: str
    fn: Callable[[bool], dict]
    tags: tuple[str, ...] = field(default_factory=tuple)


_REGISTRY: dict[str, BenchSpec] = {}


def register_bench(name: str, *, tags: tuple[str, ...] = ()):
    """Decorator registering ``fn(tiny: bool) -> dict`` under ``name``.

    Re-registering a name replaces the previous entry: bench modules get
    imported under several module names (pytest, the orchestrator's
    discovery, direct execution) and the latest definition must win
    rather than exploding on the second import.
    """
    if not valid_name(name):
        raise ValueError(f"bench name must match [a-z0-9_]+, got {name!r}")

    def decorate(fn: Callable[[bool], dict]) -> Callable[[bool], dict]:
        _REGISTRY[name] = BenchSpec(name=name, fn=fn, tags=tuple(tags))
        return fn

    return decorate


def get_bench(name: str) -> BenchSpec:
    """Look up a registered bench; ``KeyError`` names the known ones."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none discovered>"
        raise KeyError(f"unknown bench {name!r}; registered: {known}") from None


def registered_benches() -> list[BenchSpec]:
    """All registered benches, sorted by name for stable run order."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def run_registered(name: str, tiny: bool = False) -> dict:
    """Run one bench and assemble its schema-valid document.

    The payload's ``metrics`` must be non-empty scalars; ``config``,
    ``summary``, and ``caveats`` are optional. A payload that produces an
    invalid document raises ``ValueError`` listing every schema problem —
    a bench with broken telemetry must fail loudly, not commit garbage
    trajectory.

    The emitted document always carries a top-level ``caveats`` list:
    the payload's own entries plus host-derived ones — in particular
    :data:`SINGLE_CORE_CAVEAT` whenever the recording host exposes a
    single schedulable core, so downstream trajectory tooling does not
    misread ~1x parallel/batched speedups as regressions.

    The ``tiny`` flag must agree with the :data:`TINY_ENV` environment
    flag (exported *before* the bench modules were imported, as
    ``benchmarks/run_all.py --tiny`` does): bench modules freeze their
    grids at import time, so a disagreeing flag would mislabel the
    emitted profile.
    """
    env_tiny = os.environ.get(TINY_ENV) == "1"
    if tiny != env_tiny:
        raise ValueError(
            f"profile mismatch: run_registered(tiny={tiny}) but {TINY_ENV}="
            f"{os.environ.get(TINY_ENV)!r}; export {TINY_ENV}=1 before "
            "importing bench modules for a tiny run (run_all.py --tiny "
            "does this), or drop the flag for a full run"
        )
    spec = get_bench(name)
    started = time.perf_counter()
    payload = spec.fn(tiny)
    seconds = time.perf_counter() - started
    if not isinstance(payload, dict):
        raise ValueError(
            f"bench {name!r} returned {type(payload).__name__}, expected dict"
        )
    host = host_info()
    # Bench-supplied caveats (e.g. "gate not asserted") come first, then
    # host-derived ones the bench cannot know it needs. Exactly one core
    # triggers the annotation; an *unknown* count (None on exotic hosts)
    # must not mislabel a possibly-multi-core recording.
    caveats = [str(caveat) for caveat in payload.get("caveats", [])]
    if host.get("cpu_count") == 1 and SINGLE_CORE_CAVEAT not in caveats:
        caveats.append(SINGLE_CORE_CAVEAT)
    doc = {
        "schema": SCHEMA_ID,
        "name": spec.name,
        "profile": "tiny" if tiny else "full",
        "status": "ok",
        "seconds": round(seconds, 4),
        "created_unix": time.time(),
        "metrics": payload.get("metrics", {}),
        "config": dict(payload.get("config", {})),
        "host": host,
        "git": git_info(),
        "summary": payload.get("summary", ""),
        "caveats": caveats,
    }
    problems = validate_result(doc)
    if problems:
        raise ValueError(
            f"bench {name!r} produced an invalid document: " + "; ".join(problems)
        )
    return doc
