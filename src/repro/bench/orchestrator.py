"""Discovery and suite execution behind ``benchmarks/run_all.py``.

``discover`` imports every ``bench_*.py`` in a directory so their
``@register_bench`` decorators populate the registry; ``run_suite``
executes a selection under one profile, writes ``BENCH_<name>.json``
per bench, and renders a one-line-per-bench closing table.
"""

from __future__ import annotations

import hashlib
import importlib.util
import json
import sys
from pathlib import Path
from typing import Callable

from repro.bench.registry import get_bench, registered_benches, run_registered


def discover(bench_dir: Path) -> list[str]:
    """Import every ``bench_*.py`` under ``bench_dir``; returns module names.

    The directory is prepended to ``sys.path`` for the duration so the
    bench modules' ``import common`` resolves, matching how pytest runs
    them via ``benchmarks/conftest.py``.
    """
    bench_dir = Path(bench_dir).resolve()
    inserted = str(bench_dir)
    sys.path.insert(0, inserted)
    loaded = []
    try:
        for path in sorted(bench_dir.glob("bench_*.py")):
            # Key the module cache by resolved path, not stem: two bench
            # directories may both contain a bench_foo.py and each must
            # execute (and register) independently.
            digest = hashlib.sha1(str(path).encode()).hexdigest()[:8]
            module_name = f"_repro_bench_{path.stem}_{digest}"
            if module_name in sys.modules:
                loaded.append(module_name)
                continue
            spec = importlib.util.spec_from_file_location(module_name, path)
            module = importlib.util.module_from_spec(spec)
            sys.modules[module_name] = module
            try:
                spec.loader.exec_module(module)
            except BaseException:
                # Never cache a half-initialized module: a retry must
                # re-exec it, not silently skip its registrations.
                sys.modules.pop(module_name, None)
                raise
            loaded.append(module_name)
    finally:
        sys.path.remove(inserted)
    return loaded


def write_doc(doc: dict, json_dir: Path) -> Path:
    json_dir.mkdir(parents=True, exist_ok=True)
    path = json_dir / f"BENCH_{doc['name']}.json"
    path.write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


def run_suite(
    names: list[str] | None,
    tiny: bool,
    json_dir: Path | None,
    stream=None,
    before_each: Callable[[], None] | None = None,
) -> list[dict]:
    """Run benches (all registered when ``names`` is None) and emit JSON.

    Any bench raising aborts the suite — the orchestrator's contract is
    "every registered bench produced a valid document", not "most did".
    Unknown names abort *before* anything runs, so a typo in a selection
    cannot waste a long suite. ``before_each`` runs ahead of every bench
    (``run_all.py`` uses it to reset shared caches so each document's
    ``seconds`` measures the bench itself, not its position in the run
    order).
    """
    out = stream if stream is not None else sys.stdout
    selected = (
        [spec.name for spec in registered_benches()]
        if names is None
        else list(names)
    )
    for name in selected:
        get_bench(name)  # fail fast on typos, before any bench runs
    docs = []
    for name in selected:
        if before_each is not None:
            before_each()
        print(f"== {name} ({'tiny' if tiny else 'full'}) ==", file=out)
        doc = run_registered(name, tiny=tiny)
        if doc["summary"]:
            print(doc["summary"], file=out)
        if json_dir is not None:
            path = write_doc(doc, json_dir)
            print(f"-> {path}", file=out)
        print(file=out)
        docs.append(doc)

    width = max((len(d["name"]) for d in docs), default=4)
    print("bench".ljust(width), "seconds", "metrics", file=out)
    for doc in docs:
        print(
            doc["name"].ljust(width),
            f"{doc['seconds']:7.2f}",
            len(doc["metrics"]),
            file=out,
        )
    return docs
