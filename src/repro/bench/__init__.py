"""Benchmark orchestration: registry, schema, and machine-readable telemetry.

Every script under ``benchmarks/`` registers one or more callables with
:func:`register_bench`; the orchestrator (``benchmarks/run_all.py``)
discovers them, runs each under a profile (``tiny`` for CI smokes,
``full`` for committed numbers), and emits one ``BENCH_<name>.json``
per bench — metrics plus the context needed to compare runs across
commits: git SHA, config, host info, wall-clock. The schema is pinned
(:data:`~repro.bench.schema.SCHEMA_ID`) and every document is validated
before it is written, so the committed files under
``benchmarks/results/`` form a machine-readable perf trajectory.
"""

from repro.bench.registry import (
    BenchSpec,
    get_bench,
    register_bench,
    registered_benches,
    run_registered,
)
from repro.bench.schema import SCHEMA_ID, validate_result
from repro.bench.telemetry import git_info, host_info

__all__ = [
    "BenchSpec",
    "SCHEMA_ID",
    "get_bench",
    "git_info",
    "host_info",
    "register_bench",
    "registered_benches",
    "run_registered",
    "validate_result",
]
