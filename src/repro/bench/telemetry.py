"""Host and git context attached to every bench document.

A perf number without its environment is noise: the committed JSON
trajectory is only comparable across PRs because each document records
the interpreter, platform, core count, numpy version, and the exact
commit it was measured at.
"""

from __future__ import annotations

import os
import platform
import subprocess
from pathlib import Path

import numpy as np


def effective_cpu_count() -> int | None:
    """Cores actually schedulable by this process (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count()


def host_info() -> dict:
    """Interpreter/platform/core facts relevant to perf comparability."""
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": effective_cpu_count(),
        "numpy": np.__version__,
    }


def _git(repo_root: Path, *args: str) -> str | None:
    try:
        output = subprocess.run(
            ["git", *args],
            cwd=repo_root,
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        return None
    return output or None


def git_info(repo_root: Path | None = None) -> dict:
    """Commit identity of the measured tree; all-null outside a repo.

    The default root is the source checkout containing this file; when
    the package is installed elsewhere (site-packages) that directory is
    not a repo root, and rather than pick up whatever unrelated repo
    happens to enclose it, the provenance is reported as null.
    """
    if repo_root is None:
        repo_root = Path(__file__).resolve().parents[3]
        if not (repo_root / ".git").exists():
            return {"sha": None, "branch": None, "dirty": None}
    sha = _git(repo_root, "rev-parse", "HEAD")
    branch = _git(repo_root, "rev-parse", "--abbrev-ref", "HEAD")
    dirty: bool | None = None
    if sha is not None:
        status = _git(repo_root, "status", "--porcelain")
        # _git maps empty output (a clean tree) to None, and returns None
        # on failure too — disambiguate with a second cheap call.
        dirty = bool(status) if status is not None else (
            False if _git(repo_root, "rev-parse", "--git-dir") else None
        )
    return {"sha": sha, "branch": branch, "dirty": dirty}
