"""The ``BENCH_<name>.json`` document schema and its validator.

The validator is hand-rolled (no third-party dependency) and doubles as
the schema's executable documentation. Run it over emitted files with::

    python -m repro.bench.schema benchmarks/results/
    python -m repro.bench.schema out/BENCH_parallel_walks.json

Exit status is non-zero when any document fails, and every problem is
listed with its JSON path — this is what CI runs against the orchestrator
artifacts.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: Bumped on breaking document changes; consumers filter on it.
SCHEMA_ID = "repro.bench/v1"

PROFILES = ("tiny", "full")

_SCALAR = (int, float, str, bool, type(None))


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def valid_name(name) -> bool:
    """The one definition of a bench name: non-empty ``[a-z0-9_]+``."""
    return (
        isinstance(name, str)
        and name != ""
        and all(
            c.isascii() and (c.isalnum() or c == "_") and not c.isupper()
            for c in name
        )
    )


def validate_result(doc) -> list[str]:
    """Validate one bench document; returns a list of problems (empty = ok).

    Required shape::

        {
          "schema": "repro.bench/v1",
          "name": "<[a-z0-9_]+>",
          "profile": "tiny" | "full",
          "status": "ok",
          "seconds": <number >= 0>,          # bench wall-clock
          "created_unix": <number>,          # epoch seconds
          "metrics": {str: scalar},          # >= 1 numeric entry
          "config": {str: json},             # bench parameters
          "host": {"python", "platform", "cpu_count", "numpy"},
          "git": {"sha", "branch", "dirty"}, # nullable (no repo / no git)
          "summary": str,                    # human-readable rendering
          "caveats": [str, ...],             # optional; see below
          "stage_seconds": {str: number}     # optional; see below
        }

    ``caveats`` is a list of non-empty strings qualifying the numbers —
    e.g. ``"single-core host: parallel speedups not representative"``
    when ``host.cpu_count == 1`` (a ~1x parallel speedup from such a
    host is a hardware fact, not a regression), or a bench noting that
    a multi-core acceptance gate was reported but not asserted. Every
    document the orchestrator emits carries the key (possibly empty);
    it stays optional in validation so documents recorded before it
    existed still verify.

    ``stage_seconds`` is an optional ``{stage name: seconds}`` mapping —
    the pipeline runner's per-stage wall-clock telemetry (see
    ``StepTrace.stage_seconds``), summed over whatever the bench timed.
    Optional for the same reason as ``caveats``: documents recorded
    before the stage pipeline existed still verify.
    """
    problems: list[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]

    def check(condition: bool, message: str) -> bool:
        if not condition:
            problems.append(message)
        return condition

    check(doc.get("schema") == SCHEMA_ID,
          f"schema: expected {SCHEMA_ID!r}, got {doc.get('schema')!r}")
    name = doc.get("name")
    check(valid_name(name), f"name: {name!r} must match non-empty [a-z0-9_]+")
    check(doc.get("profile") in PROFILES,
          f"profile: must be one of {PROFILES}, got {doc.get('profile')!r}")
    check(doc.get("status") == "ok",
          f"status: expected 'ok', got {doc.get('status')!r}")
    check(_is_number(doc.get("seconds")) and doc["seconds"] >= 0,
          "seconds: non-negative number required")
    check(_is_number(doc.get("created_unix")),
          "created_unix: number required")
    check(isinstance(doc.get("summary"), str), "summary: string required")

    metrics = doc.get("metrics")
    if check(isinstance(metrics, dict) and metrics,
             "metrics: non-empty object required"):
        numeric = 0
        for key, value in metrics.items():
            if not isinstance(key, str):
                problems.append(f"metrics: non-string key {key!r}")
            if not isinstance(value, _SCALAR):
                problems.append(
                    f"metrics[{key!r}]: scalar required, got {type(value).__name__}"
                )
            elif _is_number(value):
                numeric += 1
        check(numeric >= 1, "metrics: at least one numeric entry required")

    config = doc.get("config")
    if check(isinstance(config, dict), "config: object required"):
        try:
            json.dumps(config)
        except (TypeError, ValueError) as error:
            problems.append(f"config: not JSON-serializable ({error})")

    host = doc.get("host")
    if check(isinstance(host, dict), "host: object required"):
        for field, kind in (
            ("python", str), ("platform", str), ("numpy", str),
        ):
            check(isinstance(host.get(field), kind),
                  f"host.{field}: {kind.__name__} required")
        check(isinstance(host.get("cpu_count"), int) or host.get("cpu_count") is None,
              "host.cpu_count: int or null required")

    if "caveats" in doc:
        caveats = doc["caveats"]
        if check(isinstance(caveats, list), "caveats: list required"):
            for i, caveat in enumerate(caveats):
                check(
                    isinstance(caveat, str) and caveat.strip() != "",
                    f"caveats[{i}]: non-empty string required",
                )

    if "stage_seconds" in doc:
        stages = doc["stage_seconds"]
        if check(isinstance(stages, dict), "stage_seconds: object required"):
            for key, value in stages.items():
                if not isinstance(key, str) or key == "":
                    problems.append(
                        f"stage_seconds: non-empty string key required, got {key!r}"
                    )
                check(
                    _is_number(value) and value >= 0,
                    f"stage_seconds[{key!r}]: non-negative number required",
                )

    git = doc.get("git")
    if check(isinstance(git, dict), "git: object required"):
        for field in ("sha", "branch"):
            check(field in git, f"git.{field}: key required")
            value = git.get(field)
            check(value is None or isinstance(value, str),
                  f"git.{field}: string or null required")
        dirty = git.get("dirty", "missing")
        check(dirty is None or isinstance(dirty, bool),
              "git.dirty: bool or null required")

    return problems


def validate_file(path: Path) -> list[str]:
    """Load and validate one JSON file; IO/parse failures are problems too."""
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as error:
        return [f"unreadable: {error}"]
    return validate_result(doc)


def main(argv: list[str] | None = None) -> int:
    """Validate ``BENCH_*.json`` files / directories given as arguments."""
    args = sys.argv[1:] if argv is None else argv
    if not args:
        print("usage: python -m repro.bench.schema <file-or-dir> ...",
              file=sys.stderr)
        return 2
    paths: list[Path] = []
    for arg in args:
        root = Path(arg)
        if root.is_dir():
            paths.extend(sorted(root.glob("BENCH_*.json")))
        else:
            paths.append(root)
    if not paths:
        print("no BENCH_*.json files found", file=sys.stderr)
        return 1
    failures = 0
    for path in paths:
        problems = validate_file(path)
        if problems:
            failures += 1
            print(f"FAIL {path}")
            for problem in problems:
                print(f"  - {problem}")
        else:
            print(f"ok   {path}")
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover - thin CLI shim
    raise SystemExit(main())
