"""Per-step diagnostics emitted by the stage pipeline.

:class:`StepTrace` predates the pipeline (it has always been the golden
currency of the determinism tests — embeddings *and* traces must stay
bit-identical across refactors), so its comparable fields are frozen in
meaning. The pipeline adds ``stage_seconds``, a wall-clock mapping the
runner fills per stage; it is excluded from equality because timings are
telemetry, not behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

Node = Hashable


@dataclass
class StepTrace:
    """Diagnostics captured for one ``update`` call (used by benches/tests).

    ``stage_seconds`` maps stage name (``"changes"``, ``"partition"``,
    ``"select"``, ``"walk"``, ``"train"``, ``"publish"``) to the wall-
    clock seconds that stage took; it is recorded by
    :class:`~repro.pipeline.stages.StagePipeline` and deliberately
    excluded from ``==`` so trace goldens compare behaviour only.
    """

    time_step: int
    num_nodes: int
    num_selected: int
    num_pairs: int
    selected_nodes: list[Node] = field(default_factory=list)
    stage_seconds: dict[str, float] = field(
        default_factory=dict, compare=False, repr=False
    )
