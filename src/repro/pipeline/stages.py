"""The stage graph: Algorithm 1's online step as first-class stages.

GloDyNE's four-step online loop used to live four times in the codebase
(``GloDyNE._online_stage``/``_walk_and_train``, the variants'
``_deepwalk_round``, ``TNE``, and the streaming flush). This module is
the single implementation: five concrete stages, each mapping onto the
paper —

* :class:`ChangeScoreStage` — lines 9-10: the Eq. (3) snapshot delta and
  reservoir accumulation (Step 2's input, computed up front so the diff
  runs exactly once per step);
* :class:`PartitionStage` — Step 1 (lines 7-8): ``K = α·|V^t|`` and the
  incremental partition maintenance when enabled;
* :class:`SelectionStage` — Step 2 (lines 11-14): one representative per
  cell (or every node, for offline/DeepWalk rounds);
* :class:`WalkCorpusStage` — Step 3 (lines 15-16): truncated random
  walks and the sliding-window pair corpus, fused-streaming aware;
* :class:`TrainStage` — Step 4 (line 17): the incremental SGNS round;
  emits the :class:`~repro.pipeline.trace.StepTrace`;
* :class:`PublishStage` — line 18: materialise Z^t and push a version to
  an :class:`~repro.serving.EmbeddingStore`.

:class:`StagePipeline` runs a stage list over one
:class:`~repro.pipeline.context.StepContext`, recording per-stage
wall-clock into ``StepTrace.stage_seconds``. Engines are thin stage
configurations — see :func:`online_pipeline`, :func:`offline_pipeline`
and :func:`deepwalk_pipeline` — and a new method is one new stage plus
one pipeline literal, not a reimplementation of the loop.

Determinism contract (the one every prior refactor honoured): a pipeline
built from these stages is **bit-identical** to the pre-pipeline
engines — same RNG stream, same draw order, same embeddings and traces —
for all four engines, at ``workers`` ∈ {1, 2} and every kernel backend.
``tests/test_pipeline_goldens.py`` pins this against fixtures recorded
at the last pre-pipeline commit.
"""

from __future__ import annotations

import time
from typing import Iterable, Protocol, runtime_checkable

import numpy as np

from repro.core.selection import SelectionContext
from repro.graph.diff import diff_snapshots, weighted_node_changes
from repro.parallel import generate_corpus, generate_walks
from repro.pipeline.context import StepContext
from repro.pipeline.trace import StepTrace
from repro.sgns.trainer import train_on_corpus
from repro.walks.corpus import build_pair_corpus

#: Strategies that consume a Step 1 partition (the others replace it for
#: the Table 5 ablation, so partition maintenance would be wasted work).
PARTITION_STRATEGIES = ("s4", "s4-uniform")


@runtime_checkable
class Stage(Protocol):
    """One step of the online loop: reads and writes a :class:`StepContext`.

    Stages must be stateless across steps (engines reuse one pipeline
    object for every ``update``); all per-step state lives on the
    context.
    """

    name: str

    def run(self, context: StepContext) -> None:
        """Execute the stage against the shared step context."""
        ...


class StagePipeline:
    """An ordered stage list plus the runner that times each stage.

    ``run`` executes the stages in order over one context and records
    per-stage wall-clock seconds into ``context.stage_seconds`` (and
    onto the trace, once one exists) — the per-stage timing telemetry
    every engine now gets for free.
    """

    def __init__(self, stages: Iterable[Stage]) -> None:
        self.stages: tuple[Stage, ...] = tuple(stages)
        names = [stage.name for stage in self.stages]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate stage names in pipeline: {names}")

    def run(self, context: StepContext) -> StepContext:
        """Run every stage over ``context``; returns it for chaining."""
        for stage in self.stages:
            started = time.perf_counter()
            stage.run(context)
            context.stage_seconds[stage.name] = (
                time.perf_counter() - started
            )
        if context.trace is not None:
            context.trace.stage_seconds = dict(context.stage_seconds)
        return context

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"StagePipeline({' -> '.join(s.name for s in self.stages)})"


# ----------------------------------------------------------------------
# Concrete stages (extracted verbatim from GloDyNE._online_stage /
# _walk_and_train — the order of every RNG-consuming call is pinned).
# ----------------------------------------------------------------------

class ChangeScoreStage:
    """Eq. (3) per-node change scores + reservoir accumulation.

    A streaming caller hands accumulated ``changes`` in via the context
    (skipping the full-graph diff); otherwise the stage diffs the
    previous snapshot against the current one, switching to the weighted
    formula (footnote 3) automatically on weighted graphs. Consumes no
    RNG.
    """

    name = "changes"

    def run(self, context: StepContext) -> None:
        """Fill ``context.changes`` and fold them into the reservoir."""
        config = context.config
        context.ensure_csr()
        if context.changes is None:
            use_weighted = config.weighted_changes
            if use_weighted is None:
                use_weighted = not (
                    context.snapshot.is_unweighted()
                    and context.previous.is_unweighted()
                )
            if use_weighted:
                context.changes = weighted_node_changes(
                    context.previous, context.snapshot
                )
            else:
                context.changes = diff_snapshots(
                    context.previous, context.snapshot
                ).node_changes
        context.reservoir.accumulate(context.changes)
        context.reservoir.prune(context.snapshot.node_set())


class PartitionStage:
    """Step 1: ``K = α·|V^t|`` cells, maintained incrementally when enabled.

    With no :class:`~repro.partition.incremental.IncrementalPartitioner`
    on the context (the default), the per-step ``partition_graph`` call
    happens *inside* S4 during :class:`SelectionStage` — exactly where
    the monolithic loop made it, which keeps the shared RNG stream
    intact. Incremental steps consume no RNG (rebuilds use the
    partitioner's own seeded stream).
    """

    name = "partition"

    def run(self, context: StepContext) -> None:
        """Compute the selection budget and maintain Step 1's partition."""
        config = context.config
        context.select_count = max(
            1, round(config.alpha * context.snapshot.number_of_nodes())
        )
        if (
            context.partitioner is not None
            and config.strategy in PARTITION_STRATEGIES
        ):
            touched = context.touched
            if touched is None:
                touched = set(context.changes)
            context.partition = context.partitioner.partition(
                context.snapshot,
                context.select_count,
                csr=context.csr,
                touched=touched,
            )


class SelectionStage:
    """Step 2: pick the nodes whose neighbourhoods get re-sampled.

    ``all_nodes=True`` is the offline/DeepWalk round (Algorithm 1 lines
    1-5 and the retrain-style engines): every node starts walks and no
    strategy runs. Otherwise the configured strategy (S1-S4) picks
    ``context.select_count`` nodes and the captured ones are evicted
    from the reservoir (line 14).
    """

    name = "select"

    def __init__(self, all_nodes: bool = False) -> None:
        self.all_nodes = all_nodes

    def run(self, context: StepContext) -> None:
        """Fill ``context.selected`` / ``context.start_indices``."""
        csr = context.ensure_csr()
        if self.all_nodes:
            context.start_indices = np.arange(csr.num_nodes)
            return
        config = context.config
        selection = SelectionContext(
            snapshot=context.snapshot,
            previous=context.previous,
            reservoir=context.reservoir,
            rng=context.rng_for(self.name),
            csr=csr,
            partition=context.partition,
            partition_eps=config.partition_eps,
        )
        selected = context.strategy(selection, context.select_count)
        context.reservoir.evict(selected)
        context.selected = selected
        context.start_indices = np.fromiter(
            (csr.index_of[node] for node in selected),
            dtype=np.int64,
            count=len(selected),
        )


class WalkCorpusStage:
    """Step 3: truncated random walks folded into the pair corpus.

    ``fused=True`` (GloDyNE's path) streams walk chunks straight into
    the corpus builder so the full walk matrix never materialises at
    ``workers>=2``; node2vec-biased walks (p/q ≠ 1) fall back to the
    serial biased sampler. ``fused=False`` is the two-phase
    walks-then-corpus path the variants have always used (bit-identical
    output, different memory profile; p/q are ignored there, as they
    always were).
    """

    name = "walk"

    def __init__(self, fused: bool = True) -> None:
        self.fused = fused

    def run(self, context: StepContext) -> None:
        """Fill ``context.corpus`` from ``context.start_indices``."""
        config = context.config
        csr = context.ensure_csr()
        rng = context.rng_for(self.name)
        starts = context.start_indices
        if not self.fused:
            walks = generate_walks(
                csr, starts, config.num_walks, config.walk_length, rng,
                workers=config.workers, chunk_starts=config.chunk_starts,
                backend=config.backend,
            )
            context.corpus = build_pair_corpus(
                walks, config.window_size, csr.num_nodes
            )
        elif config.walk_p == 1.0 and config.walk_q == 1.0:
            context.corpus = generate_corpus(
                csr, starts, config.num_walks, config.walk_length,
                config.window_size, rng,
                workers=config.workers, chunk_starts=config.chunk_starts,
                backend=config.backend, fused=True,
            )
        else:
            from repro.walks.biased import simulate_biased_walks

            walks = simulate_biased_walks(
                csr, starts, config.num_walks, config.walk_length,
                rng, p=config.walk_p, q=config.walk_q,
            )
            context.corpus = build_pair_corpus(
                walks, config.window_size, csr.num_nodes
            )


class TrainStage:
    """Step 4: one incremental SGNS round over the step's pair corpus.

    Registers every snapshot node in the global vocabulary (walks may
    visit any of them; row init draws from the shared stream *after* the
    walks, matching the legacy order), trains, and emits the step's
    :class:`~repro.pipeline.trace.StepTrace` — ``selected_nodes`` is
    derived once from the start indices that actually drove the walks.
    """

    name = "train"

    def run(self, context: StepContext) -> None:
        """Train the model in place and fill ``context.trace``."""
        config = context.config
        csr = context.csr
        corpus = context.corpus
        model = context.model
        model.ensure_nodes(csr.nodes)
        row_of = model.vocab.indices(csr.nodes)
        train_on_corpus(
            model, corpus, row_of, context.rng_for(self.name),
            config=config.train_config(),
        )
        starts = context.start_indices
        context.trace = StepTrace(
            time_step=context.time_step,
            num_nodes=context.snapshot.number_of_nodes(),
            num_selected=int(starts.size),
            num_pairs=corpus.num_pairs,
            selected_nodes=[csr.nodes[i] for i in starts],
        )


class PublishStage:
    """Materialise Z^t and publish it to an embedding store, if any.

    Builds the aligned ``(nodes, matrix)`` pair behind the returned
    embedding map and, when the context carries a ``publish_to`` store,
    pushes a new version tagged with the step diagnostics (plus Step 1's
    ``partition_cells`` when the partition covers every embedded node —
    the partition-aware serving index reuses them as its coarse
    quantizer).
    """

    name = "publish"

    def __init__(self, source: str = "snapshot") -> None:
        self.source = source

    def run(self, context: StepContext) -> None:
        """Fill ``context.nodes``/``matrix``/``embeddings`` and publish."""
        nodes = list(context.snapshot.nodes())
        matrix = context.model.embedding_matrix(nodes)
        context.nodes = nodes
        context.matrix = matrix
        context.embeddings = dict(zip(nodes, matrix))
        if context.publish_to is not None:
            trace = context.trace
            publish_version(
                context.publish_to,
                nodes,
                matrix,
                time_step=trace.time_step,
                metadata={
                    "source": self.source,
                    "num_selected": trace.num_selected,
                    "num_pairs": trace.num_pairs,
                },
                partition=context.partition,
            )


# ----------------------------------------------------------------------
# Publish helpers shared by the stage and the streaming flush
# ----------------------------------------------------------------------

def partition_cells_for(nodes, partition) -> list[int] | None:
    """Per-row cell ids aligned with ``nodes``, or None.

    None when there is no partition or it does not cover every embedded
    node — publishing consumers must only attach complete assignments
    (a partial one would desynchronise the serving index's cell layout).
    """
    if partition is None:
        return None
    assignment = partition.assignment
    cells: list[int] = []
    for node in nodes:
        cell = assignment.get(node)
        if cell is None:
            return None
        cells.append(int(cell))
    return cells


def publish_version(
    store, nodes, matrix, *, time_step: int, metadata: dict, partition=None
) -> None:
    """Publish one embedding version, attaching partition cells when whole.

    The single publish path behind snapshot mode (:class:`PublishStage`)
    and the streaming flush — both used to rebuild the
    ``partition_cells`` attachment logic separately.
    """
    cells = partition_cells_for(nodes, partition)
    if cells is not None:
        metadata["partition_cells"] = cells
    store.publish((nodes, matrix), time_step=time_step, metadata=metadata)


# ----------------------------------------------------------------------
# The engines' pipeline literals ("one pipeline, four engines")
# ----------------------------------------------------------------------

def online_pipeline(publish_source: str = "snapshot") -> StagePipeline:
    """GloDyNE's online step (Algorithm 1 lines 6-18) as a stage list."""
    return StagePipeline([
        ChangeScoreStage(),
        PartitionStage(),
        SelectionStage(),
        WalkCorpusStage(fused=True),
        TrainStage(),
        PublishStage(source=publish_source),
    ])


def offline_pipeline(publish_source: str = "snapshot") -> StagePipeline:
    """GloDyNE's offline step (lines 1-5): DeepWalk from every node."""
    return StagePipeline([
        SelectionStage(all_nodes=True),
        WalkCorpusStage(fused=True),
        TrainStage(),
        PublishStage(source=publish_source),
    ])


def deepwalk_pipeline() -> StagePipeline:
    """One full DeepWalk training round (the variants' and tNE's core).

    No publish stage: retrain-style engines emit embeddings themselves
    (random vectors for unknown nodes, alignment/pooling, ...) — they
    append their own stages or post-process the trained model.
    """
    return StagePipeline([
        SelectionStage(all_nodes=True),
        WalkCorpusStage(fused=False),
        TrainStage(),
    ])
