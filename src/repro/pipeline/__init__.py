"""``repro.pipeline`` — the explicit stage pipeline behind every engine.

The paper's four-step online loop (Step 1 partition → Step 2 selection →
Step 3 walks/corpus → Step 4 SGNS train → publish) is implemented once,
as first-class :class:`~repro.pipeline.stages.Stage` objects running
over a shared :class:`~repro.pipeline.context.StepContext`. The four
engines — snapshot :class:`~repro.core.glodyne.GloDyNE`, streaming
:class:`~repro.streaming.StreamingGloDyNE`, the SGNS variants, and
:class:`~repro.baselines.TNE` — are thin stage configurations of this
one pipeline ("one pipeline, four engines"), and a new method is a new
stage or pipeline literal, not a parallel reimplementation.

Configuration is declarative: the layered
:class:`~repro.pipeline.spec.RunSpec` tree is the single source of
truth for run hyper-parameters, and the engine knobs' CLI flags are
generated from :class:`~repro.pipeline.spec.EngineSpec` field metadata.
"""

from repro.pipeline.context import StepContext
from repro.pipeline.spec import (
    EngineSpec,
    PartitionSpec,
    RunSpec,
    TrainSpec,
    WalkSpec,
    add_engine_flags,
    engine_cli_fields,
    engine_dest,
    engine_flag,
    engine_spec_from_args,
)
from repro.pipeline.stages import (
    ChangeScoreStage,
    PartitionStage,
    PublishStage,
    SelectionStage,
    Stage,
    StagePipeline,
    TrainStage,
    WalkCorpusStage,
    deepwalk_pipeline,
    offline_pipeline,
    online_pipeline,
    partition_cells_for,
    publish_version,
)
from repro.pipeline.trace import StepTrace

__all__ = [
    "ChangeScoreStage",
    "EngineSpec",
    "PartitionSpec",
    "PartitionStage",
    "PublishStage",
    "RunSpec",
    "SelectionStage",
    "Stage",
    "StagePipeline",
    "StepContext",
    "StepTrace",
    "TrainSpec",
    "TrainStage",
    "WalkCorpusStage",
    "WalkSpec",
    "add_engine_flags",
    "deepwalk_pipeline",
    "engine_cli_fields",
    "engine_dest",
    "engine_flag",
    "engine_spec_from_args",
    "offline_pipeline",
    "online_pipeline",
    "partition_cells_for",
    "publish_version",
]
