"""Declarative run configuration: the layered :class:`RunSpec` tree.

One dataclass tree is the single source of truth for everything a
pipeline run needs — the embedding dimension, the walk sampler, the SGNS
trainer, Step 1's partitioner, and the *engine* knobs (workers, kernel
backend, prefetch) that only change wall-clock, never results.

Two things hang off the tree:

* ``RunSpec.to_config()`` / ``RunSpec.from_config()`` convert losslessly
  to/from the flat :class:`~repro.core.glodyne.GloDyNEConfig` that the
  engines consume (a drift gate in ``tests/test_pipeline_spec.py``
  asserts the round trip covers every field of both shapes);
* :func:`add_engine_flags` generates the CLI flags for the engine knobs
  from :class:`EngineSpec` *field metadata* — adding an engine knob is
  now one new field here (the flag, its help text, and the kwargs
  threading through every subcommand come for free) plus the line that
  consumes it, instead of hand-edits in six files.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field, fields, replace
from typing import TYPE_CHECKING

from repro.parallel import DEFAULT_CHUNK_STARTS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.glodyne import GloDyNEConfig


def _cli(help_text: str, choices: tuple[str, ...] | None = None) -> dict:
    """Field metadata marking an engine knob as CLI-exposed."""
    meta: dict = {"cli_help": help_text}
    if choices is not None:
        meta["cli_choices"] = choices
    return meta


@dataclass(frozen=True)
class WalkSpec:
    """Step 3: the truncated random-walk sampler (paper Section 5.1.2)."""

    num_walks: int = 10
    walk_length: int = 80
    window_size: int = 10
    walk_p: float = 1.0
    walk_q: float = 1.0


@dataclass(frozen=True)
class TrainSpec:
    """Step 4: the incremental SGNS training round (Eq. (9)-(10))."""

    negative: int = 5
    epochs: int = 5
    lr: float = 0.025
    min_lr: float = 1e-4
    batch_size: int = 2048


@dataclass(frozen=True)
class PartitionSpec:
    """Step 1: the (K, eps) balanced partition and Step 2's bias."""

    alpha: float = 0.1
    eps: float = 0.10
    cut_slack: float = 0.5


@dataclass(frozen=True)
class EngineSpec:
    """How the run executes — knobs that change wall-clock, not results.

    Every field here surfaces as a generated CLI flag on the
    ``embed``/``evaluate``/``stream``/``serve``/``serve-http``
    subcommands (see :func:`add_engine_flags`); the drift gate in
    ``tests/test_pipeline_spec.py`` fails if a field and its flag ever
    part ways.
    """

    workers: int = field(
        default=1,
        metadata=_cli(
            "walk-generation worker processes (1 = serial, bit-identical "
            "to the pre-parallel path)"
        ),
    )
    chunk_starts: int = field(
        default=DEFAULT_CHUNK_STARTS,
        metadata=_cli(
            "start nodes per parallel walk chunk (determinism contract: "
            "results depend on this, never on the worker count)"
        ),
    )
    negative_prefetch: int | None = field(
        default=None,
        metadata=_cli(
            "minibatches per negative mega-batch (default: auto — 1 "
            "serial, 32 when workers >= 2; 1 reproduces the legacy rng "
            "stream exactly)"
        ),
    )
    backend: str = field(
        default="auto",
        metadata=_cli(
            "SGNS/walk kernel backend: auto uses numba when installed, "
            "falling back to the bit-identical pure-python kernels "
            "(Skip-Gram-walk methods only)",
            choices=("auto", "python", "numba"),
        ),
    )
    incremental_partition: bool = field(
        default=False,
        metadata=_cli(
            "maintain Step 1's partition incrementally across snapshots "
            "instead of rebuilding it per step (GloDyNE only)"
        ),
    )

    def kwargs(self) -> dict:
        """The engine knobs as constructor kwargs (``GloDyNE(**...)``)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass(frozen=True)
class RunSpec:
    """The full declarative configuration of one pipeline run."""

    dim: int = 128
    strategy: str = "s4"
    weighted_changes: bool | None = None
    walk: WalkSpec = field(default_factory=WalkSpec)
    train: TrainSpec = field(default_factory=TrainSpec)
    partition: PartitionSpec = field(default_factory=PartitionSpec)
    engine: EngineSpec = field(default_factory=EngineSpec)

    def to_config(self) -> "GloDyNEConfig":
        """The engines' flat :class:`GloDyNEConfig` view of this spec."""
        from repro.core.glodyne import GloDyNEConfig

        return GloDyNEConfig(
            dim=self.dim,
            strategy=self.strategy,
            weighted_changes=self.weighted_changes,
            num_walks=self.walk.num_walks,
            walk_length=self.walk.walk_length,
            window_size=self.walk.window_size,
            walk_p=self.walk.walk_p,
            walk_q=self.walk.walk_q,
            negative=self.train.negative,
            epochs=self.train.epochs,
            lr=self.train.lr,
            min_lr=self.train.min_lr,
            batch_size=self.train.batch_size,
            alpha=self.partition.alpha,
            partition_eps=self.partition.eps,
            partition_cut_slack=self.partition.cut_slack,
            workers=self.engine.workers,
            chunk_starts=self.engine.chunk_starts,
            negative_prefetch=self.engine.negative_prefetch,
            backend=self.engine.backend,
            incremental_partition=self.engine.incremental_partition,
        )

    @classmethod
    def from_config(cls, config: "GloDyNEConfig") -> RunSpec:
        """Lift a flat config back into the layered tree (lossless)."""
        return cls(
            dim=config.dim,
            strategy=config.strategy,
            weighted_changes=config.weighted_changes,
            walk=WalkSpec(
                num_walks=config.num_walks,
                walk_length=config.walk_length,
                window_size=config.window_size,
                walk_p=config.walk_p,
                walk_q=config.walk_q,
            ),
            train=TrainSpec(
                negative=config.negative,
                epochs=config.epochs,
                lr=config.lr,
                min_lr=config.min_lr,
                batch_size=config.batch_size,
            ),
            partition=PartitionSpec(
                alpha=config.alpha,
                eps=config.partition_eps,
                cut_slack=config.partition_cut_slack,
            ),
            engine=EngineSpec(
                workers=config.workers,
                chunk_starts=config.chunk_starts,
                negative_prefetch=config.negative_prefetch,
                backend=config.backend,
                incremental_partition=config.incremental_partition,
            ),
        )

    def with_engine(self, **overrides) -> RunSpec:
        """A copy with some engine knobs replaced (spec stays frozen)."""
        return replace(self, engine=replace(self.engine, **overrides))

    def with_walk(self, **overrides) -> RunSpec:
        """A copy with some walk-sampler knobs replaced."""
        return replace(self, walk=replace(self.walk, **overrides))

    def with_train(self, **overrides) -> RunSpec:
        """A copy with some trainer knobs replaced."""
        return replace(self, train=replace(self.train, **overrides))


# ----------------------------------------------------------------------
# CLI generation from EngineSpec field metadata
# ----------------------------------------------------------------------

def engine_cli_fields(spec_cls: type = EngineSpec) -> list:
    """The ``spec_cls`` fields that surface as CLI flags."""
    return [f for f in fields(spec_cls) if "cli_help" in f.metadata]


def engine_flag(name: str, rename: dict[str, str] | None = None) -> str:
    """The generated ``--flag`` spelling of one engine field."""
    if rename and name in rename:
        return rename[name]
    return "--" + name.replace("_", "-")


def engine_dest(name: str, rename: dict[str, str] | None = None) -> str:
    """The argparse ``dest`` of one engine field's generated flag.

    Derived from the flag spelling, not the field name, so a renamed
    flag (``--kernel-backend``) cannot collide with an unrelated flag
    that already owns the canonical dest (``serve-http``'s serving-index
    ``--backend``).
    """
    return engine_flag(name, rename).lstrip("-").replace("-", "_")


def add_engine_flags(
    parser: argparse.ArgumentParser,
    rename: dict[str, str] | None = None,
    spec_cls: type = EngineSpec,
) -> dict[str, str]:
    """Add one generated flag per ``spec_cls`` field to ``parser``.

    ``rename`` maps a field name to an alternative flag spelling for
    subcommands where the canonical one is taken (``serve-http`` already
    uses ``--backend`` for the serving *index*, so the kernel backend
    becomes ``--kernel-backend`` there). The parsed value lands on the
    flag-derived :func:`engine_dest`; pass the same ``rename`` to
    :func:`engine_spec_from_args` to collect it back.

    Returns the ``{field name: flag}`` mapping actually registered —
    the drift gate compares it against the parser's real option table.
    """
    registered: dict[str, str] = {}
    for spec_field in engine_cli_fields(spec_cls):
        flag = engine_flag(spec_field.name, rename)
        dest = engine_dest(spec_field.name, rename)
        help_text = spec_field.metadata["cli_help"]
        choices = spec_field.metadata.get("cli_choices")
        if spec_field.type in ("bool", bool):
            parser.add_argument(
                flag, dest=dest, action="store_true", help=help_text,
            )
        elif choices is not None:
            parser.add_argument(
                flag, dest=dest, default=spec_field.default,
                choices=list(choices), help=help_text,
            )
        else:
            parser.add_argument(
                flag, dest=dest, type=int,
                default=spec_field.default, help=help_text,
            )
        registered[spec_field.name] = flag
    return registered


def engine_spec_from_args(
    args: argparse.Namespace,
    rename: dict[str, str] | None = None,
    spec_cls: type = EngineSpec,
):
    """Collect the generated engine flags back into a ``spec_cls``.

    ``rename`` must match the one given to :func:`add_engine_flags` for
    the same subcommand (it determines where argparse stored the values).
    """
    return spec_cls(
        **{
            f.name: getattr(args, engine_dest(f.name, rename))
            for f in engine_cli_fields(spec_cls)
        }
    )
