"""The shared per-step state every pipeline stage reads and writes.

A :class:`StepContext` is created once per ``update``/flush, threaded
through the stage graph, and discarded; stages communicate exclusively
through it. It owns the step's *one* frozen CSR (built lazily, shared by
Step 1's partitioner and Step 3's walk engine — the single-CSR invariant
from PR 5), the RNG stream(s), and the accumulating
:class:`~repro.core.glodyne.StepTrace` diagnostics.

RNG contract
------------
``rng_for(stage)`` returns the step's RNG for a stage. By default every
stage shares **one** generator — the engines' historical behaviour, and
a load-bearing part of the bit-identity contract (walks, SGNS row init,
and negative draws interleave on a single stream in a pinned order).
A *new* method that wants per-stage isolation (so inserting a stage
cannot shift a later stage's draws) opts in with
``independent_streams=True``, which derives one child generator per
stage name via ``Generator.spawn``. The four rebased engines never
opt in.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Hashable

import numpy as np

from repro.graph.csr import CSRAdjacency

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.core.glodyne import GloDyNEConfig, StepTrace
    from repro.core.reservoir import Reservoir
    from repro.graph.static import Graph
    from repro.partition.incremental import IncrementalPartitioner
    from repro.sgns.model import SGNSModel

Node = Hashable


class StepContext:
    """Mutable blackboard shared by the stages of one online/offline step.

    Inputs (set by the engine before :meth:`~repro.pipeline.stages.
    StagePipeline.run`): ``config``, ``rng``, ``model``, ``snapshot``,
    ``time_step``, and — when available — ``previous``, ``reservoir``,
    ``partitioner``, ``strategy``, plus the streaming fast-path hooks
    ``csr``/``changes``/``touched``.

    Intermediates (written by stages): ``partition``, ``select_count``,
    ``selected``, ``start_indices``, ``corpus``.

    Outputs: ``trace`` (from the train stage), ``nodes``/``matrix``/
    ``embeddings`` (from the publish stage), and ``stage_seconds``
    (written by the pipeline runner around every stage).
    """

    def __init__(
        self,
        *,
        config: "GloDyNEConfig",
        rng: np.random.Generator,
        model: "SGNSModel | None",
        snapshot: "Graph",
        time_step: int,
        previous: "Graph | None" = None,
        reservoir: "Reservoir | None" = None,
        partitioner: "IncrementalPartitioner | None" = None,
        strategy: Callable | None = None,
        csr: CSRAdjacency | None = None,
        changes: dict[Node, float] | None = None,
        touched: set[Node] | None = None,
        publish_to=None,
        independent_streams: bool = False,
    ) -> None:
        self.config = config
        self.rng = rng
        self.model = model
        self.snapshot = snapshot
        self.time_step = time_step
        self.previous = previous
        self.reservoir = reservoir
        self.partitioner = partitioner
        self.strategy = strategy
        self.csr = csr
        self.changes = changes
        self.touched = touched
        self.publish_to = publish_to
        self.independent_streams = independent_streams
        self._stage_rngs: dict[str, np.random.Generator] = {}
        # Stage intermediates / outputs.
        self.partition = None
        self.select_count: int | None = None
        self.selected: list[Node] | None = None
        self.start_indices: np.ndarray | None = None
        self.corpus = None
        self.trace: "StepTrace | None" = None
        self.nodes: list[Node] | None = None
        self.matrix: np.ndarray | None = None
        self.embeddings: dict[Node, np.ndarray] | None = None
        self.stage_seconds: dict[str, float] = {}

    # ------------------------------------------------------------------
    def ensure_csr(self) -> CSRAdjacency:
        """The step's single frozen CSR, built on first use.

        Streaming callers hand a prebuilt CSR in; snapshot mode freezes
        the snapshot here exactly once — Step 1's partitioner and
        Step 3's walk engine must share the result (the one-CSR
        invariant is count-pinned by the tier-1 suite).
        """
        if self.csr is None:
            self.csr = CSRAdjacency.from_graph(self.snapshot)
        return self.csr

    def rng_for(self, stage_name: str) -> np.random.Generator:
        """The RNG a stage draws from (see the module RNG contract)."""
        if not self.independent_streams:
            return self.rng
        if stage_name not in self._stage_rngs:
            self._stage_rngs[stage_name] = self.rng.spawn(1)[0]
        return self._stage_rngs[stage_name]
