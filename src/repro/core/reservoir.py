"""The accumulated-change reservoir R^t (Eq. 3, Algorithm 1 lines 10 & 14).

The reservoir remembers, per node, the number of incident edge changes that
have *not yet* been absorbed into the embedding: every step adds the current
|ΔE^t_i|, and nodes selected for walking are evicted (their changes are
about to be captured). Footnote 2 of the paper explains why accumulation
matters — a node with small changes every step for a long time has a large
total topological drift that per-step methods ignore.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping

Node = Hashable


class Reservoir:
    """Per-node accumulated topological-change counter."""

    __slots__ = ("_store",)

    def __init__(self) -> None:
        self._store: dict[Node, float] = {}

    def accumulate(self, node_changes: Mapping[Node, float]) -> None:
        """Apply line 10 of Algorithm 1: ``R^t_i = |ΔE^t_i| + R^{t-1}_i``."""
        for node, change in node_changes.items():
            if change:
                self._store[node] = self._store.get(node, 0.0) + change

    def evict(self, nodes: Iterable[Node]) -> None:
        """Apply line 14: drop selected nodes (their drift is now captured)."""
        for node in nodes:
            self._store.pop(node, None)

    def prune(self, alive_nodes: set[Node]) -> None:
        """Drop reservoir entries for nodes no longer in the network."""
        dead = [node for node in self._store if node not in alive_nodes]
        for node in dead:
            del self._store[node]

    def get(self, node: Node) -> float:
        """Accumulated change of ``node`` (0.0 when never changed)."""
        return self._store.get(node, 0.0)

    def nodes(self) -> list[Node]:
        """Nodes currently holding unabsorbed changes."""
        return list(self._store)

    def as_dict(self) -> dict[Node, float]:
        return dict(self._store)

    def clear(self) -> None:
        self._store.clear()

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, node: Node) -> bool:
        return node in self._store
