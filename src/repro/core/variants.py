"""Self-comparison variants of Section 5.3: SGNS-static / -retrain / -increment.

These three baselines share GloDyNE's machinery and differ only in *when*
and *from which nodes* the SGNS model is (re)trained:

* **SGNS-static** — trains once on G^0 and reuses Z^0 forever
  (Section 5.3.1). Nodes that appear later receive fresh random vectors:
  the method genuinely knows nothing about them, and random vectors score
  ~0 in downstream tasks, reproducing the paper's decay curves.
* **SGNS-retrain** — a fresh DeepWalk per snapshot (the "naive DNE"
  of Section 5.3.1); effective but slow and free to rotate/flip the
  embedding space between steps (Figure 5's 'v'-shape rotation).
* **SGNS-increment** — GloDyNE with ``V_sel = V_all`` (equivalently
  α = 1.0 without partitioning; Section 5.3.2): the incremental upper
  bound that GloDyNE approximates with a fraction of the work.
"""

from __future__ import annotations

import numpy as np

from repro.base import DynamicEmbeddingMethod, EmbeddingMap
from repro.core.glodyne import GloDyNEConfig
from repro.graph.csr import CSRAdjacency
from repro.graph.static import Graph
from repro.parallel import generate_walks
from repro.sgns.model import SGNSModel
from repro.sgns.trainer import train_on_corpus
from repro.walks.corpus import build_pair_corpus


def _deepwalk_round(
    model: SGNSModel,
    snapshot: Graph,
    config: GloDyNEConfig,
    rng: np.random.Generator,
) -> None:
    """One full DeepWalk training round (walks from every node).

    Honours ``config.workers`` and ``config.backend``: the variants share
    GloDyNE's parallel walk engine (serial and bit-identical at
    workers=1) and its kernel backends.
    """
    csr = CSRAdjacency.from_graph(snapshot)
    walks = generate_walks(
        csr,
        np.arange(csr.num_nodes),
        config.num_walks,
        config.walk_length,
        rng,
        workers=config.workers,
        chunk_starts=config.chunk_starts,
        backend=config.backend,
    )
    corpus = build_pair_corpus(walks, config.window_size, csr.num_nodes)
    model.ensure_nodes(csr.nodes)
    row_of = model.vocab.indices(csr.nodes)
    train_on_corpus(model, corpus, row_of, rng, config=config.train_config())


class _VariantBase(DynamicEmbeddingMethod):
    """Shared construction/reset for the three SGNS variants."""

    def __init__(
        self,
        config: GloDyNEConfig | None = None,
        seed: int | None = None,
        **overrides,
    ) -> None:
        if config is not None and overrides:
            raise ValueError("pass either a config object or keyword overrides")
        self.config = config if config is not None else GloDyNEConfig(**overrides)
        self._seed = seed
        self.reset()

    def reset(self) -> None:
        self.rng = np.random.default_rng(self._seed)
        self.model: SGNSModel | None = None
        self.time_step = 0

    def _emit(self, snapshot: Graph) -> EmbeddingMap:
        """Embeddings for the snapshot's nodes, random for unknown nodes."""
        assert self.model is not None
        result: EmbeddingMap = {}
        for node in snapshot.nodes():
            if node in self.model.vocab:
                result[node] = self.model.embedding(node)
            else:
                # Unknown to the model: an uninformative vector (static
                # variant after t=0). Same init scale as fresh SGNS rows.
                result[node] = (
                    self.rng.random(self.config.dim) - 0.5
                ) / self.config.dim
        return result


class SGNSStatic(_VariantBase):
    """Train at t = 0 only; reuse those embeddings at every later step."""

    name = "SGNS-static"

    def update(self, snapshot: Graph) -> EmbeddingMap:
        if self.model is None:
            self.model = SGNSModel(self.config.dim, rng=self.rng)
            _deepwalk_round(self.model, snapshot, self.config, self.rng)
        self.time_step += 1
        return self._emit(snapshot)


class SGNSRetrain(_VariantBase):
    """Fresh DeepWalk per snapshot — the naive (slow) DNE solution."""

    name = "SGNS-retrain"

    def update(self, snapshot: Graph) -> EmbeddingMap:
        self.model = SGNSModel(self.config.dim, rng=self.rng)
        _deepwalk_round(self.model, snapshot, self.config, self.rng)
        self.time_step += 1
        return self._emit(snapshot)


class SGNSIncrement(_VariantBase):
    """Warm-started DeepWalk per snapshot (GloDyNE with V_sel = V_all)."""

    name = "SGNS-increment"

    def update(self, snapshot: Graph) -> EmbeddingMap:
        if self.model is None:
            self.model = SGNSModel(self.config.dim, rng=self.rng)
        _deepwalk_round(self.model, snapshot, self.config, self.rng)
        self.time_step += 1
        return self._emit(snapshot)
