"""Self-comparison variants of Section 5.3: SGNS-static / -retrain / -increment.

These three baselines share GloDyNE's machinery and differ only in *when*
and *from which nodes* the SGNS model is (re)trained:

* **SGNS-static** — trains once on G^0 and reuses Z^0 forever
  (Section 5.3.1). Nodes that appear later receive fresh random vectors:
  the method genuinely knows nothing about them, and random vectors score
  ~0 in downstream tasks, reproducing the paper's decay curves.
* **SGNS-retrain** — a fresh DeepWalk per snapshot (the "naive DNE"
  of Section 5.3.1); effective but slow and free to rotate/flip the
  embedding space between steps (Figure 5's 'v'-shape rotation).
* **SGNS-increment** — GloDyNE with ``V_sel = V_all`` (equivalently
  α = 1.0 without partitioning; Section 5.3.2): the incremental upper
  bound that GloDyNE approximates with a fraction of the work.
"""

from __future__ import annotations

import numpy as np

from repro.base import DynamicEmbeddingMethod, EmbeddingMap
from repro.core.glodyne import GloDyNEConfig, StepTrace
from repro.graph.static import Graph
from repro.pipeline.context import StepContext
from repro.pipeline.stages import deepwalk_pipeline
from repro.sgns.model import SGNSModel

#: The variants' whole online loop is this stage configuration — the
#: two-phase DeepWalk round (select every node, walk, train) shared with
#: tNE. One pipeline object serves every round; per-round state lives on
#: the StepContext.
_DEEPWALK = deepwalk_pipeline()


def _deepwalk_round(
    model: SGNSModel,
    snapshot: Graph,
    config: GloDyNEConfig,
    rng: np.random.Generator,
    time_step: int = 0,
) -> StepTrace:
    """One full DeepWalk training round (walks from every node).

    Honours ``config.workers`` and ``config.backend``: the variants share
    GloDyNE's parallel walk engine (serial and bit-identical at
    workers=1) and its kernel backends. Returns the round's
    :class:`~repro.pipeline.trace.StepTrace` (per-stage timings
    included) so retrain-style engines expose the same diagnostics as
    GloDyNE.
    """
    context = StepContext(
        config=config,
        rng=rng,
        model=model,
        snapshot=snapshot,
        time_step=time_step,
    )
    _DEEPWALK.run(context)
    return context.trace


class _VariantBase(DynamicEmbeddingMethod):
    """Shared construction/reset for the three SGNS variants."""

    def __init__(
        self,
        config: GloDyNEConfig | None = None,
        seed: int | None = None,
        **overrides,
    ) -> None:
        if config is not None and overrides:
            raise ValueError("pass either a config object or keyword overrides")
        self.config = config if config is not None else GloDyNEConfig(**overrides)
        self._seed = seed
        self.reset()

    def reset(self) -> None:
        self.rng = np.random.default_rng(self._seed)
        self.model: SGNSModel | None = None
        self.time_step = 0
        # Diagnostics of the latest update's DeepWalk round (None when
        # the step trained nothing — SGNS-static after t=0). Same shape
        # as GloDyNE's, so run_method surfaces stage timings uniformly.
        self.last_trace: StepTrace | None = None

    def _emit(self, snapshot: Graph) -> EmbeddingMap:
        """Embeddings for the snapshot's nodes, random for unknown nodes."""
        assert self.model is not None
        result: EmbeddingMap = {}
        for node in snapshot.nodes():
            if node in self.model.vocab:
                result[node] = self.model.embedding(node)
            else:
                # Unknown to the model: an uninformative vector (static
                # variant after t=0). Same init scale as fresh SGNS rows.
                result[node] = (
                    self.rng.random(self.config.dim) - 0.5
                ) / self.config.dim
        return result


class SGNSStatic(_VariantBase):
    """Train at t = 0 only; reuse those embeddings at every later step."""

    name = "SGNS-static"

    def update(self, snapshot: Graph) -> EmbeddingMap:
        if self.model is None:
            self.model = SGNSModel(self.config.dim, rng=self.rng)
            self.last_trace = _deepwalk_round(
                self.model, snapshot, self.config, self.rng,
                time_step=self.time_step,
            )
        else:
            self.last_trace = None
        self.time_step += 1
        return self._emit(snapshot)


class SGNSRetrain(_VariantBase):
    """Fresh DeepWalk per snapshot — the naive (slow) DNE solution."""

    name = "SGNS-retrain"

    def update(self, snapshot: Graph) -> EmbeddingMap:
        self.model = SGNSModel(self.config.dim, rng=self.rng)
        self.last_trace = _deepwalk_round(
            self.model, snapshot, self.config, self.rng,
            time_step=self.time_step,
        )
        self.time_step += 1
        return self._emit(snapshot)


class SGNSIncrement(_VariantBase):
    """Warm-started DeepWalk per snapshot (GloDyNE with V_sel = V_all)."""

    name = "SGNS-increment"

    def update(self, snapshot: Graph) -> EmbeddingMap:
        if self.model is None:
            self.model = SGNSModel(self.config.dim, rng=self.rng)
        self.last_trace = _deepwalk_round(
            self.model, snapshot, self.config, self.rng,
            time_step=self.time_step,
        )
        self.time_step += 1
        return self._emit(snapshot)
