"""GloDyNE — Algorithm 1 of the paper.

Offline stage (t = 0): DeepWalk-style training of a fresh SGNS model using
truncated random walks from *every* node.

Online stage (t >= 1), four steps per snapshot:

1. partition the snapshot into ``K = α·|V^t|`` balanced cells
   (:mod:`repro.partition`);
2. select one representative per cell, softmax-biased toward accumulated
   topological change (:mod:`repro.core.selection`, strategy S4);
3. run ``r`` truncated random walks of length ``l`` from the selected nodes
   (:mod:`repro.walks`);
4. incrementally train the warm SGNS model on the sliding-window pair
   corpus (:mod:`repro.sgns`).

The class implements the streaming
:class:`repro.base.DynamicEmbeddingMethod` interface; ``fit`` consumes a
whole :class:`repro.graph.dynamic.DynamicNetwork`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

import numpy as np

from repro.base import DynamicEmbeddingMethod, EmbeddingMap
from repro.core.reservoir import Reservoir
from repro.core.selection import SelectionContext, get_strategy
from repro.graph.csr import CSRAdjacency
from repro.graph.diff import diff_snapshots, weighted_node_changes
from repro.graph.static import Graph
from repro.parallel import DEFAULT_CHUNK_STARTS, generate_corpus
from repro.partition.incremental import IncrementalPartitioner
from repro.sgns import kernels
from repro.sgns.model import SGNSModel
from repro.sgns.trainer import TrainConfig, train_on_corpus
from repro.walks.corpus import build_pair_corpus

Node = Hashable


@dataclass
class GloDyNEConfig:
    """Hyper-parameters of Algorithm 1 (defaults follow Section 5.1.2).

    The paper uses d=128, r=10, l=80, s=10, q=5, α=0.1; smaller values are
    appropriate for laptop-scale benchmarks and are what the bench harness
    passes explicitly.
    """

    dim: int = 128
    alpha: float = 0.1
    num_walks: int = 10
    walk_length: int = 80
    window_size: int = 10
    negative: int = 5
    epochs: int = 5
    lr: float = 0.025
    min_lr: float = 1e-4
    batch_size: int = 2048
    partition_eps: float = 0.10
    strategy: str = "s4"
    # Step 1 cost model: with ``incremental_partition`` on, a persistent
    # :class:`~repro.partition.incremental.IncrementalPartitioner` applies
    # graph deltas to the previous step's partition — O(Δ) Python work per
    # step instead of the full O(E) multilevel rebuild — falling back to a
    # full rebuild when the maintained edge cut degrades beyond
    # ``partition_cut_slack`` (relative) or Eq. (2) balance breaks. Only
    # the S4 strategies partition, so the knob is inert for S1-S3.
    incremental_partition: bool = False
    partition_cut_slack: float = 0.5
    # Footnote 3 of the paper: on weighted snapshots, |ΔE_i| generalises
    # to the total incident weight change. "auto" switches to the
    # weighted formula whenever either snapshot carries non-unit weights;
    # True / False force it.
    weighted_changes: bool | None = None
    # Framework extension (Section 6): node2vec return/in-out parameters
    # for Step 3's walk sampler. p = q = 1 is the paper's Eq. (5).
    walk_p: float = 1.0
    walk_q: float = 1.0
    # Parallel hot path (:mod:`repro.parallel`). workers=1 is the legacy
    # serial path, bit-identical under a fixed seed; workers>=2 walks
    # fixed-size start chunks on a process pool (output invariant to the
    # worker count, see the engine's determinism contract). Biased
    # (p/q != 1) walks always run serially. ``negative_prefetch=None``
    # auto-selects mega-batch negative drawing for the parallel profile.
    workers: int = 1
    chunk_starts: int = DEFAULT_CHUNK_STARTS
    negative_prefetch: int | None = None
    # Kernel backend for the SGNS gradient step and walk transitions
    # (:mod:`repro.sgns.kernels`): "auto" uses numba when importable and
    # falls back to the pure-python kernels silently; both produce
    # bit-identical embeddings, so the knob affects wall-clock only.
    # Resolved lazily per process (spawned walk workers re-resolve from
    # the string). Biased (p/q != 1) walks ignore it; weighted snapshots
    # switch non-python backends to the alias-table stepper, which is
    # reproducible per backend but draws a different stream than the
    # python searchsorted stepper.
    backend: str = "auto"

    #: Minibatches per negative mega-batch when workers >= 2 and
    #: ``negative_prefetch`` is left on auto. A constant (never derived
    #: from the worker count) so workers=2 and workers=8 train the same.
    PARALLEL_NEGATIVE_PREFETCH = 32

    def __post_init__(self) -> None:
        if self.walk_p <= 0 or self.walk_q <= 0:
            raise ValueError("walk_p and walk_q must be positive")
        if not (0.0 < self.alpha <= 1.0):
            raise ValueError("alpha must lie in (0, 1]")
        if self.dim < 1:
            raise ValueError("dim must be >= 1")
        if self.walk_length < 2:
            raise ValueError("walk_length must be >= 2 to form any pair")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.chunk_starts < 1:
            raise ValueError("chunk_starts must be >= 1")
        if self.negative_prefetch is not None and self.negative_prefetch < 1:
            raise ValueError("negative_prefetch must be >= 1 (or None)")
        if self.partition_eps < 0:
            raise ValueError("partition_eps must be non-negative")
        if self.partition_cut_slack < 0:
            raise ValueError("partition_cut_slack must be non-negative")
        if self.backend not in kernels.BACKENDS:
            raise ValueError(
                f"backend must be one of {kernels.BACKENDS}, got {self.backend!r}"
            )

    def resolved_negative_prefetch(self) -> int:
        """Effective mega-batch size: explicit value, else profile default."""
        if self.negative_prefetch is not None:
            return self.negative_prefetch
        return self.PARALLEL_NEGATIVE_PREFETCH if self.workers >= 2 else 1

    def train_config(self) -> TrainConfig:
        """The SGNS trainer's view of these hyper-parameters."""
        return TrainConfig(
            negative=self.negative,
            epochs=self.epochs,
            lr=self.lr,
            min_lr=self.min_lr,
            batch_size=self.batch_size,
            negative_prefetch=self.resolved_negative_prefetch(),
            backend=self.backend,
        )


@dataclass
class StepTrace:
    """Diagnostics captured for one ``update`` call (used by benches/tests)."""

    time_step: int
    num_nodes: int
    num_selected: int
    num_pairs: int
    selected_nodes: list[Node] = field(default_factory=list)


class GloDyNE(DynamicEmbeddingMethod):
    """Global-topology-preserving dynamic network embedding (Algorithm 1)."""

    name = "GloDyNE"
    supports_node_deletion = True

    def __init__(
        self,
        config: GloDyNEConfig | None = None,
        seed: int | None = None,
        publish_to=None,
        **overrides,
    ) -> None:
        """Build a model from a config object or keyword overrides.

        Parameters
        ----------
        config:
            A pre-built :class:`GloDyNEConfig`; mutually exclusive with
            ``overrides``.
        seed:
            Seeds the model RNG (walk sampling, SGNS init, negative
            draws). Equal seeds and inputs reproduce embeddings bit for
            bit.
        publish_to:
            Optional :class:`repro.serving.EmbeddingStore`: every
            ``update`` then publishes its Z^t as a new store version
            (snapshot-mode serving hook; streaming callers set it on the
            engine instead, which attaches richer flush metadata).
        **overrides:
            Forwarded to :class:`GloDyNEConfig` for the common call
            style ``GloDyNE(dim=64, alpha=0.2, seed=1)``.
        """
        if config is not None and overrides:
            raise ValueError("pass either a config object or keyword overrides")
        self.config = config if config is not None else GloDyNEConfig(**overrides)
        self._seed = seed
        self._strategy = get_strategy(self.config.strategy)
        self.publish_to = publish_to
        self.reset()

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Drop all learned state and restart from the construction seed.

        After a reset the next :meth:`update` runs the offline stage
        again, exactly as a freshly constructed model would.
        """
        self.rng = np.random.default_rng(self._seed)
        self.model = SGNSModel(self.config.dim, rng=self.rng)
        self.reservoir = Reservoir()
        # Step 1 state: the incremental partitioner persists across
        # `update` calls (that is the whole point — it owns the partition
        # between snapshots). Rebuild randomness comes from the
        # partitioner's own seeded stream, never from self.rng — but note
        # that enabling the knob changes what S4 draws from self.rng (the
        # per-step partition_graph call is skipped), so knob-on and
        # knob-off runs are two different (each internally deterministic)
        # trajectories.
        self.partitioner: IncrementalPartitioner | None = (
            IncrementalPartitioner(
                eps=self.config.partition_eps,
                seed=self._seed,
                cut_slack=self.config.partition_cut_slack,
            )
            if self.config.incremental_partition
            else None
        )
        self.previous: Graph | None = None
        self.time_step = 0
        self.last_trace: StepTrace | None = None
        # The latest update's aligned (nodes, matrix) pair — what the
        # embedding map was built from. Publishing consumers (the
        # streaming engine's serving hook) read this to avoid re-stacking
        # the map row by row; the rows are shared with the map, so this
        # retains no extra memory.
        self.last_embedding: tuple[list[Node], np.ndarray] | None = None
        # Step 1's PartitionResult from the latest online step (None on
        # the offline step, for non-S4 strategies, and with the
        # incremental partitioner off). Publishing consumers export it as
        # `partition_cells` metadata so a partition-aware serving index
        # (IVFIndex) can reuse the trainer's own cells.
        self.last_partition = None

    # ------------------------------------------------------------------
    def update(
        self,
        snapshot: Graph,
        *,
        changes: dict[Node, float] | None = None,
        csr: CSRAdjacency | None = None,
        touched: set[Node] | None = None,
    ) -> EmbeddingMap:
        """Consume the next snapshot and return Z^t for its nodes.

        Parameters
        ----------
        snapshot:
            The graph at time t. The first call runs the offline
            DeepWalk stage; later calls run the four-step online stage.
        changes:
            Streaming fast-path hook (:mod:`repro.streaming`): per-node
            Eq. (3) change scores a caller accumulated incrementally,
            replacing the full-graph ``diff_snapshots`` recomputation.
        csr:
            Streaming fast-path hook: the frozen
            :class:`~repro.graph.csr.CSRAdjacency` of ``snapshot`` a
            caller already holds, replacing ``CSRAdjacency.from_graph``.
        touched:
            Nodes whose incident topology may have changed since the
            previous snapshot — the incremental partitioner's dirty set.
            Defaults to ``set(changes)`` (accumulated or diffed); only
            consulted when ``incremental_partition`` is enabled.

        Returns
        -------
        EmbeddingMap
            ``{node: float64 vector of shape (dim,)}`` for every node of
            ``snapshot``. The aligned ``(nodes, matrix)`` pair behind it
            is kept on :attr:`last_embedding` (``matrix`` float64 of
            shape ``(len(nodes), dim)``, rows shared with the map).
        """
        if snapshot.number_of_nodes() == 0:
            raise ValueError("cannot embed an empty snapshot")
        self.last_partition = None  # set by _online_stage when Step 1 ran
        if self.previous is None:
            trace = self._offline_stage(snapshot, csr=csr)
        else:
            trace = self._online_stage(
                snapshot, changes=changes, csr=csr, touched=touched
            )
        self.last_trace = trace
        # Must be a frozen copy, not an alias: Eq. (3) scoring reads the
        # *previous* snapshot's degrees next step, and streaming callers
        # keep mutating the snapshot object they passed in.
        self.previous = snapshot.copy()
        self.time_step += 1
        nodes = list(snapshot.nodes())
        matrix = self.model.embedding_matrix(nodes)
        embeddings = dict(zip(nodes, matrix))
        self.last_embedding = (nodes, matrix)
        if self.publish_to is not None:
            metadata = {
                "source": "snapshot",
                "num_selected": trace.num_selected,
                "num_pairs": trace.num_pairs,
            }
            cells = self.last_partition_cells
            if cells is not None:
                metadata["partition_cells"] = cells
            self.publish_to.publish(
                (nodes, matrix),
                time_step=trace.time_step,
                metadata=metadata,
            )
        return embeddings

    @property
    def last_partition_cells(self) -> list[int] | None:
        """Per-row cell ids aligned with :attr:`last_embedding`, or None.

        Present only when the latest :meth:`update` ran Step 1's
        partitioner (``incremental_partition`` with an S4 strategy) and
        the partition covers every embedded node. Publishing consumers
        attach it as ``partition_cells`` version metadata, which a
        partition-aware serving index (:class:`repro.serving.index.
        IVFIndex`) adopts as its coarse-quantizer cell layout.
        """
        if self.last_partition is None or self.last_embedding is None:
            return None
        nodes, _ = self.last_embedding
        assignment = self.last_partition.assignment
        cells: list[int] = []
        for node in nodes:
            cell = assignment.get(node)
            if cell is None:
                return None
            cells.append(int(cell))
        return cells

    # ------------------------------------------------------------------
    def _offline_stage(
        self, snapshot: Graph, csr: CSRAdjacency | None = None
    ) -> StepTrace:
        """Algorithm 1 lines 1-5: full DeepWalk round over all nodes."""
        if csr is None:
            csr = CSRAdjacency.from_graph(snapshot)
        start_indices = np.arange(csr.num_nodes)
        return self._walk_and_train(snapshot, csr, start_indices)

    def _online_stage(
        self,
        snapshot: Graph,
        changes: dict[Node, float] | None = None,
        csr: CSRAdjacency | None = None,
        touched: set[Node] | None = None,
    ) -> StepTrace:
        """Algorithm 1 lines 6-18: partition, select, walk, update."""
        cfg = self.config
        assert self.previous is not None

        # ONE CSR per step: built here (or handed in by a streaming
        # caller) and shared by Step 1's partitioner and Step 3's walk
        # engine. partition_graph used to re-freeze the snapshot
        # internally, doubling the per-step CSR cost.
        if csr is None:
            csr = CSRAdjacency.from_graph(snapshot)

        # Line 9-10: edge stream + reservoir accumulation. The weighted
        # variant (footnote 3) kicks in automatically on weighted graphs.
        # A streaming caller hands in incrementally accumulated changes
        # instead, skipping the full-graph diff.
        if changes is None:
            use_weighted = cfg.weighted_changes
            if use_weighted is None:
                use_weighted = not (
                    snapshot.is_unweighted() and self.previous.is_unweighted()
                )
            if use_weighted:
                changes = weighted_node_changes(self.previous, snapshot)
            else:
                changes = diff_snapshots(self.previous, snapshot).node_changes
        self.reservoir.accumulate(changes)
        self.reservoir.prune(snapshot.node_set())

        # Lines 7-13: K cells, one representative each (strategy S4; the
        # other strategies replace partitioning for the Table 5 ablation).
        count = max(1, round(cfg.alpha * snapshot.number_of_nodes()))
        partition = None
        if self.partitioner is not None and cfg.strategy in (
            "s4",
            "s4-uniform",
        ):
            if touched is None:
                touched = set(changes)
            partition = self.partitioner.partition(
                snapshot, count, csr=csr, touched=touched
            )
        self.last_partition = partition
        context = SelectionContext(
            snapshot=snapshot,
            previous=self.previous,
            reservoir=self.reservoir,
            rng=self.rng,
            csr=csr,
            partition=partition,
            partition_eps=cfg.partition_eps,
        )
        selected = self._strategy(context, count)

        # Line 14: evict captured nodes from the reservoir.
        self.reservoir.evict(selected)

        # Lines 15-17: walks from the selected nodes, incremental training.
        start_indices = np.fromiter(
            (csr.index_of[node] for node in selected),
            dtype=np.int64,
            count=len(selected),
        )
        return self._walk_and_train(snapshot, csr, start_indices)

    def _walk_and_train(
        self,
        snapshot: Graph,
        csr: CSRAdjacency,
        start_indices: np.ndarray,
    ) -> StepTrace:
        cfg = self.config
        if cfg.walk_p == 1.0 and cfg.walk_q == 1.0:
            # Fused walk→corpus: chunks stream into the corpus builder as
            # workers produce them, so the full walk matrix never exists
            # in this process at workers>=2. Bit-identical to the old
            # generate_walks + build_pair_corpus two-phase path (and it
            # must run *before* ensure_nodes — both draw from self.rng,
            # and the legacy draw order is walks, then row init, then
            # training).
            corpus = generate_corpus(
                csr, start_indices, cfg.num_walks, cfg.walk_length,
                cfg.window_size, self.rng,
                workers=cfg.workers, chunk_starts=cfg.chunk_starts,
                backend=cfg.backend, fused=True,
            )
        else:
            from repro.walks.biased import simulate_biased_walks

            walks = simulate_biased_walks(
                csr, start_indices, cfg.num_walks, cfg.walk_length,
                self.rng, p=cfg.walk_p, q=cfg.walk_q,
            )
            corpus = build_pair_corpus(walks, cfg.window_size, csr.num_nodes)

        # The model vocabulary is global across time; register every node
        # of the snapshot (walks may visit any of them).
        self.model.ensure_nodes(csr.nodes)
        row_of = self.model.vocab.indices(csr.nodes)
        train_on_corpus(
            self.model, corpus, row_of, self.rng, config=cfg.train_config()
        )
        # selected_nodes is derived here, once, from the start indices that
        # actually drove the walks — callers must not rebuild it afterwards
        # (the regression test pins trace fields to the real selection).
        return StepTrace(
            time_step=self.time_step,
            num_nodes=snapshot.number_of_nodes(),
            num_selected=int(start_indices.size),
            num_pairs=corpus.num_pairs,
            selected_nodes=[csr.nodes[i] for i in start_indices],
        )
