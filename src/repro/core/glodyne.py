"""GloDyNE — Algorithm 1 of the paper.

Offline stage (t = 0): DeepWalk-style training of a fresh SGNS model using
truncated random walks from *every* node.

Online stage (t >= 1), four steps per snapshot:

1. partition the snapshot into ``K = α·|V^t|`` balanced cells
   (:mod:`repro.partition`);
2. select one representative per cell, softmax-biased toward accumulated
   topological change (:mod:`repro.core.selection`, strategy S4);
3. run ``r`` truncated random walks of length ``l`` from the selected nodes
   (:mod:`repro.walks`);
4. incrementally train the warm SGNS model on the sliding-window pair
   corpus (:mod:`repro.sgns`).

The class implements the streaming
:class:`repro.base.DynamicEmbeddingMethod` interface; ``fit`` consumes a
whole :class:`repro.graph.dynamic.DynamicNetwork`.

Since the stage-pipeline refactor the loop body lives in
:mod:`repro.pipeline.stages` — this class is a thin stage configuration
(``offline_pipeline`` / ``online_pipeline``) plus the persistent state
the stages read through the per-step
:class:`~repro.pipeline.context.StepContext` (the warm SGNS model, the
reservoir, the incremental partitioner, the RNG stream). The streaming
engine, the SGNS variants, and tNE configure the same stages; outputs
are bit-identical to the pre-pipeline implementation (golden-tested).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

import numpy as np

from repro.base import DynamicEmbeddingMethod, EmbeddingMap
from repro.core.reservoir import Reservoir
from repro.core.selection import get_strategy
from repro.graph.csr import CSRAdjacency
from repro.graph.static import Graph
from repro.parallel import DEFAULT_CHUNK_STARTS
from repro.partition.incremental import IncrementalPartitioner
from repro.pipeline.context import StepContext
from repro.pipeline.stages import (
    offline_pipeline,
    online_pipeline,
    partition_cells_for,
)
from repro.pipeline.trace import StepTrace
from repro.sgns import kernels
from repro.sgns.model import SGNSModel
from repro.sgns.trainer import TrainConfig

__all__ = ["GloDyNE", "GloDyNEConfig", "StepTrace"]

Node = Hashable


@dataclass
class GloDyNEConfig:
    """Hyper-parameters of Algorithm 1 (defaults follow Section 5.1.2).

    The paper uses d=128, r=10, l=80, s=10, q=5, α=0.1; smaller values are
    appropriate for laptop-scale benchmarks and are what the bench harness
    passes explicitly.
    """

    dim: int = 128
    alpha: float = 0.1
    num_walks: int = 10
    walk_length: int = 80
    window_size: int = 10
    negative: int = 5
    epochs: int = 5
    lr: float = 0.025
    min_lr: float = 1e-4
    batch_size: int = 2048
    partition_eps: float = 0.10
    strategy: str = "s4"
    # Step 1 cost model: with ``incremental_partition`` on, a persistent
    # :class:`~repro.partition.incremental.IncrementalPartitioner` applies
    # graph deltas to the previous step's partition — O(Δ) Python work per
    # step instead of the full O(E) multilevel rebuild — falling back to a
    # full rebuild when the maintained edge cut degrades beyond
    # ``partition_cut_slack`` (relative) or Eq. (2) balance breaks. Only
    # the S4 strategies partition, so the knob is inert for S1-S3.
    incremental_partition: bool = False
    partition_cut_slack: float = 0.5
    # Footnote 3 of the paper: on weighted snapshots, |ΔE_i| generalises
    # to the total incident weight change. "auto" switches to the
    # weighted formula whenever either snapshot carries non-unit weights;
    # True / False force it.
    weighted_changes: bool | None = None
    # Framework extension (Section 6): node2vec return/in-out parameters
    # for Step 3's walk sampler. p = q = 1 is the paper's Eq. (5).
    walk_p: float = 1.0
    walk_q: float = 1.0
    # Parallel hot path (:mod:`repro.parallel`). workers=1 is the legacy
    # serial path, bit-identical under a fixed seed; workers>=2 walks
    # fixed-size start chunks on a process pool (output invariant to the
    # worker count, see the engine's determinism contract). Biased
    # (p/q != 1) walks always run serially. ``negative_prefetch=None``
    # auto-selects mega-batch negative drawing for the parallel profile.
    workers: int = 1
    chunk_starts: int = DEFAULT_CHUNK_STARTS
    negative_prefetch: int | None = None
    # Kernel backend for the SGNS gradient step and walk transitions
    # (:mod:`repro.sgns.kernels`): "auto" uses numba when importable and
    # falls back to the pure-python kernels silently; both produce
    # bit-identical embeddings, so the knob affects wall-clock only.
    # Resolved lazily per process (spawned walk workers re-resolve from
    # the string). Biased (p/q != 1) walks ignore it; weighted snapshots
    # switch non-python backends to the alias-table stepper, which is
    # reproducible per backend but draws a different stream than the
    # python searchsorted stepper.
    backend: str = "auto"

    #: Minibatches per negative mega-batch when workers >= 2 and
    #: ``negative_prefetch`` is left on auto. A constant (never derived
    #: from the worker count) so workers=2 and workers=8 train the same.
    PARALLEL_NEGATIVE_PREFETCH = 32

    def __post_init__(self) -> None:
        if self.walk_p <= 0 or self.walk_q <= 0:
            raise ValueError("walk_p and walk_q must be positive")
        if not (0.0 < self.alpha <= 1.0):
            raise ValueError("alpha must lie in (0, 1]")
        if self.dim < 1:
            raise ValueError("dim must be >= 1")
        if self.walk_length < 2:
            raise ValueError("walk_length must be >= 2 to form any pair")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.chunk_starts < 1:
            raise ValueError("chunk_starts must be >= 1")
        if self.negative_prefetch is not None and self.negative_prefetch < 1:
            raise ValueError("negative_prefetch must be >= 1 (or None)")
        if self.partition_eps < 0:
            raise ValueError("partition_eps must be non-negative")
        if self.partition_cut_slack < 0:
            raise ValueError("partition_cut_slack must be non-negative")
        if self.backend not in kernels.BACKENDS:
            raise ValueError(
                f"backend must be one of {kernels.BACKENDS}, got {self.backend!r}"
            )

    def resolved_negative_prefetch(self) -> int:
        """Effective mega-batch size: explicit value, else profile default."""
        if self.negative_prefetch is not None:
            return self.negative_prefetch
        return self.PARALLEL_NEGATIVE_PREFETCH if self.workers >= 2 else 1

    def train_config(self) -> TrainConfig:
        """The SGNS trainer's view of these hyper-parameters."""
        return TrainConfig(
            negative=self.negative,
            epochs=self.epochs,
            lr=self.lr,
            min_lr=self.min_lr,
            batch_size=self.batch_size,
            negative_prefetch=self.resolved_negative_prefetch(),
            backend=self.backend,
        )


class GloDyNE(DynamicEmbeddingMethod):
    """Global-topology-preserving dynamic network embedding (Algorithm 1)."""

    name = "GloDyNE"
    supports_node_deletion = True

    def __init__(
        self,
        config: GloDyNEConfig | None = None,
        seed: int | None = None,
        publish_to=None,
        **overrides,
    ) -> None:
        """Build a model from a config object or keyword overrides.

        Parameters
        ----------
        config:
            A pre-built :class:`GloDyNEConfig`; mutually exclusive with
            ``overrides``.
        seed:
            Seeds the model RNG (walk sampling, SGNS init, negative
            draws). Equal seeds and inputs reproduce embeddings bit for
            bit.
        publish_to:
            Optional :class:`repro.serving.EmbeddingStore`: every
            ``update`` then publishes its Z^t as a new store version
            (snapshot-mode serving hook; streaming callers set it on the
            engine instead, which attaches richer flush metadata).
        **overrides:
            Forwarded to :class:`GloDyNEConfig` for the common call
            style ``GloDyNE(dim=64, alpha=0.2, seed=1)``.
        """
        if config is not None and overrides:
            raise ValueError("pass either a config object or keyword overrides")
        self.config = config if config is not None else GloDyNEConfig(**overrides)
        self._seed = seed
        self._strategy = get_strategy(self.config.strategy)
        self.publish_to = publish_to
        # The stage graphs are stateless across steps (all per-step state
        # lives on the StepContext), so one pipeline object per mode
        # serves every update.
        self._offline_pipeline = offline_pipeline()
        self._online_pipeline = online_pipeline()
        self.reset()

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Drop all learned state and restart from the construction seed.

        After a reset the next :meth:`update` runs the offline stage
        again, exactly as a freshly constructed model would.
        """
        self.rng = np.random.default_rng(self._seed)
        self.model = SGNSModel(self.config.dim, rng=self.rng)
        self.reservoir = Reservoir()
        # Step 1 state: the incremental partitioner persists across
        # `update` calls (that is the whole point — it owns the partition
        # between snapshots). Rebuild randomness comes from the
        # partitioner's own seeded stream, never from self.rng — but note
        # that enabling the knob changes what S4 draws from self.rng (the
        # per-step partition_graph call is skipped), so knob-on and
        # knob-off runs are two different (each internally deterministic)
        # trajectories.
        self.partitioner: IncrementalPartitioner | None = (
            IncrementalPartitioner(
                eps=self.config.partition_eps,
                seed=self._seed,
                cut_slack=self.config.partition_cut_slack,
            )
            if self.config.incremental_partition
            else None
        )
        self.previous: Graph | None = None
        self.time_step = 0
        self.last_trace: StepTrace | None = None
        # The latest update's aligned (nodes, matrix) pair — what the
        # embedding map was built from. Publishing consumers (the
        # streaming engine's serving hook) read this to avoid re-stacking
        # the map row by row; the rows are shared with the map, so this
        # retains no extra memory.
        self.last_embedding: tuple[list[Node], np.ndarray] | None = None
        # Step 1's PartitionResult from the latest online step (None on
        # the offline step, for non-S4 strategies, and with the
        # incremental partitioner off). Publishing consumers export it as
        # `partition_cells` metadata so a partition-aware serving index
        # (IVFIndex) can reuse the trainer's own cells.
        self.last_partition = None

    # ------------------------------------------------------------------
    def update(
        self,
        snapshot: Graph,
        *,
        changes: dict[Node, float] | None = None,
        csr: CSRAdjacency | None = None,
        touched: set[Node] | None = None,
    ) -> EmbeddingMap:
        """Consume the next snapshot and return Z^t for its nodes.

        Parameters
        ----------
        snapshot:
            The graph at time t. The first call runs the offline
            DeepWalk stage; later calls run the four-step online stage.
        changes:
            Streaming fast-path hook (:mod:`repro.streaming`): per-node
            Eq. (3) change scores a caller accumulated incrementally,
            replacing the full-graph ``diff_snapshots`` recomputation.
        csr:
            Streaming fast-path hook: the frozen
            :class:`~repro.graph.csr.CSRAdjacency` of ``snapshot`` a
            caller already holds, replacing ``CSRAdjacency.from_graph``.
        touched:
            Nodes whose incident topology may have changed since the
            previous snapshot — the incremental partitioner's dirty set.
            Defaults to ``set(changes)`` (accumulated or diffed); only
            consulted when ``incremental_partition`` is enabled.

        Returns
        -------
        EmbeddingMap
            ``{node: float64 vector of shape (dim,)}`` for every node of
            ``snapshot``. The aligned ``(nodes, matrix)`` pair behind it
            is kept on :attr:`last_embedding` (``matrix`` float64 of
            shape ``(len(nodes), dim)``, rows shared with the map).
        """
        if snapshot.number_of_nodes() == 0:
            raise ValueError("cannot embed an empty snapshot")
        context = StepContext(
            config=self.config,
            rng=self.rng,
            model=self.model,
            snapshot=snapshot,
            time_step=self.time_step,
            previous=self.previous,
            reservoir=self.reservoir,
            partitioner=self.partitioner,
            strategy=self._strategy,
            csr=csr,
            changes=changes,
            touched=touched,
            publish_to=self.publish_to,
        )
        pipeline = (
            self._offline_pipeline
            if self.previous is None
            else self._online_pipeline
        )
        pipeline.run(context)
        self.last_trace = context.trace
        self.last_partition = context.partition
        # Must be a frozen copy, not an alias: Eq. (3) scoring reads the
        # *previous* snapshot's degrees next step, and streaming callers
        # keep mutating the snapshot object they passed in.
        self.previous = snapshot.copy()
        self.time_step += 1
        self.last_embedding = (context.nodes, context.matrix)
        return context.embeddings

    @property
    def last_partition_cells(self) -> list[int] | None:
        """Per-row cell ids aligned with :attr:`last_embedding`, or None.

        Present only when the latest :meth:`update` ran Step 1's
        partitioner (``incremental_partition`` with an S4 strategy) and
        the partition covers every embedded node. Publishing consumers
        attach it as ``partition_cells`` version metadata, which a
        partition-aware serving index (:class:`repro.serving.index.
        IVFIndex`) adopts as its coarse-quantizer cell layout.
        """
        if self.last_embedding is None:
            return None
        return partition_cells_for(self.last_embedding[0], self.last_partition)
