"""GloDyNE core: reservoir, scoring, selection strategies, Algorithm 1."""

from repro.core.glodyne import GloDyNE, GloDyNEConfig, StepTrace
from repro.core.persistence import load_checkpoint, save_checkpoint
from repro.core.reservoir import Reservoir
from repro.core.scoring import (
    change_score,
    cell_scores,
    sample_representative,
    softmax_probabilities,
)
from repro.core.selection import (
    STRATEGIES,
    SelectionContext,
    get_strategy,
    select_s1,
    select_s2,
    select_s3,
    select_s4,
    select_s4_uniform,
)
from repro.core.variants import SGNSIncrement, SGNSRetrain, SGNSStatic

__all__ = [
    "GloDyNE",
    "GloDyNEConfig",
    "Reservoir",
    "STRATEGIES",
    "SGNSIncrement",
    "SGNSRetrain",
    "SGNSStatic",
    "SelectionContext",
    "StepTrace",
    "cell_scores",
    "change_score",
    "get_strategy",
    "load_checkpoint",
    "sample_representative",
    "save_checkpoint",
    "select_s1",
    "select_s2",
    "select_s3",
    "select_s4",
    "select_s4_uniform",
    "softmax_probabilities",
]
