"""Change scoring and per-cell selection probabilities (Eq. 3-4).

The score of node *i* at time *t* is its accumulated topological change
normalised by its previous degree — the paper's physics metaphor treats the
degree as *inertia*: the same number of changed edges perturbs a hub far
less than a leaf.

    S(v^t_i) = (|ΔE^t_i| + R^{t-1}_i) / Deg(v^{t-1}_i)            (Eq. 3)

Note that Algorithm 1 folds the numerator into the reservoir *before*
scoring (line 10 precedes lines 11-13), so in code the numerator is simply
the post-accumulation reservoir value R^t_i.

Within each partition cell the representative is sampled from the softmax
of scores (Eq. 4); the e^0 = 1 base guarantees a valid uniform distribution
on fully inactive cells.
"""

from __future__ import annotations

from typing import Hashable, Sequence

import numpy as np

from repro.core.reservoir import Reservoir
from repro.graph.static import Graph

Node = Hashable

# Degree fallback for nodes absent from the previous snapshot (new nodes).
# The paper is silent here; treating a brand-new node as inertia-1 gives it
# the full weight of its accumulated changes, which matches the intent of
# biasing selection toward topological novelty.
NEW_NODE_DEGREE = 1.0


def change_score(
    node: Node,
    reservoir: Reservoir,
    previous: Graph | None,
) -> float:
    """S(v) of Eq. (3) using the post-accumulation reservoir as numerator."""
    numerator = reservoir.get(node)
    if numerator == 0.0:
        return 0.0
    if previous is not None and previous.has_node(node):
        inertia = max(float(previous.degree(node)), 1.0)
    else:
        inertia = NEW_NODE_DEGREE
    return numerator / inertia


def cell_scores(
    cell: Sequence[Node],
    reservoir: Reservoir,
    previous: Graph | None,
) -> np.ndarray:
    """Vector of S(v) over one partition cell."""
    return np.array(
        [change_score(node, reservoir, previous) for node in cell],
        dtype=np.float64,
    )


def softmax_probabilities(scores: np.ndarray) -> np.ndarray:
    """Eq. (4): P(v_i) = e^{S(v_i)} / Σ_j e^{S(v_j)} (max-shifted for safety)."""
    if scores.size == 0:
        raise ValueError("cannot build a distribution over an empty cell")
    shifted = scores - scores.max()
    exp = np.exp(shifted)
    return exp / exp.sum()


def sample_representative(
    cell: Sequence[Node],
    reservoir: Reservoir,
    previous: Graph | None,
    rng: np.random.Generator,
) -> Node:
    """Draw one representative node from a cell per Eq. (4)."""
    probabilities = softmax_probabilities(cell_scores(cell, reservoir, previous))
    choice = rng.choice(len(cell), p=probabilities)
    return cell[int(choice)]
