"""Checkpointing for GloDyNE: save / restore mid-stream state.

A deployed DNE service updates embeddings for months; being able to stop
and resume without replaying every snapshot is table stakes. A checkpoint
captures everything Eq. (11) threads through time: the SGNS matrices, the
vocabulary, the reservoir, and the previous snapshot.

The format is a single ``.npz`` (numpy archive); node ids are stored via
a repr/eval-free JSON column so arbitrary str/int ids survive.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.glodyne import GloDyNE, GloDyNEConfig
from repro.graph.static import Graph

FORMAT_VERSION = 1


def encode_node_column(nodes) -> np.ndarray:
    """JSON-encode node ids into an object column safe for ``.npz``.

    Shared by checkpoints and the serving store
    (:mod:`repro.serving.store`): arbitrary str/int/float ids survive a
    round-trip without repr/eval.
    """
    return np.array([json.dumps(node) for node in nodes], dtype=object)


def decode_node_column(column: np.ndarray) -> list:
    """Inverse of :func:`encode_node_column`."""
    return [json.loads(item) for item in column]


def save_checkpoint(model: GloDyNE, path: str | Path) -> None:
    """Serialise a GloDyNE instance to ``path`` (.npz).

    Only JSON-encodable node ids (str, int, float, tuples thereof as
    lists) are supported — the same restriction as any on-disk format.
    """
    vocab_nodes = list(model.model.vocab)
    previous_edges = (
        list(model.previous.weighted_edges()) if model.previous else []
    )
    previous_nodes = list(model.previous.nodes()) if model.previous else []
    reservoir = model.reservoir.as_dict()

    config = model.config
    config_json = json.dumps(
        {
            "dim": config.dim,
            "alpha": config.alpha,
            "num_walks": config.num_walks,
            "walk_length": config.walk_length,
            "window_size": config.window_size,
            "negative": config.negative,
            "epochs": config.epochs,
            "lr": config.lr,
            "min_lr": config.min_lr,
            "batch_size": config.batch_size,
            "partition_eps": config.partition_eps,
            "incremental_partition": config.incremental_partition,
            "partition_cut_slack": config.partition_cut_slack,
            "strategy": config.strategy,
            "weighted_changes": config.weighted_changes,
        }
    )

    np.savez(
        path,
        format_version=np.array([FORMAT_VERSION]),
        config=np.array([config_json], dtype=object),
        time_step=np.array([model.time_step]),
        vocab=encode_node_column(vocab_nodes),
        w_in=model.model.w_in.copy(),
        w_out=model.model.w_out.copy(),
        reservoir_nodes=encode_node_column(reservoir.keys()),
        reservoir_values=np.array(list(reservoir.values()), dtype=np.float64),
        prev_nodes=encode_node_column(previous_nodes),
        prev_edge_u=encode_node_column([u for u, _, _ in previous_edges]),
        prev_edge_v=encode_node_column([v for _, v, _ in previous_edges]),
        prev_edge_w=np.array(
            [w for _, _, w in previous_edges], dtype=np.float64
        ),
        allow_pickle=True,
    )


def load_checkpoint(path: str | Path, seed: int | None = None) -> GloDyNE:
    """Restore a GloDyNE instance saved by :func:`save_checkpoint`.

    ``seed`` reseeds the RNG for the *future* steps (the stream of past
    randomness is not replayed).
    """
    archive = np.load(path, allow_pickle=True)
    version = int(archive["format_version"][0])
    if version != FORMAT_VERSION:
        raise ValueError(
            f"checkpoint format {version} != supported {FORMAT_VERSION}"
        )
    config = GloDyNEConfig(**json.loads(str(archive["config"][0])))
    model = GloDyNE(config=config, seed=seed)

    vocab_nodes = decode_node_column(archive["vocab"])
    model.model.ensure_nodes(vocab_nodes)
    model.model._w_in[: len(vocab_nodes)] = archive["w_in"]
    model.model._w_out[: len(vocab_nodes)] = archive["w_out"]

    reservoir_nodes = decode_node_column(archive["reservoir_nodes"])
    reservoir_values = archive["reservoir_values"]
    model.reservoir.accumulate(dict(zip(reservoir_nodes, reservoir_values)))

    prev_nodes = decode_node_column(archive["prev_nodes"])
    if prev_nodes:
        previous = Graph()
        for node in prev_nodes:
            previous.add_node(node)
        for u, v, w in zip(
            decode_node_column(archive["prev_edge_u"]),
            decode_node_column(archive["prev_edge_v"]),
            archive["prev_edge_w"],
        ):
            previous.add_edge(u, v, float(w))
        model.previous = previous

    model.time_step = int(archive["time_step"][0])
    return model
