"""Node-selection strategies S1-S4 (Section 5.3.4, Table 5).

All strategies pick ``K = α·|V^t|`` nodes whose neighbourhoods will be
re-sampled by random walks. They differ in the *diversity* of the picked
set, which the paper ranks S1 < S2 < S3 < S4:

* **S1** — random *with replacement* from the reservoir (most-affected
  nodes only): blind to inactive sub-networks, duplicates possible.
* **S2** — random *without replacement* from the reservoir, topped up from
  the whole node set when the reservoir is smaller than K.
* **S3** — random without replacement over all current nodes: diverse in
  expectation but without spatial guarantees.
* **S4** — the GloDyNE strategy: partition the snapshot into K balanced
  cells and sample one representative per cell via the Eq. (4) softmax —
  guaranteed spread over the network *and* bias toward accumulated change.
"""

from __future__ import annotations

from typing import Hashable, Protocol

import numpy as np

from repro.core.reservoir import Reservoir
from repro.core.scoring import sample_representative
from repro.graph.static import Graph
from repro.partition.metis import partition_graph

Node = Hashable


class SelectionContext:
    """Everything a strategy may consult when picking nodes.

    The last three parameters are fast-path hooks the GloDyNE online
    loop fills in: ``csr`` is the step's single frozen adjacency (S4's
    partitioner reuses it instead of re-freezing the snapshot),
    ``partition`` is a prebuilt Step 1 partition (from the incremental
    partitioner) that S4 adopts wholesale, and ``partition_eps`` is the
    Eq. (2) balance tolerance from :class:`GloDyNEConfig` — previously
    the config knob never reached S4 and the hard-coded 0.10 always won.
    """

    def __init__(
        self,
        snapshot: Graph,
        previous: Graph | None,
        reservoir: Reservoir,
        rng: np.random.Generator,
        csr=None,
        partition=None,
        partition_eps: float | None = None,
    ) -> None:
        self.snapshot = snapshot
        self.previous = previous
        self.reservoir = reservoir
        self.rng = rng
        self.csr = csr
        self.partition = partition
        self.partition_eps = partition_eps


class SelectionStrategy(Protocol):
    """Callable picking ``count`` nodes from the current snapshot."""

    def __call__(self, context: SelectionContext, count: int) -> list[Node]:
        ...


def _alive_reservoir_nodes(context: SelectionContext) -> list[Node]:
    """Reservoir nodes still present in the current snapshot, sorted for
    deterministic ordering before random sampling."""
    snapshot = context.snapshot
    return sorted(
        (node for node in context.reservoir.nodes() if snapshot.has_node(node)),
        key=repr,
    )


def select_s1(context: SelectionContext, count: int) -> list[Node]:
    """S1: sample with replacement from the reservoir.

    Duplicates are kept (they simply duplicate walk starts). When the
    reservoir is empty — e.g. a fully quiet step — falls back to uniform
    sampling over the snapshot so that some update still happens.
    """
    pool = _alive_reservoir_nodes(context)
    if not pool:
        return select_s3(context, count)
    picks = context.rng.integers(0, len(pool), size=count)
    return [pool[int(i)] for i in picks]


def select_s2(context: SelectionContext, count: int) -> list[Node]:
    """S2: without replacement from the reservoir, topped up from V^t."""
    pool = _alive_reservoir_nodes(context)
    rng = context.rng
    if len(pool) >= count:
        picks = rng.choice(len(pool), size=count, replace=False)
        return [pool[int(i)] for i in picks]
    selected = list(pool)
    remainder = sorted(
        context.snapshot.node_set().difference(selected), key=repr
    )
    extra = min(count - len(selected), len(remainder))
    if extra > 0:
        picks = rng.choice(len(remainder), size=extra, replace=False)
        selected.extend(remainder[int(i)] for i in picks)
    return selected


def select_s3(context: SelectionContext, count: int) -> list[Node]:
    """S3: uniform without replacement over all current nodes."""
    nodes = sorted(context.snapshot.node_set(), key=repr)
    count = min(count, len(nodes))
    picks = context.rng.choice(len(nodes), size=count, replace=False)
    return [nodes[int(i)] for i in picks]


def _resolve_partition(
    context: SelectionContext, count: int, eps: float | None
):
    """The Step 1 partition S4 samples from.

    A prebuilt partition on the context (the incremental partitioner's
    output) wins when its cell count matches; otherwise a fresh
    multilevel partition is built, reusing the context's frozen CSR when
    one exists. The eps precedence is explicit argument >
    ``context.partition_eps`` (the config knob) > the 0.10 default.
    """
    partition = context.partition
    if partition is not None and partition.k == count:
        return partition
    if eps is None:
        eps = (
            context.partition_eps
            if context.partition_eps is not None
            else 0.10
        )
    return partition_graph(
        context.snapshot, k=count, eps=eps, rng=context.rng, csr=context.csr
    )


def select_s4(
    context: SelectionContext,
    count: int,
    eps: float | None = None,
) -> list[Node]:
    """S4 (GloDyNE): one softmax-sampled representative per partition cell."""
    count = max(1, min(count, context.snapshot.number_of_nodes()))
    partition = _resolve_partition(context, count, eps)
    return [
        sample_representative(cell, context.reservoir, context.previous, context.rng)
        for cell in partition.cells
        if cell
    ]


def select_s4_uniform(
    context: SelectionContext,
    count: int,
    eps: float | None = None,
) -> list[Node]:
    """Ablation of S4: partition diversity WITHOUT the change bias.

    One representative per cell, drawn uniformly — isolates how much of
    GloDyNE's gain comes from the Eq. (4) softmax over accumulated change
    versus the partition spread alone (DESIGN.md §6 ablation hook).
    """
    count = max(1, min(count, context.snapshot.number_of_nodes()))
    partition = _resolve_partition(context, count, eps)
    picks = []
    for cell in partition.cells:
        if cell:
            picks.append(cell[int(context.rng.integers(0, len(cell)))])
    return picks


STRATEGIES: dict[str, SelectionStrategy] = {
    "s1": select_s1,
    "s2": select_s2,
    "s3": select_s3,
    "s4": select_s4,
    "s4-uniform": select_s4_uniform,
}


def get_strategy(name: str) -> SelectionStrategy:
    """Look up a strategy by its paper name ('s1'..'s4')."""
    try:
        return STRATEGIES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown selection strategy {name!r}; expected one of "
            f"{sorted(STRATEGIES)}"
        ) from None
