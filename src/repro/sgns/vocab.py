"""Vocabulary: stable node-id <-> embedding-row mapping with incremental growth.

The incremental learning paradigm (Eq. 11) keeps one SGNS model alive across
all time steps: nodes seen at any snapshot own a row in the embedding
matrices forever. New nodes are appended; deleted nodes keep their rows (the
paper extracts Z^t for the *current* node set "via an index operator", which
is exactly :meth:`Vocabulary.indices`).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence

import numpy as np

Node = Hashable


class Vocabulary:
    """Append-only node registry."""

    __slots__ = ("_index_of", "_nodes")

    def __init__(self, nodes: Iterable[Node] = ()) -> None:
        self._index_of: dict[Node, int] = {}
        self._nodes: list[Node] = []
        self.add_many(nodes)

    def add(self, node: Node) -> int:
        """Register ``node`` (idempotent); returns its row index."""
        idx = self._index_of.get(node)
        if idx is None:
            idx = len(self._nodes)
            self._index_of[node] = idx
            self._nodes.append(node)
        return idx

    def add_many(self, nodes: Iterable[Node]) -> list[int]:
        """Register many nodes; returns their row indices in input order."""
        return [self.add(node) for node in nodes]

    def index(self, node: Node) -> int:
        """Row index of a known node; ``KeyError`` for unknown nodes."""
        return self._index_of[node]

    def indices(self, nodes: Sequence[Node]) -> np.ndarray:
        """Row indices for a node sequence (the Eq. 11 'index operator')."""
        return np.fromiter(
            (self._index_of[node] for node in nodes),
            dtype=np.int64,
            count=len(nodes),
        )

    def node(self, idx: int) -> Node:
        return self._nodes[idx]

    def __contains__(self, node: Node) -> bool:
        return node in self._index_of

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self):
        return iter(self._nodes)

    def copy(self) -> "Vocabulary":
        clone = Vocabulary()
        clone._index_of = dict(self._index_of)
        clone._nodes = list(self._nodes)
        return clone
