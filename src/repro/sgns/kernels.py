"""Native-speed SGNS and walk kernels behind an import-guarded numba backend.

The SGNS inner loop dominates end-to-end training (see
``BENCH_parallel_walks``: the prefetch train path costs ~3-4x the walk
corpus), and pure-numpy mega-batching bought ~1x. This module provides
compiled kernels for the two hot loops — the SGNS gradient step and the
walk transition — without giving up the repo's bit-exact determinism
contract.

Three implementations of one algorithm family:

``python``
    The canonical vectorised numpy implementations. Always available;
    this is what ships, what the goldens pin, and what every other
    backend must reproduce bit for bit.
``numba``
    ``@njit``-compiled scalar-loop twins of the same float64 accumulation
    order. Requires numba (import-guarded); resolving it without numba
    raises :class:`BackendUnavailable` with an actionable message.
``interpreted``
    The numba kernel *source* executed by the plain interpreter. Slow,
    but it needs no compiler — it is the differential-testing reference
    that lets ``tests/test_kernel_equivalence.py`` prove the loop
    algorithms bit-identical to the vectorised path even on hosts
    without numba installed.

Bit-exactness is engineered, not hoped for:

* **No transcendental is ever evaluated inside a kernel.** numpy's
  vectorised ``exp`` and libm's ``exp`` (what a compiled kernel would
  call) differ in the last ulp, so both backends read the same
  precomputed word2vec-style sigmoid table (:func:`sigmoid_table`), and
  lookups are exact array reads.
* **Reductions are sequential by specification.** ``einsum`` contracts
  with SIMD pairwise accumulation that a scalar loop cannot replay, so
  the canonical step (:func:`sgns_step_numpy`, which
  :meth:`repro.sgns.model.SGNSModel.train_batch` wraps) accumulates dot
  products in explicit ascending-``d`` order and gradient sums in
  ascending-``q`` order — an order a loop (and LLVM without fastmath)
  reproduces exactly.
* **Scatters follow ``np.add.at`` order**: all gradients are computed
  from the pre-update matrices, then applied centre rows first, context
  rows second, negative rows last, each in batch order.

RNG stays on the caller's side: kernels consume pre-drawn randomness
(negative draws in the trainer, per-step transition draws in the walk
steppers), so the ``prefetch=1`` legacy sampler stream is byte-identical
whichever backend executes the arithmetic, and spawned workers resolving
``backend="auto"`` independently cannot diverge on unweighted graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = [
    "BackendUnavailable",
    "KernelBackend",
    "MAX_EXP",
    "SIGMOID_TABLE_SIZE",
    "numba_available",
    "resolve_backend",
    "sigmoid_table",
    "table_sigmoid",
]

#: Public backend names accepted by ``TrainConfig.backend`` /
#: ``GloDyNEConfig.backend`` / CLI ``--backend``. ``interpreted`` is also
#: accepted everywhere but is a testing reference, not a product knob.
PUBLIC_BACKENDS = ("auto", "python", "numba")
BACKENDS = PUBLIC_BACKENDS + ("interpreted",)

# ----------------------------------------------------------------------
# shared sigmoid table (word2vec's EXP_TABLE discipline)
# ----------------------------------------------------------------------
#: Number of bins in the shared sigmoid lookup table.
SIGMOID_TABLE_SIZE = 4096
#: Scores at or beyond ±MAX_EXP saturate to exactly 0.0 / 1.0, as in
#: word2vec's EXP_TABLE discipline; inside the range the table is within
#: 2.5e-3 of the exact logistic.
MAX_EXP = 6.0
_TABLE_SCALE = SIGMOID_TABLE_SIZE / (2.0 * MAX_EXP)

_SIG_TABLE: np.ndarray | None = None


def sigmoid_table() -> np.ndarray:
    """The shared float64 sigmoid lookup table (computed once).

    ``table[i] = sigma((2 i / size - 1) * MAX_EXP)`` for
    ``i in 0..size`` — the exact logistic sampled at bin edges
    (``size + 1`` entries, so a lookup can interpolate the bin ``[i,
    i+1]``). Word2vec's EXP_TABLE layout, plus the right edge. Both
    backends index it with the same truncating cast and the same
    interpolation arithmetic, so the approximated sigmoid is identical
    across them by construction.
    """
    global _SIG_TABLE
    if _SIG_TABLE is None:
        x = (
            2.0 * np.arange(SIGMOID_TABLE_SIZE + 1, dtype=np.float64)
            / SIGMOID_TABLE_SIZE
            - 1.0
        ) * MAX_EXP
        _SIG_TABLE = 1.0 / (1.0 + np.exp(-x))
        _SIG_TABLE.setflags(write=False)
    return _SIG_TABLE


def table_sigmoid(x: np.ndarray, table: np.ndarray | None = None) -> np.ndarray:
    """Vectorised table sigmoid — the canonical (python-backend) lookup.

    Linear interpolation between bin edges (max error ~2e-6 at 4096
    bins), saturating to exactly 1.0 / 0.0 at and beyond ``±MAX_EXP``.
    Both halves of that design are load-bearing for training stability,
    not just fidelity: a plain floor-bin lookup biases the gradient by
    up to one bin width (~3e-3), which stops the gradient from decaying
    as scores saturate — compounded through ``np.add.at``'s
    duplicate-row accumulation, that residual push grows weight norms
    without bound. Interpolation restores the exact logistic's decay to
    within 2e-6, and the exact 0/1 saturation (word2vec's out-of-range
    rule) makes the gradient vanish entirely past the table edge.

    The scalar twin inside the loop kernels performs the identical
    saturation tests, truncating cast, and interpolation expression, so
    lookups agree bit for bit.
    """
    if table is None:
        table = sigmoid_table()
    pos = (np.clip(x, -MAX_EXP, MAX_EXP) + MAX_EXP) * _TABLE_SCALE
    idx = pos.astype(np.int64)
    np.clip(idx, 0, SIGMOID_TABLE_SIZE - 1, out=idx)
    frac = pos - idx
    base = table[idx]
    out = base + (table[idx + 1] - base) * frac
    out[x >= MAX_EXP] = 1.0
    out[x <= -MAX_EXP] = 0.0
    return out


# ----------------------------------------------------------------------
# canonical vectorised implementations (the ``python`` backend)
# ----------------------------------------------------------------------
def sgns_step_numpy(
    w_in: np.ndarray,
    w_out: np.ndarray,
    centers: np.ndarray,
    contexts: np.ndarray,
    negatives: np.ndarray,
    lr: float,
    table: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """One canonical SGD step over a pair minibatch; returns the scores.

    This *is* the legacy update stream: gradients of Eq. (9) with the
    table sigmoid, accumulated in ascending-``d`` / ascending-``q``
    order, scattered with ``np.add.at`` so duplicate rows accumulate in
    batch order. Every other backend reproduces this function bit for
    bit. Returns ``(pos_scores, neg_scores)`` (pre-update dot products)
    so callers can derive the batch loss without re-reading the weights.
    """
    dim = w_in.shape[1]
    num_neg = negatives.shape[1]
    h = w_in[centers]                      # (B, d) pre-update gathers
    u_pos = w_out[contexts]                # (B, d)
    u_neg = w_out[negatives]               # (B, q, d)

    # Sequential-d dot products (see module docstring). The transposed
    # copies keep each of the d vectorised passes contiguous.
    h_t = np.ascontiguousarray(h.T)
    u_pos_t = np.ascontiguousarray(u_pos.T)
    u_neg_t = np.ascontiguousarray(u_neg.transpose(2, 0, 1))
    pos_score = np.zeros(h.shape[0], dtype=np.float64)
    neg_score = np.zeros(negatives.shape, dtype=np.float64)
    for k in range(dim):
        pos_score += h_t[k] * u_pos_t[k]
        neg_score += h_t[k][:, None] * u_neg_t[k]

    g_pos = table_sigmoid(pos_score, table) - 1.0   # d(-log sig(x))/dx
    g_neg = table_sigmoid(neg_score, table)         # d(-log sig(-x))/dx

    grad_h = g_pos[:, None] * u_pos
    for j in range(num_neg):                        # sequential-q sum
        grad_h += g_neg[:, j, None] * u_neg[:, j]

    np.add.at(w_in, centers, -lr * grad_h)
    np.add.at(w_out, contexts, -lr * (g_pos[:, None] * h))
    np.add.at(
        w_out,
        negatives.ravel(),
        (-lr * (g_neg[:, :, None] * h[:, None, :])).reshape(-1, dim),
    )
    return pos_score, neg_score


def uniform_resolve_numpy(
    indptr: np.ndarray,
    indices: np.ndarray,
    current: np.ndarray,
    offsets: np.ndarray,
) -> np.ndarray:
    """Uniform walk transition: neighbour ``offsets[i]`` of ``current[i]``."""
    return indices[indptr[current] + offsets]


def alias_resolve_numpy(
    indptr: np.ndarray,
    indices: np.ndarray,
    probability: np.ndarray,
    alias: np.ndarray,
    current: np.ndarray,
    idx: np.ndarray,
    coin: np.ndarray,
) -> np.ndarray:
    """Weighted transition via per-row alias tables (Walker/Vose draws).

    ``probability``/``alias`` are the flattened per-row tables from
    :meth:`repro.graph.csr.CSRAdjacency.row_alias_tables`; ``idx`` and
    ``coin`` are the walker's pre-drawn uniform slot and coin. The
    decision rule is exactly :meth:`repro.walks.alias.AliasTable.sample`:
    take the alias when ``coin >= probability[slot]``.
    """
    row_start = indptr[current]
    slot = row_start + idx
    local = np.where(coin >= probability[slot], alias[slot], idx)
    return indices[row_start + local]


# ----------------------------------------------------------------------
# scalar-loop twins (the ``numba`` / ``interpreted`` backends)
# ----------------------------------------------------------------------
# These functions are written in nopython-compilable style: plain loops,
# float64 scalars, preallocated buffers, no closures. numba compiles
# them unchanged; the interpreter runs them unchanged. LLVM without
# fastmath neither reassociates float adds nor fuses mul+add, so the
# compiled arithmetic is the interpreted arithmetic.
def _sgns_step_loops(w_in, w_out, centers, contexts, negatives, lr, table):
    """Loop twin of :func:`sgns_step_numpy` (same order, same scatters)."""
    batch = centers.shape[0]
    dim = w_in.shape[1]
    num_neg = negatives.shape[1]
    neg_lr = -lr

    h = np.empty((batch, dim), dtype=np.float64)
    grad_h = np.empty((batch, dim), dtype=np.float64)
    g_pos = np.empty(batch, dtype=np.float64)
    g_neg = np.empty((batch, num_neg), dtype=np.float64)
    pos_score = np.empty(batch, dtype=np.float64)
    neg_score = np.empty((batch, num_neg), dtype=np.float64)

    # Phase A: everything derived from the PRE-update matrices.
    for b in range(batch):
        c = centers[b]
        for k in range(dim):
            h[b, k] = w_in[c, k]
    for b in range(batch):
        ctx = contexts[b]
        acc = 0.0
        for k in range(dim):
            acc += h[b, k] * w_out[ctx, k]
        pos_score[b] = acc
        if acc >= MAX_EXP:
            g_pos[b] = 0.0
        elif acc <= -MAX_EXP:
            g_pos[b] = -1.0
        else:
            p = (acc + MAX_EXP) * _TABLE_SCALE
            j = int(p)
            if j > SIGMOID_TABLE_SIZE - 1:
                j = SIGMOID_TABLE_SIZE - 1
            g_pos[b] = (table[j] + (table[j + 1] - table[j]) * (p - j)) - 1.0
        for n in range(num_neg):
            row = negatives[b, n]
            acc = 0.0
            for k in range(dim):
                acc += h[b, k] * w_out[row, k]
            neg_score[b, n] = acc
            if acc >= MAX_EXP:
                g_neg[b, n] = 1.0
            elif acc <= -MAX_EXP:
                g_neg[b, n] = 0.0
            else:
                p = (acc + MAX_EXP) * _TABLE_SCALE
                j = int(p)
                if j > SIGMOID_TABLE_SIZE - 1:
                    j = SIGMOID_TABLE_SIZE - 1
                g_neg[b, n] = table[j] + (table[j + 1] - table[j]) * (p - j)
    for b in range(batch):
        ctx = contexts[b]
        gp = g_pos[b]
        for k in range(dim):
            acc = gp * w_out[ctx, k]
            for n in range(num_neg):
                acc += g_neg[b, n] * w_out[negatives[b, n], k]
            grad_h[b, k] = acc

    # Phase B: scatters in np.add.at order — centres, contexts, negatives.
    for b in range(batch):
        c = centers[b]
        for k in range(dim):
            w_in[c, k] += neg_lr * grad_h[b, k]
    for b in range(batch):
        ctx = contexts[b]
        gp = g_pos[b]
        for k in range(dim):
            w_out[ctx, k] += neg_lr * (gp * h[b, k])
    for b in range(batch):
        for n in range(num_neg):
            row = negatives[b, n]
            gn = g_neg[b, n]
            for k in range(dim):
                w_out[row, k] += neg_lr * (gn * h[b, k])
    return pos_score, neg_score


def _uniform_resolve_loops(indptr, indices, current, offsets):
    """Loop twin of :func:`uniform_resolve_numpy`."""
    n = current.shape[0]
    out = np.empty(n, dtype=np.int64)
    for i in range(n):
        out[i] = indices[indptr[current[i]] + offsets[i]]
    return out


def _alias_resolve_loops(indptr, indices, probability, alias, current, idx, coin):
    """Loop twin of :func:`alias_resolve_numpy`."""
    n = current.shape[0]
    out = np.empty(n, dtype=np.int64)
    for i in range(n):
        row_start = indptr[current[i]]
        slot = row_start + idx[i]
        if coin[i] >= probability[slot]:
            local = alias[slot]
        else:
            local = idx[i]
        out[i] = indices[row_start + local]
    return out


# ----------------------------------------------------------------------
# backend resolution
# ----------------------------------------------------------------------
class BackendUnavailable(RuntimeError):
    """Raised when ``backend="numba"`` is requested but numba is missing."""


@dataclass(frozen=True)
class KernelBackend:
    """A resolved kernel implementation set.

    ``sgns_step`` mutates ``(w_in, w_out)`` in place and returns the
    pre-update ``(pos_scores, neg_scores)``; the two ``*_resolve``
    callables map pre-drawn randomness to walk transitions. ``compiled``
    records whether the callables are numba-jitted (``numba``) or plain
    python (``python`` / ``interpreted``).
    """

    name: str
    compiled: bool
    sgns_step: Callable
    uniform_resolve: Callable
    alias_resolve: Callable


def _import_numba():
    """Import hook the tests monkeypatch to simulate a numba-free host."""
    import numba

    return numba


def numba_available() -> bool:
    """True when numba is importable in *this* process (checked lazily)."""
    try:
        _import_numba()
    except ImportError:
        return False
    return True


_COMPILED: dict[str, Callable] = {}


def _compiled_kernels() -> dict[str, Callable]:
    """Jit-compile the loop twins once per process (memoised)."""
    numba = _import_numba()
    if not _COMPILED:
        jit = numba.njit(cache=True, fastmath=False)
        _COMPILED["sgns_step"] = jit(_sgns_step_loops)
        _COMPILED["uniform_resolve"] = jit(_uniform_resolve_loops)
        _COMPILED["alias_resolve"] = jit(_alias_resolve_loops)
    return _COMPILED


def resolve_backend(name: str = "auto") -> KernelBackend:
    """Resolve a backend name to a :class:`KernelBackend`.

    Resolution is deliberately *lazy and per-process*: configs carry only
    the string, so pickled configs shipped to spawned workers (the
    parallel walk engine, shard servers) re-resolve independently —
    ``auto`` silently selects ``python`` wherever numba is absent and
    ``numba`` wherever it is present.
    """
    if name == "auto":
        name = "numba" if numba_available() else "python"
    if name == "python":
        return KernelBackend(
            name="python",
            compiled=False,
            sgns_step=sgns_step_numpy,
            uniform_resolve=uniform_resolve_numpy,
            alias_resolve=alias_resolve_numpy,
        )
    if name == "interpreted":
        return KernelBackend(
            name="interpreted",
            compiled=False,
            sgns_step=_sgns_step_loops,
            uniform_resolve=_uniform_resolve_loops,
            alias_resolve=_alias_resolve_loops,
        )
    if name == "numba":
        try:
            kernels = _compiled_kernels()
        except ImportError as error:
            raise BackendUnavailable(
                "backend='numba' was requested but numba is not importable "
                f"({error}); install numba (pip install numba) or use "
                "backend='auto' to fall back to the pure-python kernels"
            ) from None
        return KernelBackend(
            name="numba",
            compiled=True,
            sgns_step=kernels["sgns_step"],
            uniform_resolve=kernels["uniform_resolve"],
            alias_resolve=kernels["alias_resolve"],
        )
    raise ValueError(f"unknown kernel backend {name!r}; choose from {BACKENDS}")
