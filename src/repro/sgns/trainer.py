"""SGNS training loop: negative tables, learning-rate schedule, epochs.

Implements the Eq. (10) objective — sum over all positive pairs of the
Eq. (9) per-pair loss with ``q`` negatives drawn from the unigram
distribution of the *current* corpus D^t raised to the word2vec 3/4 power.
The learning rate decays linearly over the scheduled number of pair visits,
as in word2vec/gensim.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sgns.model import SGNSModel
from repro.walks.alias import AliasTable
from repro.walks.corpus import PairCorpus


@dataclass
class TrainConfig:
    """Hyper-parameters of one SGNS training round.

    Defaults mirror word2vec/gensim conventions used by the paper: 5
    negatives per positive (paper Section 5.1.2), initial lr 0.025, 5
    epochs, unigram^0.75 noise.
    """

    negative: int = 5
    epochs: int = 5
    lr: float = 0.025
    min_lr: float = 1e-4
    batch_size: int = 2048
    noise_power: float = 0.75
    # Mega-batch negative drawing: negatives for up to this many
    # consecutive minibatches are drawn in one alias-table call instead of
    # one call per minibatch. 1 (the default) reproduces the legacy rng
    # stream bit for bit; larger values trade stream compatibility for
    # fewer sampler round-trips (the parallel profile uses 32).
    negative_prefetch: int = 1

    def __post_init__(self) -> None:
        if self.negative < 1:
            raise ValueError("negative must be >= 1")
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if not (0 < self.min_lr <= self.lr):
            raise ValueError("need 0 < min_lr <= lr")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.negative_prefetch < 1:
            raise ValueError("negative_prefetch must be >= 1")


def build_noise_table(
    counts: np.ndarray, power: float = 0.75
) -> tuple[AliasTable, np.ndarray]:
    """Unigram^power negative-sampling table over corpus occurrence counts.

    Returns the alias table plus the array mapping table positions to node
    indices (only nodes with non-zero count participate, matching the
    paper's "drawn from a unigram distribution P_{D^t}").
    """
    present = np.flatnonzero(counts > 0)
    if present.size == 0:
        raise ValueError("corpus has no occurrences to build a noise table")
    weights = counts[present].astype(np.float64) ** power
    return AliasTable(weights), present


def train_on_corpus(
    model: SGNSModel,
    corpus: PairCorpus,
    row_of: np.ndarray,
    rng: np.random.Generator,
    config: TrainConfig | None = None,
    compute_loss: bool = False,
) -> float:
    """Train ``model`` on a pair corpus; returns mean loss of the last epoch.

    Parameters
    ----------
    model:
        The (possibly warm-started) SGNS model. All rows referenced via
        ``row_of`` must already exist (call ``ensure_nodes`` first).
    corpus:
        Positive pairs in *snapshot-local* node indices.
    row_of:
        Translation array: ``row_of[snapshot_index] = model_row``. This is
        what lets one global incremental model train on per-snapshot
        corpora.
    """
    if config is None:
        config = TrainConfig()
    if corpus.num_pairs == 0:
        return 0.0

    noise_table, noise_nodes = build_noise_table(corpus.counts, config.noise_power)
    noise_rows = row_of[noise_nodes]

    centers = row_of[corpus.centers]
    contexts = row_of[corpus.contexts]

    total_visits = corpus.num_pairs * config.epochs
    visited = 0
    last_epoch_loss = 0.0
    # With prefetch=1 the mega-batch degenerates to one minibatch and the
    # sampler is called with the exact legacy shapes — same rng stream.
    mega = config.batch_size * config.negative_prefetch
    for epoch in range(config.epochs):
        order = rng.permutation(corpus.num_pairs)
        losses: list[float] = []
        want_loss = compute_loss and epoch == config.epochs - 1
        for mega_start in range(0, corpus.num_pairs, mega):
            group = order[mega_start: mega_start + mega]
            group_negatives = noise_rows[
                noise_table.sample(rng, size=(group.size, config.negative))
            ]
            for offset in range(0, group.size, config.batch_size):
                batch = group[offset: offset + config.batch_size]
                progress = visited / total_visits
                lr = max(config.min_lr, config.lr * (1.0 - progress))
                loss = model.train_batch(
                    centers[batch],
                    contexts[batch],
                    group_negatives[offset: offset + batch.size],
                    lr,
                    compute_loss=want_loss,
                )
                if want_loss:
                    losses.append(loss * batch.size)
                visited += batch.size
        if want_loss and losses:
            last_epoch_loss = sum(losses) / corpus.num_pairs
    return last_epoch_loss
