"""SGNS training loop: negative tables, learning-rate schedule, epochs.

Implements the Eq. (10) objective — sum over all positive pairs of the
Eq. (9) per-pair loss with ``q`` negatives drawn from the unigram
distribution of the *current* corpus D^t raised to the word2vec 3/4 power.
The learning rate decays linearly over the scheduled number of pair visits,
as in word2vec/gensim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.sgns import kernels
from repro.sgns.model import SGNSModel
from repro.walks.alias import AliasTable
from repro.walks.corpus import PairCorpus, StreamedCorpusBuilder


@dataclass
class TrainConfig:
    """Hyper-parameters of one SGNS training round.

    Defaults mirror word2vec/gensim conventions used by the paper: 5
    negatives per positive (paper Section 5.1.2), initial lr 0.025, 5
    epochs, unigram^0.75 noise.
    """

    negative: int = 5
    epochs: int = 5
    lr: float = 0.025
    min_lr: float = 1e-4
    batch_size: int = 2048
    noise_power: float = 0.75
    # Mega-batch negative drawing: negatives for up to this many
    # consecutive minibatches are drawn in one alias-table call instead of
    # one call per minibatch. 1 (the default) reproduces the legacy rng
    # stream bit for bit; larger values trade stream compatibility for
    # fewer sampler round-trips (the parallel profile uses 32).
    negative_prefetch: int = 1
    # Kernel backend executing the gradient arithmetic: "auto" picks numba
    # when importable and falls back to the pure-python kernels silently;
    # "numba" demands the compiled kernels (raising BackendUnavailable
    # without numba); "python" pins the canonical numpy path. All backends
    # are bit-identical (see repro.sgns.kernels), so this knob never
    # changes results — only wall-clock. Resolution happens lazily inside
    # train_on_corpus, so pickled configs shipped to spawned workers
    # re-resolve per process.
    backend: str = "auto"

    def __post_init__(self) -> None:
        if self.negative < 1:
            raise ValueError("negative must be >= 1")
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if not (0 < self.min_lr <= self.lr):
            raise ValueError("need 0 < min_lr <= lr")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.negative_prefetch < 1:
            raise ValueError("negative_prefetch must be >= 1")
        if self.backend not in kernels.BACKENDS:
            raise ValueError(
                f"backend must be one of {kernels.BACKENDS}, got {self.backend!r}"
            )


def build_noise_table(
    counts: np.ndarray, power: float = 0.75
) -> tuple[AliasTable, np.ndarray]:
    """Unigram^power negative-sampling table over corpus occurrence counts.

    Returns the alias table plus the array mapping table positions to node
    indices (only nodes with non-zero count participate, matching the
    paper's "drawn from a unigram distribution P_{D^t}").
    """
    present = np.flatnonzero(counts > 0)
    if present.size == 0:
        raise ValueError("corpus has no occurrences to build a noise table")
    weights = counts[present].astype(np.float64) ** power
    return AliasTable(weights), present


def train_on_corpus(
    model: SGNSModel,
    corpus: PairCorpus,
    row_of: np.ndarray,
    rng: np.random.Generator,
    config: TrainConfig | None = None,
    compute_loss: bool = False,
) -> float:
    """Train ``model`` on a pair corpus; returns mean loss of the last epoch.

    Parameters
    ----------
    model:
        The (possibly warm-started) SGNS model. All rows referenced via
        ``row_of`` must already exist (call ``ensure_nodes`` first).
    corpus:
        Positive pairs in *snapshot-local* node indices.
    row_of:
        Translation array: ``row_of[snapshot_index] = model_row``. This is
        what lets one global incremental model train on per-snapshot
        corpora.
    """
    if config is None:
        config = TrainConfig()
    if corpus.num_pairs == 0:
        return 0.0

    noise_table, noise_nodes = build_noise_table(corpus.counts, config.noise_power)
    noise_rows = row_of[noise_nodes]

    centers = row_of[corpus.centers]
    contexts = row_of[corpus.contexts]

    step = kernels.resolve_backend(config.backend).sgns_step

    total_visits = corpus.num_pairs * config.epochs
    visited = 0
    last_epoch_loss = 0.0
    # With prefetch=1 the mega-batch degenerates to one minibatch and the
    # sampler is called with the exact legacy shapes — same rng stream.
    mega = config.batch_size * config.negative_prefetch
    for epoch in range(config.epochs):
        order = rng.permutation(corpus.num_pairs)
        losses: list[float] = []
        want_loss = compute_loss and epoch == config.epochs - 1
        for mega_start in range(0, corpus.num_pairs, mega):
            group = order[mega_start: mega_start + mega]
            group_negatives = noise_rows[
                noise_table.sample(rng, size=(group.size, config.negative))
            ]
            for offset in range(0, group.size, config.batch_size):
                # One stop bound shared by the pair slice and the negative
                # slice. (An earlier revision computed the two bounds
                # independently — `offset + batch_size` for pairs but
                # `offset + batch.size` for negatives — which only agreed
                # because the final partial group re-checked the noise-draw
                # count; see the 3-pair/prefetch-32 regression test.)
                stop = min(offset + config.batch_size, group.size)
                batch = group[offset:stop]
                progress = visited / total_visits
                lr = max(config.min_lr, config.lr * (1.0 - progress))
                loss = model.train_batch(
                    centers[batch],
                    contexts[batch],
                    group_negatives[offset:stop],
                    lr,
                    compute_loss=want_loss,
                    step=step,
                )
                if want_loss:
                    losses.append(loss * batch.size)
                visited += batch.size
        if want_loss and losses:
            last_epoch_loss = sum(losses) / corpus.num_pairs
    return last_epoch_loss


def train_on_walk_stream(
    model: SGNSModel,
    chunks: Iterable[np.ndarray],
    window_size: int,
    num_nodes: int,
    row_of: np.ndarray,
    rng: np.random.Generator,
    config: TrainConfig | None = None,
    compute_loss: bool = False,
) -> tuple[float, PairCorpus]:
    """Fused walk→train: consume walk chunks, then train — one call.

    ``chunks`` is any iterable of walk-row matrices (typically
    :func:`repro.parallel.engine.iter_walk_chunks`); they are folded into
    a :class:`~repro.walks.corpus.StreamedCorpusBuilder`, whose
    ``finalize`` is bit-identical to materialising the full walk matrix
    and calling :func:`~repro.walks.corpus.build_pair_corpus` — so the
    subsequent :func:`train_on_corpus` consumes the exact same pair
    arrays, rng stream, and lr schedule as the two-phase path. The win is
    memory, not semantics: the ``(n_walks, walk_length)`` matrix never
    exists in this process (the pair arrays still do — the epoch
    permutation contract needs them).

    Returns ``(last epoch loss, the finalized corpus)`` so callers can
    reuse corpus statistics (noise counts, pair totals) for telemetry.
    """
    builder = StreamedCorpusBuilder(window_size=window_size, num_nodes=num_nodes)
    for chunk in chunks:
        builder.push(chunk)
    corpus = builder.finalize()
    loss = train_on_corpus(
        model, corpus, row_of, rng, config=config, compute_loss=compute_loss
    )
    return loss, corpus
