"""Skip-Gram Negative Sampling model (Eq. 7-10) in vectorised numpy.

The model holds two embedding matrices — ``W_in`` (the node embeddings Z)
and ``W_out`` (context embeddings) — following word2vec. Initialisation
matches word2vec's conventions: ``W_in ~ U(-0.5/d, 0.5/d)``, ``W_out = 0``;
this makes the very first gradient steps stable.

Incremental learning (the heart of GloDyNE Step 4): the matrices are grown
in place when new nodes appear, old rows are *reused verbatim* as the next
step's initialisation — the implicit smoothing the paper credits for the
absolute-position stability of Figure 5.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, Sequence

import numpy as np

from repro.sgns.kernels import sgns_step_numpy, sigmoid_table
from repro.sgns.vocab import Vocabulary

Node = Hashable


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(x, dtype=np.float64)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    expx = np.exp(x[~positive])
    out[~positive] = expx / (1.0 + expx)
    return out


def log_sigmoid(x: np.ndarray) -> np.ndarray:
    """log σ(x) computed without overflow."""
    return -np.logaddexp(0.0, -x)


class SGNSModel:
    """SGNS parameter container with growable vocabulary.

    Matrices are over-allocated (capacity doubling) so that per-snapshot
    growth is amortised O(1) per new node.
    """

    def __init__(
        self,
        dim: int,
        rng: np.random.Generator | None = None,
    ) -> None:
        if dim < 1:
            raise ValueError("embedding dimensionality must be >= 1")
        self.dim = int(dim)
        self.rng = rng if rng is not None else np.random.default_rng()
        self.vocab = Vocabulary()
        capacity = 16
        self._w_in = np.zeros((capacity, self.dim), dtype=np.float64)
        self._w_out = np.zeros((capacity, self.dim), dtype=np.float64)

    # ------------------------------------------------------------------
    # vocabulary / storage management
    # ------------------------------------------------------------------
    def ensure_nodes(self, nodes: Iterable[Node]) -> None:
        """Register nodes, growing and initialising new rows."""
        start = len(self.vocab)
        self.vocab.add_many(nodes)
        end = len(self.vocab)
        if end == start:
            return
        self._grow_to(end)
        # word2vec init: inputs small-uniform, outputs zero.
        self._w_in[start:end] = (
            self.rng.random((end - start, self.dim)) - 0.5
        ) / self.dim
        self._w_out[start:end] = 0.0

    def _grow_to(self, size: int) -> None:
        capacity = self._w_in.shape[0]
        if size <= capacity:
            return
        while capacity < size:
            capacity *= 2
        for name in ("_w_in", "_w_out"):
            old = getattr(self, name)
            new = np.zeros((capacity, self.dim), dtype=np.float64)
            new[: old.shape[0]] = old
            setattr(self, name, new)

    @property
    def w_in(self) -> np.ndarray:
        """Active slice of the input/embedding matrix (|vocab| x d)."""
        return self._w_in[: len(self.vocab)]

    @property
    def w_out(self) -> np.ndarray:
        """Active slice of the output/context matrix (|vocab| x d)."""
        return self._w_out[: len(self.vocab)]

    # ------------------------------------------------------------------
    # embedding access
    # ------------------------------------------------------------------
    def embedding(self, node: Node) -> np.ndarray:
        """Embedding vector Z_i (a copy) for one node."""
        return self._w_in[self.vocab.index(node)].copy()

    def embedding_matrix(self, nodes: Sequence[Node]) -> np.ndarray:
        """Z^t for an ordered node sequence — Eq. (11)'s index operator."""
        rows = self.vocab.indices(nodes)
        return self._w_in[rows].copy()

    def pull_rows_toward(
        self, rows: np.ndarray, target: np.ndarray, strength: float
    ) -> None:
        """Move embedding rows a fraction of the way toward ``target``.

        Used by temporal-smoothness baselines (DynTriad): note that fancy
        indexing on :attr:`w_in` returns a copy, so in-place pulls must go
        through this method.
        """
        if not (0.0 <= strength <= 1.0):
            raise ValueError("strength must lie in [0, 1]")
        self._w_in[rows] += strength * (target - self._w_in[rows])

    def copy(self) -> "SGNSModel":
        """Deep copy (used by the retrain/static variant baselines)."""
        clone = SGNSModel(self.dim, rng=self.rng)
        clone.vocab = self.vocab.copy()
        clone._w_in = self._w_in.copy()
        clone._w_out = self._w_out.copy()
        return clone

    # ------------------------------------------------------------------
    # vectorised SGD on a batch of (center, context) pairs
    # ------------------------------------------------------------------
    def train_batch(
        self,
        centers: np.ndarray,
        contexts: np.ndarray,
        negatives: np.ndarray,
        lr: float,
        compute_loss: bool = False,
        step: Callable | None = None,
    ) -> float:
        """One SGD step over a pair batch with pre-drawn negatives.

        Maximises Eq. (9): ``log σ(Z_i·Z_j) + Σ_q log σ(-Z_i·Z_j')`` for
        every positive pair ``(centers[b], contexts[b])`` against
        ``negatives[b, :]``. The arithmetic lives in
        :func:`repro.sgns.kernels.sgns_step_numpy` (or the compiled twin
        passed via ``step``): table sigmoid, pinned accumulation order,
        ``np.add.at``-order scatters so duplicate rows inside one batch
        accumulate correctly — and identically across backends.

        Returns the mean negative log-likelihood of the batch when
        ``compute_loss`` is set (0.0 otherwise). The loss is always
        derived in numpy from the scores the kernel returns, so it too is
        backend-invariant.
        """
        if step is None:
            step = sgns_step_numpy
        pos_score, neg_score = step(
            self._w_in,
            self._w_out,
            centers,
            contexts,
            negatives,
            lr,
            sigmoid_table(),
        )
        if compute_loss:
            loss = -log_sigmoid(pos_score).sum() - log_sigmoid(-neg_score).sum()
            return float(loss / max(1, centers.size))
        return 0.0
