"""Pure-numpy Skip-Gram Negative Sampling (the gensim substitute)."""

from repro.sgns.model import SGNSModel, log_sigmoid, sigmoid
from repro.sgns.trainer import TrainConfig, build_noise_table, train_on_corpus
from repro.sgns.vocab import Vocabulary

__all__ = [
    "SGNSModel",
    "TrainConfig",
    "Vocabulary",
    "build_noise_table",
    "log_sigmoid",
    "sigmoid",
    "train_on_corpus",
]
