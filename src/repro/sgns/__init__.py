"""Pure-numpy Skip-Gram Negative Sampling (the gensim substitute).

The gradient arithmetic lives in :mod:`repro.sgns.kernels`, which also
hosts the optional numba-compiled twins — every backend is bit-identical
(the differential suite in ``tests/test_kernel_equivalence.py`` is the
proof), so ``TrainConfig.backend`` trades wall-clock only.
"""

from repro.sgns.kernels import (
    BackendUnavailable,
    KernelBackend,
    numba_available,
    resolve_backend,
)
from repro.sgns.model import SGNSModel, log_sigmoid, sigmoid
from repro.sgns.trainer import (
    TrainConfig,
    build_noise_table,
    train_on_corpus,
    train_on_walk_stream,
)
from repro.sgns.vocab import Vocabulary

__all__ = [
    "BackendUnavailable",
    "KernelBackend",
    "SGNSModel",
    "TrainConfig",
    "Vocabulary",
    "build_noise_table",
    "log_sigmoid",
    "numba_available",
    "resolve_backend",
    "sigmoid",
    "train_on_corpus",
    "train_on_walk_stream",
]
