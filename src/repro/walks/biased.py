"""node2vec-style second-order biased random walks.

GloDyNE's Step 3 uses first-order truncated walks (DeepWalk sampling, Eq.
5), but the paper frames GloDyNE as a *framework*: any walk sampler that
captures topology around the selected nodes plugs in. This module provides
the classic node2vec (p, q) sampler [Grover & Leskovec, KDD 2016]:

* return parameter ``p`` — likelihood of revisiting the previous node
  (weight ``w/p``);
* in-out parameter ``q`` — BFS-like (q > 1, stay local) vs DFS-like
  (q < 1, push outward) exploration (weight ``w/q`` for nodes not adjacent
  to the previous node).

With ``p = q = 1`` the sampler reduces exactly to Eq. (5).

Second-order transitions depend on (previous, current) pairs, so the hot
loop is per-walker rather than fully vectorised; it is intended for
moderate walk budgets (the GloDyNE online stage touches only α·|V| start
nodes).
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRAdjacency
from repro.walks.random_walk import TRUNCATED


def simulate_biased_walks(
    csr: CSRAdjacency,
    start_indices,
    num_walks: int,
    walk_length: int,
    rng: np.random.Generator,
    p: float = 1.0,
    q: float = 1.0,
) -> np.ndarray:
    """node2vec walks; same contract as :func:`simulate_walks`.

    Parameters ``p`` and ``q`` must be positive; ``p = q = 1`` falls back
    to the fast first-order engine.
    """
    if p <= 0 or q <= 0:
        raise ValueError("p and q must be positive")
    starts = np.asarray(start_indices, dtype=np.int64)
    if walk_length < 1:
        raise ValueError("walk_length must be >= 1")
    if num_walks < 1:
        raise ValueError("num_walks must be >= 1")
    if starts.size == 0:
        return np.empty((0, walk_length), dtype=np.int64)
    if starts.min() < 0 or starts.max() >= csr.num_nodes:
        raise IndexError("start index out of range")

    if p == 1.0 and q == 1.0:
        from repro.walks.random_walk import simulate_walks

        return simulate_walks(csr, starts, num_walks, walk_length, rng)

    total = starts.size * num_walks
    walks = np.full((total, walk_length), TRUNCATED, dtype=np.int64)
    walks[:, 0] = np.repeat(starts, num_walks)
    if walk_length == 1:
        return walks

    indptr = csr.indptr
    indices = csr.indices
    weights = csr.weights

    # First step is first-order (no previous node yet).
    degrees = csr.degrees
    current = walks[:, 0]
    movable = degrees[current] > 0
    offsets = rng.integers(0, np.maximum(degrees[current[movable]], 1))
    walks[np.flatnonzero(movable), 1] = indices[
        indptr[current[movable]] + offsets
    ]

    inv_p = 1.0 / p
    inv_q = 1.0 / q
    for row in range(total):
        previous = walks[row, 0]
        current = walks[row, 1]
        if current == TRUNCATED:
            continue
        for step in range(2, walk_length):
            lo, hi = indptr[current], indptr[current + 1]
            if lo == hi:
                break
            neighbors = indices[lo:hi]
            bias = weights[lo:hi].copy()
            prev_lo, prev_hi = indptr[previous], indptr[previous + 1]
            shared = np.isin(neighbors, indices[prev_lo:prev_hi])
            # dtw=1 (back to previous): w/p; dtw=1-hop shared: w; else w/q.
            bias[~shared] *= inv_q
            bias[neighbors == previous] = (
                weights[lo:hi][neighbors == previous] * inv_p
            )
            total_bias = bias.sum()
            if total_bias <= 0:
                break
            draw = rng.random() * total_bias
            chosen = int(np.searchsorted(np.cumsum(bias), draw, side="right"))
            chosen = min(chosen, neighbors.size - 1)
            previous = current
            current = int(neighbors[chosen])
            walks[row, step] = current
    return walks
