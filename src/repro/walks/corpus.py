"""Sliding-window positive-pair corpus D^t (Step 4 preamble, Eq. 6).

A window of size ``s + 1 + s`` slides along every walk; each (context,
center) pair within the window becomes a positive sample, so pairs encode
1st..s-th order proximity of the centre node (paper Section 4.1.4).

The builder is vectorised: for every offset ``1 <= o <= s`` it pairs
``walk[:, :-o]`` with ``walk[:, o:]`` in both directions, then filters out
pairs touching truncated (``-1``) positions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.walks.random_walk import TRUNCATED


@dataclass(frozen=True)
class PairCorpus:
    """Positive skip-gram pairs plus per-node occurrence counts.

    ``centers[k]`` co-occurs with ``contexts[k]``; both are node indices in
    the snapshot's CSR ordering. ``counts`` is indexed by node index and
    counts corpus occurrences (used for the unigram^0.75 negative table).
    """

    centers: np.ndarray
    contexts: np.ndarray
    counts: np.ndarray

    @property
    def num_pairs(self) -> int:
        return int(self.centers.size)

    def shuffled(self, rng: np.random.Generator) -> "PairCorpus":
        """Return a copy with pairs in random order (SGD epoch shuffling)."""
        order = rng.permutation(self.centers.size)
        return PairCorpus(self.centers[order], self.contexts[order], self.counts)


def build_pair_corpus(
    walks: np.ndarray,
    window_size: int,
    num_nodes: int,
) -> PairCorpus:
    """Build the positive-pair corpus from an index-walk matrix.

    Parameters
    ----------
    walks:
        ``(n_walks, walk_length)`` int64 matrix from
        :func:`repro.walks.random_walk.simulate_walks`; ``-1`` marks
        truncated positions.
    window_size:
        The paper's ``s`` (default 10): pairs are formed for offsets
        1..s in both directions.
    num_nodes:
        Size of the snapshot vocabulary — bounds the ``counts`` array.
    """
    if window_size < 1:
        raise ValueError("window_size must be >= 1")
    if walks.ndim != 2:
        raise ValueError("walks must be a 2-D matrix")

    center_chunks: list[np.ndarray] = []
    context_chunks: list[np.ndarray] = []
    walk_length = walks.shape[1]
    for offset in range(1, min(window_size, walk_length - 1) + 1):
        left = walks[:, :-offset].ravel()
        right = walks[:, offset:].ravel()
        valid = (left != TRUNCATED) & (right != TRUNCATED)
        left = left[valid]
        right = right[valid]
        # Both directions: (center=left, context=right) and the mirror.
        center_chunks.append(left)
        context_chunks.append(right)
        center_chunks.append(right)
        context_chunks.append(left)

    if center_chunks:
        centers = np.concatenate(center_chunks)
        contexts = np.concatenate(context_chunks)
    else:
        centers = np.empty(0, dtype=np.int64)
        contexts = np.empty(0, dtype=np.int64)

    counts = np.zeros(num_nodes, dtype=np.int64)
    if centers.size:
        np.add.at(counts, centers, 1)
    return PairCorpus(centers=centers, contexts=contexts, counts=counts)


def corpus_from_graph_walks(
    csr,
    start_indices,
    num_walks: int,
    walk_length: int,
    window_size: int,
    rng: np.random.Generator,
) -> PairCorpus:
    """Convenience: simulate walks then build the pair corpus in one call."""
    from repro.walks.random_walk import simulate_walks

    walks = simulate_walks(csr, start_indices, num_walks, walk_length, rng)
    return build_pair_corpus(walks, window_size, csr.num_nodes)
