"""Sliding-window positive-pair corpus D^t (Step 4 preamble, Eq. 6).

A window of size ``s + 1 + s`` slides along every walk; each (context,
center) pair within the window becomes a positive sample, so pairs encode
1st..s-th order proximity of the centre node (paper Section 4.1.4).

The builder is vectorised: for every offset ``1 <= o <= s`` it pairs
``walk[:, :-o]`` with ``walk[:, o:]`` in both directions, then filters out
pairs touching truncated (``-1``) positions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.walks.random_walk import TRUNCATED


@dataclass(frozen=True)
class PairCorpus:
    """Positive skip-gram pairs plus per-node occurrence counts.

    ``centers[k]`` co-occurs with ``contexts[k]``; both are node indices in
    the snapshot's CSR ordering. ``counts`` is indexed by node index and
    counts corpus occurrences (used for the unigram^0.75 negative table).
    """

    centers: np.ndarray
    contexts: np.ndarray
    counts: np.ndarray

    @property
    def num_pairs(self) -> int:
        return int(self.centers.size)

    def shuffled(self, rng: np.random.Generator) -> "PairCorpus":
        """Return a copy with pairs in random order (SGD epoch shuffling)."""
        order = rng.permutation(self.centers.size)
        return PairCorpus(self.centers[order], self.contexts[order], self.counts)


def build_pair_corpus(
    walks: np.ndarray,
    window_size: int,
    num_nodes: int,
) -> PairCorpus:
    """Build the positive-pair corpus from an index-walk matrix.

    Parameters
    ----------
    walks:
        ``(n_walks, walk_length)`` int64 matrix from
        :func:`repro.walks.random_walk.simulate_walks`; ``-1`` marks
        truncated positions.
    window_size:
        The paper's ``s`` (default 10): pairs are formed for offsets
        1..s in both directions.
    num_nodes:
        Size of the snapshot vocabulary — bounds the ``counts`` array.
    """
    if window_size < 1:
        raise ValueError("window_size must be >= 1")
    if walks.ndim != 2:
        raise ValueError("walks must be a 2-D matrix")

    center_chunks: list[np.ndarray] = []
    context_chunks: list[np.ndarray] = []
    walk_length = walks.shape[1]
    for offset in range(1, min(window_size, walk_length - 1) + 1):
        left = walks[:, :-offset].ravel()
        right = walks[:, offset:].ravel()
        valid = (left != TRUNCATED) & (right != TRUNCATED)
        left = left[valid]
        right = right[valid]
        # Both directions: (center=left, context=right) and the mirror.
        center_chunks.append(left)
        context_chunks.append(right)
        center_chunks.append(right)
        context_chunks.append(left)

    if center_chunks:
        centers = np.concatenate(center_chunks)
        contexts = np.concatenate(context_chunks)
    else:
        centers = np.empty(0, dtype=np.int64)
        contexts = np.empty(0, dtype=np.int64)

    counts = np.zeros(num_nodes, dtype=np.int64)
    if centers.size:
        np.add.at(counts, centers, 1)
    return PairCorpus(centers=centers, contexts=contexts, counts=counts)


class StreamedCorpusBuilder:
    """Incremental twin of :func:`build_pair_corpus` for walk-chunk streams.

    Feed row-blocks of the walk matrix (in row order) via :meth:`push`;
    :meth:`finalize` returns a :class:`PairCorpus` **bit-identical** to
    ``build_pair_corpus(np.vstack(chunks), ...)`` — same pair order, same
    counts — without the stacked matrix ever existing. The identity holds
    because the batch builder's per-offset ``walks[:, :-o].ravel()`` is
    row-major, so concatenating each chunk's raveled slice in push order
    reproduces it exactly, and the truncation filter is elementwise (it
    commutes with the concatenation). Pairs are finalized offset-major
    with the same direction interleave as the batch builder.

    This is what makes the fused walk→train path
    (:func:`repro.sgns.trainer.train_on_walk_stream`) free of semantic
    drift: the trainer sees arrays the materialized path would have
    produced byte for byte.
    """

    def __init__(self, window_size: int, num_nodes: int) -> None:
        if window_size < 1:
            raise ValueError("window_size must be >= 1")
        self._window_size = int(window_size)
        self._num_nodes = int(num_nodes)
        self._walk_length: int | None = None
        self._left: list[list[np.ndarray]] = []
        self._right: list[list[np.ndarray]] = []
        self._finalized = False

    def _offsets(self) -> range:
        assert self._walk_length is not None
        return range(1, min(self._window_size, self._walk_length - 1) + 1)

    def push(self, chunk: np.ndarray) -> None:
        """Fold one walk-row block (``(rows, walk_length)`` int matrix) in."""
        if self._finalized:
            raise RuntimeError("builder already finalized")
        chunk = np.asarray(chunk)
        if chunk.ndim != 2:
            raise ValueError("walk chunks must be 2-D matrices")
        if self._walk_length is None:
            self._walk_length = int(chunk.shape[1])
            self._left = [[] for _ in self._offsets()]
            self._right = [[] for _ in self._offsets()]
        elif chunk.shape[1] != self._walk_length:
            raise ValueError(
                f"chunk walk_length {chunk.shape[1]} != {self._walk_length}"
            )
        if chunk.shape[0] == 0:
            return
        for slot, offset in enumerate(self._offsets()):
            left = chunk[:, :-offset].ravel()
            right = chunk[:, offset:].ravel()
            valid = (left != TRUNCATED) & (right != TRUNCATED)
            self._left[slot].append(left[valid])
            self._right[slot].append(right[valid])

    def finalize(self) -> PairCorpus:
        """Assemble the corpus (offset-major, both directions per offset)."""
        if self._finalized:
            raise RuntimeError("builder already finalized")
        self._finalized = True
        center_chunks: list[np.ndarray] = []
        context_chunks: list[np.ndarray] = []
        if self._walk_length is not None:
            for slot in range(len(self._left)):
                if not self._left[slot]:
                    continue
                left = np.concatenate(self._left[slot])
                right = np.concatenate(self._right[slot])
                center_chunks.append(left)
                context_chunks.append(right)
                center_chunks.append(right)
                context_chunks.append(left)
        self._left = []
        self._right = []

        if center_chunks:
            centers = np.concatenate(center_chunks)
            contexts = np.concatenate(context_chunks)
        else:
            centers = np.empty(0, dtype=np.int64)
            contexts = np.empty(0, dtype=np.int64)
        counts = np.zeros(self._num_nodes, dtype=np.int64)
        if centers.size:
            np.add.at(counts, centers, 1)
        return PairCorpus(centers=centers, contexts=contexts, counts=counts)


def corpus_from_graph_walks(
    csr,
    start_indices,
    num_walks: int,
    walk_length: int,
    window_size: int,
    rng: np.random.Generator,
) -> PairCorpus:
    """Convenience: simulate walks then build the pair corpus in one call."""
    from repro.walks.random_walk import simulate_walks

    walks = simulate_walks(csr, start_indices, num_walks, walk_length, rng)
    return build_pair_corpus(walks, window_size, csr.num_nodes)
