"""Truncated random walks (Step 3 of GloDyNE, Eq. 5).

For each selected node, ``r`` walks of length ``l`` are started from it; the
next node is drawn from the current node's neighbours proportionally to edge
weight (uniform for unweighted snapshots — the common case in the paper).

The engine steps *all* walks simultaneously with vectorised numpy gathers,
which is the main reason the pure-Python reproduction stays usable at
10^4-10^5 walk transitions per snapshot. Walks that reach a degree-0 node
are truncated; truncated tail positions hold the sentinel ``-1``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.graph.csr import CSRAdjacency

TRUNCATED = -1


def simulate_walks(
    csr: CSRAdjacency,
    start_indices: Sequence[int] | np.ndarray,
    num_walks: int,
    walk_length: int,
    rng: np.random.Generator,
    backend: str = "python",
) -> np.ndarray:
    """Run ``num_walks`` truncated walks of ``walk_length`` nodes per start.

    Parameters
    ----------
    csr:
        Frozen adjacency of the current snapshot.
    start_indices:
        Node *indices* (not ids) to start from; each contributes
        ``num_walks`` rows.
    num_walks, walk_length:
        The paper's ``r`` and ``l`` hyper-parameters (defaults 10 and 80).
    rng:
        Source of randomness; pass a seeded ``numpy.random.default_rng``
        for reproducible corpora.
    backend:
        Kernel backend for the transition arithmetic (see
        :mod:`repro.sgns.kernels`). ``"python"`` is the canonical
        vectorised path. On unweighted graphs every backend consumes the
        same rng draws and resolves the same gathers, so walks are
        bit-identical across backends. On *weighted* graphs non-python
        backends switch from the global-cumsum inverse-CDF stepper to the
        per-row alias-table kernel: statistically identical (both sample
        Eq. 5 exactly) but a different draw stream (alias consumes an
        integer + a coin per step vs one uniform), so weighted walks are
        reproducible per backend, not across them.

    Returns
    -------
    ``(len(start_indices) * num_walks, walk_length)`` int64 array of node
    indices, ``-1`` marking truncated positions.
    """
    starts = np.asarray(start_indices, dtype=np.int64)
    if walk_length < 1:
        raise ValueError("walk_length must be >= 1")
    if num_walks < 1:
        raise ValueError("num_walks must be >= 1")
    if starts.size == 0:
        return np.empty((0, walk_length), dtype=np.int64)
    if starts.min() < 0 or starts.max() >= csr.num_nodes:
        raise IndexError("start index out of range")

    total = starts.size * num_walks
    walks = np.full((total, walk_length), TRUNCATED, dtype=np.int64)
    walks[:, 0] = np.repeat(starts, num_walks)

    if backend == "python":
        if csr.is_uniform:
            _step_uniform(csr, walks, rng)
        else:
            _step_weighted(csr, walks, rng)
    else:
        # Lazy import: repro.sgns imports repro.walks, so a module-level
        # import here would be circular. Resolution is per-process and
        # per-call, matching the trainer's lazy-backend contract.
        from repro.sgns.kernels import resolve_backend

        kernel = resolve_backend(backend)
        if csr.is_uniform:
            _step_uniform(csr, walks, rng, resolve=kernel.uniform_resolve)
        else:
            _step_weighted_alias(csr, walks, rng, kernel.alias_resolve)
    return walks


def _step_uniform(
    csr: CSRAdjacency,
    walks: np.ndarray,
    rng: np.random.Generator,
    resolve=None,
) -> None:
    """Vectorised stepping when every edge weight is identical.

    ``resolve`` swaps the gather arithmetic for a kernel backend's
    transition resolver; the rng draws are identical either way, so the
    produced walks are too.
    """
    degrees = csr.degrees
    indptr = csr.indptr
    indices = csr.indices
    walk_length = walks.shape[1]

    alive = np.arange(walks.shape[0])
    for step in range(1, walk_length):
        current = walks[alive, step - 1]
        deg = degrees[current]
        movable = deg > 0
        alive = alive[movable]
        if alive.size == 0:
            return
        current = current[movable]
        offsets = rng.integers(0, deg[movable])
        if resolve is None:
            walks[alive, step] = indices[indptr[current] + offsets]
        else:
            walks[alive, step] = resolve(indptr, indices, current, offsets)


def _step_weighted_alias(
    csr: CSRAdjacency,
    walks: np.ndarray,
    rng: np.random.Generator,
    resolve,
) -> None:
    """Weighted stepping via per-row Walker/Vose alias tables (Eq. 5).

    Each transition consumes one uniform slot draw plus one coin —
    exactly :meth:`repro.walks.alias.AliasTable.sample`'s decision rule,
    applied through the flattened tables from
    :meth:`repro.graph.csr.CSRAdjacency.row_alias_tables` so ``resolve``
    (a kernel backend's alias resolver) can process every walker without
    touching per-row Python objects. O(1) per transition vs the
    searchsorted stepper's O(log nnz).
    """
    degrees = csr.degrees
    indptr = csr.indptr
    indices = csr.indices
    probability, alias = csr.row_alias_tables()
    walk_length = walks.shape[1]

    alive = np.arange(walks.shape[0])
    for step in range(1, walk_length):
        current = walks[alive, step - 1]
        deg = degrees[current]
        movable = deg > 0
        alive = alive[movable]
        if alive.size == 0:
            return
        current = current[movable]
        idx = rng.integers(0, deg[movable])
        coin = rng.random(current.size)
        walks[alive, step] = resolve(
            indptr, indices, probability, alias, current, idx, coin
        )


def _step_weighted(csr: CSRAdjacency, walks: np.ndarray, rng: np.random.Generator) -> None:
    """Inverse-CDF stepping via a single global binary search (Eq. 5).

    The zero-prefixed global cumsum of CSR weights is non-decreasing over
    the whole array, so a walker at node ``i`` drawing ``r ∈ [0, 1)`` maps
    to the target mass ``gcum[indptr[i]] + r·row_total`` and *one*
    ``searchsorted`` over the global array resolves every walker at once —
    no per-walker Python loop, making weighted stepping throughput
    comparable to the uniform path.
    """
    indptr = csr.indptr
    indices = csr.indices
    gcum = csr.global_cumulative_weights()
    degrees = csr.degrees
    walk_length = walks.shape[1]

    alive = np.arange(walks.shape[0])
    for step in range(1, walk_length):
        current = walks[alive, step - 1]
        deg = degrees[current]
        movable = deg > 0
        alive = alive[movable]
        if alive.size == 0:
            return
        current = current[movable]
        starts = indptr[current]
        ends = indptr[current + 1]
        base = gcum[starts]
        totals = gcum[ends] - base
        draws = rng.random(current.size) * totals
        chosen = np.searchsorted(gcum, base + draws, side="right") - 1
        # Guard against float round-off escaping the walker's own row.
        np.clip(chosen, starts, ends - 1, out=chosen)
        walks[alive, step] = indices[chosen]


def _step_weighted_loop(
    csr: CSRAdjacency, walks: np.ndarray, rng: np.random.Generator
) -> None:
    """Reference per-walker inverse-CDF stepping (pre-vectorisation).

    Kept as the equivalence/benchmark baseline for :func:`_step_weighted`:
    row-local cumulative weights, one Python ``searchsorted`` per walker
    per step. Semantically identical to the vectorised path up to float
    round-off at bin boundaries.
    """
    indptr = csr.indptr
    indices = csr.indices
    cumulative = csr.cumulative_weights()
    degrees = csr.degrees
    walk_length = walks.shape[1]

    alive = np.arange(walks.shape[0])
    for step in range(1, walk_length):
        current = walks[alive, step - 1]
        deg = degrees[current]
        movable = deg > 0
        alive = alive[movable]
        if alive.size == 0:
            return
        current = current[movable]
        starts = indptr[current]
        ends = indptr[current + 1]
        totals = cumulative[ends - 1]
        draws = rng.random(current.size) * totals
        chosen = np.empty(current.size, dtype=np.int64)
        for i in range(current.size):
            s, e = starts[i], ends[i]
            chosen[i] = s + np.searchsorted(cumulative[s:e], draws[i], side="right")
        # Guard against float round-off landing one past the end.
        np.minimum(chosen, ends - 1, out=chosen)
        walks[alive, step] = indices[chosen]


def walk_node_ids(csr: CSRAdjacency, walks: np.ndarray) -> list[list]:
    """Translate an index-walk matrix back to original node ids.

    Truncated positions are dropped, so rows may have different lengths.
    Mostly useful for debugging and round-trip tests.
    """
    result = []
    for row in walks:
        result.append([csr.nodes[idx] for idx in row if idx != TRUNCATED])
    return result
