"""Truncated random walks (Step 3 of GloDyNE, Eq. 5).

For each selected node, ``r`` walks of length ``l`` are started from it; the
next node is drawn from the current node's neighbours proportionally to edge
weight (uniform for unweighted snapshots — the common case in the paper).

The engine steps *all* walks simultaneously with vectorised numpy gathers,
which is the main reason the pure-Python reproduction stays usable at
10^4-10^5 walk transitions per snapshot. Walks that reach a degree-0 node
are truncated; truncated tail positions hold the sentinel ``-1``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.graph.csr import CSRAdjacency

TRUNCATED = -1


def simulate_walks(
    csr: CSRAdjacency,
    start_indices: Sequence[int] | np.ndarray,
    num_walks: int,
    walk_length: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Run ``num_walks`` truncated walks of ``walk_length`` nodes per start.

    Parameters
    ----------
    csr:
        Frozen adjacency of the current snapshot.
    start_indices:
        Node *indices* (not ids) to start from; each contributes
        ``num_walks`` rows.
    num_walks, walk_length:
        The paper's ``r`` and ``l`` hyper-parameters (defaults 10 and 80).
    rng:
        Source of randomness; pass a seeded ``numpy.random.default_rng``
        for reproducible corpora.

    Returns
    -------
    ``(len(start_indices) * num_walks, walk_length)`` int64 array of node
    indices, ``-1`` marking truncated positions.
    """
    starts = np.asarray(start_indices, dtype=np.int64)
    if walk_length < 1:
        raise ValueError("walk_length must be >= 1")
    if num_walks < 1:
        raise ValueError("num_walks must be >= 1")
    if starts.size == 0:
        return np.empty((0, walk_length), dtype=np.int64)
    if starts.min() < 0 or starts.max() >= csr.num_nodes:
        raise IndexError("start index out of range")

    total = starts.size * num_walks
    walks = np.full((total, walk_length), TRUNCATED, dtype=np.int64)
    walks[:, 0] = np.repeat(starts, num_walks)

    if csr.is_uniform:
        _step_uniform(csr, walks, rng)
    else:
        _step_weighted(csr, walks, rng)
    return walks


def _step_uniform(csr: CSRAdjacency, walks: np.ndarray, rng: np.random.Generator) -> None:
    """Vectorised stepping when every edge weight is identical."""
    degrees = csr.degrees
    indptr = csr.indptr
    indices = csr.indices
    walk_length = walks.shape[1]

    alive = np.arange(walks.shape[0])
    for step in range(1, walk_length):
        current = walks[alive, step - 1]
        deg = degrees[current]
        movable = deg > 0
        alive = alive[movable]
        if alive.size == 0:
            return
        current = current[movable]
        offsets = rng.integers(0, deg[movable])
        walks[alive, step] = indices[indptr[current] + offsets]


def _step_weighted(csr: CSRAdjacency, walks: np.ndarray, rng: np.random.Generator) -> None:
    """Inverse-CDF stepping via a single global binary search (Eq. 5).

    The zero-prefixed global cumsum of CSR weights is non-decreasing over
    the whole array, so a walker at node ``i`` drawing ``r ∈ [0, 1)`` maps
    to the target mass ``gcum[indptr[i]] + r·row_total`` and *one*
    ``searchsorted`` over the global array resolves every walker at once —
    no per-walker Python loop, making weighted stepping throughput
    comparable to the uniform path.
    """
    indptr = csr.indptr
    indices = csr.indices
    gcum = csr.global_cumulative_weights()
    degrees = csr.degrees
    walk_length = walks.shape[1]

    alive = np.arange(walks.shape[0])
    for step in range(1, walk_length):
        current = walks[alive, step - 1]
        deg = degrees[current]
        movable = deg > 0
        alive = alive[movable]
        if alive.size == 0:
            return
        current = current[movable]
        starts = indptr[current]
        ends = indptr[current + 1]
        base = gcum[starts]
        totals = gcum[ends] - base
        draws = rng.random(current.size) * totals
        chosen = np.searchsorted(gcum, base + draws, side="right") - 1
        # Guard against float round-off escaping the walker's own row.
        np.clip(chosen, starts, ends - 1, out=chosen)
        walks[alive, step] = indices[chosen]


def _step_weighted_loop(
    csr: CSRAdjacency, walks: np.ndarray, rng: np.random.Generator
) -> None:
    """Reference per-walker inverse-CDF stepping (pre-vectorisation).

    Kept as the equivalence/benchmark baseline for :func:`_step_weighted`:
    row-local cumulative weights, one Python ``searchsorted`` per walker
    per step. Semantically identical to the vectorised path up to float
    round-off at bin boundaries.
    """
    indptr = csr.indptr
    indices = csr.indices
    cumulative = csr.cumulative_weights()
    degrees = csr.degrees
    walk_length = walks.shape[1]

    alive = np.arange(walks.shape[0])
    for step in range(1, walk_length):
        current = walks[alive, step - 1]
        deg = degrees[current]
        movable = deg > 0
        alive = alive[movable]
        if alive.size == 0:
            return
        current = current[movable]
        starts = indptr[current]
        ends = indptr[current + 1]
        totals = cumulative[ends - 1]
        draws = rng.random(current.size) * totals
        chosen = np.empty(current.size, dtype=np.int64)
        for i in range(current.size):
            s, e = starts[i], ends[i]
            chosen[i] = s + np.searchsorted(cumulative[s:e], draws[i], side="right")
        # Guard against float round-off landing one past the end.
        np.minimum(chosen, ends - 1, out=chosen)
        walks[alive, step] = indices[chosen]


def walk_node_ids(csr: CSRAdjacency, walks: np.ndarray) -> list[list]:
    """Translate an index-walk matrix back to original node ids.

    Truncated positions are dropped, so rows may have different lengths.
    Mostly useful for debugging and round-trip tests.
    """
    result = []
    for row in walks:
        result.append([csr.nodes[idx] for idx in row if idx != TRUNCATED])
    return result
