"""Random-walk engine: alias sampling, truncated walks, pair corpus."""

from repro.walks.alias import AliasTable
from repro.walks.biased import simulate_biased_walks
from repro.walks.corpus import (
    PairCorpus,
    StreamedCorpusBuilder,
    build_pair_corpus,
    corpus_from_graph_walks,
)
from repro.walks.random_walk import TRUNCATED, simulate_walks, walk_node_ids

__all__ = [
    "AliasTable",
    "PairCorpus",
    "StreamedCorpusBuilder",
    "TRUNCATED",
    "build_pair_corpus",
    "corpus_from_graph_walks",
    "simulate_biased_walks",
    "simulate_walks",
    "walk_node_ids",
]
