"""Alias method for O(1) sampling from a discrete distribution.

Used for the SGNS negative-sampling table (unigram^0.75 distribution, which
is static within a training round) and available to the walk engine for
weighted graphs. Construction is O(n); each draw is O(1).

Reference: Walker (1977); the two-array formulation follows Vose (1991).
"""

from __future__ import annotations

import numpy as np


class AliasTable:
    """Pre-processed discrete distribution supporting O(1) draws."""

    __slots__ = ("probability", "alias", "n")

    def __init__(self, weights: np.ndarray) -> None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 1 or weights.size == 0:
            raise ValueError("weights must be a non-empty 1-D array")
        if np.any(weights < 0) or not np.all(np.isfinite(weights)):
            raise ValueError("weights must be finite and non-negative")
        total = weights.sum()
        if total <= 0:
            raise ValueError("weights must sum to a positive value")

        n = weights.size
        scaled = weights * (n / total)
        probability = np.ones(n, dtype=np.float64)
        alias = np.arange(n, dtype=np.int64)

        small = [i for i in range(n) if scaled[i] < 1.0]
        large = [i for i in range(n) if scaled[i] >= 1.0]
        while small and large:
            donor = small.pop()
            receiver = large.pop()
            probability[donor] = scaled[donor]
            alias[donor] = receiver
            scaled[receiver] = (scaled[receiver] + scaled[donor]) - 1.0
            if scaled[receiver] < 1.0:
                small.append(receiver)
            else:
                large.append(receiver)
        # Remaining entries are 1.0 within float error.
        for i in small + large:
            probability[i] = 1.0

        self.probability = probability
        self.alias = alias
        self.n = n

    def sample(self, rng: np.random.Generator, size: int | tuple[int, ...] = 1) -> np.ndarray:
        """Draw ``size`` independent indices from the distribution."""
        idx = rng.integers(0, self.n, size=size)
        coin = rng.random(size=size)
        take_alias = coin >= self.probability[idx]
        result = np.where(take_alias, self.alias[idx], idx)
        return result

    def sample_one(self, rng: np.random.Generator) -> int:
        """Draw a single index (scalar convenience wrapper)."""
        return int(self.sample(rng, size=1)[0])
