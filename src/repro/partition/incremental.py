"""Incremental maintenance of Step 1's (K, ε)-balanced partition.

GloDyNE's online loop re-ran the full multilevel partitioner
(:func:`repro.partition.metis.partition_graph`) at every snapshot —
O(E) coarsening, initial partitioning, and refinement in per-vertex
Python loops — even when the streaming layer already knows the delta is
a handful of edges. :class:`IncrementalPartitioner` keeps the partition
*alive* across snapshots instead:

* graph deltas are applied to the stored assignment: new nodes join
  their best-connected adjacent cell, vanished nodes drop out, cells
  emptied by churn are compacted away;
* K = α·|V^t| drift is absorbed structurally — the largest cells are
  split by an in-cell BFS halving, the smallest merged into their
  best-connected neighbour cell;
* rebalancing plus boundary Kernighan-Lin refinement (the same moves
  the full partitioner runs over every vertex at every level) are
  restricted to *dirty* vertices: the touched set handed in by the
  caller, new nodes, drift casualties, and their one-hop neighbourhoods;
* a quality gate compares the maintained edge cut against the last full
  rebuild and checks the Eq. (2) ceiling; degradation beyond the slack
  (or an unrepairable imbalance) falls back to a full
  ``partition_graph`` rebuild.

The per-step cost is O(E) *vectorised* numpy (one level-graph build and
one edge-cut reduction) plus O(|dirty| · degree) Python — versus the
full partitioner's O(V · degree) Python across every coarsening level.
``benchmarks/bench_incremental_partition.py`` measures the gap.

Determinism contract
--------------------
Incremental steps consume no randomness at all, so a partitioner's
state is a pure function of its construction seed and the sequence of
``(csr, k, touched)`` calls. The ``i``-th full rebuild (0-based,
counting the initial one) of a partitioner constructed — or reset —
with ``seed`` draws its RNG from :meth:`IncrementalPartitioner.rebuild_rng`
``(seed, i)`` and is bit-identical to calling
``partition_graph(..., rng=rebuild_rng(seed, i), csr=csr)`` directly.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Iterable

import numpy as np

from repro.graph.csr import CSRAdjacency
from repro.graph.static import Graph
from repro.partition.level import LevelGraph, edge_cut, level_graph_from_csr
from repro.partition.metis import PartitionResult, _package, partition_graph
from repro.partition.refine import (
    balance_ceiling,
    rebalance_assignment,
    refine_assignment,
)

Node = Hashable

UNASSIGNED = -1


class IncrementalPartitioner:
    """Owns the Step 1 partition across snapshots, applying deltas in place.

    Parameters
    ----------
    eps:
        Eq. (2) balance tolerance, as in :func:`partition_graph`.
    seed:
        Seeds the rebuild RNG stream (see the module's determinism
        contract). Incremental steps themselves are deterministic.
    cut_slack:
        Relative edge-cut degradation tolerated before the quality gate
        forces a full rebuild: the maintained cut ratio (cut / total
        edge weight) may grow to ``baseline * (1 + cut_slack) +
        cut_floor`` where ``baseline`` was measured at the last rebuild.
    cut_floor:
        Additive slack keeping the gate usable when the baseline cut is
        (near) zero — e.g. disjoint cliques partition with cut 0, and a
        single new cross edge must not force a rebuild.
    refinement_passes:
        KL pass budget per call, forwarded to the full rebuild too.
    """

    def __init__(
        self,
        eps: float = 0.10,
        seed: int | None = None,
        cut_slack: float = 0.5,
        cut_floor: float = 0.02,
        refinement_passes: int = 4,
        coarsen_factor: int = 4,
    ) -> None:
        if eps < 0:
            raise ValueError("eps must be non-negative")
        if cut_slack < 0 or cut_floor < 0:
            raise ValueError("cut_slack and cut_floor must be non-negative")
        self.eps = eps
        self.cut_slack = cut_slack
        self.cut_floor = cut_floor
        self.refinement_passes = refinement_passes
        self.coarsen_factor = coarsen_factor
        self._seed = seed
        self.reset()

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Forget the maintained partition; the next call fully rebuilds.

        Also restarts the rebuild RNG stream, so a reset partitioner
        reproduces a freshly constructed one exactly.
        """
        self._seed_seq = np.random.SeedSequence(self._seed)
        self._assignment: dict[Node, int] | None = None
        self._k = 0
        self._baseline_ratio: float | None = None
        self.num_rebuilds = 0
        self.num_incremental = 0
        self.last_reason: str | None = None

    @staticmethod
    def rebuild_rng(seed: int | None, index: int) -> np.random.Generator:
        """RNG driving the ``index``-th (0-based) full rebuild under ``seed``.

        The determinism hook tests pin: a partitioner's fallback rebuild
        is bit-identical to ``partition_graph(..., rng=rebuild_rng(seed,
        index), csr=csr)``. Only meaningful for a non-None seed.
        """
        return np.random.default_rng(
            np.random.SeedSequence(seed).spawn(index + 1)[index]
        )

    # ------------------------------------------------------------------
    def partition(
        self,
        graph: Graph | None,
        k: int,
        *,
        csr: CSRAdjacency | None = None,
        touched: Iterable[Node] | None = None,
    ) -> PartitionResult:
        """Return the maintained (K, ε) partition of the current snapshot.

        Parameters
        ----------
        graph, csr:
            The snapshot, as a :class:`Graph` and/or its frozen CSR.
            Pass ``csr`` whenever one already exists for the step — the
            online loop shares a single CSR between this partitioner and
            the walk engine.
        k:
            Requested cell count (clamped to ``[1, |V|]`` like
            :func:`partition_graph`).
        touched:
            Node ids whose incident topology may have changed since the
            previous call — the streaming layer's accumulated
            touched-node set, or ``set(changes)`` in snapshot mode. Ids
            no longer present are ignored. ``None`` means "unknown" and
            refines every vertex (correct, but slower).
        """
        if csr is None:
            if graph is None:
                raise ValueError("pass a graph, a prebuilt csr, or both")
            csr = CSRAdjacency.from_graph(graph)
        n = csr.num_nodes
        if n == 0:
            raise ValueError("cannot partition an empty graph")
        k = max(1, min(int(k), n))

        if self._assignment is None:
            return self._full_rebuild(csr, k, reason="initial")

        if k == 1 or k == n:
            # Trivial exact partitions — adopt directly (no randomness),
            # mirroring partition_graph's shortcuts.
            assignment = (
                np.zeros(n, dtype=np.int64)
                if k == 1
                else np.arange(n, dtype=np.int64)
            )
            result = _package(csr, assignment, k, self.eps)
            self._commit(csr, assignment, k, result.edge_cut)
            return result

        level = level_graph_from_csr(csr)
        assignment = np.fromiter(
            (self._assignment.get(node, UNASSIGNED) for node in csr.nodes),
            dtype=np.int64,
            count=n,
        )
        if not (assignment >= 0).any():
            return self._full_rebuild(csr, k, reason="disjoint")

        dirty: set[int] = set(np.flatnonzero(assignment < 0).tolist())
        if touched is None:
            dirty.update(range(n))
        else:
            index_of = csr.index_of
            for node in touched:
                idx = index_of.get(node)
                if idx is not None:
                    dirty.add(idx)

        assignment, counts = _compact_cells(assignment)
        self._attach_new_nodes(level, assignment, counts, n, k)
        self._drift_to_k(level, assignment, counts, k, dirty)

        assignment = rebalance_assignment(level, assignment, k, self.eps)
        candidates = _expand_candidates(level, dirty)
        assignment = refine_assignment(
            level, assignment, k, self.eps,
            max_passes=self.refinement_passes, candidates=candidates,
        )

        counts = np.bincount(assignment, minlength=k)
        ceiling = balance_ceiling(n, k, self.eps)
        if counts.min() == 0:
            return self._full_rebuild(csr, k, reason="empty-cell")
        if counts.max() > np.ceil(ceiling):
            return self._full_rebuild(csr, k, reason="imbalance")
        cut = edge_cut(level, assignment)
        ratio = self._ratio(cut, float(level.eweights.sum()) / 2.0)
        if (
            self._baseline_ratio is not None
            and ratio
            > self._baseline_ratio * (1.0 + self.cut_slack) + self.cut_floor
        ):
            return self._full_rebuild(csr, k, reason="cut-degraded")

        self._commit(csr, assignment, k, cut)
        return _package(csr, assignment, k, self.eps, cut=cut)

    # ------------------------------------------------------------------
    # delta application
    # ------------------------------------------------------------------
    def _attach_new_nodes(
        self,
        level: LevelGraph,
        assignment: np.ndarray,
        counts: list[int],
        n: int,
        k: int,
    ) -> None:
        """Assign every ``UNASSIGNED`` vertex to its best adjacent cell.

        Processed in index order so that a cluster of new nodes attaches
        deterministically (later ones see earlier ones' cells). Falls
        back to the globally lightest cell for isolated newcomers or
        when every adjacent cell sits at the Eq. (2) ceiling.
        """
        ceiling = balance_ceiling(n, k, self.eps)
        for u in np.flatnonzero(assignment < 0):
            u = int(u)
            link: dict[int, float] = {}
            for v, w in zip(level.neighbors(u), level.neighbor_eweights(u)):
                cell = int(assignment[v])
                if cell >= 0:
                    link[cell] = link.get(cell, 0.0) + float(w)
            best = UNASSIGNED
            best_link = 0.0
            for cell in sorted(link):
                if counts[cell] + 1 > ceiling:
                    continue
                if link[cell] > best_link:
                    best_link = link[cell]
                    best = cell
            if best == UNASSIGNED:
                best = min(range(len(counts)), key=lambda c: (counts[c], c))
            assignment[u] = best
            counts[best] += 1

    def _drift_to_k(
        self,
        level: LevelGraph,
        assignment: np.ndarray,
        counts: list[int],
        k: int,
        dirty: set[int],
    ) -> None:
        """Split / merge cells in place until exactly ``k`` remain."""
        while len(counts) > k:
            self._merge_smallest(level, assignment, counts, dirty)
        while len(counts) < k:
            self._split_largest(level, assignment, counts, dirty)

    def _merge_smallest(
        self,
        level: LevelGraph,
        assignment: np.ndarray,
        counts: list[int],
        dirty: set[int],
    ) -> None:
        """Fold the smallest cell into its best-connected neighbour cell."""
        src = min(range(len(counts)), key=lambda c: (counts[c], c))
        members = np.flatnonzero(assignment == src)
        link: dict[int, float] = {}
        for u in members:
            for v, w in zip(
                level.neighbors(int(u)), level.neighbor_eweights(int(u))
            ):
                cell = int(assignment[v])
                if cell != src:
                    link[cell] = link.get(cell, 0.0) + float(w)
        if link:
            target = min(link, key=lambda c: (-link[c], c))
        else:  # isolated component: merge into the lightest other cell
            target = min(
                (c for c in range(len(counts)) if c != src),
                key=lambda c: (counts[c], c),
            )
        assignment[members] = target
        counts[target] += counts[src]
        dirty.update(int(u) for u in members)
        # Free slot `src` by relabelling the last cell into it.
        last = len(counts) - 1
        if src != last:
            assignment[assignment == last] = src
            counts[src] = counts[last]
        counts.pop()

    def _split_largest(
        self,
        level: LevelGraph,
        assignment: np.ndarray,
        counts: list[int],
        dirty: set[int],
    ) -> None:
        """Carve a connected half out of the largest cell into a new cell."""
        src = min(
            (c for c in range(len(counts)) if counts[c] >= 2),
            key=lambda c: (-counts[c], c),
        )
        members = np.flatnonzero(assignment == src)
        member_set = {int(u) for u in members}
        target_size = len(member_set) // 2
        new_cell = len(counts)
        collected: list[int] = []
        visited: set[int] = set()
        queue: deque[int] = deque([int(members.min())])
        while len(collected) < target_size:
            if not queue:
                remaining = sorted(member_set - visited)
                if not remaining:
                    break
                queue.append(remaining[0])  # disconnected inside the cell
            u = queue.popleft()
            if u in visited:
                continue
            visited.add(u)
            collected.append(u)
            for v in level.neighbors(u):
                v = int(v)
                if v in member_set and v not in visited:
                    queue.append(v)
        assignment[collected] = new_cell
        counts[src] -= len(collected)
        counts.append(len(collected))
        dirty.update(member_set)

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    @staticmethod
    def _ratio(cut: float, total: float) -> float:
        """Normalised cut: fraction of total (loop-free) edge weight cut."""
        return cut / total if total > 0 else 0.0

    def _commit(
        self, csr: CSRAdjacency, assignment: np.ndarray, k: int, cut: float
    ) -> None:
        """Store the incremental result as the new maintained state."""
        self._assignment = {
            node: int(cell) for node, cell in zip(csr.nodes, assignment)
        }
        self._k = k
        self.num_incremental += 1
        self.last_reason = "incremental"

    def _full_rebuild(
        self, csr: CSRAdjacency, k: int, reason: str
    ) -> PartitionResult:
        """Fallback: fresh multilevel partition, new quality baseline."""
        rng = np.random.default_rng(self._seed_seq.spawn(1)[0])
        result = partition_graph(
            None,
            k,
            eps=self.eps,
            rng=rng,
            coarsen_factor=self.coarsen_factor,
            refinement_passes=self.refinement_passes,
            csr=csr,
        )
        self.num_rebuilds += 1
        self.last_reason = reason
        self._assignment = dict(result.assignment)
        self._k = result.k
        # Loop-free total weight straight from the CSR — no need to pay
        # a second level-graph construction just for the baseline.
        rows = np.repeat(np.arange(csr.num_nodes), np.diff(csr.indptr))
        total = float(csr.weights[rows != csr.indices].sum()) / 2.0
        self._baseline_ratio = self._ratio(result.edge_cut, total)
        return result

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"IncrementalPartitioner(k={self._k}, eps={self.eps}, "
            f"rebuilds={self.num_rebuilds}, incremental={self.num_incremental})"
        )


def _compact_cells(assignment: np.ndarray) -> tuple[np.ndarray, list[int]]:
    """Relabel surviving cells to ``0..m-1`` (order-preserving), drop empties.

    Node churn can empty a cell entirely (every member removed from the
    snapshot); ``validate_partition`` forbids empty cells, so compaction
    runs before the K-drift logic restores the requested cell count.
    ``UNASSIGNED`` entries pass through untouched. Returns the relabelled
    assignment and the per-cell member counts.
    """
    known = assignment >= 0
    used = np.unique(assignment[known])
    remap = np.full(int(used.max()) + 1 if used.size else 0, UNASSIGNED,
                    dtype=np.int64)
    remap[used] = np.arange(used.size)
    assignment[known] = remap[assignment[known]]
    counts = np.bincount(assignment[known], minlength=used.size)
    return assignment, [int(c) for c in counts]


def _expand_candidates(
    level: LevelGraph, dirty: set[int]
) -> np.ndarray | None:
    """Dirty vertices plus their one-hop neighbourhood, sorted.

    Returns ``None`` when every vertex is dirty anyway — the full sweep
    inside :func:`refine_assignment` is cheaper than materialising it.
    """
    if not dirty:
        return np.empty(0, dtype=np.int64)
    if len(dirty) >= level.num_nodes:
        return None
    seeds = np.fromiter(sorted(dirty), dtype=np.int64, count=len(dirty))
    chunks = [seeds]
    for u in seeds:
        chunks.append(level.neighbors(int(u)))
    return np.unique(np.concatenate(chunks))
