"""Initial K-way partition on the coarsest graph (greedy region growing).

METIS applies a K-way partition on the smallest abstract network; we use
greedy graph growing: grow one cell at a time by BFS from a fresh seed,
stopping when the cell reaches its weight budget, preferring frontier
vertices with strong connectivity into the growing cell (a GGGP-style
gain). Disconnected graphs are handled naturally — when the frontier
empties, a new seed is drawn from the unassigned set.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.partition.level import LevelGraph

UNASSIGNED = -1


def grow_initial_partition(
    level: LevelGraph,
    k: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Assign every vertex of ``level`` to one of ``k`` cells.

    Guarantees: every vertex gets a cell in ``[0, k)``; every cell is
    non-empty provided ``level.num_nodes >= k``. Balance is targeted at
    ``total_weight / k`` per cell and later enforced by refinement.
    """
    n = level.num_nodes
    if k < 1:
        raise ValueError("k must be >= 1")
    if n < k:
        raise ValueError(f"cannot cut {n} vertices into {k} non-empty cells")

    assignment = np.full(n, UNASSIGNED, dtype=np.int64)
    total_weight = level.total_vweight
    # Budget per cell; remaining cells absorb rounding. Cells stop growing
    # at their budget, and the final cell takes everything left over.
    budget = total_weight / k

    unassigned = set(range(n))
    visit_order = list(rng.permutation(n))
    order_cursor = 0

    for cell in range(k):
        if not unassigned:
            break
        cells_left = k - cell
        if len(unassigned) <= cells_left:
            # Exactly enough vertices left: one per remaining cell, seeded
            # deterministically from the unassigned pool.
            for extra_cell, vertex in zip(
                range(cell, k), sorted(unassigned)
            ):
                assignment[vertex] = extra_cell
            unassigned.clear()
            break

        # Fresh seed: next unassigned vertex in the random visit order.
        while assignment[visit_order[order_cursor]] != UNASSIGNED:
            order_cursor += 1
        seed = visit_order[order_cursor]

        cell_weight = 0
        # Max-heap on gain (edge weight into the cell); heapq is a min-heap
        # so gains are negated. Entries may be stale; staleness is checked
        # on pop via the assignment array.
        frontier: list[tuple[float, int]] = [(0.0, seed)]
        is_last_cell = cell == k - 1
        while frontier or is_last_cell:
            if not frontier:
                if not unassigned:
                    break
                # Disconnected remainder: re-seed within the same cell.
                frontier.append((0.0, min(unassigned)))
            _, vertex = heapq.heappop(frontier)
            if assignment[vertex] != UNASSIGNED:
                continue
            # Keep at least one vertex per remaining cell.
            if len(unassigned) <= (k - cell - 1):
                break
            assignment[vertex] = cell
            unassigned.discard(vertex)
            cell_weight += int(level.vweights[vertex])
            if not is_last_cell and cell_weight >= budget:
                break
            for nbr, w in zip(
                level.neighbors(vertex), level.neighbor_eweights(vertex)
            ):
                if assignment[nbr] == UNASSIGNED:
                    heapq.heappush(frontier, (-float(w), int(nbr)))

    # Any stragglers (possible when budgets fill early): round-robin them
    # into the lightest cells.
    if unassigned:
        weights = np.zeros(k, dtype=np.int64)
        np.add.at(
            weights,
            assignment[assignment != UNASSIGNED],
            level.vweights[assignment != UNASSIGNED],
        )
        for vertex in sorted(unassigned):
            lightest = int(np.argmin(weights))
            assignment[vertex] = lightest
            weights[lightest] += int(level.vweights[vertex])

    # Non-emptiness repair: steal a vertex from the heaviest cell for any
    # empty cell (can only happen on adversarial weight distributions).
    counts = np.bincount(assignment, minlength=k)
    for cell in np.flatnonzero(counts == 0):
        donor = int(np.argmax(counts))
        movable = np.flatnonzero(assignment == donor)
        assignment[movable[0]] = cell
        counts[donor] -= 1
        counts[cell] += 1
    return assignment
