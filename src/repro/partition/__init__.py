"""METIS-substitute multilevel (K, ε)-balanced k-way graph partitioner."""

from repro.partition.metis import (
    PartitionResult,
    partition_graph,
    validate_partition,
)

__all__ = ["PartitionResult", "partition_graph", "validate_partition"]
