"""METIS-substitute multilevel (K, ε)-balanced k-way graph partitioner."""

from repro.partition.incremental import IncrementalPartitioner
from repro.partition.metis import (
    PartitionResult,
    partition_graph,
    validate_partition,
)

__all__ = [
    "IncrementalPartitioner",
    "PartitionResult",
    "partition_graph",
    "validate_partition",
]
