"""Coarse-graph construction (the coarsening phase of the multilevel scheme).

Given a fine graph and a fine->coarse vertex map, builds the coarse graph:
vertex weights add up, parallel edges merge by summing weights, and
intra-coarse-vertex edges disappear (they can never be cut again).
"""

from __future__ import annotations

import numpy as np

from repro.partition.level import LevelGraph


def build_coarse_graph(
    fine: LevelGraph,
    coarse_of: np.ndarray,
    num_coarse: int,
) -> LevelGraph:
    """Contract ``fine`` according to ``coarse_of`` (length = fine vertices)."""
    # Vertex weights: scatter-add of fine weights.
    vweights = np.zeros(num_coarse, dtype=np.int64)
    np.add.at(vweights, coarse_of, fine.vweights)

    # Edge list in coarse ids, dropping collapsed self-loops.
    rows = np.repeat(
        np.arange(fine.num_nodes, dtype=np.int64), np.diff(fine.indptr)
    )
    coarse_rows = coarse_of[rows]
    coarse_cols = coarse_of[fine.indices]
    keep = coarse_rows != coarse_cols
    coarse_rows = coarse_rows[keep]
    coarse_cols = coarse_cols[keep]
    wgts = fine.eweights[keep]

    if coarse_rows.size == 0:
        return LevelGraph(
            indptr=np.zeros(num_coarse + 1, dtype=np.int64),
            indices=np.empty(0, dtype=np.int64),
            eweights=np.empty(0, dtype=np.float64),
            vweights=vweights,
        )

    # Merge duplicate (row, col) pairs by summing weights: sort + reduceat.
    keys = coarse_rows * num_coarse + coarse_cols
    order = np.argsort(keys, kind="stable")
    keys = keys[order]
    wgts = wgts[order]
    boundaries = np.flatnonzero(np.concatenate(([True], keys[1:] != keys[:-1])))
    merged_keys = keys[boundaries]
    merged_wgts = np.add.reduceat(wgts, boundaries)
    merged_rows = merged_keys // num_coarse
    merged_cols = merged_keys % num_coarse

    indptr = np.zeros(num_coarse + 1, dtype=np.int64)
    np.add.at(indptr, merged_rows + 1, 1)
    np.cumsum(indptr, out=indptr)
    return LevelGraph(
        indptr=indptr,
        indices=merged_cols,
        eweights=merged_wgts,
        vweights=vweights,
    )
