"""Heavy-edge matching for the coarsening phase.

METIS's coarsening collapses pairs of adjacent vertices; choosing the pair
connected by the heaviest edge (heavy-edge matching, HEM) tends to hide
heavy edges inside coarse vertices so that the refinement phase only has to
reason about light edges. A vertex-weight ceiling keeps collapsed vertices
small enough that the balance constraint (Eq. 2) stays satisfiable on the
coarsest graph.
"""

from __future__ import annotations

import numpy as np

from repro.partition.level import LevelGraph

UNMATCHED = -1


def heavy_edge_matching(
    level: LevelGraph,
    rng: np.random.Generator,
    max_vweight: int,
) -> np.ndarray:
    """Compute a matching; ``match[i]`` is i's partner (or ``i`` if single).

    Vertices are visited in random order. Each unmatched vertex picks its
    heaviest-edge unmatched neighbour whose combined vertex weight stays
    under ``max_vweight``. Ties break toward lower combined weight to keep
    coarse vertices uniform.
    """
    n = level.num_nodes
    match = np.full(n, UNMATCHED, dtype=np.int64)
    order = rng.permutation(n)
    for u in order:
        if match[u] != UNMATCHED:
            continue
        nbrs = level.neighbors(u)
        wgts = level.neighbor_eweights(u)
        best = UNMATCHED
        best_w = -np.inf
        u_weight = level.vweights[u]
        for v, w in zip(nbrs, wgts):
            if match[v] != UNMATCHED or v == u:
                continue
            if u_weight + level.vweights[v] > max_vweight:
                continue
            if w > best_w:
                best_w = w
                best = v
        if best == UNMATCHED:
            match[u] = u
        else:
            match[u] = best
            match[best] = u
    return match


def matching_to_coarse_map(match: np.ndarray) -> tuple[np.ndarray, int]:
    """Convert a matching into a fine->coarse vertex map.

    Returns ``(coarse_of, num_coarse)`` where matched pairs share one coarse
    id. Coarse ids are assigned in ascending order of the smaller fine id,
    keeping the map deterministic given the matching.
    """
    n = match.size
    coarse_of = np.full(n, UNMATCHED, dtype=np.int64)
    next_id = 0
    for u in range(n):
        if coarse_of[u] != UNMATCHED:
            continue
        partner = match[u]
        coarse_of[u] = next_id
        if partner != u and partner != UNMATCHED:
            coarse_of[partner] = next_id
        next_id += 1
    return coarse_of, next_id
