"""Boundary refinement under the (K, ε) balance constraint.

During uncoarsening METIS swaps boundary vertices between neighbouring
cells to reduce the edge cut (Kernighan-Lin / Fiduccia-Mattheyses style).
This implementation performs greedy single-vertex moves: for every boundary
vertex compute the best gain of moving it to an adjacent cell, apply the
move when the gain is positive and the balance constraint of Eq. (2)

    |V_k| <= (1 + eps) * |V| / K          for all cells k

remains satisfied (and the source cell stays non-empty). Several passes run
until no improving move exists or the pass budget is exhausted.
"""

from __future__ import annotations

import numpy as np

from repro.partition.level import LevelGraph


def balance_ceiling(total_weight: int, k: int, eps: float) -> float:
    """Maximum allowed cell weight under Eq. (2), integer-feasible.

    The raw bound ``(1 + eps) * W / k`` can be infeasible for integral
    cell sizes (e.g. W=23, k=7, eps=0.1 gives 3.61, but seven cells of
    three vertices only hold 21); rounding up — and never below the
    pigeonhole minimum ``ceil(W / k)`` — restores feasibility while
    keeping the spirit of the constraint.
    """
    raw = (1.0 + eps) * total_weight / k
    return max(float(np.ceil(raw)), float(np.ceil(total_weight / k)))


def refine_assignment(
    level: LevelGraph,
    assignment: np.ndarray,
    k: int,
    eps: float,
    max_passes: int = 4,
    candidates: np.ndarray | None = None,
) -> np.ndarray:
    """Greedy boundary refinement; mutates and returns ``assignment``.

    ``candidates`` restricts the vertices considered for moves (the
    incremental partitioner's dirty set); ``None`` sweeps every vertex,
    which is the full multilevel path and must stay bit-identical to the
    historical behaviour.
    """
    n = level.num_nodes
    if n == 0:
        return assignment
    sweep = range(n) if candidates is None else [int(u) for u in candidates]
    ceiling = balance_ceiling(level.total_vweight, k, eps)
    weights = np.zeros(k, dtype=np.int64)
    np.add.at(weights, assignment, level.vweights)
    counts = np.bincount(assignment, minlength=k)

    for _ in range(max_passes):
        moved = 0
        for u in sweep:
            src = int(assignment[u])
            nbrs = level.neighbors(u)
            if nbrs.size == 0:
                continue
            wgts = level.neighbor_eweights(u)
            nbr_cells = assignment[nbrs]
            if np.all(nbr_cells == src):
                continue  # interior vertex

            # Connectivity of u to each adjacent cell.
            link: dict[int, float] = {}
            for cell, w in zip(nbr_cells, wgts):
                cell = int(cell)
                link[cell] = link.get(cell, 0.0) + float(w)
            internal = link.get(src, 0.0)

            best_cell = src
            best_gain = 0.0
            u_weight = int(level.vweights[u])
            for cell, external in link.items():
                if cell == src:
                    continue
                gain = external - internal
                if gain <= best_gain:
                    continue
                if weights[cell] + u_weight > ceiling:
                    continue
                if counts[src] <= 1:
                    continue  # keep every cell non-empty
                best_gain = gain
                best_cell = cell

            if best_cell != src:
                assignment[u] = best_cell
                weights[src] -= u_weight
                weights[best_cell] += u_weight
                counts[src] -= 1
                counts[best_cell] += 1
                moved += 1
        if moved == 0:
            break
    return assignment


def rebalance_assignment(
    level: LevelGraph,
    assignment: np.ndarray,
    k: int,
    eps: float,
) -> np.ndarray:
    """Push overweight cells under the Eq. (2) ceiling.

    Initial partitions (or projections from a coarser level) can violate
    balance; this moves the cheapest boundary vertices out of overweight
    cells into the lightest adjacent (or globally lightest) cell until all
    cells satisfy the ceiling. Cut quality is secondary here — a following
    :func:`refine_assignment` pass cleans up.
    """
    ceiling = balance_ceiling(level.total_vweight, k, eps)
    weights = np.zeros(k, dtype=np.int64)
    np.add.at(weights, assignment, level.vweights)
    counts = np.bincount(assignment, minlength=k)

    overweight = [c for c in range(k) if weights[c] > ceiling]
    for cell in overweight:
        members = [int(v) for v in np.flatnonzero(assignment == cell)]
        # Cheapest-to-move first: fewest internal connections.
        def internal_weight(v: int) -> float:
            nbrs = level.neighbors(v)
            wgts = level.neighbor_eweights(v)
            return float(wgts[assignment[nbrs] == cell].sum())

        members.sort(key=internal_weight)
        for v in members:
            if weights[cell] <= ceiling or counts[cell] <= 1:
                break
            target = int(np.argmin(weights))
            if target == cell:
                break
            v_weight = int(level.vweights[v])
            if weights[target] + v_weight > ceiling:
                break  # nowhere to put it without a new violation
            assignment[v] = target
            weights[cell] -= v_weight
            weights[target] += v_weight
            counts[cell] -= 1
            counts[target] += 1
    return assignment
