"""Multilevel (K, ε)-balanced k-way graph partitioning — the METIS substitute.

GloDyNE's Step 1 (Section 4.1.1) needs, at every time step, a partition of
the snapshot into K non-overlapping, covering, roughly balanced cells with
small edge cut. The original uses the METIS C library; this module
reimplements the same three-phase multilevel scheme from scratch:

1. *coarsening* — heavy-edge matching collapses adjacent vertex pairs until
   the abstract graph is small (``~coarsen_factor * k`` vertices);
2. *initial partition* — greedy BFS region growing produces a K-way seed
   partition of the coarsest graph;
3. *uncoarsening* — the partition is projected back level by level, with a
   rebalance + boundary Kernighan-Lin refinement pass at each level.

The public entry point is :func:`partition_graph`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

import numpy as np

from repro.graph.csr import CSRAdjacency
from repro.graph.static import Graph
from repro.partition.coarsen import build_coarse_graph
from repro.partition.initial import grow_initial_partition
from repro.partition.level import LevelGraph, edge_cut, level_graph_from_csr
from repro.partition.matching import heavy_edge_matching, matching_to_coarse_map
from repro.partition.refine import (
    balance_ceiling,
    rebalance_assignment,
    refine_assignment,
)

Node = Hashable


@dataclass
class PartitionResult:
    """A (K, ε)-balanced k-way partition of a snapshot.

    ``cells[j]`` lists the node ids of cell ``j``; ``assignment`` maps every
    node id to its cell index; ``edge_cut`` is the total weight of edges
    crossing cells.
    """

    cells: list[list[Node]]
    assignment: dict[Node, int]
    edge_cut: float
    k: int
    eps: float

    @property
    def cell_sizes(self) -> list[int]:
        """Number of nodes in each cell, indexed like ``cells``."""
        return [len(cell) for cell in self.cells]

    def max_imbalance(self, num_nodes: int | None = None) -> float:
        """Largest cell size divided by the perfectly balanced size."""
        total = num_nodes if num_nodes is not None else sum(self.cell_sizes)
        if total == 0 or self.k == 0:
            return 0.0
        return max(self.cell_sizes) / (total / self.k)


def partition_graph(
    graph: Graph | None,
    k: int,
    eps: float = 0.10,
    rng: np.random.Generator | None = None,
    coarsen_factor: int = 4,
    refinement_passes: int = 4,
    csr: CSRAdjacency | None = None,
) -> PartitionResult:
    """Partition ``graph`` into ``k`` balanced cells minimising edge cut.

    Parameters
    ----------
    graph:
        The snapshot to partition (undirected; weights respected in the cut
        objective). May be ``None`` when ``csr`` is given.
    k:
        Requested number of cells. Clamped to ``[1, |V|]``: the paper sets
        ``K = α|V^t|`` which can exceed |V| only for degenerate α.
    eps:
        Balance tolerance of Eq. (2): every cell holds at most
        ``(1 + eps) * |V| / k`` vertices. METIS's default load imbalance is
        ~3%; 10% is forgiving enough for the tiny cells GloDyNE requests
        (|V|/K ≈ 10 nodes per cell at α = 0.1).
    rng:
        Randomness for matching order and seed choice; pass a seeded
        generator for deterministic partitions.
    csr:
        Fast path for callers that already hold the frozen
        :class:`~repro.graph.csr.CSRAdjacency` of ``graph`` (the GloDyNE
        online loop builds exactly one CSR per step and shares it with
        the walk engine). Must describe the same snapshot as ``graph``;
        the result is bit-identical to rebuilding it here.

    Notes
    -----
    Guarantees non-overlap, full cover, non-empty cells, and the Eq. (2)
    ceiling whenever it is feasible (it always is for unit vertex weights
    because ``ceil((1+eps)|V|/k) >= ceil(|V|/k)``).
    """
    if rng is None:
        rng = np.random.default_rng()
    if csr is None:
        if graph is None:
            raise ValueError("pass a graph, a prebuilt csr, or both")
        csr = CSRAdjacency.from_graph(graph)
    n = csr.num_nodes
    if n == 0:
        raise ValueError("cannot partition an empty graph")
    k = max(1, min(int(k), n))
    if eps < 0:
        raise ValueError("eps must be non-negative")

    if k == 1:
        assignment_arr = np.zeros(n, dtype=np.int64)
        return _package(csr, assignment_arr, k, eps)
    if k == n:
        assignment_arr = np.arange(n, dtype=np.int64)
        return _package(csr, assignment_arr, k, eps)

    finest = level_graph_from_csr(csr)

    # ------------------------------------------------------------- coarsen
    levels: list[LevelGraph] = [finest]
    maps: list[np.ndarray] = []  # maps[i]: vertex map from levels[i] -> levels[i+1]
    target = max(coarsen_factor * k, 32)
    total_weight = finest.total_vweight
    # Cap collapsed-vertex weight so the coarsest graph can still satisfy
    # the balance ceiling; 1.5x the average coarse-vertex weight at target
    # size mirrors METIS's maxvwgt heuristic.
    max_vweight = max(2, int(np.ceil(1.5 * total_weight / target)))
    ceiling = balance_ceiling(total_weight, k, eps)
    max_vweight = min(max_vweight, max(2, int(ceiling)))

    current = finest
    while current.num_nodes > target and current.num_nodes >= 2 * k:
        match = heavy_edge_matching(current, rng, max_vweight)
        coarse_of, num_coarse = matching_to_coarse_map(match)
        if num_coarse >= current.num_nodes * 0.98 or num_coarse < k:
            break  # no useful contraction left (or would break feasibility)
        coarse = build_coarse_graph(current, coarse_of, num_coarse)
        levels.append(coarse)
        maps.append(coarse_of)
        current = coarse

    # ----------------------------------------------------- initial partition
    assignment = grow_initial_partition(levels[-1], k, rng)
    assignment = rebalance_assignment(levels[-1], assignment, k, eps)
    assignment = refine_assignment(
        levels[-1], assignment, k, eps, max_passes=refinement_passes
    )

    # ------------------------------------------------------------ uncoarsen
    for level_idx in range(len(levels) - 2, -1, -1):
        coarse_of = maps[level_idx]
        assignment = assignment[coarse_of]  # project to the finer level
        assignment = rebalance_assignment(levels[level_idx], assignment, k, eps)
        assignment = refine_assignment(
            levels[level_idx], assignment, k, eps, max_passes=refinement_passes
        )

    return _package(csr, assignment, k, eps)


def _package(
    csr: CSRAdjacency,
    assignment: np.ndarray,
    k: int,
    eps: float,
    cut: float | None = None,
) -> PartitionResult:
    """Translate an index assignment into a node-id :class:`PartitionResult`.

    ``cut`` lets callers that already computed the edge cut (the
    incremental partitioner's quality gate) skip rebuilding the level
    graph just to re-derive it.
    """
    cells: list[list[Node]] = [[] for _ in range(k)]
    mapping: dict[Node, int] = {}
    for idx, cell in enumerate(assignment):
        node = csr.nodes[idx]
        cells[int(cell)].append(node)
        mapping[node] = int(cell)
    if cut is None:
        level = level_graph_from_csr(csr)
        cut = edge_cut(level, assignment)
    return PartitionResult(
        cells=cells, assignment=mapping, edge_cut=cut, k=k, eps=eps
    )


def validate_partition(result: PartitionResult, graph: Graph) -> list[str]:
    """Return a list of constraint violations (empty list == valid).

    Checks Definition 5's requirements — non-overlap, full cover — plus
    non-emptiness. The Eq. (2) ceiling is reported but tolerated when
    infeasible cells exist (e.g. k close to |V| with eps = 0).
    """
    problems: list[str] = []
    seen: set[Node] = set()
    for j, cell in enumerate(result.cells):
        if not cell:
            problems.append(f"cell {j} is empty")
        overlap = seen.intersection(cell)
        if overlap:
            problems.append(f"cell {j} overlaps earlier cells: {sorted(overlap)[:5]}")
        seen.update(cell)
    missing = graph.node_set() - seen
    if missing:
        problems.append(f"{len(missing)} nodes not covered")
    extra = seen - graph.node_set()
    if extra:
        problems.append(f"{len(extra)} unknown nodes present")

    n = graph.number_of_nodes()
    ceiling = balance_ceiling(n, result.k, result.eps)
    oversized = [
        j for j, cell in enumerate(result.cells) if len(cell) > np.ceil(ceiling)
    ]
    if oversized:
        problems.append(
            f"cells over the (K,eps) ceiling {ceiling:.1f}: {oversized[:5]}"
        )
    return problems
