"""Internal working representation for the multilevel partitioner.

Each level of the multilevel hierarchy is a plain CSR graph with vertex
weights (how many original vertices a coarse vertex represents) and edge
weights (sum of the original edge weights collapsed into a coarse edge).
Self-loops created by collapsing are dropped — they never contribute to the
edge cut.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class LevelGraph:
    """CSR graph with vertex/edge weights used at one coarsening level."""

    indptr: np.ndarray
    indices: np.ndarray
    eweights: np.ndarray
    vweights: np.ndarray

    @property
    def num_nodes(self) -> int:
        return int(self.vweights.size)

    @property
    def total_vweight(self) -> int:
        return int(self.vweights.sum())

    def neighbors(self, idx: int) -> np.ndarray:
        return self.indices[self.indptr[idx]: self.indptr[idx + 1]]

    def neighbor_eweights(self, idx: int) -> np.ndarray:
        return self.eweights[self.indptr[idx]: self.indptr[idx + 1]]

    def degree(self, idx: int) -> int:
        return int(self.indptr[idx + 1] - self.indptr[idx])


def level_graph_from_csr(csr) -> LevelGraph:
    """Build the finest-level graph from a :class:`CSRAdjacency`.

    Vertex weights start at 1 (every vertex represents itself). Self-loops
    are removed because they cannot be cut.
    """
    n = csr.num_nodes
    rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(csr.indptr))
    keep = rows != csr.indices
    rows = rows[keep]
    cols = csr.indices[keep]
    wgts = csr.weights[keep]

    order = np.lexsort((cols, rows))
    rows, cols, wgts = rows[order], cols[order], wgts[order]
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.add.at(indptr, rows + 1, 1)
    np.cumsum(indptr, out=indptr)
    return LevelGraph(
        indptr=indptr,
        indices=cols.astype(np.int64),
        eweights=wgts.astype(np.float64),
        vweights=np.ones(n, dtype=np.int64),
    )


def edge_cut(level: LevelGraph, assignment: np.ndarray) -> float:
    """Total weight of edges whose endpoints lie in different cells.

    ``assignment[i]`` is the cell of vertex ``i``. Each undirected edge is
    stored twice in CSR, so the sum is halved.
    """
    rows = np.repeat(
        np.arange(level.num_nodes, dtype=np.int64), np.diff(level.indptr)
    )
    cut_mask = assignment[rows] != assignment[level.indices]
    return float(level.eweights[cut_mask].sum() / 2.0)


def cell_weights(level: LevelGraph, assignment: np.ndarray, k: int) -> np.ndarray:
    """Total vertex weight per cell (length ``k``)."""
    weights = np.zeros(k, dtype=np.int64)
    np.add.at(weights, assignment, level.vweights)
    return weights
