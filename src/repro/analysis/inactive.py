"""Inactive sub-network detection (Figure 1 d-f).

The paper's second motivating measurement: partition the largest snapshot
into ~50-node cells with METIS, then count how many cells experience *no
change at all* for at least five consecutive time steps. Those streaks are
what most-affected-node DNE methods never revisit — and why GloDyNE's
diverse selection exists.

A cell counts as changed at step t when any edge added or removed between
t-1 and t has at least one endpoint inside the cell.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Hashable

import numpy as np

from repro.graph.dynamic import DynamicNetwork
from repro.partition.metis import partition_graph

Node = Hashable


@dataclass(frozen=True)
class InactivityReport:
    """Histogram of quiet-streak lengths over partition cells.

    ``streak_histogram[L]`` counts maximal streaks of exactly L consecutive
    changeless steps (only L >= min_streak are recorded), pooled over all
    cells — the bars of Figure 1 d-f.
    """

    num_cells: int
    num_steps: int
    min_streak: int
    streak_histogram: dict[int, int]
    cells_with_streak: int

    @property
    def total_streaks(self) -> int:
        return sum(self.streak_histogram.values())

    @property
    def inactive_fraction(self) -> float:
        """Fraction of cells owning at least one long quiet streak."""
        if self.num_cells == 0:
            return 0.0
        return self.cells_with_streak / self.num_cells


def quiet_streaks(activity: list[bool]) -> list[int]:
    """Lengths of maximal runs of ``False`` (inactive) in an activity trace."""
    streaks: list[int] = []
    run = 0
    for active in activity:
        if active:
            if run:
                streaks.append(run)
            run = 0
        else:
            run += 1
    if run:
        streaks.append(run)
    return streaks


def inactive_subnetworks(
    network: DynamicNetwork,
    cell_size: int = 50,
    min_streak: int = 5,
    rng: np.random.Generator | None = None,
) -> InactivityReport:
    """Reproduce Figure 1 d-f for a dynamic network.

    The *largest* snapshot is partitioned into cells of roughly
    ``cell_size`` nodes; each cell's activity trace across all steps is
    scanned for quiet streaks of at least ``min_streak`` steps.
    """
    if rng is None:
        rng = np.random.default_rng()
    largest_index = int(
        np.argmax([g.number_of_nodes() for g in network])
    )
    largest = network.snapshot(largest_index)
    k = max(1, round(largest.number_of_nodes() / cell_size))
    partition = partition_graph(largest, k=k, rng=rng)

    cell_of: dict[Node, int] = partition.assignment
    num_steps = network.num_snapshots - 1  # steps with a defined diff
    activity = np.zeros((partition.k, num_steps), dtype=bool)
    for t, diff in enumerate(network.diffs()):
        touched: set[int] = set()
        for edge in diff.added_edges | diff.removed_edges:
            for endpoint in edge:
                cell = cell_of.get(endpoint)
                if cell is not None:
                    touched.add(cell)
        for cell in touched:
            activity[cell, t] = True

    histogram: Counter[int] = Counter()
    cells_with_streak = 0
    for cell in range(partition.k):
        streaks = [
            s for s in quiet_streaks(list(activity[cell])) if s >= min_streak
        ]
        if streaks:
            cells_with_streak += 1
        histogram.update(streaks)

    return InactivityReport(
        num_cells=partition.k,
        num_steps=num_steps,
        min_streak=min_streak,
        streak_histogram=dict(sorted(histogram.items())),
        cells_with_streak=cells_with_streak,
    )
