"""Figure 1 analyses: proximity drift and inactive sub-networks."""

from repro.analysis.dataset_stats import (
    DATASET_TABLE_HEADERS,
    DatasetSummary,
    summarize_network,
)
from repro.analysis.inactive import (
    InactivityReport,
    inactive_subnetworks,
    quiet_streaks,
)
from repro.analysis.proximity import (
    ProximityChange,
    proximity_change_profile,
    shortest_path_change,
)

__all__ = [
    "DATASET_TABLE_HEADERS",
    "DatasetSummary",
    "InactivityReport",
    "ProximityChange",
    "inactive_subnetworks",
    "proximity_change_profile",
    "quiet_streaks",
    "shortest_path_change",
    "summarize_network",
]
