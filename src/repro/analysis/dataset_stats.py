"""Dataset statistics in the style of the paper's Section 5.1.1.

The paper characterises each dynamic network by its initial/final
snapshot sizes, snapshot count, and (in Table 4's footer) total node/edge
counts over all snapshots. This module computes the same profile plus the
dynamics-class facts the reproduction cares about (deletions present?
labels present? average per-step change volume).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.dynamic import DynamicNetwork


@dataclass(frozen=True)
class DatasetSummary:
    """One row of the §5.1.1 dataset description."""

    name: str
    num_snapshots: int
    initial_nodes: int
    initial_edges: int
    final_nodes: int
    final_edges: int
    total_nodes: int
    total_edges: int
    has_labels: bool
    num_classes: int
    has_node_deletions: bool
    has_edge_deletions: bool
    mean_changed_edges_per_step: float

    def as_row(self) -> list[str]:
        """Render for a plain-text table."""
        return [
            self.name,
            str(self.num_snapshots),
            f"{self.initial_nodes}/{self.initial_edges}",
            f"{self.final_nodes}/{self.final_edges}",
            f"{self.total_nodes}/{self.total_edges}",
            str(self.num_classes) if self.has_labels else "-",
            "yes" if self.has_node_deletions else "no",
            f"{self.mean_changed_edges_per_step:.1f}",
        ]


def summarize_network(network: DynamicNetwork) -> DatasetSummary:
    """Compute the §5.1.1-style profile of a dynamic network."""
    diffs = network.diffs()
    changed = [d.num_changed_edges for d in diffs]
    node_deletions = any(d.removed_nodes for d in diffs)
    edge_deletions = any(d.removed_edges for d in diffs)
    initial, final = network[0], network[-1]
    labels = network.labels
    return DatasetSummary(
        name=network.name,
        num_snapshots=network.num_snapshots,
        initial_nodes=initial.number_of_nodes(),
        initial_edges=initial.number_of_edges(),
        final_nodes=final.number_of_nodes(),
        final_edges=final.number_of_edges(),
        total_nodes=network.total_nodes(),
        total_edges=network.total_edges(),
        has_labels=bool(labels),
        num_classes=len(set(labels.values())) if labels else 0,
        has_node_deletions=node_deletions,
        has_edge_deletions=edge_deletions,
        mean_changed_edges_per_step=float(np.mean(changed)) if changed else 0.0,
    )


DATASET_TABLE_HEADERS = [
    "dataset",
    "snapshots",
    "initial n/e",
    "final n/e",
    "total n/e",
    "classes",
    "deletions",
    "Δedges/step",
]
