"""Shortest-path proximity modification between snapshots (Figure 1 a-c).

The paper's motivating measurement: even a handful of edge changes between
consecutive snapshots moves the all-pairs shortest-path structure by a
large amount, because changes propagate through high-order proximity:

    Δsp_all = Σ_{i∈V} Σ_{j∈V} | sp^{G_t}_{ij} − sp^{G_{t+1}}_{ij} |

reported per changed edge (Figure 1c's table). Snapshots are unweighted,
so "Dijkstra" reduces to BFS. Pairs disconnected in either snapshot are
skipped (the paper works on largest connected components where this is
rare). For large graphs a uniform sample of source nodes estimates the
sum, scaled back to the full population.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

import numpy as np

from repro.graph.components import bfs_distances
from repro.graph.diff import diff_snapshots
from repro.graph.dynamic import DynamicNetwork
from repro.graph.static import Graph

Node = Hashable


@dataclass(frozen=True)
class ProximityChange:
    """Δsp between two consecutive snapshots."""

    total_change: float
    num_changed_edges: int
    num_pairs_compared: int
    sampled: bool

    @property
    def change_per_edge(self) -> float:
        """Figure 1c's 'modifications in proximity per edge'."""
        if self.num_changed_edges == 0:
            return 0.0
        return self.total_change / self.num_changed_edges


def shortest_path_change(
    previous: Graph,
    current: Graph,
    max_sources: int | None = None,
    rng: np.random.Generator | None = None,
) -> ProximityChange:
    """Δsp_all between two snapshots over their common node set.

    ``max_sources`` caps the number of BFS sources; when it kicks in the
    total is rescaled by ``|common| / #sources`` to estimate the full sum.
    """
    common = sorted(
        previous.node_set().intersection(current.node_set()), key=repr
    )
    diff = diff_snapshots(previous, current)
    if len(common) < 2:
        return ProximityChange(0.0, diff.num_changed_edges, 0, False)

    sources = common
    sampled = False
    if max_sources is not None and len(common) > max_sources:
        if rng is None:
            rng = np.random.default_rng()
        picks = rng.choice(len(common), size=max_sources, replace=False)
        sources = [common[int(i)] for i in picks]
        sampled = True

    common_set = set(common)
    total = 0.0
    pairs = 0
    for source in sources:
        dist_prev = bfs_distances(previous, source)
        dist_curr = bfs_distances(current, source)
        for target in common_set:
            if target == source:
                continue
            d1 = dist_prev.get(target)
            d2 = dist_curr.get(target)
            if d1 is None or d2 is None:
                continue  # disconnected in one snapshot
            total += abs(d1 - d2)
            pairs += 1
    if sampled and sources:
        scale = len(common) / len(sources)
        total *= scale
        pairs = int(pairs * scale)
    return ProximityChange(
        total_change=total,
        num_changed_edges=diff.num_changed_edges,
        num_pairs_compared=pairs,
        sampled=sampled,
    )


def proximity_change_profile(
    network: DynamicNetwork,
    max_sources: int | None = 64,
    rng: np.random.Generator | None = None,
) -> list[ProximityChange]:
    """Δsp for every consecutive snapshot pair (Figure 1c rows)."""
    if rng is None:
        rng = np.random.default_rng()
    return [
        shortest_path_change(
            network.snapshot(t), network.snapshot(t + 1), max_sources, rng
        )
        for t in range(network.num_snapshots - 1)
    ]
